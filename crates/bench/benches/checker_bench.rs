//! Criterion benchmarks for the verification substrate itself: cost of
//! one fully checked execution (schedule + ghost validation) and of one
//! crash-sweep pass for each verified system. These back the checker
//! statistics column of the harness's Table 3 output.

use crash_patterns::shadow::ShadowHarness;
use crash_patterns::wal::WalHarness;
use criterion::{criterion_group, criterion_main, Criterion};
use perennial_checker::{check, run_scenario, CheckConfig, Pass};
use repldisk::harness::{RdHarness, RdWorkload};

fn one_execution(c: &mut Criterion) {
    let cfg = CheckConfig::default();
    c.bench_function("checker/one_execution_repldisk", |b| {
        let h = RdHarness {
            workload: RdWorkload::SingleWrite,
            after_round: false,
            ..RdHarness::default()
        };
        b.iter(|| {
            let (outcome, _) = run_scenario(&h, &[], &cfg);
            assert!(!outcome.is_failure(), "unexpected {outcome:?}");
        })
    });
    c.bench_function("checker/one_execution_with_crash", |b| {
        let h = RdHarness {
            workload: RdWorkload::SingleWrite,
            after_round: false,
            ..RdHarness::default()
        };
        b.iter(|| {
            let (outcome, _) = run_scenario(&h, &[4], &cfg);
            assert!(!outcome.is_failure(), "unexpected {outcome:?}");
        })
    });
}

fn sweep_passes(c: &mut Criterion) {
    let quick = CheckConfig::builder()
        .dfs_max_executions(50)
        .random_samples(5)
        .random_crash_samples(5)
        .without_passes([Pass::NestedCrash])
        .build();
    c.bench_function("checker/sweep_shadow", |b| {
        let h = ShadowHarness {
            with_reader: false,
            ..ShadowHarness::default()
        };
        b.iter(|| {
            let r = check(&h, &quick);
            assert!(r.passed());
        })
    });
    c.bench_function("checker/sweep_wal", |b| {
        let h = WalHarness {
            with_reader: false,
            ..WalHarness::default()
        };
        b.iter(|| {
            let r = check(&h, &quick);
            assert!(r.passed());
        })
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = one_execution, sweep_passes
}
criterion_main!(benches);
