//! Criterion benchmarks backing Figure 11: per-request latency of the
//! three mail servers on the native in-memory file system. The harness
//! binary composes these costs into the full throughput-vs-cores curves.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use goose_rt::fs::NativeFs;
use goose_rt::runtime::NativeRt;
use mailboat::gomail::{CMailSim, GoMail};
use mailboat::server::{mail_dirs, MailServer, Mailboat};
use std::sync::Arc;

const USERS: u64 = 100;
const MSG: &[u8] = &[b'x'; 256];

fn fresh_fs() -> Arc<NativeFs> {
    let dirs = mail_dirs(USERS);
    let dir_refs: Vec<&str> = dirs.iter().map(String::as_str).collect();
    NativeFs::new(&dir_refs)
}

fn bench_server<S: MailServer + 'static>(c: &mut Criterion, name: &str, make: impl Fn() -> Arc<S>) {
    // Separate server instances per benchmark: the deliver benchmark
    // floods mailboxes with criterion's many iterations, which would
    // make a shared pickup benchmark read thousands of messages.
    {
        let server = make();
        let mut user = 0u64;
        c.bench_function(&format!("{name}/deliver"), |b| {
            b.iter(|| {
                user = (user + 1) % USERS;
                server.deliver(user, MSG);
            })
        });
    }
    {
        let server = make();
        let mut user = 0u64;
        // Steady-state pickup: deliver exactly one, then pick up and
        // delete all (mailboxes stay one message deep).
        c.bench_function(&format!("{name}/pickup_cycle"), |b| {
            b.iter_batched(
                || {
                    user = (user + 1) % USERS;
                    server.deliver(user, MSG);
                    user
                },
                |u| {
                    let msgs = server.pickup(u);
                    for m in &msgs {
                        server.delete(u, &m.id);
                    }
                    server.unlock(u);
                },
                BatchSize::SmallInput,
            )
        });
    }
}

fn fig11_benches(c: &mut Criterion) {
    bench_server(c, "mailboat", || {
        Arc::new(Mailboat::init(fresh_fs(), NativeRt::new(), USERS).unwrap())
    });
    bench_server(c, "gomail", || {
        Arc::new(GoMail::init(fresh_fs(), NativeRt::new(), USERS).unwrap())
    });
    bench_server(c, "cmail_sim", || {
        Arc::new(CMailSim::init(fresh_fs(), NativeRt::new(), USERS).unwrap())
    });
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = fig11_benches
}
criterion_main!(benches);
