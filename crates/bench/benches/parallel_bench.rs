//! Parallel vs sequential explorer throughput (the tentpole
//! measurement): the same scenario and config, one worker vs a full
//! pool. The determinism contract guarantees both sides do identical
//! work, so the time difference is pure scheduling.

use criterion::{criterion_group, criterion_main, Criterion};
use perennial_checker::{CheckConfig, Pass};

fn base_cfg() -> CheckConfig {
    CheckConfig::builder()
        .dfs_max_executions(100)
        .random_samples(20)
        .random_crash_samples(40)
        .without_passes([Pass::NestedCrash])
        .max_steps(200_000)
        .build()
}

fn bench_parallel_vs_sequential(c: &mut Criterion) {
    let registry = crash_patterns::scenarios();
    let scenario = registry.get("patterns/wal").expect("registered");
    let pool = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut seq = base_cfg();
    seq.workers = 1;
    c.bench_function("check/patterns-wal/workers=1", |b| {
        b.iter(|| scenario.run(&seq))
    });

    let mut par = base_cfg();
    par.workers = pool;
    c.bench_function(&format!("check/patterns-wal/workers={pool}"), |b| {
        b.iter(|| scenario.run(&par))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_parallel_vs_sequential
}
criterion_main!(benches);
