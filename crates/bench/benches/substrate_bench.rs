//! Criterion benchmarks for the substrates: native file-system
//! operations (the cost model feeding the Figure 11 simulator) and the
//! replicated disk's operations on the native two-disk device.

use criterion::{criterion_group, criterion_main, Criterion};
use goose_rt::fs::{FileSys, NativeFs};
use goose_rt::runtime::NativeRt;
use perennial_disk::two::{NativeTwoDisks, TwoDisks};
use repldisk::ReplDisk;
use std::sync::Arc;

fn fs_ops(c: &mut Criterion) {
    let fs = NativeFs::new(&["d0", "d1"]);
    let d0 = fs.resolve("d0").unwrap();
    let d1 = fs.resolve("d1").unwrap();
    let mut i = 0u64;
    c.bench_function("fs/create_close", |b| {
        b.iter(|| {
            i += 1;
            let fd = fs.create(d0, &format!("f{i}")).unwrap().unwrap();
            fs.close(fd).unwrap();
        })
    });
    c.bench_function("fs/link", |b| {
        b.iter(|| {
            i += 1;
            let fd = fs.create(d0, &format!("l{i}")).unwrap().unwrap();
            fs.close(fd).unwrap();
            assert!(fs.link(d0, &format!("l{i}"), d1, &format!("t{i}")).unwrap());
        })
    });
    c.bench_function("fs/resolve", |b| {
        b.iter(|| {
            criterion::black_box(fs.resolve("d1").unwrap());
        })
    });
    c.bench_function("fs/append_4k", |b| {
        // Criterion may invoke this closure several times; the append
        // target needs a fresh name each time (create is exclusive).
        i += 1;
        let fd = fs.create(d0, &format!("appendee{i}")).unwrap().unwrap();
        let buf = vec![7u8; 4096];
        b.iter(|| fs.append(fd, &buf).unwrap())
    });
}

fn repldisk_ops(c: &mut Criterion) {
    let disks = NativeTwoDisks::new(1024, 4096);
    let rt = NativeRt::new();
    let rd = Arc::new(ReplDisk::new(&*rt, disks as Arc<dyn TwoDisks>));
    let block = vec![9u8; 4096];
    let mut a = 0u64;
    c.bench_function("repldisk/rd_write", |b| {
        b.iter(|| {
            a = (a + 1) % 1024;
            rd.rd_write(a, &block);
        })
    });
    c.bench_function("repldisk/rd_read", |b| {
        b.iter(|| {
            a = (a + 1) % 1024;
            criterion::black_box(rd.rd_read(a));
        })
    });
    c.bench_function("repldisk/rd_recover_1024", |b| b.iter(|| rd.rd_recover()));
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = fs_ops, repldisk_ops
}
criterion_main!(benches);
