//! Ablation study: which exploration passes are load-bearing?
//!
//! DESIGN.md calls out the checker's pass structure (schedule DFS,
//! random sampling, systematic crash sweep, nested crash sweep) as the
//! substitute for the paper's universally quantified theorem. This
//! module ablates it: every mutant in the repository is re-checked under
//! each pass in isolation, showing that
//!
//! - concurrency bugs (no-lock deletes, racy slices) are caught by
//!   schedule exploration alone, crashes unnecessary;
//! - crash-safety bugs (zeroing recovery, premature commits, skipped
//!   log applies) are **missed** by crash-free exploration and need the
//!   sweep — evidence that the sweep is not redundant;
//! - a few bugs are caught statically-ish by the end-of-execution
//!   abstraction check in any pass.

use crash_patterns::group_commit::{GcHarness, GcMutant};
use crash_patterns::shadow::{ShadowHarness, ShadowMutant};
use crash_patterns::synced_log::{SlHarness, SlMutant};
use crash_patterns::txn_wal::{TxnHarness, TxnMutant};
use crash_patterns::wal::{WalHarness, WalMutant};
use mailboat::harness::{MbHarness, MbWorkload};
use mailboat::proof::MbMutant;
use perennial_checker::{check, CheckConfig};
use perennial_kv::{KvHarness, KvMutant, KvWorkload};
use perennial_spec::SpecTS;
use repldisk::harness::{RdHarness, RdWorkload};
use repldisk::proof::RdMutant;

/// The exploration passes ablated over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// DFS over crash-free schedules only.
    DfsOnly,
    /// Random crash-free schedules only.
    RandomOnly,
    /// Systematic crash sweep only (round-robin schedule).
    CrashSweepOnly,
    /// Everything (the default configuration).
    Full,
}

impl Pass {
    /// All passes, in report order.
    pub fn all() -> [Pass; 4] {
        [
            Pass::DfsOnly,
            Pass::RandomOnly,
            Pass::CrashSweepOnly,
            Pass::Full,
        ]
    }

    /// Short column label.
    pub fn label(&self) -> &'static str {
        match self {
            Pass::DfsOnly => "dfs",
            Pass::RandomOnly => "random",
            Pass::CrashSweepOnly => "sweep",
            Pass::Full => "full",
        }
    }

    fn config(&self) -> CheckConfig {
        let base = CheckConfig::builder()
            .dfs_max_executions(0)
            .random_samples(0)
            .random_crash_samples(0)
            .without_passes([
                perennial_checker::Pass::CrashSweep,
                perennial_checker::Pass::NestedCrash,
            ])
            .max_steps(200_000);
        match self {
            Pass::DfsOnly => base.dfs_max_executions(300).build(),
            Pass::RandomOnly => base.random_samples(40).build(),
            Pass::CrashSweepOnly => base
                .with_passes([perennial_checker::Pass::CrashSweep])
                .build(),
            Pass::Full => CheckConfig::builder()
                .dfs_max_executions(300)
                .random_samples(15)
                .random_crash_samples(25)
                .max_steps(200_000)
                .build(),
        }
    }
}

/// One mutant's row in the ablation matrix.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Mutant name.
    pub name: String,
    /// Per-pass verdicts, in [`Pass::all`] order: true = caught.
    pub caught: Vec<bool>,
}

fn run_row<S: SpecTS, H: perennial_checker::Harness<S>>(name: &str, h: &H) -> AblationRow {
    let caught = Pass::all()
        .iter()
        .map(|p| !check(h, &p.config()).passed())
        .collect();
    AblationRow {
        name: name.to_string(),
        caught,
    }
}

/// Runs the full ablation matrix over every mutant in the repository.
pub fn run_ablation() -> Vec<AblationRow> {
    let mut rows = Vec::new();

    for (name, mutant, workload) in [
        (
            "rd/skip-second-write",
            RdMutant::SkipSecondWrite,
            RdWorkload::Failover,
        ),
        (
            "rd/zeroing-recovery",
            RdMutant::ZeroingRecovery,
            RdWorkload::SingleWrite,
        ),
        (
            "rd/skip-helping",
            RdMutant::SkipHelping,
            RdWorkload::SingleWrite,
        ),
        (
            "rd/commit-early",
            RdMutant::CommitEarly,
            RdWorkload::SingleWrite,
        ),
    ] {
        rows.push(run_row(
            name,
            &RdHarness {
                mutant,
                workload,
                ..RdHarness::default()
            },
        ));
    }

    for (name, mutant) in [
        ("shadow/flip-first", ShadowMutant::FlipFirst),
        ("shadow/in-place", ShadowMutant::InPlace),
    ] {
        rows.push(run_row(
            name,
            &ShadowHarness {
                mutant,
                with_reader: false,
            },
        ));
    }

    for (name, mutant) in [
        ("wal/skip-recovery-apply", WalMutant::SkipRecoveryApply),
        ("wal/header-first", WalMutant::HeaderFirst),
        ("wal/skip-helping", WalMutant::SkipHelping),
    ] {
        rows.push(run_row(
            name,
            &WalHarness {
                mutant,
                with_reader: false,
            },
        ));
    }

    for (name, mutant) in [
        ("gc/count-first", GcMutant::CountFirst),
        ("gc/fake-durability", GcMutant::FakeDurability),
    ] {
        rows.push(run_row(name, &GcHarness { mutant }));
    }

    for (name, mutant) in [
        ("txn/no-log", TxnMutant::NoLog),
        ("txn/header-first", TxnMutant::HeaderFirst),
        ("txn/partial-recovery", TxnMutant::PartialRecoveryApply),
    ] {
        rows.push(run_row(
            name,
            &TxnHarness {
                mutant,
                with_reader: false,
            },
        ));
    }

    for (name, mutant) in [
        ("slog/skip-fsync", SlMutant::SkipFsync),
        ("slog/skip-dir-sync", SlMutant::SkipDirSync),
    ] {
        rows.push(run_row(name, &SlHarness { mutant }));
    }

    for (name, mutant, workload) in [
        ("kv/in-place", KvMutant::InPlace, KvWorkload::SinglePut),
        ("kv/flip-first", KvMutant::FlipFirst, KvWorkload::SinglePut),
        ("kv/no-lock", KvMutant::NoLock, KvWorkload::SameBucket),
    ] {
        rows.push(run_row(
            name,
            &KvHarness {
                mutant,
                workload,
                ..KvHarness::default()
            },
        ));
    }

    for (name, mutant, workload) in [
        (
            "mb/no-spool",
            MbMutant::NoSpool,
            MbWorkload::DeliverVsPickup,
        ),
        (
            "mb/commit-at-spool",
            MbMutant::CommitAtSpool,
            MbWorkload::SingleDeliver,
        ),
        (
            "mb/skip-cleanup",
            MbMutant::SkipRecoveryCleanup,
            MbWorkload::SingleDeliver,
        ),
        (
            "mb/delete-no-lock",
            MbMutant::DeleteWithoutLock,
            MbWorkload::DeliverVsPickup,
        ),
    ] {
        rows.push(run_row(
            name,
            &MbHarness {
                mutant,
                workload,
                ..MbHarness::default()
            },
        ));
    }

    rows
}

/// Renders the ablation matrix.
pub fn render_ablation(rows: &[AblationRow]) -> String {
    let mut out = String::new();
    out.push_str("== Ablation: mutant x exploration pass (DESIGN.md §8) ==\n\n");
    out.push_str(&format!("{:<26}", "mutant"));
    for p in Pass::all() {
        out.push_str(&format!("{:>8}", p.label()));
    }
    out.push('\n');
    let mut sweep_only = 0;
    for row in rows {
        out.push_str(&format!("{:<26}", row.name));
        for c in &row.caught {
            out.push_str(&format!("{:>8}", if *c { "CAUGHT" } else { "-" }));
        }
        out.push('\n');
        // Crash-dependent bugs: missed by both crash-free passes, caught
        // by the sweep.
        if !row.caught[0] && !row.caught[1] && row.caught[2] {
            sweep_only += 1;
        }
    }
    out.push_str(&format!(
        "\n{} of {} mutants are invisible to crash-free exploration and need\nthe crash sweep — the sweep is load-bearing, not redundant.\n",
        sweep_only,
        rows.len()
    ));
    out
}
