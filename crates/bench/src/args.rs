//! Shared CLI argument parsing for the bench binaries and examples.
//!
//! `scan`, `scale`, and `examples/scenario_smoke` each grew their own
//! hand-rolled flag loop; this module is the one copy. A binary
//! declares its flags as an [`ArgSpec`] slice and gets back a
//! [`ParsedArgs`] with typed accessors — so a new flag (`--profile`,
//! `--baseline`, `--diff`) is defined once and unknown-flag errors are
//! uniform. Deliberately tiny: no external dependency, no derive magic,
//! just the three shapes the suite's CLIs actually use (boolean flags,
//! `--flag VALUE` pairs, and greedy `--flag A B C…` tails).

use perennial_checker::{CheckConfigBuilder, CoverageGuided, Exhaustive, SleepSetDpor};
use std::collections::{BTreeMap, BTreeSet};

/// How a declared flag consumes arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgKind {
    /// Boolean presence flag: `--faults`.
    Flag,
    /// One value: `--telemetry PATH`. Last occurrence wins.
    Value,
    /// Greedy tail: `--merge A B C…` consumes everything after it.
    Rest,
}

/// One declared flag.
#[derive(Debug, Clone, Copy)]
pub struct ArgSpec {
    pub name: &'static str,
    pub kind: ArgKind,
}

/// Declares a boolean flag.
pub const fn flag(name: &'static str) -> ArgSpec {
    ArgSpec {
        name,
        kind: ArgKind::Flag,
    }
}

/// Declares a `--flag VALUE` pair.
pub const fn value(name: &'static str) -> ArgSpec {
    ArgSpec {
        name,
        kind: ArgKind::Value,
    }
}

/// Declares a greedy `--flag A B C…` tail.
pub const fn rest(name: &'static str) -> ArgSpec {
    ArgSpec {
        name,
        kind: ArgKind::Rest,
    }
}

/// Parsed command line: declared flags plus free positionals.
#[derive(Debug, Clone, Default)]
pub struct ParsedArgs {
    flags: BTreeSet<String>,
    values: BTreeMap<String, String>,
    tails: BTreeMap<String, Vec<String>>,
    positionals: Vec<String>,
}

impl ParsedArgs {
    /// Whether the boolean flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.contains(name)
    }

    /// The value of a `--flag VALUE` pair, if given.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// A greedy tail's collected values (empty if the flag was absent).
    pub fn tail(&self, name: &str) -> &[String] {
        self.tails.get(name).map_or(&[], Vec::as_slice)
    }

    /// Free (non-flag) arguments, in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// Parses a `--flag VALUE` through `FromStr`, with a uniform error.
    pub fn parse_value<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.value(name) {
            None => Ok(None),
            Some(s) => s
                .parse()
                .map(Some)
                .map_err(|_| format!("bad {name} value {s:?}")),
        }
    }
}

/// Parses `raw` against `spec`. Unknown `--flags` are errors; anything
/// not starting with `--` is a positional.
pub fn parse_args(
    raw: impl IntoIterator<Item = String>,
    spec: &[ArgSpec],
) -> Result<ParsedArgs, String> {
    let mut out = ParsedArgs::default();
    let mut it = raw.into_iter();
    while let Some(arg) = it.next() {
        let Some(s) = spec.iter().find(|s| s.name == arg) else {
            if arg.starts_with("--") {
                return Err(format!("unknown argument {arg:?}"));
            }
            out.positionals.push(arg);
            continue;
        };
        match s.kind {
            ArgKind::Flag => {
                out.flags.insert(s.name.to_string());
            }
            ArgKind::Value => {
                let v = it.next().ok_or_else(|| format!("{arg} needs a value"))?;
                out.values.insert(s.name.to_string(), v);
            }
            ArgKind::Rest => {
                let first = it
                    .next()
                    .ok_or_else(|| format!("{arg} needs at least one value"))?;
                let tail = out.tails.entry(s.name.to_string()).or_default();
                tail.push(first);
                tail.extend(it.by_ref());
            }
        }
    }
    Ok(out)
}

/// Applies a `--strategy` name to a [`CheckConfigBuilder`] — the one
/// copy of the strategy-name table (aliases included) the CLIs share.
pub fn apply_strategy(
    builder: CheckConfigBuilder,
    name: &str,
) -> Result<CheckConfigBuilder, String> {
    Ok(match name {
        "exhaustive" => builder.strategy(Exhaustive),
        "dpor" | "sleep-set-dpor" => builder.strategy(SleepSetDpor),
        "coverage" | "coverage-guided" => builder.strategy(CoverageGuided),
        other => {
            return Err(format!(
                "unknown strategy {other:?} (exhaustive|dpor|coverage)"
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> Vec<ArgSpec> {
        vec![
            flag("--faults"),
            value("--telemetry"),
            value("--workers"),
            rest("--merge"),
        ]
    }

    fn parse(args: &[&str]) -> Result<ParsedArgs, String> {
        parse_args(args.iter().map(|s| s.to_string()), &spec())
    }

    #[test]
    fn flags_values_tails_and_positionals_parse() {
        let a = parse(&["kv/", "--faults", "--telemetry", "t.jsonl", "8"]).unwrap();
        assert!(a.flag("--faults"));
        assert_eq!(a.value("--telemetry"), Some("t.jsonl"));
        assert_eq!(a.positionals(), ["kv/", "8"]);
        assert_eq!(a.parse_value::<u64>("--workers").unwrap(), None);
    }

    #[test]
    fn rest_consumes_everything_after_it() {
        let a = parse(&["--merge", "a.json", "b.json", "--faults"]).unwrap();
        assert_eq!(a.tail("--merge"), ["a.json", "b.json", "--faults"]);
        assert!(!a.flag("--faults"), "consumed by the tail, not parsed");
    }

    #[test]
    fn errors_are_uniform() {
        assert!(parse(&["--unknown"]).unwrap_err().contains("--unknown"));
        assert!(parse(&["--telemetry"])
            .unwrap_err()
            .contains("needs a value"));
        let a = parse(&["--workers", "x"]).unwrap();
        assert!(a.parse_value::<usize>("--workers").is_err());
    }

    #[test]
    fn strategy_table_accepts_aliases_and_rejects_unknowns() {
        use perennial_checker::CheckConfig;
        for name in [
            "exhaustive",
            "dpor",
            "sleep-set-dpor",
            "coverage",
            "coverage-guided",
        ] {
            assert!(
                apply_strategy(CheckConfig::builder(), name).is_ok(),
                "{name}"
            );
        }
        assert!(apply_strategy(CheckConfig::builder(), "nope").is_err());
    }
}
