//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (§9) from this reproduction.
//!
//! Usage:
//!
//! ```text
//! cargo run -p perennial-bench --release --bin harness -- [all|table1|table2|table3|table4|fig11] [--json FILE]
//! ```

use perennial_bench::ablation::{render_ablation, run_ablation};
use perennial_bench::fig11::{run_fig11, Fig11Config};
use perennial_bench::loc::{table2_rows, table3_rows, table4_rows};
use perennial_bench::tables::{
    render_check_reports, render_costs, render_fig11, render_loc_table, render_table1,
    run_pattern_checks,
};
use perennial_checker::{CheckConfig, Pass};

fn pattern_check_config() -> CheckConfig {
    CheckConfig::builder()
        .dfs_max_executions(300)
        .random_samples(10)
        .random_crash_samples(20)
        .without_passes([Pass::NestedCrash])
        .max_steps(200_000)
        .build()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut what: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| !a.starts_with("--"))
        .collect();
    if what.is_empty() || what.contains(&"all") {
        what = vec!["table1", "table2", "table3", "table4", "fig11", "ablation"];
    }
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let mut json = serde_json::Map::new();

    for item in what {
        match item {
            "table1" => {
                println!("{}", render_table1());
            }
            "table2" => {
                let rows = table2_rows();
                println!(
                    "{}",
                    render_loc_table("Table 2: Perennial and Goose lines of code", &rows)
                );
                json.insert("table2".into(), loc_json(&rows));
            }
            "table3" => {
                let rows = table3_rows();
                println!(
                    "{}",
                    render_loc_table("Table 3: lines of code per crash-safety pattern", &rows)
                );
                json.insert("table3_loc".into(), loc_json(&rows));
                println!("Checker statistics per pattern (the dynamic counterpart of the");
                println!("paper's \"we verified each pattern\"):\n");
                let reports = run_pattern_checks(&pattern_check_config());
                println!("{}", render_check_reports(&reports));
                let stats: Vec<serde_json::Value> = reports
                    .iter()
                    .map(|r| {
                        serde_json::json!({
                            "scenario": r.name,
                            "executions": r.executions,
                            "steps": r.total_steps,
                            "crashes": r.crashes_injected,
                            "crash_points": r.crash_points,
                            "helped_ops": r.helped_ops,
                            "passed": r.passed(),
                        })
                    })
                    .collect();
                json.insert("table3_checks".into(), serde_json::Value::Array(stats));
            }
            "table4" => {
                let rows = table4_rows();
                println!(
                    "{}",
                    render_loc_table("Table 4: Mailboat vs CMAIL lines of code", &rows)
                );
                json.insert("table4".into(), loc_json(&rows));
            }
            "ablation" => {
                let rows = run_ablation();
                println!("{}", render_ablation(&rows));
                let matrix: Vec<serde_json::Value> = rows
                    .iter()
                    .map(|r| {
                        serde_json::json!({
                            "mutant": r.name,
                            "caught": r.caught,
                        })
                    })
                    .collect();
                json.insert("ablation".into(), serde_json::Value::Array(matrix));
            }
            "fig11" => {
                let cfg = Fig11Config::default();
                let report = run_fig11(&cfg);
                println!("{}", render_fig11(&report));
                println!("{}", render_costs(&report));
                let series: Vec<serde_json::Value> = report
                    .series
                    .iter()
                    .map(|s| {
                        serde_json::json!({
                            "name": s.name,
                            "measured_1core_rps": s.measured_1core,
                            "simulated": s.points.iter().map(|(c, r)| {
                                serde_json::json!({"cores": c, "rps": r})
                            }).collect::<Vec<_>>(),
                        })
                    })
                    .collect();
                json.insert(
                    "fig11".into(),
                    serde_json::json!({
                        "series": series,
                        "cmail_overhead_iters": report.cmail_overhead_iters,
                    }),
                );
            }
            other => {
                eprintln!("unknown experiment: {other}");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = json_path {
        let value = serde_json::Value::Object(json);
        std::fs::write(&path, serde_json::to_string_pretty(&value).unwrap())
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("(machine-readable record written to {path})");
    }
}

fn loc_json(rows: &[perennial_bench::loc::LocRow]) -> serde_json::Value {
    serde_json::Value::Array(
        rows.iter()
            .map(|r| {
                serde_json::json!({
                    "component": r.component,
                    "paper": r.paper,
                    "ours": r.ours,
                    "note": r.note,
                })
            })
            .collect(),
    )
}
