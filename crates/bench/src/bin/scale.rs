//! Parallel-explorer scaling driver.
//!
//! Usage: `cargo run --release -p perennial-bench --bin scale -- \
//!           [scenario-name] [worker counts…]`
//!
//! Defaults to `patterns/wal` over pool sizes 1 2 4 8. The acceptance
//! target on an 8-core machine is ≥3x execs/sec at 8 workers vs 1.

use perennial_bench::scale::{render_scale, run_scale};
use perennial_checker::{CheckConfig, ScenarioSet};

fn registry() -> ScenarioSet {
    let mut set = ScenarioSet::new();
    set.extend(perennial_kv::scenarios());
    set.extend(repldisk::harness::scenarios());
    set.extend(mailboat::scenarios());
    set.extend(crash_patterns::scenarios());
    set
}

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "patterns/wal".to_string());
    let mut counts: Vec<usize> = args.filter_map(|a| a.parse().ok()).collect();
    if counts.is_empty() {
        counts = vec![1, 2, 4, 8];
    }

    let registry = registry();
    let Some(scenario) = registry.get(&name) else {
        eprintln!("unknown scenario {name:?}; registered names:");
        for n in registry.names() {
            eprintln!("  {n}");
        }
        std::process::exit(2);
    };

    // A deliberately heavy config: the nested crash sweep gives the pool
    // thousands of independent executions to chew on.
    let cfg = CheckConfig::builder()
        .dfs_max_executions(500)
        .random_samples(100)
        .random_crash_samples(200)
        .crash_sweep(true)
        .nested_crash_sweep(true)
        .max_steps(200_000)
        .build();

    println!(
        "(host reports {} available cores)\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let rows = run_scale(scenario, &cfg, &counts);
    print!("{}", render_scale(scenario.name(), &rows));
}
