//! Parallel-explorer scaling driver.
//!
//! Usage: `cargo run --release -p perennial-bench --bin scale -- \
//!           [scenario-name] [worker counts…] [--json FILE] \
//!           [--shard I/N] [--resume WAL] \
//!           [--baseline BENCH_scale.json [--diff]]`
//!
//! Defaults to `patterns/wal` over pool sizes 1 2 4 8, measuring two
//! passes per pool size: pure schedule exploration (crash sweeps) and
//! fault-sweep exploration (torn writes, transient I/O, disk/net fault
//! plans), plus the checkpoint/resume cost of writing and replaying
//! the telemetry WAL (`--resume` overrides the log path). `--shard I/N`
//! scopes the scaling series to one deterministic campaign slice
//! (DESIGN.md §13). `--json` writes a `BENCH_*.json`-style record with
//! every series, stamped with a schema version and an environment block
//! (rustc, crate version, workers, strategy). `--baseline FILE` diffs
//! this run against a committed record (rows matched by worker count,
//! so a 1/2-worker CI run can diff against a full 1/2/4/8 baseline);
//! with `--diff` the exit code is 1 when a regression is flagged. The
//! acceptance targets on an 8-core machine: ≥3x execs/sec at 8 workers
//! vs 1, and WAL overhead < 5% of a cold run.

use perennial_bench::args::{flag, parse_args, value};
use perennial_bench::perf::{diff_scale, render_diff, Thresholds, SCALE_SCHEMA_VERSION};
use perennial_bench::scale::{
    median_ratio, render_reduction, render_resume, render_scale, run_reduction, run_resume,
    run_scale, ReductionRow, ResumeRow, ScaleRow,
};
use perennial_checker::{parse_shard, CheckConfig, EnvStamp, Pass, ScenarioSet};

fn registry() -> ScenarioSet {
    let mut set = ScenarioSet::new();
    set.extend(perennial_kv::scenarios());
    set.extend(repldisk::harness::scenarios());
    set.extend(mailboat::scenarios());
    set.extend(crash_patterns::scenarios());
    set
}

fn mutant_registry() -> ScenarioSet {
    let mut set = ScenarioSet::new();
    set.extend(perennial_kv::mutant_scenarios());
    set.extend(repldisk::harness::mutant_scenarios());
    set.extend(mailboat::mutant_scenarios());
    set.extend(crash_patterns::mutant_scenarios());
    set
}

fn rows_json(rows: &[ScaleRow]) -> serde_json::Value {
    serde_json::Value::Array(
        rows.iter()
            .map(|r| {
                serde_json::json!({
                    "workers": r.workers,
                    "executions": r.executions,
                    "fault_plans": r.fault_plans,
                    "wall_time_s": r.wall_time.as_secs_f64(),
                    "execs_per_sec": r.execs_per_sec,
                    "speedup": r.speedup,
                    "ok": r.outcomes.ok,
                    "failures": r.outcomes.failures(),
                    "crash_points_exercised": r.coverage.crash_points_exercised,
                    "crash_points_enumerable": r.coverage.crash_points_enumerable,
                    "fault_plans_exercised": r.coverage.fault_plans_exercised(),
                    "fault_plans_enumerable": r.coverage.fault_plans_enumerable(),
                    "distinct_traces": r.coverage.distinct_traces,
                })
            })
            .collect(),
    )
}

fn reduction_json(rows: &[ReductionRow]) -> serde_json::Value {
    let cell = |c: &perennial_bench::scale::StrategyCell| {
        serde_json::json!({
            "executions": c.executions,
            "pruned": c.pruned,
            "coverage_guided": c.guided,
            "counterexample_pass": c.fingerprint.as_ref().map(|(p, _)| p.clone()),
            "trace_fingerprint": c.fingerprint.as_ref().map(|(_, fp)| *fp),
        })
    };
    serde_json::json!({
        "mutants": rows.iter().map(|r| serde_json::json!({
            "scenario": r.scenario,
            "exhaustive": cell(&r.exhaustive),
            "sleep_set_dpor": cell(&r.dpor),
            "coverage_guided": cell(&r.coverage),
            "dpor_ratio": r.dpor_ratio(),
            "coverage_ratio": r.coverage_ratio(),
            "fingerprints_agree": r.fingerprints_agree(),
        })).collect::<Vec<_>>(),
        "median_dpor_ratio": median_ratio(rows, ReductionRow::dpor_ratio),
        "median_coverage_ratio": median_ratio(rows, ReductionRow::coverage_ratio),
    })
}

fn resume_json(row: &ResumeRow) -> serde_json::Value {
    serde_json::json!({
        "executions": row.executions,
        "cold_wall_time_s": row.cold.as_secs_f64(),
        "walled_wall_time_s": row.walled.as_secs_f64(),
        "resumed_wall_time_s": row.resumed.as_secs_f64(),
        "replayed": row.replayed,
        "wal_overhead": row.overhead(),
        "resume_speedup": row.resume_speedup(),
        "fingerprints_match": row.fingerprints_match,
    })
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

fn main() {
    let spec = [
        value("--json"),
        value("--shard"),
        value("--resume"),
        value("--baseline"),
        flag("--diff"),
    ];
    let args = parse_args(std::env::args().skip(1), &spec).unwrap_or_else(|e| die(&e));
    let json_path = args.value("--json").map(String::from);
    // `--shard I/N`: measure one deterministic slice of the job space
    // (applied to both scaling configs; the reduction table stays
    // unsharded — executions-to-counterexample is a whole-space metric).
    let shard = args
        .value("--shard")
        .map(|s| parse_shard(s).unwrap_or_else(|e| die(&e)));
    // `--resume PATH`: use PATH as the WAL for the checkpoint/resume
    // cost measurement (default: a file in the system temp dir).
    let resume_wal = args.value("--resume").map(std::path::PathBuf::from);
    let baseline_path = args.value("--baseline").map(String::from);
    let strict_diff = args.flag("--diff");
    if strict_diff && baseline_path.is_none() {
        die("--diff needs --baseline FILE");
    }
    let mut positional = args.positionals().iter();
    let name = positional
        .next()
        .cloned()
        .unwrap_or_else(|| "patterns/wal".to_string());
    let mut counts: Vec<usize> = positional.filter_map(|a| a.parse().ok()).collect();
    if counts.is_empty() {
        counts = vec![1, 2, 4, 8];
    }

    let registry = registry();
    let Some(scenario) = registry.get(&name) else {
        eprintln!("unknown scenario {name:?}; registered names:");
        for n in registry.names() {
            eprintln!("  {n}");
        }
        std::process::exit(2);
    };

    // A deliberately heavy config: the nested crash sweep gives the pool
    // thousands of independent executions to chew on.
    let cfg = CheckConfig::builder()
        .dfs_max_executions(500)
        .random_samples(100)
        .random_crash_samples(200)
        .max_steps(200_000)
        .shard_opt(shard)
        .build();
    // The fault pass swaps the nested sweep for the fault sweeps, so the
    // execs/sec figure tracks fault-plan exploration throughput.
    let fault_cfg = CheckConfig::builder()
        .dfs_max_executions(500)
        .random_samples(100)
        .random_crash_samples(200)
        .without_passes([Pass::NestedCrash])
        .with_passes([Pass::DiskFault, Pass::TornWrite, Pass::NetFault])
        .max_steps(200_000)
        .shard_opt(shard)
        .build();

    println!(
        "(host reports {} available cores)\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let rows = run_scale(scenario, &cfg, &counts);
    print!("{}", render_scale(scenario.name(), &rows));
    let fault_rows = run_scale(scenario, &fault_cfg, &counts);
    println!();
    print!(
        "{}",
        render_scale(&format!("{} (fault sweeps)", scenario.name()), &fault_rows)
    );

    // Strategy reduction: executions-to-counterexample on every
    // registered mutant, exhaustive vs DPOR vs coverage-guided. All
    // three strategies get the same generous schedule budget (the
    // passes run in rank order, so a crash- or fault-swept bug pays
    // for the whole schedule phase first); the reduced strategies must
    // reach an equivalent counterexample spending far less of it. The
    // fault sweeps are on because three registered mutants are only
    // reachable through them.
    let reduction_cfg = CheckConfig::builder()
        .dfs_max_executions(2000)
        .random_samples(500)
        .random_crash_samples(100)
        .without_passes([Pass::NestedCrash])
        .with_passes([Pass::DiskFault, Pass::TornWrite, Pass::NetFault])
        .max_steps(200_000)
        .workers(1)
        .build();
    let reduction = run_reduction(&mutant_registry(), &reduction_cfg);
    println!();
    print!("{}", render_reduction(&reduction));

    // Checkpoint/resume cost on the fault config (the heavier per-exec
    // telemetry records). Acceptance: WAL overhead < 5% of a cold run.
    let wal = resume_wal.unwrap_or_else(|| {
        std::env::temp_dir().join(format!(
            "perennial-scale-resume-{}.jsonl",
            std::process::id()
        ))
    });
    let resume = run_resume(scenario, &fault_cfg, &wal, 3);
    println!();
    print!("{}", render_resume(scenario.name(), &resume));

    // The environment stamp records the conditions the numbers were
    // measured under; the differ warns when they changed.
    let env = EnvStamp::current(
        counts.iter().copied().max().unwrap_or(1) as u64,
        "exhaustive",
    );
    let record = serde_json::json!({
        "schema_version": SCALE_SCHEMA_VERSION,
        "scenario": scenario.name(),
        "env": env.to_json(),
        "schedule_exploration": rows_json(&rows),
        "fault_exploration": rows_json(&fault_rows),
        "strategy_reduction": reduction_json(&reduction),
        "resume_overhead": resume_json(&resume),
    });
    if let Some(path) = &json_path {
        std::fs::write(path, serde_json::to_string_pretty(&record).unwrap())
            .unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("\n(machine-readable record written to {path})");
    }

    if let Some(path) = baseline_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| die(&format!("reading baseline {path}: {e}")));
        let baseline = serde_json::from_str(&text)
            .unwrap_or_else(|e| die(&format!("parsing baseline {path}: {e}")));
        let diff = diff_scale(&baseline, &record, &Thresholds::default())
            .unwrap_or_else(|e| die(&format!("diffing against {path}: {e}")));
        println!();
        print!("{}", render_diff(&diff));
        if strict_diff && diff.regressed() {
            std::process::exit(1);
        }
    }
}
