//! Campaign driver: sweep every registered scenario and mutant under
//! one partitioned, resumable configuration.
//!
//! ```text
//! scan [--filter SUBSTR] [--shard I/N] [--wal DIR] [--resume]
//!      [--out FILE] [--faults] [--strategy exhaustive|dpor|coverage]
//!      [--workers N] [--budget N] [--seed N]
//!      [--trace-out DIR] [--explain] [--profile FILE]
//!      [--shrink] [--emit-test DIR]
//! scan --merge FILE... [--out FILE]
//! scan --dashboard PATH...
//! ```
//!
//! A campaign runs scenarios × mutants × passes. `--shard I/N` hands
//! this process the I-th deterministic slice of every scenario's job
//! space; shard report files (`--out`) from all N slices recombine with
//! `--merge` into exactly the unsharded campaign — same fingerprint.
//! `--wal DIR` writes one JSONL write-ahead log per scenario; with
//! `--resume`, completed executions found in those logs are replayed
//! instead of re-run, so a SIGKILLed campaign picks up where it died
//! and still lands on the same fingerprint.
//!
//! Failing scenarios carry a causal execution trace (DESIGN.md §14):
//! `--explain` prints each counterexample's per-thread explain timeline
//! between `=== explain NAME ===` / `=== end explain ===` markers (pure
//! function of the trace — identical across worker counts, which CI
//! diffs), and `--trace-out DIR` writes one Chrome trace-event JSON per
//! failing scenario, loadable at <https://ui.perfetto.dev>.
//! `--dashboard PATH...` is an offline mode like `--merge`: it folds
//! telemetry/WAL JSONL streams (files, or directories of `*.jsonl`)
//! into one merged campaign dashboard and exits; with no data yet it
//! prints `no campaign data` and exits 0 (not a usage error).
//! `--profile FILE` turns on the checker's cost profiler (DESIGN.md
//! §15): each scenario prints a hotspot view (per-pass cost, contended
//! resources, strategy introspection, worker utilization) and FILE gets
//! a JSON array of `{scenario, profile}` records. Profiling is a pure
//! side channel — fingerprints and WAL contents are unchanged, and all
//! counts are worker-count independent.
//!
//! `--shrink` delta-debugs each winning counterexample down to a
//! minimal reproducer before it is reported (DESIGN.md §16) — the
//! summary, explain timeline, and Chrome trace all describe the
//! *minimized* schedule. Unlike profiling this is not a pure side
//! channel: the counterexample in the report (and hence the campaign
//! fingerprint) changes, deterministically. `--emit-test DIR` (implies
//! `--shrink`) additionally writes one self-contained replay test
//! (`replay_<scenario>.rs`) per failing scenario into DIR; drop it in
//! `tests/` and `cargo test --test replay_<scenario>` re-derives the
//! failure deterministically.
//!
//! The final line is always `campaign fingerprint: 0x…` — a hash of the
//! per-scenario report fingerprints (timing and worker-count excluded),
//! which is the equality oracle CI uses for kill/resume and shard/merge.
//! Exit status: 0 when the campaign completed (mutant FAILs are
//! expected findings, not campaign errors), 1 when a run degraded to an
//! INCOMPLETE partial report, 2 on usage errors.

use perennial_bench::args::{apply_strategy, flag, parse_args, rest, value};
use perennial_checker::{
    chrome_trace_json, emit_test, merge_reports, parse_shard, profile_to_json, render_dashboard,
    render_explain, render_profile, report_fingerprint, report_from_json, report_to_json,
    test_file_name, trace_fingerprint, CheckConfig, CheckReport, Dashboard, Pass, ScenarioSet,
};
use std::path::{Path, PathBuf};

fn registry() -> ScenarioSet {
    let mut set = ScenarioSet::new();
    set.extend(perennial_kv::scenarios());
    set.extend(repldisk::harness::scenarios());
    set.extend(mailboat::scenarios());
    set.extend(crash_patterns::scenarios());
    set.extend(perennial_kv::mutant_scenarios());
    set.extend(repldisk::harness::mutant_scenarios());
    set.extend(mailboat::mutant_scenarios());
    set.extend(crash_patterns::mutant_scenarios());
    set
}

/// One WAL file per scenario: `"kv/cross-bucket"` → `kv__cross-bucket.jsonl`.
fn wal_path(dir: &Path, scenario: &str) -> PathBuf {
    dir.join(format!("{}.jsonl", scenario.replace('/', "__")))
}

/// The campaign-level equality oracle: fold the per-scenario report
/// fingerprints (already timing/worker/shard-insensitive) in name order.
fn campaign_fingerprint(reports: &[CheckReport]) -> u64 {
    let mut lines: Vec<String> = reports
        .iter()
        .map(|r| format!("{}={:#018x}", r.name, report_fingerprint(r)))
        .collect();
    lines.sort();
    trace_fingerprint(&lines.join("\n"))
}

fn write_out(path: &str, shard: Option<(u32, u32)>, reports: &[CheckReport]) {
    let mut root = serde_json::Map::new();
    root.insert(
        "shard".into(),
        match shard {
            Some((i, n)) => serde_json::Value::String(format!("{i}/{n}")),
            None => serde_json::Value::Null,
        },
    );
    root.insert(
        "campaign_fingerprint".into(),
        serde_json::Value::String(format!("{:#018x}", campaign_fingerprint(reports))),
    );
    root.insert(
        "scenarios".into(),
        serde_json::Value::Array(reports.iter().map(report_to_json).collect()),
    );
    let text = serde_json::to_string_pretty(&serde_json::Value::Object(root)).unwrap();
    std::fs::write(path, text).unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
    println!("(campaign report written to {path})");
}

fn read_out(path: &str) -> Vec<CheckReport> {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("reading {path}: {e}")));
    let v = serde_json::from_str(&text).unwrap_or_else(|e| die(&format!("parsing {path}: {e}")));
    let serde_json::Value::Object(map) = v else {
        die(&format!("{path}: not a campaign report object"));
    };
    let Some(serde_json::Value::Array(items)) = map.get("scenarios") else {
        die(&format!("{path}: no \"scenarios\" array"));
    };
    items
        .iter()
        .map(|item| {
            report_from_json(item).unwrap_or_else(|e| die(&format!("{path}: bad report: {e}")))
        })
        .collect()
}

/// Merge mode: one campaign report file per shard in, the recombined
/// whole-campaign report out.
fn merge_mode(files: &[String], out: Option<&str>) -> i32 {
    let mut by_name: std::collections::BTreeMap<String, Vec<CheckReport>> = Default::default();
    for f in files {
        for r in read_out(f) {
            by_name.entry(r.name.clone()).or_default().push(r);
        }
    }
    let mut merged = Vec::new();
    for (name, shards) in by_name {
        match merge_reports(shards) {
            Ok(r) => {
                println!("{}", r.summary());
                merged.push(r);
            }
            Err(e) => die(&format!("merging {name}: {e}")),
        }
    }
    let incomplete = merged.iter().any(|r| r.is_incomplete());
    if let Some(path) = out {
        write_out(path, None, &merged);
    }
    println!(
        "campaign fingerprint: {:#018x}",
        campaign_fingerprint(&merged)
    );
    i32::from(incomplete)
}

/// Dashboard mode: fold telemetry/WAL JSONL streams into one merged
/// campaign dashboard. Each path is a `.jsonl` file or a directory
/// scanned for them; the scenario key is the file stem with the
/// `wal_path` mangling undone, so mutant WALs (whose `run_end` records
/// carry the shared human name) stay distinct.
fn dashboard_mode(paths: &[String]) -> i32 {
    let mut files: Vec<PathBuf> = Vec::new();
    for p in paths {
        let path = PathBuf::from(p);
        if path.is_dir() {
            let mut found: Vec<PathBuf> = std::fs::read_dir(&path)
                .unwrap_or_else(|e| die(&format!("reading {path:?}: {e}")))
                .filter_map(|entry| entry.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|ext| ext == "jsonl"))
                .collect();
            found.sort();
            files.extend(found);
        } else {
            files.push(path);
        }
    }
    // An empty or not-yet-populated WAL directory is not a usage error
    // — a fresh campaign simply has nothing to show yet. Say so and
    // exit cleanly so scripted dashboards don't fail before first data.
    if files.is_empty() {
        println!("no campaign data: no .jsonl streams under the given paths");
        return 0;
    }
    let mut dash = Dashboard::default();
    for file in &files {
        let text = std::fs::read_to_string(file)
            .unwrap_or_else(|e| die(&format!("reading {file:?}: {e}")));
        let scenario = file
            .file_stem()
            .and_then(|s| s.to_str())
            .map(|s| s.replace("__", "/"));
        dash.ingest(scenario.as_deref(), &text);
    }
    if dash.scenarios.is_empty() {
        println!("no campaign data: the streams held no campaign records");
        return 0;
    }
    print!("{}", render_dashboard(&dash));
    0
}

/// `"kv/cross-bucket"` → `DIR/kv__cross-bucket.trace.json`.
fn trace_path(dir: &Path, scenario: &str) -> PathBuf {
    dir.join(format!("{}.trace.json", scenario.replace('/', "__")))
}

fn die(msg: &str) -> ! {
    eprintln!("scan: {msg}");
    std::process::exit(2);
}

fn main() {
    let spec = [
        value("--filter"),
        value("--shard"),
        value("--wal"),
        flag("--resume"),
        value("--out"),
        flag("--faults"),
        value("--strategy"),
        value("--workers"),
        value("--budget"),
        value("--seed"),
        rest("--merge"),
        rest("--dashboard"),
        value("--trace-out"),
        flag("--explain"),
        value("--profile"),
        flag("--shrink"),
        value("--emit-test"),
    ];
    let args = parse_args(std::env::args().skip(1), &spec).unwrap_or_else(|e| die(&e));
    if let [stray, ..] = args.positionals() {
        die(&format!(
            "unexpected argument {stray:?} (see the doc comment)"
        ));
    }
    let filter = args.value("--filter");
    let shard = args
        .value("--shard")
        .map(|s| parse_shard(s).unwrap_or_else(|e| die(&e)));
    let wal_dir = args.value("--wal").map(PathBuf::from);
    let resume = args.flag("--resume");
    let out = args.value("--out");
    let faults = args.flag("--faults");
    let strategy = args.value("--strategy").unwrap_or("exhaustive");
    let workers: usize = args // 0 = builder default
        .parse_value("--workers")
        .unwrap_or_else(|e| die(&e))
        .unwrap_or(0);
    let budget: u64 = args
        .parse_value("--budget")
        .unwrap_or_else(|e| die(&e))
        .unwrap_or(0);
    let seed: u64 = args
        .parse_value("--seed")
        .unwrap_or_else(|e| die(&e))
        .unwrap_or(7);
    let trace_out = args.value("--trace-out").map(PathBuf::from);
    let explain = args.flag("--explain");
    let profile_out = args.value("--profile");
    let emit_test_dir = args.value("--emit-test").map(PathBuf::from);
    let shrink = args.flag("--shrink") || emit_test_dir.is_some();

    if !args.tail("--merge").is_empty() {
        std::process::exit(merge_mode(args.tail("--merge"), out));
    }
    if !args.tail("--dashboard").is_empty() {
        std::process::exit(dashboard_mode(args.tail("--dashboard")));
    }
    if resume && wal_dir.is_none() {
        die("--resume needs --wal DIR (the logs to resume from)");
    }
    if let Some(dir) = &wal_dir {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| die(&format!("creating {dir:?}: {e}")));
    }
    if let Some(dir) = &trace_out {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| die(&format!("creating {dir:?}: {e}")));
    }
    if let Some(dir) = &emit_test_dir {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| die(&format!("creating {dir:?}: {e}")));
    }

    let registry = registry();
    let selected: Vec<_> = registry
        .iter()
        .filter(|s| filter.is_none_or(|f| s.name().contains(f)))
        .collect();
    if selected.is_empty() {
        die("no scenario matches the filter; run without --filter to sweep everything");
    }

    let mut reports = Vec::new();
    let mut profiles = Vec::new();
    for scenario in selected {
        let mut cfg = CheckConfig::builder()
            .seed(seed)
            .dfs_max_executions(300)
            .random_samples(10)
            .random_crash_samples(25)
            .max_steps(200_000)
            .shard_opt(shard)
            .keep_going(true)
            .profile(profile_out.is_some())
            .shrink(shrink);
        if faults {
            cfg = cfg.with_passes([Pass::DiskFault, Pass::TornWrite, Pass::NetFault]);
        }
        cfg = apply_strategy(cfg, strategy).unwrap_or_else(|e| die(&e));
        if workers > 0 {
            cfg = cfg.workers(workers);
        }
        if budget > 0 {
            cfg = cfg.exec_budget(budget);
        }
        if let Some(dir) = &wal_dir {
            let wal = wal_path(dir, scenario.name());
            cfg = cfg.telemetry_path(&wal);
            if resume {
                cfg = cfg.resume_from(&wal);
            }
        }
        let mut report = scenario.run(&cfg.build());
        // Reports carry the harness's human name, which mutants share
        // with their base scenario; campaign files key on the unique
        // registry name so shard merging can group correctly.
        report.name = scenario.name().to_string();
        println!("{}", report.summary());
        if let (Some(s), Some(cx)) = (&report.shrink, &report.counterexample) {
            println!(
                "(shrink: removed {} step(s) in {} round(s), {} re-runs; \
                 now {} grant(s) + {} crash point(s), faults {})",
                s.steps_removed,
                s.rounds,
                s.re_runs,
                cx.schedule_prefix.len(),
                cx.crash_points.len(),
                cx.faults.compact(),
            );
        }
        if let (Some(dir), Some(cx)) = (&emit_test_dir, &report.counterexample) {
            let path = dir.join(test_file_name(&report.name));
            let source = emit_test(&report.name, cx, 200_000);
            std::fs::write(&path, source)
                .unwrap_or_else(|e| die(&format!("writing {path:?}: {e}")));
            println!("(replay test written to {})", path.display());
        }
        if let Some(timeline) = report
            .counterexample
            .as_ref()
            .and_then(|cx| cx.timeline.as_ref())
        {
            if let Some(dir) = &trace_out {
                let path = trace_path(dir, &report.name);
                let json = chrome_trace_json(timeline, &report.name);
                let text = serde_json::to_string_pretty(&json).unwrap();
                std::fs::write(&path, text)
                    .unwrap_or_else(|e| die(&format!("writing {path:?}: {e}")));
                println!("(chrome trace written to {})", path.display());
            }
            if explain {
                println!("=== explain {} ===", report.name);
                print!("{}", render_explain(timeline));
                println!("=== end explain ===");
            }
        }
        if let Some(profile) = report.profile.take() {
            print!("{}", render_profile(&profile));
            let mut entry = serde_json::Map::new();
            entry.insert(
                "scenario".into(),
                serde_json::Value::String(report.name.clone()),
            );
            entry.insert("profile".into(), profile_to_json(&profile));
            profiles.push(serde_json::Value::Object(entry));
        }
        reports.push(report);
    }

    let incomplete = reports.iter().any(|r| r.is_incomplete());
    let replayed: u64 = reports.iter().map(|r| r.replayed).sum();
    if replayed > 0 {
        println!("(resume: {replayed} executions replayed from the WAL)");
    }
    if let Some(path) = profile_out {
        let text = serde_json::to_string_pretty(&serde_json::Value::Array(profiles)).unwrap();
        std::fs::write(path, text).unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        println!("(profile written to {path})");
    }
    if let Some(path) = out {
        write_out(path, shard, &reports);
    }
    println!(
        "campaign fingerprint: {:#018x}",
        campaign_fingerprint(&reports)
    );
    std::process::exit(i32::from(incomplete));
}
