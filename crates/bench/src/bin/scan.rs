//! Campaign driver: sweep every registered scenario and mutant under
//! one partitioned, resumable configuration.
//!
//! ```text
//! scan [--filter SUBSTR] [--shard I/N] [--wal DIR] [--resume]
//!      [--out FILE] [--faults] [--strategy exhaustive|dpor|coverage]
//!      [--workers N] [--budget N] [--seed N]
//!      [--trace-out DIR] [--explain]
//! scan --merge FILE... [--out FILE]
//! scan --dashboard PATH...
//! ```
//!
//! A campaign runs scenarios × mutants × passes. `--shard I/N` hands
//! this process the I-th deterministic slice of every scenario's job
//! space; shard report files (`--out`) from all N slices recombine with
//! `--merge` into exactly the unsharded campaign — same fingerprint.
//! `--wal DIR` writes one JSONL write-ahead log per scenario; with
//! `--resume`, completed executions found in those logs are replayed
//! instead of re-run, so a SIGKILLed campaign picks up where it died
//! and still lands on the same fingerprint.
//!
//! Failing scenarios carry a causal execution trace (DESIGN.md §14):
//! `--explain` prints each counterexample's per-thread explain timeline
//! between `=== explain NAME ===` / `=== end explain ===` markers (pure
//! function of the trace — identical across worker counts, which CI
//! diffs), and `--trace-out DIR` writes one Chrome trace-event JSON per
//! failing scenario, loadable at <https://ui.perfetto.dev>.
//! `--dashboard PATH...` is an offline mode like `--merge`: it folds
//! telemetry/WAL JSONL streams (files, or directories of `*.jsonl`)
//! into one merged campaign dashboard and exits.
//!
//! The final line is always `campaign fingerprint: 0x…` — a hash of the
//! per-scenario report fingerprints (timing and worker-count excluded),
//! which is the equality oracle CI uses for kill/resume and shard/merge.
//! Exit status: 0 when the campaign completed (mutant FAILs are
//! expected findings, not campaign errors), 1 when a run degraded to an
//! INCOMPLETE partial report, 2 on usage errors.

use perennial_checker::{
    chrome_trace_json, merge_reports, parse_shard, render_dashboard, render_explain,
    report_fingerprint, report_from_json, report_to_json, trace_fingerprint, CheckConfig,
    CheckReport, CoverageGuided, Dashboard, Pass, ScenarioSet, SleepSetDpor,
};
use std::path::{Path, PathBuf};

fn registry() -> ScenarioSet {
    let mut set = ScenarioSet::new();
    set.extend(perennial_kv::scenarios());
    set.extend(repldisk::harness::scenarios());
    set.extend(mailboat::scenarios());
    set.extend(crash_patterns::scenarios());
    set.extend(perennial_kv::mutant_scenarios());
    set.extend(repldisk::harness::mutant_scenarios());
    set.extend(mailboat::mutant_scenarios());
    set.extend(crash_patterns::mutant_scenarios());
    set
}

/// One WAL file per scenario: `"kv/cross-bucket"` → `kv__cross-bucket.jsonl`.
fn wal_path(dir: &Path, scenario: &str) -> PathBuf {
    dir.join(format!("{}.jsonl", scenario.replace('/', "__")))
}

/// The campaign-level equality oracle: fold the per-scenario report
/// fingerprints (already timing/worker/shard-insensitive) in name order.
fn campaign_fingerprint(reports: &[CheckReport]) -> u64 {
    let mut lines: Vec<String> = reports
        .iter()
        .map(|r| format!("{}={:#018x}", r.name, report_fingerprint(r)))
        .collect();
    lines.sort();
    trace_fingerprint(&lines.join("\n"))
}

fn write_out(path: &str, shard: Option<(u32, u32)>, reports: &[CheckReport]) {
    let mut root = serde_json::Map::new();
    root.insert(
        "shard".into(),
        match shard {
            Some((i, n)) => serde_json::Value::String(format!("{i}/{n}")),
            None => serde_json::Value::Null,
        },
    );
    root.insert(
        "campaign_fingerprint".into(),
        serde_json::Value::String(format!("{:#018x}", campaign_fingerprint(reports))),
    );
    root.insert(
        "scenarios".into(),
        serde_json::Value::Array(reports.iter().map(report_to_json).collect()),
    );
    let text = serde_json::to_string_pretty(&serde_json::Value::Object(root)).unwrap();
    std::fs::write(path, text).unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
    println!("(campaign report written to {path})");
}

fn read_out(path: &str) -> Vec<CheckReport> {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("reading {path}: {e}")));
    let v = serde_json::from_str(&text).unwrap_or_else(|e| die(&format!("parsing {path}: {e}")));
    let serde_json::Value::Object(map) = v else {
        die(&format!("{path}: not a campaign report object"));
    };
    let Some(serde_json::Value::Array(items)) = map.get("scenarios") else {
        die(&format!("{path}: no \"scenarios\" array"));
    };
    items
        .iter()
        .map(|item| {
            report_from_json(item).unwrap_or_else(|e| die(&format!("{path}: bad report: {e}")))
        })
        .collect()
}

/// Merge mode: one campaign report file per shard in, the recombined
/// whole-campaign report out.
fn merge_mode(files: &[String], out: Option<&str>) -> i32 {
    let mut by_name: std::collections::BTreeMap<String, Vec<CheckReport>> = Default::default();
    for f in files {
        for r in read_out(f) {
            by_name.entry(r.name.clone()).or_default().push(r);
        }
    }
    let mut merged = Vec::new();
    for (name, shards) in by_name {
        match merge_reports(shards) {
            Ok(r) => {
                println!("{}", r.summary());
                merged.push(r);
            }
            Err(e) => die(&format!("merging {name}: {e}")),
        }
    }
    let incomplete = merged.iter().any(|r| r.is_incomplete());
    if let Some(path) = out {
        write_out(path, None, &merged);
    }
    println!(
        "campaign fingerprint: {:#018x}",
        campaign_fingerprint(&merged)
    );
    i32::from(incomplete)
}

/// Dashboard mode: fold telemetry/WAL JSONL streams into one merged
/// campaign dashboard. Each path is a `.jsonl` file or a directory
/// scanned for them; the scenario key is the file stem with the
/// `wal_path` mangling undone, so mutant WALs (whose `run_end` records
/// carry the shared human name) stay distinct.
fn dashboard_mode(paths: &[String]) -> i32 {
    let mut files: Vec<PathBuf> = Vec::new();
    for p in paths {
        let path = PathBuf::from(p);
        if path.is_dir() {
            let mut found: Vec<PathBuf> = std::fs::read_dir(&path)
                .unwrap_or_else(|e| die(&format!("reading {path:?}: {e}")))
                .filter_map(|entry| entry.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|ext| ext == "jsonl"))
                .collect();
            found.sort();
            files.extend(found);
        } else {
            files.push(path);
        }
    }
    if files.is_empty() {
        die("--dashboard found no .jsonl streams");
    }
    let mut dash = Dashboard::default();
    for file in &files {
        let text = std::fs::read_to_string(file)
            .unwrap_or_else(|e| die(&format!("reading {file:?}: {e}")));
        let scenario = file
            .file_stem()
            .and_then(|s| s.to_str())
            .map(|s| s.replace("__", "/"));
        dash.ingest(scenario.as_deref(), &text);
    }
    print!("{}", render_dashboard(&dash));
    0
}

/// `"kv/cross-bucket"` → `DIR/kv__cross-bucket.trace.json`.
fn trace_path(dir: &Path, scenario: &str) -> PathBuf {
    dir.join(format!("{}.trace.json", scenario.replace('/', "__")))
}

fn die(msg: &str) -> ! {
    eprintln!("scan: {msg}");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut filter = None;
    let mut shard = None;
    let mut wal_dir: Option<PathBuf> = None;
    let mut resume = false;
    let mut out = None;
    let mut faults = false;
    let mut strategy = "exhaustive".to_string();
    let mut workers = 0usize; // 0 = builder default
    let mut budget = 0u64;
    let mut seed = 7u64;
    let mut merge_files: Vec<String> = Vec::new();
    let mut dashboard_paths: Vec<String> = Vec::new();
    let mut trace_out: Option<PathBuf> = None;
    let mut explain = false;

    fn val(it: &mut impl Iterator<Item = String>, flag: &str) -> String {
        it.next()
            .unwrap_or_else(|| die(&format!("{flag} needs a value")))
    }
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--filter" => filter = Some(val(&mut it, "--filter")),
            "--shard" => {
                shard = Some(parse_shard(&val(&mut it, "--shard")).unwrap_or_else(|e| die(&e)));
            }
            "--wal" => wal_dir = Some(PathBuf::from(val(&mut it, "--wal"))),
            "--resume" => resume = true,
            "--out" => out = Some(val(&mut it, "--out")),
            "--faults" => faults = true,
            "--strategy" => strategy = val(&mut it, "--strategy"),
            "--workers" => {
                workers = val(&mut it, "--workers")
                    .parse()
                    .unwrap_or_else(|_| die("bad --workers"));
            }
            "--budget" => {
                budget = val(&mut it, "--budget")
                    .parse()
                    .unwrap_or_else(|_| die("bad --budget"));
            }
            "--seed" => {
                seed = val(&mut it, "--seed")
                    .parse()
                    .unwrap_or_else(|_| die("bad --seed"));
            }
            "--merge" => {
                merge_files.push(val(&mut it, "--merge"));
                merge_files.extend(it.by_ref());
            }
            "--dashboard" => {
                dashboard_paths.push(val(&mut it, "--dashboard"));
                dashboard_paths.extend(it.by_ref());
            }
            "--trace-out" => trace_out = Some(PathBuf::from(val(&mut it, "--trace-out"))),
            "--explain" => explain = true,
            other => die(&format!("unknown argument {other:?} (see the doc comment)")),
        }
    }
    if !merge_files.is_empty() {
        std::process::exit(merge_mode(&merge_files, out.as_deref()));
    }
    if !dashboard_paths.is_empty() {
        std::process::exit(dashboard_mode(&dashboard_paths));
    }
    if resume && wal_dir.is_none() {
        die("--resume needs --wal DIR (the logs to resume from)");
    }
    if let Some(dir) = &wal_dir {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| die(&format!("creating {dir:?}: {e}")));
    }
    if let Some(dir) = &trace_out {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| die(&format!("creating {dir:?}: {e}")));
    }

    let registry = registry();
    let selected: Vec<_> = registry
        .iter()
        .filter(|s| filter.as_deref().is_none_or(|f| s.name().contains(f)))
        .collect();
    if selected.is_empty() {
        die("no scenario matches the filter; run without --filter to sweep everything");
    }

    let mut reports = Vec::new();
    for scenario in selected {
        let mut cfg = CheckConfig::builder()
            .seed(seed)
            .dfs_max_executions(300)
            .random_samples(10)
            .random_crash_samples(25)
            .max_steps(200_000)
            .shard_opt(shard)
            .keep_going(true);
        if faults {
            cfg = cfg.with_passes([Pass::DiskFault, Pass::TornWrite, Pass::NetFault]);
        }
        match strategy.as_str() {
            "exhaustive" => {}
            "dpor" => cfg = cfg.strategy(SleepSetDpor),
            "coverage" => cfg = cfg.strategy(CoverageGuided),
            other => die(&format!("unknown strategy {other:?}")),
        }
        if workers > 0 {
            cfg = cfg.workers(workers);
        }
        if budget > 0 {
            cfg = cfg.exec_budget(budget);
        }
        if let Some(dir) = &wal_dir {
            let wal = wal_path(dir, scenario.name());
            cfg = cfg.telemetry_path(&wal);
            if resume {
                cfg = cfg.resume_from(&wal);
            }
        }
        let mut report = scenario.run(&cfg.build());
        // Reports carry the harness's human name, which mutants share
        // with their base scenario; campaign files key on the unique
        // registry name so shard merging can group correctly.
        report.name = scenario.name().to_string();
        println!("{}", report.summary());
        if let Some(timeline) = report
            .counterexample
            .as_ref()
            .and_then(|cx| cx.timeline.as_ref())
        {
            if let Some(dir) = &trace_out {
                let path = trace_path(dir, &report.name);
                let json = chrome_trace_json(timeline, &report.name);
                let text = serde_json::to_string_pretty(&json).unwrap();
                std::fs::write(&path, text)
                    .unwrap_or_else(|e| die(&format!("writing {path:?}: {e}")));
                println!("(chrome trace written to {})", path.display());
            }
            if explain {
                println!("=== explain {} ===", report.name);
                print!("{}", render_explain(timeline));
                println!("=== end explain ===");
            }
        }
        reports.push(report);
    }

    let incomplete = reports.iter().any(|r| r.is_incomplete());
    let replayed: u64 = reports.iter().map(|r| r.replayed).sum();
    if replayed > 0 {
        println!("(resume: {replayed} executions replayed from the WAL)");
    }
    if let Some(path) = &out {
        write_out(path, shard, &reports);
    }
    println!(
        "campaign fingerprint: {:#018x}",
        campaign_fingerprint(&reports)
    );
    std::process::exit(i32::from(incomplete));
}
