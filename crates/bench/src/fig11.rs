//! Figure 11: Mailboat / GoMail / CMAIL throughput vs number of cores.
//!
//! Two-part reproduction (DESIGN.md §1, hardware substitution):
//!
//! 1. **Measured**: the real closed-loop workload (§9.3: equal mix of
//!    deliveries and pickups, 100 users uniform, in-memory FS) runs
//!    single-threaded on the host, giving true request costs and the
//!    single-core ordering/ratios the paper reports (Mailboat ≈ 1.81×
//!    GoMail ≈ 1.34× CMAIL).
//! 2. **Simulated**: each server's request is decomposed into
//!    parallel/locked segments from measured per-operation costs, and
//!    the [`crate::sim`] discrete-event simulator produces the 1–12-core
//!    curves. Contention structure is what differs across servers:
//!    Mailboat serializes on per-user locks and directory mutations;
//!    GoMail additionally funnels every pickup through the global
//!    lock-file directory; CMAIL adds runtime overhead to every request.
//!
//! CMAIL's extraction overhead is *self-calibrated*: the harness measures
//! GoMail's request cost and the burn loop's ns/iteration, then sets the
//! iteration count so the single-core ratio is the paper's 1.34×.

use crate::sim::{simulate, RequestProfile, Segment, SimResult};
use goose_rt::fs::{FileSys, NativeFs};
use goose_rt::runtime::NativeRt;
use mailboat::gomail::{CMailSim, GoMail};
use mailboat::server::{mail_dirs, MailServer, Mailboat};
use mailboat::workload::{run_workload, WorkloadConfig};
use std::sync::Arc;
use std::time::Instant;

/// Fraction of a directory-mutating FS call spent inside the directory's
/// write lock (the rest — fd allocation, inode init, copying — runs in
/// parallel). A documented modelling constant.
pub const DIR_CRIT_FRAC: f64 = 0.3;

/// Serial fraction of every request charged to a global runtime lock —
/// the stand-in for §9.3's "lock contention in the runtime during
/// garbage collection" that flattens all three curves.
pub const RUNTIME_SERIAL_FRAC: f64 = 0.03;

/// Target single-core ratio GoMail / CMAIL (§9.3: "GoMail is in turn 34%
/// faster than CMAIL").
pub const CMAIL_TARGET_RATIO: f64 = 1.34;

/// Average `burn()` invocations per workload request: a delivery burns
/// once, a pickup cycle burns on pickup, each delete (≈1 in steady
/// state), and unlock — so (1 + 3) / 2 across the 50/50 mix.
pub const CMAIL_BURNS_PER_REQUEST: f64 = 2.0;

/// Figure 11 experiment configuration.
#[derive(Debug, Clone)]
pub struct Fig11Config {
    /// User mailboxes (paper: 100).
    pub users: u64,
    /// Requests for each *measured* single-core run.
    pub measure_requests: u64,
    /// Requests per simulated point.
    pub sim_requests: u64,
    /// Core counts for the simulated curves (paper: 1–12).
    pub cores: Vec<usize>,
    /// Message size in bytes.
    pub msg_len: usize,
}

impl Default for Fig11Config {
    fn default() -> Self {
        Fig11Config {
            users: 100,
            measure_requests: 250_000,
            sim_requests: 60_000,
            cores: (1..=12).collect(),
            msg_len: 256,
        }
    }
}

impl Fig11Config {
    /// A fast configuration for tests.
    pub fn quick() -> Self {
        Fig11Config {
            users: 16,
            measure_requests: 2_000,
            sim_requests: 5_000,
            cores: vec![1, 2, 4, 8],
            msg_len: 128,
        }
    }
}

/// One server's curve.
#[derive(Debug, Clone)]
pub struct Series {
    /// Server name.
    pub name: String,
    /// Measured single-core throughput (requests/second).
    pub measured_1core: f64,
    /// Simulated (cores, requests/second) points.
    pub points: Vec<(usize, f64)>,
}

/// The full Figure 11 result.
#[derive(Debug, Clone)]
pub struct Fig11Report {
    /// One series per server, in paper order.
    pub series: Vec<Series>,
    /// Calibrated CMAIL overhead iterations.
    pub cmail_overhead_iters: u64,
    /// Measured per-request costs in ns (mailboat deliver, mailboat
    /// pickup-cycle, gomail deliver, gomail pickup-cycle).
    pub costs_ns: CostModel,
}

/// Measured cost decomposition feeding the simulator.
#[derive(Debug, Clone, Default)]
pub struct CostModel {
    /// Mailboat: one delivery.
    pub mb_deliver: u64,
    /// Mailboat: one pickup + delete-all + unlock cycle.
    pub mb_pickup: u64,
    /// GoMail: one delivery.
    pub gm_deliver: u64,
    /// GoMail: one pickup cycle (includes lock-file traffic).
    pub gm_pickup: u64,
    /// Exclusive create + close on the native FS.
    pub fs_create: u64,
    /// Hard link into a directory.
    pub fs_link: u64,
    /// Unlink from a directory.
    pub fs_delete: u64,
    /// CMAIL burn-loop cost per iteration (fractional ns ×1000).
    pub burn_per_kiter: u64,
}

fn fresh_fs(users: u64) -> Arc<NativeFs> {
    let dirs = mail_dirs(users);
    let dir_refs: Vec<&str> = dirs.iter().map(String::as_str).collect();
    NativeFs::new(&dir_refs)
}

/// Times `iters` executions of `f` over [`MEASURE_REPS`] repetitions,
/// returning the *minimum* ns per execution — the standard best-of-N
/// defence against co-tenant noise on a shared host.
fn time_per<F: FnMut(u64)>(iters: u64, mut f: F) -> u64 {
    let per_rep = (iters / MEASURE_REPS).max(1);
    let mut best = u64::MAX;
    for rep in 0..MEASURE_REPS {
        let t0 = Instant::now();
        for i in 0..per_rep {
            f(rep * per_rep + i);
        }
        best = best.min(t0.elapsed().as_nanos() as u64 / per_rep);
    }
    best.max(1)
}

/// Repetitions per measurement (best-of-N).
const MEASURE_REPS: u64 = 5;

/// Measures the per-operation and per-request costs on this host.
pub fn measure_costs(cfg: &Fig11Config) -> CostModel {
    let mut m = CostModel::default();
    let msg = vec![b'x'; cfg.msg_len];

    // FS micro-ops.
    {
        let fs = fresh_fs(cfg.users);
        let spool = fs.resolve("spool").unwrap();
        let u0 = fs.resolve("user0").unwrap();
        m.fs_create = time_per(4000, |i| {
            let fd = fs.create(spool, &format!("c{i}")).unwrap().unwrap();
            fs.close(fd).unwrap();
        });
        m.fs_link = time_per(4000, |i| {
            assert!(fs
                .link(spool, &format!("c{i}"), u0, &format!("l{i}"))
                .unwrap());
        });
        m.fs_delete = time_per(4000, |i| {
            fs.delete(u0, &format!("l{i}")).unwrap();
        });
    }

    // Mailboat request costs (single-threaded steady state).
    {
        let server = Mailboat::init(fresh_fs(cfg.users), NativeRt::new(), cfg.users).unwrap();
        m.mb_deliver = time_per(cfg.measure_requests / 2, |i| {
            server.deliver(i % cfg.users, &msg);
        });
        m.mb_pickup = time_per(cfg.measure_requests / 2, |i| {
            let u = i % cfg.users;
            server.deliver(u, &msg); // keep mailboxes non-empty
            let msgs = server.pickup(u);
            for mm in &msgs {
                server.delete(u, &mm.id);
            }
            server.unlock(u);
        })
        .saturating_sub(m.mb_deliver)
        .max(1);
    }

    // GoMail request costs.
    {
        let server = GoMail::init(fresh_fs(cfg.users), NativeRt::new(), cfg.users).unwrap();
        m.gm_deliver = time_per(cfg.measure_requests / 2, |i| {
            server.deliver(i % cfg.users, &msg);
        });
        m.gm_pickup = time_per(cfg.measure_requests / 2, |i| {
            let u = i % cfg.users;
            server.deliver(u, &msg);
            let msgs = server.pickup(u);
            for mm in &msgs {
                server.delete(u, &mm.id);
            }
            server.unlock(u);
        })
        .saturating_sub(m.gm_deliver)
        .max(1);
    }

    // Burn loop rate (for CMAIL calibration).
    {
        let c = CMailSim::init(fresh_fs(1), NativeRt::new(), 1).unwrap();
        let mut probe = c;
        probe.overhead_iters = 100_000;
        let total = {
            let t0 = Instant::now();
            for _ in 0..2000 {
                probe.deliver(0, b"x");
            }
            t0.elapsed().as_nanos() as u64 / 2000
        };
        let plain = m.gm_deliver;
        m.burn_per_kiter = ((total.saturating_sub(plain)) * 1000 / 100_000).max(1);
    }
    m
}

/// Calibrates the CMAIL overhead from the cost model alone (used by
/// tests; `run_fig11` re-derives it from the live GoMail anchor).
pub fn calibrate_cmail(m: &CostModel) -> u64 {
    // Average GoMail request cost (50/50 mix), spread over the average
    // burn invocations per request.
    let gm_avg = (m.gm_deliver + m.gm_pickup) / 2;
    let extra_ns = (gm_avg as f64 * (CMAIL_TARGET_RATIO - 1.0) / CMAIL_BURNS_PER_REQUEST) as u64;
    (extra_ns * 1000 / m.burn_per_kiter.max(1)).max(1)
}

// Lock-id layout for the simulator.
const L_RUNTIME: usize = 0;
const L_SPOOL: usize = 1;
const L_LOCKDIR: usize = 2;
const L_BASE_USER_DIR: usize = 3;

fn l_user_dir(users: u64, u: u64) -> usize {
    L_BASE_USER_DIR + u as usize % users as usize
}

fn l_user_lock(users: u64, u: u64) -> usize {
    L_BASE_USER_DIR + users as usize + u as usize % users as usize
}

fn num_locks(users: u64) -> usize {
    L_BASE_USER_DIR + 2 * users as usize
}

fn crit(ns: u64) -> u64 {
    ((ns as f64) * DIR_CRIT_FRAC) as u64
}

fn runtime_share(total: u64) -> Segment {
    Segment::locked(((total as f64) * RUNTIME_SERIAL_FRAC) as u64, L_RUNTIME)
}

/// Builds the Mailboat request profile for request `i` of user `u`.
fn mb_profile(m: &CostModel, users: u64, u: u64, deliver: bool) -> RequestProfile {
    if deliver {
        let total = m.mb_deliver;
        let spool_crit = crit(m.fs_create) + crit(m.fs_delete);
        let user_crit = crit(m.fs_link);
        let par = total.saturating_sub(spool_crit + user_crit);
        RequestProfile {
            segments: vec![
                Segment::locked(crit(m.fs_create), L_SPOOL),
                Segment::parallel(par),
                Segment::locked(user_crit, l_user_dir(users, u)),
                Segment::locked(crit(m.fs_delete), L_SPOOL),
                runtime_share(total),
            ],
        }
    } else {
        let total = m.mb_pickup;
        RequestProfile {
            segments: vec![
                // The in-memory user lock is held for the whole cycle.
                Segment::locked(total, l_user_lock(users, u)),
                runtime_share(total),
            ],
        }
    }
}

/// Builds the GoMail request profile (adds lock-file traffic through the
/// global `locks/` directory and treats the body like Mailboat's).
fn gm_profile(m: &CostModel, users: u64, u: u64, deliver: bool) -> RequestProfile {
    if deliver {
        let total = m.gm_deliver;
        let spool_crit = crit(m.fs_create) + crit(m.fs_delete);
        let user_crit = crit(m.fs_link);
        let par = total.saturating_sub(spool_crit + user_crit);
        RequestProfile {
            segments: vec![
                Segment::locked(crit(m.fs_create), L_SPOOL),
                Segment::parallel(par),
                Segment::locked(user_crit, l_user_dir(users, u)),
                Segment::locked(crit(m.fs_delete), L_SPOOL),
                runtime_share(total),
            ],
        }
    } else {
        let total = m.gm_pickup;
        // Lock-file create and unlink both mutate the global locks/
        // directory — the scaling bottleneck file locks introduce.
        let lockfile = crit(m.fs_create) + crit(m.fs_delete);
        let body = total.saturating_sub(lockfile);
        RequestProfile {
            segments: vec![
                Segment::locked(crit(m.fs_create), L_LOCKDIR),
                Segment::locked(body, l_user_lock(users, u)),
                Segment::locked(crit(m.fs_delete), L_LOCKDIR),
                runtime_share(total),
            ],
        }
    }
}

/// Deterministic per-request user + kind choice (matches the workload's
/// 50/50 mix over uniform users).
fn req_params(i: u64, users: u64) -> (u64, bool) {
    let mut x = i.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0xdead_beef;
    x ^= x >> 29;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 32;
    (x % users, (x >> 40) & 1 == 0)
}

/// Runs one simulated curve.
fn simulate_series(
    name: &str,
    measured_1core: f64,
    cfg: &Fig11Config,
    profile: impl Fn(u64, bool) -> RequestProfile,
) -> Series {
    let mut points = Vec::new();
    for &cores in &cfg.cores {
        let r: SimResult = simulate(cores, cfg.sim_requests, num_locks(cfg.users), |_, i| {
            let (u, deliver) = req_params(i, cfg.users);
            profile(u, deliver)
        });
        points.push((cores, r.req_per_sec()));
    }
    Series {
        name: name.to_string(),
        measured_1core,
        points,
    }
}

/// Measures single-core throughput of a real server (best of
/// [`MEASURE_REPS`] runs, for the same noise-rejection reason as
/// `time_per`).
fn measure_1core<S: MailServer + 'static>(server: Arc<S>, cfg: &Fig11Config) -> f64 {
    let wl = WorkloadConfig {
        users: cfg.users,
        total_requests: (cfg.measure_requests / MEASURE_REPS).max(1),
        msg_len: cfg.msg_len,
        seed: 42,
    };
    let mut best = 0.0f64;
    for _ in 0..MEASURE_REPS {
        best = best.max(run_workload(Arc::clone(&server), 1, &wl).req_per_sec());
    }
    best
}

/// Runs the complete Figure 11 experiment.
pub fn run_fig11(cfg: &Fig11Config) -> Fig11Report {
    let m = measure_costs(cfg);

    // Measured single-core anchors. CMAIL's burn count is calibrated
    // against the GoMail *anchor* measurement (not the earlier cost
    // probes) so the 1.34× target tracks the same run's conditions.
    let mb = Arc::new(Mailboat::init(fresh_fs(cfg.users), NativeRt::new(), cfg.users).unwrap());
    let mb_1 = measure_1core(mb, cfg);
    let gm = Arc::new(GoMail::init(fresh_fs(cfg.users), NativeRt::new(), cfg.users).unwrap());
    let gm_1 = measure_1core(gm, cfg);
    let gm_req_ns = (1e9 / gm_1) as u64;
    let extra_ns = (gm_req_ns as f64 * (CMAIL_TARGET_RATIO - 1.0) / CMAIL_BURNS_PER_REQUEST) as u64;
    let cmail_iters = (extra_ns * 1000 / m.burn_per_kiter.max(1)).max(1);
    let mut cm = CMailSim::init(fresh_fs(cfg.users), NativeRt::new(), cfg.users).unwrap();
    cm.overhead_iters = cmail_iters;
    let cm_1 = measure_1core(Arc::new(cm), cfg);

    // Simulated curves. CMAIL = GoMail profile + a parallel burn segment.
    let burn_ns = cmail_iters * m.burn_per_kiter / 1000;
    let m2 = m.clone();
    let users = cfg.users;
    let mailboat = simulate_series("Mailboat", mb_1, cfg, {
        let m = m.clone();
        move |u, d| mb_profile(&m, users, u, d)
    });
    let gomail = simulate_series("GoMail", gm_1, cfg, {
        let m = m.clone();
        move |u, d| gm_profile(&m, users, u, d)
    });
    let cmail = simulate_series("CMAIL", cm_1, cfg, move |u, d| {
        let mut p = gm_profile(&m2, users, u, d);
        p.segments.push(Segment::parallel(burn_ns));
        p
    });

    Fig11Report {
        series: vec![mailboat, gomail, cmail],
        cmail_overhead_iters: cmail_iters,
        costs_ns: m,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_quick_has_paper_shape() {
        let report = run_fig11(&Fig11Config::quick());
        let [mb, gm, cm] = &report.series[..] else {
            panic!("expected three series");
        };
        // Ordering at one core, measured: Mailboat > GoMail > CMAIL.
        assert!(
            mb.measured_1core > gm.measured_1core,
            "Mailboat {} !> GoMail {}",
            mb.measured_1core,
            gm.measured_1core
        );
        assert!(
            gm.measured_1core > cm.measured_1core,
            "GoMail {} !> CMAIL {}",
            gm.measured_1core,
            cm.measured_1core
        );
        // Simulated curves increase with cores but sublinearly.
        for s in &report.series {
            let t1 = s.points.first().unwrap().1;
            let (n_last, t_last) = *s.points.last().unwrap();
            assert!(t_last > t1, "{} did not scale at all", s.name);
            assert!(
                t_last < t1 * n_last as f64,
                "{} scaled superlinearly?",
                s.name
            );
        }
    }
}
