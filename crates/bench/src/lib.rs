//! Benchmark and experiment-regeneration support for the Perennial
//! reproduction (DESIGN.md §3's per-experiment index).
//!
//! - [`loc`] — LoC accounting for Tables 2–4;
//! - [`sim`] — the discrete-event multicore contention simulator
//!   substituting for the paper's 12-core testbed (DESIGN.md §1);
//! - [`fig11`] — the Figure 11 experiment (measured single-core anchors
//!   plus simulated scaling curves);
//! - [`tables`] — rendering and the Table 1/Table 3 drivers.
//!
//! [`ablation`] additionally re-checks every mutant under each
//! exploration pass in isolation, demonstrating which passes are
//! load-bearing. [`args`] is the shared CLI flag parser for the bench
//! binaries and examples, and [`perf`] diffs a fresh `scale` record
//! against the committed `BENCH_scale.json` baseline to flag
//! performance regressions.
//!
//! The `harness` binary regenerates every table and figure:
//! `cargo run -p perennial-bench --release --bin harness -- all`.

pub mod ablation;
pub mod args;
pub mod fig11;
pub mod loc;
pub mod perf;
pub mod scale;
pub mod sim;
pub mod tables;
