//! Lines-of-code accounting for Tables 2–4.
//!
//! The paper's tables report Coq/Go line counts; the reproduced claim is
//! the *relative* conciseness story, so the harness prints our counts
//! next to the paper's. Counting rule: non-blank lines of `.rs` files
//! (comments included, as `wc -l`-style counts in papers typically are).

use std::path::{Path, PathBuf};

/// Counts non-blank lines in one file.
pub fn count_file(path: &Path) -> u64 {
    match std::fs::read_to_string(path) {
        Ok(s) => s.lines().filter(|l| !l.trim().is_empty()).count() as u64,
        Err(_) => 0,
    }
}

/// Counts non-blank lines across `.rs` files under `path` (recursively
/// if it is a directory).
pub fn count_path(path: &Path) -> u64 {
    if path.is_file() {
        return count_file(path);
    }
    let mut total = 0;
    let Ok(entries) = std::fs::read_dir(path) else {
        return 0;
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            total += count_path(&p);
        } else if p.extension().map(|e| e == "rs").unwrap_or(false) {
            total += count_file(&p);
        }
    }
    total
}

/// Locates the workspace root by walking up from the current exe/cwd
/// until a `Cargo.toml` with `[workspace]` appears.
pub fn workspace_root() -> PathBuf {
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(s) = std::fs::read_to_string(&manifest) {
                if s.contains("[workspace]") {
                    return dir;
                }
            }
        }
        if !dir.pop() {
            panic!("workspace root not found (run from inside the repository)");
        }
    }
}

/// One row of a LoC comparison table.
#[derive(Debug, Clone)]
pub struct LocRow {
    /// Component name (the paper's wording).
    pub component: String,
    /// The paper's count (None = not applicable to our architecture).
    pub paper: Option<u64>,
    /// Our count (None = not applicable).
    pub ours: Option<u64>,
    /// Note explaining the mapping.
    pub note: String,
}

fn row(component: &str, paper: Option<u64>, ours: Option<u64>, note: &str) -> LocRow {
    LocRow {
        component: component.to_string(),
        paper,
        ours,
        note: note.to_string(),
    }
}

/// Table 2: framework and Goose line counts.
pub fn table2_rows() -> Vec<LocRow> {
    let root = workspace_root();
    let spec = count_path(&root.join("crates/spec/src"));
    let core = count_path(&root.join("crates/core/src"));
    let checker = count_path(&root.join("crates/checker/src"));
    let goose = count_path(&root.join("crates/goose/src"));
    vec![
        row(
            "Transition system language",
            Some(1710),
            Some(spec),
            "crates/spec: the transition DSL, spec trait, histories",
        ),
        row(
            "Core framework",
            Some(7220),
            Some(core + checker),
            "crates/core (ghost capabilities) + crates/checker (the \
             for-all-executions substitute)",
        ),
        row(
            "Perennial total",
            Some(8930),
            Some(spec + core + checker),
            "sum of the two rows above",
        ),
        row(
            "Goose translator (Go)",
            Some(1790),
            None,
            "no translator: systems are written directly against the \
             Goose model (DESIGN.md §1)",
        ),
        row(
            "Goose library (Go)",
            Some(220),
            None,
            "folded into the runtime below",
        ),
        row(
            "Go semantics",
            Some(2020),
            Some(goose),
            "crates/goose: scheduler, heap with UB detection, FS model, \
             native runtime",
        ),
    ]
}

/// Table 3: per-pattern line counts.
pub fn table3_rows() -> Vec<LocRow> {
    let root = workspace_root();
    vec![
        row(
            "Two-disk semantics",
            Some(1350),
            Some(count_path(&root.join("crates/disk/src/two.rs"))),
            "crates/disk/src/two.rs",
        ),
        row(
            "Replicated disk",
            Some(1180),
            Some(count_path(&root.join("crates/repldisk"))),
            "crates/repldisk (spec + impl + proof + harness + checks)",
        ),
        row(
            "Single-disk semantics",
            Some(1310),
            Some(count_path(&root.join("crates/disk/src/single.rs"))),
            "crates/disk/src/single.rs",
        ),
        row(
            "Shadow copy",
            Some(390),
            Some(count_path(&root.join("crates/patterns/src/shadow.rs"))),
            "crates/patterns/src/shadow.rs",
        ),
        row(
            "Write-ahead logging",
            Some(930),
            Some(count_path(&root.join("crates/patterns/src/wal.rs"))),
            "crates/patterns/src/wal.rs",
        ),
        row(
            "Group commit",
            Some(1410),
            Some(count_path(
                &root.join("crates/patterns/src/group_commit.rs"),
            )),
            "crates/patterns/src/group_commit.rs",
        ),
        row(
            "Transactional WAL (ext.)",
            None,
            Some(count_path(&root.join("crates/patterns/src/txn_wal.rs"))),
            "extension: multi-block transactions (not in the paper)",
        ),
        row(
            "Synced log (ext.)",
            None,
            Some(count_path(&root.join("crates/patterns/src/synced_log.rs"))),
            "extension: deferred-durability log (paper §6.2 future work)",
        ),
        row(
            "Node KV store (ext.)",
            None,
            Some(count_path(&root.join("crates/kvstore"))),
            "extension: the §2 Verdi-style node storage",
        ),
    ]
}

/// Table 4: Mailboat vs CMAIL line counts.
pub fn table4_rows() -> Vec<LocRow> {
    let root = workspace_root();
    let implementation = count_path(&root.join("crates/mailboat/src/server.rs"));
    let proof = count_path(&root.join("crates/mailboat/src/spec.rs"))
        + count_path(&root.join("crates/mailboat/src/proof.rs"))
        + count_path(&root.join("crates/mailboat/src/harness.rs"))
        + count_path(&root.join("crates/mailboat/tests"));
    let framework = count_path(&root.join("crates/spec/src"))
        + count_path(&root.join("crates/core/src"))
        + count_path(&root.join("crates/checker/src"));
    vec![
        row(
            "Implementation",
            Some(159),
            Some(implementation),
            "crates/mailboat/src/server.rs (paper: 159 lines of Go; \
             CMAIL: 215 of Coq)",
        ),
        row(
            "Proof",
            Some(3360),
            Some(proof),
            "spec + ghost instrumentation + harness + checks (paper: \
             3,360; CMAIL: 4,050)",
        ),
        row(
            "Framework",
            Some(8900),
            Some(framework),
            "spec + core + checker (paper: 8,900 Perennial; CMAIL: \
             9,600 CSPEC)",
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_nonzero_for_real_components() {
        for r in table2_rows() {
            if let Some(ours) = r.ours {
                assert!(ours > 0, "{} counted zero lines", r.component);
            }
        }
        for r in table3_rows().iter().chain(table4_rows().iter()) {
            if let Some(ours) = r.ours {
                assert!(ours > 0, "{} counted zero lines", r.component);
            }
        }
    }

    #[test]
    fn count_file_skips_blank_lines() {
        let dir = std::env::temp_dir().join("perennial-loc-test");
        std::fs::create_dir_all(&dir).unwrap();
        let f = dir.join("x.rs");
        std::fs::write(&f, "a\n\nb\n  \nc\n").unwrap();
        assert_eq!(count_file(&f), 3);
        std::fs::remove_file(&f).ok();
    }
}
