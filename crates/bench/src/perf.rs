//! Perf trajectory: diff a fresh `scale` run against a committed
//! baseline (`BENCH_scale.json`) and flag regressions.
//!
//! The record has two kinds of metric, diffed differently:
//!
//! - **Deterministic counts** (executions, executions-to-counterexample
//!   per mutant × strategy): the determinism contract says these are
//!   pure functions of the configuration. Any change is *drift* — a
//!   behaviour change, not noise — and is always flagged, with a note to
//!   refresh the baseline if the change was intentional.
//! - **Wall-clock rates** (execs/sec, WAL overhead): machine- and
//!   load-dependent, compared against [`Thresholds`] generous enough to
//!   hold on a noisy 1-CPU CI runner.
//!
//! Rows are matched by worker count, so CI can run a subset of the
//! baseline's pool sizes (`scale patterns/wal 1 2 --baseline … --diff`)
//! against a full committed record. The baseline's [`EnvStamp`] is
//! compared and mismatches (different rustc, strategy) are reported as
//! warnings, never silently ignored.

use perennial_checker::EnvStamp;
use serde_json::{Map, Value};
use std::fmt::Write as _;

/// Version of the `BENCH_scale.json` record layout. Bump when the
/// record's shape changes incompatibly; the differ warns on mismatch.
pub const SCALE_SCHEMA_VERSION: u64 = 1;

/// Noise tolerances for the wall-clock metrics. Defaults are generous
/// (CI shares cores): an execs/sec *drop* beyond `execs_per_sec_drop`
/// (0.6 = 60%) or a WAL overhead *increase* beyond `overhead_slack`
/// (absolute, 0.25 = 25 points) is a regression. Deterministic-count
/// drift ignores thresholds entirely.
#[derive(Debug, Clone, Copy)]
pub struct Thresholds {
    pub execs_per_sec_drop: f64,
    pub overhead_slack: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            execs_per_sec_drop: 0.6,
            overhead_slack: 0.25,
        }
    }
}

/// One metric's baseline-vs-current comparison.
#[derive(Debug, Clone)]
pub struct Delta {
    /// Metric path, e.g. `schedule_exploration[workers=2].execs_per_sec`.
    pub metric: String,
    pub baseline: f64,
    pub current: f64,
    /// Relative change `(current - baseline) / baseline` (0 when the
    /// baseline is 0 and the values agree).
    pub rel: f64,
    pub regression: bool,
    /// Why this is (or is not) a regression.
    pub note: String,
}

/// The full diff: per-metric deltas plus environment warnings.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    pub deltas: Vec<Delta>,
    /// Baseline/current environment or schema mismatches (informative).
    pub warnings: Vec<String>,
}

impl DiffReport {
    pub fn regressed(&self) -> bool {
        self.deltas.iter().any(|d| d.regression)
    }
}

fn obj<'a>(v: &'a Value, what: &str) -> Result<&'a Map, String> {
    match v {
        Value::Object(m) => Ok(m),
        _ => Err(format!("{what}: expected a JSON object")),
    }
}

fn num(m: &Map, k: &str) -> Option<f64> {
    match m.get(k) {
        Some(Value::Number(n)) => Some(*n),
        _ => None,
    }
}

fn rel_change(base: f64, cur: f64) -> f64 {
    if base == 0.0 {
        if cur == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (cur - base) / base
    }
}

/// A deterministic count: any difference is drift and always flags.
fn drift_delta(metric: &str, base: f64, cur: f64) -> Delta {
    let changed = base != cur;
    Delta {
        metric: metric.to_string(),
        baseline: base,
        current: cur,
        rel: rel_change(base, cur),
        regression: changed,
        note: if changed {
            "deterministic count changed — behaviour drift; refresh the baseline if intentional"
                .to_string()
        } else {
            "deterministic count unchanged".to_string()
        },
    }
}

/// A wall-clock rate where *lower* current is the regression direction.
fn rate_delta(metric: &str, base: f64, cur: f64, max_drop: f64) -> Delta {
    let rel = rel_change(base, cur);
    let regression = rel < -max_drop;
    Delta {
        metric: metric.to_string(),
        baseline: base,
        current: cur,
        rel,
        regression,
        note: format!(
            "allowed drop {:.0}%{}",
            max_drop * 100.0,
            if regression { " EXCEEDED" } else { "" }
        ),
    }
}

/// Indexes a `schedule_exploration`-style row array by worker count.
fn rows_by_workers(v: &Value, what: &str) -> Result<Vec<(u64, Map)>, String> {
    let Value::Array(rows) = v else {
        return Err(format!("{what}: expected an array of rows"));
    };
    let mut out = Vec::new();
    for row in rows {
        let m = obj(row, what)?;
        let Some(w) = num(m, "workers") else {
            return Err(format!("{what}: row without a workers field"));
        };
        out.push((w as u64, m.clone()));
    }
    Ok(out)
}

fn diff_scaling_series(
    section: &str,
    base: &Value,
    cur: &Value,
    t: &Thresholds,
    out: &mut DiffReport,
) -> Result<(), String> {
    let base_rows = rows_by_workers(base, section)?;
    let cur_rows = rows_by_workers(cur, section)?;
    for (w, c) in &cur_rows {
        let Some((_, b)) = base_rows.iter().find(|(bw, _)| bw == w) else {
            out.warnings.push(format!(
                "{section}: baseline has no workers={w} row; skipped"
            ));
            continue;
        };
        if let (Some(be), Some(ce)) = (num(b, "executions"), num(c, "executions")) {
            out.deltas.push(drift_delta(
                &format!("{section}[workers={w}].executions"),
                be,
                ce,
            ));
        }
        if let (Some(br), Some(cr)) = (num(b, "execs_per_sec"), num(c, "execs_per_sec")) {
            out.deltas.push(rate_delta(
                &format!("{section}[workers={w}].execs_per_sec"),
                br,
                cr,
                t.execs_per_sec_drop,
            ));
        }
    }
    Ok(())
}

fn diff_reduction(base: &Value, cur: &Value, out: &mut DiffReport) -> Result<(), String> {
    let b = obj(base, "strategy_reduction")?;
    let c = obj(cur, "strategy_reduction")?;
    let (Some(Value::Array(b_mut)), Some(Value::Array(c_mut))) =
        (b.get("mutants"), c.get("mutants"))
    else {
        return Err("strategy_reduction: missing mutants array".to_string());
    };
    for cm in c_mut {
        let cm = obj(cm, "mutant")?;
        let Some(Value::String(name)) = cm.get("scenario") else {
            continue;
        };
        let Some(bm) = b_mut.iter().find_map(|v| match v {
            Value::Object(m) if m.get("scenario") == Some(&Value::String(name.clone())) => Some(m),
            _ => None,
        }) else {
            out.warnings.push(format!(
                "strategy_reduction: baseline lacks mutant {name:?}; skipped"
            ));
            continue;
        };
        // Executions-to-counterexample is deterministic per strategy.
        for strat in ["exhaustive", "sleep_set_dpor", "coverage_guided"] {
            let (Some(Value::Object(bc)), Some(Value::Object(cc))) = (bm.get(strat), cm.get(strat))
            else {
                continue;
            };
            if let (Some(be), Some(ce)) = (num(bc, "executions"), num(cc, "executions")) {
                out.deltas.push(drift_delta(
                    &format!("strategy_reduction[{name}].{strat}.executions"),
                    be,
                    ce,
                ));
            }
        }
    }
    Ok(())
}

fn diff_resume(
    base: &Value,
    cur: &Value,
    t: &Thresholds,
    out: &mut DiffReport,
) -> Result<(), String> {
    let b = obj(base, "resume_overhead")?;
    let c = obj(cur, "resume_overhead")?;
    if let (Some(be), Some(ce)) = (num(b, "executions"), num(c, "executions")) {
        out.deltas
            .push(drift_delta("resume_overhead.executions", be, ce));
    }
    if let (Some(bo), Some(co)) = (num(b, "wal_overhead"), num(c, "wal_overhead")) {
        let regression = co > bo + t.overhead_slack;
        out.deltas.push(Delta {
            metric: "resume_overhead.wal_overhead".to_string(),
            baseline: bo,
            current: co,
            rel: rel_change(bo, co),
            regression,
            note: format!(
                "allowed absolute increase {:.2}{}",
                t.overhead_slack,
                if regression { " EXCEEDED" } else { "" }
            ),
        });
    }
    if matches!(c.get("fingerprints_match"), Some(Value::Bool(false))) {
        out.deltas.push(Delta {
            metric: "resume_overhead.fingerprints_match".to_string(),
            baseline: 1.0,
            current: 0.0,
            rel: -1.0,
            regression: true,
            note: "cold/walled/resumed fingerprints diverged".to_string(),
        });
    }
    Ok(())
}

/// Diffs a fresh `scale --json` record against a baseline. Errors mean
/// the records are structurally incomparable (different scenario,
/// missing sections); regressions live in the returned report.
pub fn diff_scale(baseline: &Value, current: &Value, t: &Thresholds) -> Result<DiffReport, String> {
    let b = obj(baseline, "baseline")?;
    let c = obj(current, "current")?;
    let mut out = DiffReport::default();

    match (b.get("scenario"), c.get("scenario")) {
        (Some(Value::String(bs)), Some(Value::String(cs))) if bs != cs => {
            return Err(format!(
                "scenario mismatch: baseline {bs:?} vs current {cs:?}"
            ));
        }
        _ => {}
    }
    let bv = num(b, "schema_version").unwrap_or(0.0) as u64;
    let cv = num(c, "schema_version").unwrap_or(0.0) as u64;
    if bv != cv {
        out.warnings.push(format!(
            "schema_version mismatch: baseline {bv} vs current {cv}"
        ));
    }
    match (
        b.get("env").and_then(EnvStamp::from_json),
        c.get("env").and_then(EnvStamp::from_json),
    ) {
        (Some(be), Some(ce)) => {
            if be.rustc != ce.rustc {
                out.warnings
                    .push(format!("rustc differs: {:?} vs {:?}", be.rustc, ce.rustc));
            }
            if be.strategy != ce.strategy {
                out.warnings.push(format!(
                    "strategy differs: {:?} vs {:?}",
                    be.strategy, ce.strategy
                ));
            }
        }
        _ => out
            .warnings
            .push("env stamp missing from baseline or current record".to_string()),
    }

    for section in ["schedule_exploration", "fault_exploration"] {
        match (b.get(section), c.get(section)) {
            (Some(bs), Some(cs)) => diff_scaling_series(section, bs, cs, t, &mut out)?,
            _ => out.warnings.push(format!("{section}: missing; skipped")),
        }
    }
    if let (Some(bs), Some(cs)) = (b.get("strategy_reduction"), c.get("strategy_reduction")) {
        diff_reduction(bs, cs, &mut out)?;
    } else {
        out.warnings
            .push("strategy_reduction: missing; skipped".to_string());
    }
    if let (Some(bs), Some(cs)) = (b.get("resume_overhead"), c.get("resume_overhead")) {
        diff_resume(bs, cs, t, &mut out)?;
    } else {
        out.warnings
            .push("resume_overhead: missing; skipped".to_string());
    }
    Ok(out)
}

/// Renders the diff as a table, regressions marked.
pub fn render_diff(d: &DiffReport) -> String {
    let mut out = String::new();
    writeln!(out, "PERF DIFF vs baseline").unwrap();
    for w in &d.warnings {
        writeln!(out, "  warning: {w}").unwrap();
    }
    for delta in &d.deltas {
        let rel = if delta.rel.is_infinite() {
            "   inf".to_string()
        } else {
            format!("{:>+5.1}%", delta.rel * 100.0)
        };
        writeln!(
            out,
            "  {} {:<56} {:>12.2} -> {:>12.2}  {rel}  ({})",
            if delta.regression {
                "REGRESSION"
            } else {
                "        ok"
            },
            delta.metric,
            delta.baseline,
            delta.current,
            delta.note,
        )
        .unwrap();
    }
    writeln!(
        out,
        "  {} metric(s) compared, {} regression(s)",
        d.deltas.len(),
        d.deltas.iter().filter(|d| d.regression).count()
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    /// A minimal but complete record, as `scale --json` writes it.
    /// (Built through the parser — the shim's `json!` macro does not
    /// take object literals inside arrays.)
    fn record(execs: u64, rate: f64, overhead: f64, dpor_execs: u64) -> Value {
        serde_json::from_str(&format!(
            r#"{{
                "schema_version": {SCALE_SCHEMA_VERSION},
                "scenario": "patterns/wal",
                "env": {{
                    "rustc": "rustc 1.99.0",
                    "crate_version": "0.1.0",
                    "workers": 2,
                    "strategy": "exhaustive"
                }},
                "schedule_exploration": [
                    {{ "workers": 1, "executions": {execs}, "execs_per_sec": {rate} }},
                    {{ "workers": 2, "executions": {execs}, "execs_per_sec": {double_rate} }}
                ],
                "fault_exploration": [
                    {{ "workers": 1, "executions": {fault_execs}, "execs_per_sec": {rate} }}
                ],
                "strategy_reduction": {{
                    "mutants": [
                        {{
                            "scenario": "kv/mutant",
                            "exhaustive": {{ "executions": 100 }},
                            "sleep_set_dpor": {{ "executions": {dpor_execs} }},
                            "coverage_guided": {{ "executions": 30 }}
                        }}
                    ]
                }},
                "resume_overhead": {{
                    "executions": {execs},
                    "wal_overhead": {overhead},
                    "fingerprints_match": true
                }}
            }}"#,
            double_rate = rate * 1.8,
            fault_execs = execs * 2,
        ))
        .unwrap()
    }

    #[test]
    fn identical_records_do_not_regress() {
        let r = record(500, 1000.0, 0.02, 40);
        let d = diff_scale(&r, &r, &Thresholds::default()).unwrap();
        assert!(!d.regressed(), "{:?}", d.deltas);
        assert!(d.warnings.is_empty(), "{:?}", d.warnings);
        assert!(!d.deltas.is_empty());
    }

    #[test]
    fn throughput_noise_inside_the_threshold_passes() {
        let base = record(500, 1000.0, 0.02, 40);
        let cur = record(500, 600.0, 0.02, 40); // 40% drop < 60% allowed
        let d = diff_scale(&base, &cur, &Thresholds::default()).unwrap();
        assert!(!d.regressed(), "{}", render_diff(&d));
    }

    #[test]
    fn doctored_baseline_throughput_flags_a_regression() {
        // The baseline claims 10x the throughput the current run gets.
        let base = record(500, 10_000.0, 0.02, 40);
        let cur = record(500, 500.0, 0.02, 40);
        let d = diff_scale(&base, &cur, &Thresholds::default()).unwrap();
        assert!(d.regressed());
        let text = render_diff(&d);
        assert!(text.contains("REGRESSION"), "{text}");
        assert!(text.contains("execs_per_sec"), "{text}");
    }

    #[test]
    fn deterministic_drift_always_flags() {
        let base = record(500, 1000.0, 0.02, 40);
        let cur = record(501, 1000.0, 0.02, 40); // one extra execution
        let d = diff_scale(&base, &cur, &Thresholds::default()).unwrap();
        assert!(d.regressed());
        assert!(render_diff(&d).contains("refresh the baseline"));
    }

    #[test]
    fn executions_to_counterexample_growth_flags() {
        let base = record(500, 1000.0, 0.02, 40);
        let cur = record(500, 1000.0, 0.02, 80); // DPOR got twice as slow
        let d = diff_scale(&base, &cur, &Thresholds::default()).unwrap();
        assert!(d.regressed());
        assert!(render_diff(&d).contains("sleep_set_dpor"));
    }

    #[test]
    fn wal_overhead_blowup_flags() {
        let base = record(500, 1000.0, 0.02, 40);
        let cur = record(500, 1000.0, 0.40, 40); // 2% -> 40% overhead
        let d = diff_scale(&base, &cur, &Thresholds::default()).unwrap();
        assert!(d.regressed());
        assert!(render_diff(&d).contains("wal_overhead"));
    }

    #[test]
    fn subset_of_worker_counts_diffs_against_a_full_baseline() {
        let base = record(500, 1000.0, 0.02, 40);
        let mut cur = record(500, 1000.0, 0.02, 40);
        // Current run only measured workers=1.
        if let Value::Object(m) = &mut cur {
            if let Some(Value::Array(rows)) = m.get_mut("schedule_exploration") {
                rows.truncate(1);
            }
        }
        let d = diff_scale(&base, &cur, &Thresholds::default()).unwrap();
        assert!(!d.regressed(), "{}", render_diff(&d));
    }

    #[test]
    fn scenario_mismatch_is_an_error_and_env_mismatch_a_warning() {
        let base = record(500, 1000.0, 0.02, 40);
        let mut other = record(500, 1000.0, 0.02, 40);
        if let Value::Object(m) = &mut other {
            m.insert("scenario".into(), json!("kv/other"));
        }
        assert!(diff_scale(&base, &other, &Thresholds::default()).is_err());

        let mut newer = record(500, 1000.0, 0.02, 40);
        if let Value::Object(m) = &mut newer {
            if let Some(Value::Object(env)) = m.get_mut("env") {
                env.insert("rustc".into(), json!("rustc 2.0.0"));
            }
        }
        let d = diff_scale(&base, &newer, &Thresholds::default()).unwrap();
        assert!(
            d.warnings.iter().any(|w| w.contains("rustc")),
            "{:?}",
            d.warnings
        );
    }
}
