//! Parallel-explorer scaling measurement: run the same scenario at
//! several pool sizes and report throughput and speedup over one worker.
//!
//! The determinism contract means every row explores the *same* set of
//! executions, so the comparison is pure wall-clock — see
//! `cargo run --release -p perennial-bench --bin scale`.

use perennial_checker::{CheckConfig, Coverage, OutcomeCounts, Scenario};
use std::fmt::Write as _;
use std::time::Duration;

/// One pool size's measurement.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    pub workers: usize,
    pub executions: usize,
    /// How many of those executions carried a non-empty fault plan
    /// (non-zero only when the config enables the fault sweeps).
    pub fault_plans: usize,
    pub wall_time: Duration,
    pub execs_per_sec: f64,
    /// Throughput relative to the 1-worker row.
    pub speedup: f64,
    /// Outcome histogram (deterministic: identical across rows).
    pub outcomes: OutcomeCounts,
    /// Coverage accounting (deterministic: identical across rows).
    pub coverage: Coverage,
}

/// Runs `scenario` once per pool size in `worker_counts` (the base
/// config's own `workers` field is overridden per row).
pub fn run_scale(
    scenario: &Scenario,
    base: &CheckConfig,
    worker_counts: &[usize],
) -> Vec<ScaleRow> {
    let mut rows: Vec<ScaleRow> = Vec::new();
    let mut baseline: Option<f64> = None;
    for &workers in worker_counts {
        let mut cfg = base.clone();
        cfg.workers = workers.max(1);
        let report = scenario.run(&cfg);
        let per_sec = report.execs_per_sec;
        let base_rate = *baseline.get_or_insert(per_sec);
        rows.push(ScaleRow {
            workers: cfg.workers,
            executions: report.executions,
            fault_plans: report.fault_plans,
            wall_time: report.wall_time,
            execs_per_sec: per_sec,
            speedup: per_sec / base_rate.max(1e-9),
            outcomes: report.outcomes,
            coverage: report.coverage,
        });
    }
    rows
}

/// Renders the scaling table.
pub fn render_scale(name: &str, rows: &[ScaleRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Explorer scaling: {name}");
    let _ = writeln!(
        out,
        "{:>8} {:>12} {:>12} {:>12} {:>14} {:>9}",
        "workers", "executions", "fault plans", "wall time", "execs/sec", "speedup"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>8} {:>12} {:>12} {:>11.2}s {:>14.0} {:>8.2}x",
            r.workers,
            r.executions,
            r.fault_plans,
            r.wall_time.as_secs_f64(),
            r.execs_per_sec,
            r.speedup
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use perennial_checker::CheckConfig;

    #[test]
    fn scale_rows_share_the_execution_count() {
        let registry = crash_patterns::scenarios();
        let scenario = registry.get("patterns/wal").expect("registered");
        let cfg = CheckConfig::builder()
            .dfs_max_executions(50)
            .random_samples(5)
            .random_crash_samples(5)
            .nested_crash_sweep(false)
            .build();
        let rows = run_scale(scenario, &cfg, &[1, 2]);
        assert_eq!(rows.len(), 2);
        // Determinism contract: both pool sizes explore the same set,
        // with identical outcome histograms and coverage.
        assert_eq!(rows[0].executions, rows[1].executions);
        assert_eq!(rows[0].outcomes, rows[1].outcomes);
        assert_eq!(rows[0].coverage, rows[1].coverage);
        assert_eq!(rows[0].outcomes.total(), rows[0].executions as u64);
        assert!(rows[0].coverage.distinct_traces > 0);
        assert!((rows[0].speedup - 1.0).abs() < 1e-9);
        let table = render_scale("patterns/wal", &rows);
        assert!(table.contains("workers"));
        assert!(table.contains("speedup"));
    }
}
