//! Parallel-explorer scaling measurement: run the same scenario at
//! several pool sizes and report throughput and speedup over one worker.
//!
//! The determinism contract means every row explores the *same* set of
//! executions, so the comparison is pure wall-clock — see
//! `cargo run --release -p perennial-bench --bin scale`.

use perennial_checker::{
    trace_fingerprint, CheckConfig, Coverage, CoverageGuided, Exhaustive, OutcomeCounts, Scenario,
    ScenarioSet, SleepSetDpor, Strategy,
};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// One pool size's measurement.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    pub workers: usize,
    pub executions: usize,
    /// How many of those executions carried a non-empty fault plan
    /// (non-zero only when the config enables the fault sweeps).
    pub fault_plans: usize,
    pub wall_time: Duration,
    pub execs_per_sec: f64,
    /// Throughput relative to the 1-worker row.
    pub speedup: f64,
    /// Outcome histogram (deterministic: identical across rows).
    pub outcomes: OutcomeCounts,
    /// Coverage accounting (deterministic: identical across rows).
    pub coverage: Coverage,
}

/// Runs `scenario` once per pool size in `worker_counts` (the base
/// config's own `workers` field is overridden per row).
pub fn run_scale(
    scenario: &Scenario,
    base: &CheckConfig,
    worker_counts: &[usize],
) -> Vec<ScaleRow> {
    let mut rows: Vec<ScaleRow> = Vec::new();
    let mut baseline: Option<f64> = None;
    for &workers in worker_counts {
        let mut cfg = base.clone();
        cfg.workers = workers.max(1);
        let report = scenario.run(&cfg);
        let per_sec = report.execs_per_sec;
        let base_rate = *baseline.get_or_insert(per_sec);
        rows.push(ScaleRow {
            workers: cfg.workers,
            executions: report.executions,
            fault_plans: report.fault_plans,
            wall_time: report.wall_time,
            execs_per_sec: per_sec,
            speedup: per_sec / base_rate.max(1e-9),
            outcomes: report.outcomes,
            coverage: report.coverage,
        });
    }
    rows
}

/// Renders the scaling table.
pub fn render_scale(name: &str, rows: &[ScaleRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Explorer scaling: {name}");
    let _ = writeln!(
        out,
        "{:>8} {:>12} {:>12} {:>12} {:>14} {:>9}",
        "workers", "executions", "fault plans", "wall time", "execs/sec", "speedup"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>8} {:>12} {:>12} {:>11.2}s {:>14.0} {:>8.2}x",
            r.workers,
            r.executions,
            r.fault_plans,
            r.wall_time.as_secs_f64(),
            r.execs_per_sec,
            r.speedup
        );
    }
    out
}

// ---------------------------------------------------------------------
// Resume overhead: what does making a run resumable cost?
// ---------------------------------------------------------------------

/// Cost accounting for the checkpoint/resume machinery on one scenario.
///
/// Three runs: *cold* (no WAL), *walled* (same run writing its JSONL
/// write-ahead log), and *resumed* (re-run against the completed WAL,
/// replaying finished executions instead of re-executing them). The
/// acceptance target is `overhead() < 0.05`: writing the WAL costs
/// less than 5% of the cold wall time, so campaigns can always afford
/// to be resumable.
#[derive(Debug, Clone)]
pub struct ResumeRow {
    pub executions: usize,
    pub cold: Duration,
    pub walled: Duration,
    pub resumed: Duration,
    /// Executions the resumed run satisfied from the WAL.
    pub replayed: u64,
    /// All three runs produced the same report fingerprint.
    pub fingerprints_match: bool,
}

impl ResumeRow {
    /// Fractional wall-time cost of writing the WAL (0.03 = 3%).
    pub fn overhead(&self) -> f64 {
        self.walled.as_secs_f64() / self.cold.as_secs_f64().max(1e-9) - 1.0
    }

    /// How much faster a fully-replayed resume is than a cold run.
    pub fn resume_speedup(&self) -> f64 {
        self.cold.as_secs_f64() / self.resumed.as_secs_f64().max(1e-9)
    }
}

/// Measures checkpoint/resume cost for `scenario` using `wal` as the
/// log path (best wall time of `reps` runs per variant, to shave
/// scheduler noise). Sharded configs force keep-going semantics, so
/// the comparison uses `keep_going` on all three variants.
pub fn run_resume(
    scenario: &Scenario,
    base: &CheckConfig,
    wal: &std::path::Path,
    reps: usize,
) -> ResumeRow {
    use perennial_checker::report_fingerprint;
    let reps = reps.max(1);
    let mut cfg = base.clone();
    cfg.keep_going = true;

    let best = |f: &dyn Fn() -> perennial_checker::CheckReport| {
        let mut best: Option<perennial_checker::CheckReport> = None;
        for _ in 0..reps {
            let r = f();
            if best.as_ref().is_none_or(|b| r.wall_time < b.wall_time) {
                best = Some(r);
            }
        }
        best.expect("reps >= 1")
    };

    let cold = best(&|| scenario.run(&cfg));
    let walled = best(&|| {
        let mut c = cfg.clone();
        c.telemetry_path = Some(wal.to_path_buf());
        scenario.run(&c)
    });
    // One resumed run against the *complete* WAL: everything replayable
    // is replayed, which is the steady-state cost of the machinery.
    let mut rcfg = cfg.clone();
    rcfg.telemetry_path = Some(wal.to_path_buf());
    rcfg.resume_from = Some(wal.to_path_buf());
    let resumed = scenario.run(&rcfg);

    let fp = report_fingerprint(&cold);
    ResumeRow {
        executions: cold.executions,
        cold: cold.wall_time,
        walled: walled.wall_time,
        resumed: resumed.wall_time,
        replayed: resumed.replayed,
        fingerprints_match: report_fingerprint(&walled) == fp && report_fingerprint(&resumed) == fp,
    }
}

/// Renders the resume-overhead measurement.
pub fn render_resume(name: &str, row: &ResumeRow) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Checkpoint/resume cost: {name}");
    let _ = writeln!(
        out,
        "{:>12} {:>12} {:>12} {:>12} {:>10} {:>10} {:>4}",
        "executions", "cold", "with WAL", "resumed", "overhead", "speedup", "fp="
    );
    let _ = writeln!(
        out,
        "{:>12} {:>11.3}s {:>11.3}s {:>11.3}s {:>9.1}% {:>9.1}x {:>4}",
        row.executions,
        row.cold.as_secs_f64(),
        row.walled.as_secs_f64(),
        row.resumed.as_secs_f64(),
        row.overhead() * 100.0,
        row.resume_speedup(),
        if row.fingerprints_match { "yes" } else { "NO" },
    );
    let _ = writeln!(out, "({} executions replayed from the WAL)", row.replayed);
    out
}

// ---------------------------------------------------------------------
// Strategy reduction: executions-to-counterexample per mutant
// ---------------------------------------------------------------------

/// One strategy's result on one mutant scenario.
#[derive(Debug, Clone)]
pub struct StrategyCell {
    /// Executions performed before the run stopped (the canonical
    /// executions-to-counterexample count under `keep_going = false`).
    pub executions: usize,
    /// Sleep-set prunes charged to the DFS budget.
    pub pruned: u64,
    /// Coverage-guided (prefix-seeded) samples.
    pub guided: u64,
    /// `(pass name, ghost-trace fingerprint)` of the counterexample;
    /// `None` means the mutant escaped this strategy.
    pub fingerprint: Option<(String, u64)>,
}

/// Executions-to-counterexample across strategies for one mutant.
#[derive(Debug, Clone)]
pub struct ReductionRow {
    pub scenario: String,
    pub exhaustive: StrategyCell,
    pub dpor: StrategyCell,
    pub coverage: StrategyCell,
}

impl ReductionRow {
    /// Baseline-vs-DPOR executions ratio (>1 means DPOR needed fewer).
    pub fn dpor_ratio(&self) -> f64 {
        self.exhaustive.executions as f64 / (self.dpor.executions.max(1)) as f64
    }

    /// Baseline-vs-coverage-guided executions ratio.
    pub fn coverage_ratio(&self) -> f64 {
        self.exhaustive.executions as f64 / (self.coverage.executions.max(1)) as f64
    }

    /// Whether both reduced strategies found a counterexample equivalent
    /// to the baseline's. The crash and fault sweeps are strategy-
    /// independent, so a sweep-phase find must match the baseline's
    /// `(pass, ghost-trace fingerprint)` exactly; a find in the schedule
    /// phase (dfs/random) on either side is a different-but-equivalent
    /// interleaving of the same mutant and counts as agreement.
    pub fn fingerprints_agree(&self) -> bool {
        let Some((base_pass, _)) = &self.exhaustive.fingerprint else {
            return false;
        };
        let schedule = |p: &str| p == "dfs" || p == "random";
        let agrees = |c: &StrategyCell| match &c.fingerprint {
            None => false,
            Some((p, _)) if schedule(base_pass) || schedule(p) => true,
            Some(_) => c.fingerprint == self.exhaustive.fingerprint,
        };
        agrees(&self.dpor) && agrees(&self.coverage)
    }
}

fn run_cell(scenario: &Scenario, base: &CheckConfig, strategy: Arc<dyn Strategy>) -> StrategyCell {
    let mut cfg = base.clone();
    cfg.strategy = strategy;
    let report = scenario.run(&cfg);
    StrategyCell {
        executions: report.executions,
        pruned: report.pruned,
        guided: report.coverage_guided,
        fingerprint: report
            .counterexample
            .as_ref()
            .map(|cx| (cx.pass.to_string(), trace_fingerprint(&cx.trace))),
    }
}

/// Runs every mutant in `registry` under the three strategies and
/// reports executions-to-counterexample for each. `base.strategy` is
/// ignored; everything else (budgets, passes, workers) carries over.
pub fn run_reduction(registry: &ScenarioSet, base: &CheckConfig) -> Vec<ReductionRow> {
    let mut rows = Vec::new();
    for scenario in registry {
        rows.push(ReductionRow {
            scenario: scenario.name().to_string(),
            exhaustive: run_cell(scenario, base, Arc::new(Exhaustive)),
            dpor: run_cell(scenario, base, Arc::new(SleepSetDpor)),
            coverage: run_cell(scenario, base, Arc::new(CoverageGuided)),
        });
    }
    rows
}

/// Median of a ratio over the rows (0.0 for an empty slice).
pub fn median_ratio(rows: &[ReductionRow], ratio: impl Fn(&ReductionRow) -> f64) -> f64 {
    let mut v: Vec<f64> = rows.iter().map(ratio).collect();
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

/// Renders the reduction table.
pub fn render_reduction(rows: &[ReductionRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Executions to counterexample (exhaustive vs sleep-set DPOR vs coverage-guided)"
    );
    let _ = writeln!(
        out,
        "{:<36} {:>10} {:>10} {:>8} {:>10} {:>8} {:>6}",
        "mutant", "exhaustive", "dpor", "ratio", "coverage", "ratio", "fp="
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<36} {:>10} {:>10} {:>7.1}x {:>10} {:>7.1}x {:>6}",
            r.scenario,
            r.exhaustive.executions,
            r.dpor.executions,
            r.dpor_ratio(),
            r.coverage.executions,
            r.coverage_ratio(),
            if r.fingerprints_agree() { "yes" } else { "NO" },
        );
    }
    let _ = writeln!(
        out,
        "{:<36} {:>10} {:>10} {:>7.1}x {:>10} {:>7.1}x",
        "(median)",
        "",
        "",
        median_ratio(rows, ReductionRow::dpor_ratio),
        "",
        median_ratio(rows, ReductionRow::coverage_ratio),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use perennial_checker::CheckConfig;

    #[test]
    fn scale_rows_share_the_execution_count() {
        let registry = crash_patterns::scenarios();
        let scenario = registry.get("patterns/wal").expect("registered");
        let cfg = CheckConfig::builder()
            .dfs_max_executions(50)
            .random_samples(5)
            .random_crash_samples(5)
            .without_passes([perennial_checker::Pass::NestedCrash])
            .build();
        let rows = run_scale(scenario, &cfg, &[1, 2]);
        assert_eq!(rows.len(), 2);
        // Determinism contract: both pool sizes explore the same set,
        // with identical outcome histograms and coverage.
        assert_eq!(rows[0].executions, rows[1].executions);
        assert_eq!(rows[0].outcomes, rows[1].outcomes);
        assert_eq!(rows[0].coverage, rows[1].coverage);
        assert_eq!(rows[0].outcomes.total(), rows[0].executions as u64);
        assert!(rows[0].coverage.distinct_traces > 0);
        assert!((rows[0].speedup - 1.0).abs() < 1e-9);
        let table = render_scale("patterns/wal", &rows);
        assert!(table.contains("workers"));
        assert!(table.contains("speedup"));
    }
}
