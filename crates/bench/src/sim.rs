//! A discrete-event multicore contention simulator.
//!
//! The paper's Figure 11 was measured on a 2×6-core Xeon; this
//! reproduction runs in a single-core container (DESIGN.md §1's hardware
//! gate). The substitution: measure each server's *single-threaded*
//! operation costs on the real host, decompose each request into
//! segments that either run freely in parallel or serialize on a named
//! lock (a user's mailbox lock, a directory's write lock, the global
//! lock-file directory, a runtime/GC share), and simulate `n` closed-loop
//! cores executing those segment streams. Lock contention — the thing
//! that actually shapes Figure 11's curves — emerges from the segment
//! structure rather than being assumed.
//!
//! The simulator is deliberately simple and auditable: one event per
//! segment, FIFO lock grants in global-time order.

/// A lock a segment may serialize on.
pub type SimLockId = usize;

/// One segment of a request: `dur_ns` of work, optionally holding a
/// lock exclusively for its duration.
#[derive(Debug, Clone, Copy)]
pub struct Segment {
    /// Work duration in nanoseconds.
    pub dur_ns: u64,
    /// Lock held for the whole segment, if any.
    pub lock: Option<SimLockId>,
}

impl Segment {
    /// A segment that runs without any shared resource.
    pub fn parallel(dur_ns: u64) -> Self {
        Segment { dur_ns, lock: None }
    }

    /// A segment serialized on `lock`.
    pub fn locked(dur_ns: u64, lock: SimLockId) -> Self {
        Segment {
            dur_ns,
            lock: Some(lock),
        }
    }
}

/// One request: an ordered list of segments.
#[derive(Debug, Clone, Default)]
pub struct RequestProfile {
    /// The segments, executed in order.
    pub segments: Vec<Segment>,
}

impl RequestProfile {
    /// Total service demand (the no-contention request cost).
    pub fn demand_ns(&self) -> u64 {
        self.segments.iter().map(|s| s.dur_ns).sum()
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Cores simulated.
    pub cores: usize,
    /// Requests completed.
    pub requests: u64,
    /// Simulated makespan in nanoseconds.
    pub makespan_ns: u64,
}

impl SimResult {
    /// Simulated throughput in requests per second.
    pub fn req_per_sec(&self) -> f64 {
        self.requests as f64 / (self.makespan_ns as f64 / 1e9)
    }
}

/// Simulates `total_requests` requests over `cores` closed-loop workers.
///
/// `next_request(worker, index)` produces the profile of the `index`-th
/// request overall (the caller encodes its workload mix and user choice
/// there, typically with a seeded RNG).
pub fn simulate(
    cores: usize,
    total_requests: u64,
    num_locks: usize,
    mut next_request: impl FnMut(usize, u64) -> RequestProfile,
) -> SimResult {
    assert!(cores > 0, "at least one core");

    struct WState {
        t: u64,
        segs: Vec<Segment>,
        idx: usize,
        done: bool,
    }

    let mut workers: Vec<WState> = (0..cores)
        .map(|_| WState {
            t: 0,
            segs: Vec::new(),
            idx: 0,
            done: false,
        })
        .collect();
    let mut lock_free = vec![0u64; num_locks];
    let mut issued = 0u64;
    let mut makespan = 1u64;

    // Closed loop, advanced one *segment* at a time on the globally
    // earliest worker, so lock grants happen in (approximately) true
    // time order — a request holding a lock twice with parallel work in
    // between does not reserve the lock across the gap.
    while let Some(w) = workers
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.done)
        .min_by_key(|(_, s)| s.t)
        .map(|(i, _)| i)
    {
        let ws = &mut workers[w];
        if ws.idx == ws.segs.len() {
            if issued < total_requests {
                ws.segs = next_request(w, issued).segments;
                ws.idx = 0;
                issued += 1;
                if ws.segs.is_empty() {
                    makespan = makespan.max(ws.t);
                }
                continue;
            }
            ws.done = true;
            makespan = makespan.max(ws.t);
            continue;
        }
        let seg = ws.segs[ws.idx];
        ws.idx += 1;
        match seg.lock {
            None => ws.t += seg.dur_ns,
            Some(l) => {
                let start = ws.t.max(lock_free[l]);
                let end = start + seg.dur_ns;
                lock_free[l] = end;
                ws.t = end;
            }
        }
    }
    SimResult {
        cores,
        requests: total_requests,
        makespan_ns: makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_profile(dur: u64) -> RequestProfile {
        RequestProfile {
            segments: vec![Segment::parallel(dur)],
        }
    }

    #[test]
    fn fully_parallel_work_scales_linearly() {
        let t1 = simulate(1, 1000, 0, |_, _| flat_profile(1000));
        let t4 = simulate(4, 1000, 0, |_, _| flat_profile(1000));
        let speedup = t4.req_per_sec() / t1.req_per_sec();
        assert!((3.8..=4.2).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn fully_serial_work_does_not_scale() {
        let serial = |_, _| RequestProfile {
            segments: vec![Segment::locked(1000, 0)],
        };
        let t1 = simulate(1, 1000, 1, serial);
        let t8 = simulate(8, 1000, 1, serial);
        let speedup = t8.req_per_sec() / t1.req_per_sec();
        assert!(speedup < 1.1, "serial bottleneck must not scale: {speedup}");
    }

    #[test]
    fn amdahl_shape_for_mixed_work() {
        // 20% serial, 80% parallel → Amdahl limit 5×.
        let mixed = |_, _| RequestProfile {
            segments: vec![Segment::locked(200, 0), Segment::parallel(800)],
        };
        let t1 = simulate(1, 4000, 1, mixed);
        let t4 = simulate(4, 4000, 1, mixed);
        let t16 = simulate(16, 4000, 1, mixed);
        let s4 = t4.req_per_sec() / t1.req_per_sec();
        let s16 = t16.req_per_sec() / t1.req_per_sec();
        assert!(s4 > 2.0 && s4 < 4.0, "s4 = {s4}");
        assert!(s16 > s4 && s16 <= 5.2, "s16 = {s16}");
    }

    #[test]
    fn per_user_locks_spread_contention() {
        // The same serial demand split over 8 user locks scales far
        // better than over one.
        let one_lock = |_, _i: u64| RequestProfile {
            segments: vec![Segment::locked(500, 0), Segment::parallel(500)],
        };
        let many_locks = |_, i: u64| RequestProfile {
            segments: vec![
                Segment::locked(500, (i % 8) as usize),
                Segment::parallel(500),
            ],
        };
        let base1 = simulate(1, 4000, 1, one_lock);
        let base8 = simulate(1, 4000, 8, many_locks);
        let s_one = simulate(8, 4000, 1, one_lock).req_per_sec() / base1.req_per_sec();
        let s_many = simulate(8, 4000, 8, many_locks).req_per_sec() / base8.req_per_sec();
        assert!(
            s_many > s_one + 1.0,
            "many locks {s_many} vs one lock {s_one}"
        );
    }

    #[test]
    fn makespan_counts_all_work_on_one_core() {
        let r = simulate(1, 100, 0, |_, _| flat_profile(1_000));
        assert_eq!(r.makespan_ns, 100_000);
    }
}
