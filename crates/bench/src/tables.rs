//! Rendering for the per-table/figure harness output, plus the Table 1
//! and Table 3 experiment drivers.

use crate::fig11::Fig11Report;
use crate::loc::LocRow;
use perennial_checker::{CheckConfig, CheckReport, ScenarioSet};

/// Renders a LoC comparison table.
pub fn render_loc_table(title: &str, rows: &[LocRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str(&format!(
        "{:<28} {:>10} {:>10}  {}\n",
        "Component", "paper LoC", "ours LoC", "mapping"
    ));
    for r in rows {
        let paper = r
            .paper
            .map(|v| v.to_string())
            .unwrap_or_else(|| "—".to_string());
        let ours = r
            .ours
            .map(|v| v.to_string())
            .unwrap_or_else(|| "n/a".to_string());
        out.push_str(&format!(
            "{:<28} {:>10} {:>10}  {}\n",
            r.component, paper, ours, r.note
        ));
    }
    out
}

/// Table 1 is the techniques summary; its executable form is the
/// `table1_*` test family in `crates/core/tests/table1.rs`. The harness
/// prints the mapping.
pub fn render_table1() -> String {
    let rows: &[(&str, &str)] = &[
        (
            "crash invariant (§5.1)",
            "table1_crash_invariant_masters_survive_crash / _volatile_resources_are_lost",
        ),
        (
            "versioned memory (§5.2)",
            "table1_versioned_memory_current_version_read_write / _stale_write_rejected",
        ),
        (
            "recovery leases (§5.3)",
            "table1_lease_write_requires_current_lease / _synthesized_after_crash_exactly_once / _for_wrong_resource_rejected",
        ),
        (
            "refinement (§4)",
            "table1_refinement_commit_advances_source / _double_commit_rejected / _finish_without_commit_rejected / _return_value_mismatch_rejected / _spec_undefined_behaviour_rejected",
        ),
        (
            "crash refinement (§5.5)",
            "table1_crash_refinement_token_lifecycle / _ops_blocked_until_recovery / _crash_during_recovery_collapses / _crash_transition_applied",
        ),
        (
            "recovery helping (§5.4)",
            "table1_helping_recovery_completes_crashed_op / _no_crash_path_unstashes / _outside_recovery_rejected / _missing_token_rejected / _stashed_op_cannot_self_commit",
        ),
    ];
    let mut out = String::new();
    out.push_str("== Table 1: Perennial techniques as executable laws ==\n");
    out.push_str("Each rule of the paper's Table 1 is enforced by the ghost engine and\n");
    out.push_str("exercised (rule + violation) by named tests in crates/core/tests/table1.rs:\n\n");
    for (technique, tests) in rows {
        out.push_str(&format!("  {technique}\n      {tests}\n"));
    }
    out.push_str("\nRun them with: cargo test -p perennial --test table1\n");
    out
}

/// The scenarios Table 3's dynamic half runs: the default workload of
/// each system, pulled from the per-crate registries.
pub fn pattern_scenarios() -> ScenarioSet {
    let mut all = ScenarioSet::new();
    all.extend(repldisk::harness::scenarios());
    all.extend(crash_patterns::scenarios());
    all.extend(mailboat::scenarios());
    all.extend(perennial_kv::scenarios());
    let mut set = ScenarioSet::new();
    for name in [
        "repldisk/mixed",
        "patterns/shadow",
        "patterns/wal",
        "patterns/group-commit",
        "mailboat/deliver-vs-pickup",
        "kv/cross-bucket",
    ] {
        set.register(all.get(name).expect("registered scenario").clone());
    }
    set
}

/// Table 3's dynamic half: check every crash-safety pattern and report
/// the exploration statistics next to the LoC counts.
pub fn run_pattern_checks(config: &CheckConfig) -> Vec<CheckReport> {
    pattern_scenarios().run_all(config)
}

/// Renders the pattern-check statistics.
pub fn render_check_reports(reports: &[CheckReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<18} {:>10} {:>12} {:>9} {:>13} {:>8}  {}\n",
        "Scenario", "executions", "steps", "crashes", "crash points", "helped", "verdict"
    ));
    for r in reports {
        out.push_str(&format!(
            "{:<18} {:>10} {:>12} {:>9} {:>13} {:>8}  {}\n",
            r.name,
            r.executions,
            r.total_steps,
            r.crashes_injected,
            r.crash_points,
            r.helped_ops,
            if r.passed() { "PASS" } else { "FAIL" }
        ));
    }
    out
}

/// Renders the Figure 11 report as the paper's series.
pub fn render_fig11(report: &Fig11Report) -> String {
    let mut out = String::new();
    out.push_str("== Figure 11: throughput vs cores (requests/sec) ==\n\n");
    out.push_str(&format!(
        "Measured on this host, 1 core  : Mailboat {:>9.0}  GoMail {:>9.0}  CMAIL {:>9.0}\n",
        report.series[0].measured_1core,
        report.series[1].measured_1core,
        report.series[2].measured_1core,
    ));
    let r_mg = report.series[0].measured_1core / report.series[1].measured_1core;
    let r_gc = report.series[1].measured_1core / report.series[2].measured_1core;
    out.push_str(&format!(
        "Single-core ratios             : Mailboat/GoMail = {r_mg:.2}x (paper 1.81x), \
         GoMail/CMAIL = {r_gc:.2}x (paper 1.34x, calibrated)\n",
    ));
    out.push_str(&format!(
        "CMAIL overhead calibration     : {} burn iterations/request\n\n",
        report.cmail_overhead_iters
    ));
    out.push_str("Simulated multicore curves (single-core host; DES over measured costs,\nsee DESIGN.md §1):\n\n");
    out.push_str(&format!("{:<8}", "cores"));
    for s in &report.series {
        out.push_str(&format!("{:>12}", s.name));
    }
    out.push('\n');
    let npoints = report.series[0].points.len();
    for i in 0..npoints {
        out.push_str(&format!("{:<8}", report.series[0].points[i].0));
        for s in &report.series {
            out.push_str(&format!("{:>12.0}", s.points[i].1));
        }
        out.push('\n');
    }
    out.push('\n');
    for s in &report.series {
        let t1 = s.points.first().map(|p| p.1).unwrap_or(1.0);
        let (nl, tl) = *s.points.last().unwrap();
        out.push_str(&format!(
            "{:<10} speedup at {} cores: {:.2}x (sublinear: < {}x)\n",
            s.name,
            nl,
            tl / t1,
            nl
        ));
    }
    out
}

/// Costs section for provenance.
pub fn render_costs(report: &Fig11Report) -> String {
    let c = &report.costs_ns;
    format!(
        "Measured request costs (ns): mailboat deliver {} / pickup {}; gomail deliver {} / pickup {}; \
         fs create {} link {} delete {}; burn {} ns/kiter\n",
        c.mb_deliver,
        c.mb_pickup,
        c.gm_deliver,
        c.gm_pickup,
        c.fs_create,
        c.fs_link,
        c.fs_delete,
        c.burn_per_kiter
    )
}
