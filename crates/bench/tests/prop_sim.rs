//! Property tests for the multicore contention simulator: physical
//! sanity laws that must hold for any workload.

use perennial_bench::sim::{simulate, RequestProfile, Segment};
use proptest::prelude::*;

fn arb_profile() -> impl Strategy<Value = Vec<Segment>> {
    proptest::collection::vec(
        prop_oneof![
            (1u64..2000).prop_map(Segment::parallel),
            (1u64..2000, 0usize..4).prop_map(|(d, l)| Segment::locked(d, l)),
        ],
        1..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Throughput (essentially) never decreases when adding cores. The
    /// greedy earliest-worker schedule can reorder lock grants slightly
    /// as workers are added, so small (<2%) dips are within the
    /// heuristic's tolerance; anything larger is a simulator bug.
    #[test]
    fn throughput_monotone_in_cores(segs in arb_profile()) {
        let profile = RequestProfile { segments: segs };
        let mut last = 0.0f64;
        for cores in [1usize, 2, 4, 8] {
            let r = simulate(cores, 800, 4, |_, _| profile.clone());
            let tput = r.req_per_sec();
            prop_assert!(
                tput >= last * 0.98,
                "throughput dropped from {} to {} at {} cores", last, tput, cores
            );
            last = tput;
        }
    }

    /// One core's makespan equals the total service demand exactly.
    #[test]
    fn single_core_makespan_is_total_demand(segs in arb_profile(), n in 1u64..200) {
        let profile = RequestProfile { segments: segs };
        let demand = profile.demand_ns();
        let r = simulate(1, n, 4, |_, _| profile.clone());
        prop_assert_eq!(r.makespan_ns, demand * n);
    }

    /// Speedup never exceeds the core count (no superlinear scaling).
    #[test]
    fn speedup_bounded_by_cores(segs in arb_profile(), cores in 2usize..10) {
        let profile = RequestProfile { segments: segs };
        let t1 = simulate(1, 500, 4, |_, _| profile.clone()).req_per_sec();
        let tn = simulate(cores, 500, 4, |_, _| profile.clone()).req_per_sec();
        prop_assert!(tn <= t1 * cores as f64 * 1.001, "superlinear: {} vs {}", tn, t1);
    }

    /// A fully-serial workload's throughput is capped by the bottleneck
    /// lock's demand, regardless of cores.
    #[test]
    fn serial_bottleneck_caps_throughput(dur in 10u64..1000, cores in 1usize..12) {
        let profile = RequestProfile { segments: vec![Segment::locked(dur, 0)] };
        let r = simulate(cores, 500, 1, |_, _| profile.clone());
        let cap = 1e9 / dur as f64;
        prop_assert!(r.req_per_sec() <= cap * 1.001);
        prop_assert!(r.req_per_sec() >= cap * 0.9, "under-utilized bottleneck");
    }
}
