//! Captures `rustc --version` at build time so [`EnvStamp`] can stamp
//! telemetry streams and perf baselines with the toolchain that
//! produced them (std-only; no network, no extra deps).

use std::process::Command;

fn main() {
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".to_string());
    let version = Command::new(&rustc)
        .arg("--version")
        .output()
        .ok()
        .filter(|out| out.status.success())
        .map(|out| String::from_utf8_lossy(&out.stdout).trim().to_string())
        .unwrap_or_else(|| "rustc unknown".to_string());
    println!("cargo:rustc-env=CHECKER_RUSTC_VERSION={version}");
    println!("cargo:rerun-if-env-changed=RUSTC");
}
