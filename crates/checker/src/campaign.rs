//! Campaign tooling: sharding, report serialization, and shard-merge.
//!
//! A *campaign* runs a set of scenarios (optionally × mutants × fault
//! passes) as one deterministically partitioned workload. Three pieces
//! live here:
//!
//! - [`parse_shard`] — the `i/n` command-line shard syntax shared by
//!   the drivers (`scan`, `scale`, `scenario_smoke`).
//! - [`report_to_json`] / [`report_from_json`] — a lossless-enough
//!   [`CheckReport`] serialization for cross-process merging. One thing
//!   does not survive: a counterexample's [`ExecOutcome`] payload comes
//!   back as [`GhostError::Imported`] carrying the rendered message, so
//!   fingerprints (which hash the rendering) round-trip exactly.
//! - [`merge_reports`] — recombines one report per shard into the
//!   report an unsharded run of the same configuration would produce:
//!   statistics and histograms sum, coverage sets union, enumerable
//!   horizons agree by construction, and the canonical counterexample
//!   is the minimum-key failure across all shards.
//!
//! [`report_fingerprint`] is the campaign's equality oracle: a hash of
//! the report's deterministic content (timing, worker count, shard
//! assignment, and the replayed-execution diagnostic excluded). The
//! robustness contract — pinned by `tests/shard_resume.rs` and the CI
//! `campaign` job — is that sharded-then-merged and killed-then-resumed
//! runs produce the same fingerprint as one uninterrupted run.

use crate::explore::{CheckReport, Counterexample, ExecOutcome};
use crate::metrics::{trace_fingerprint, Histogram, OutcomeKind, PassMetrics};
use crate::pass::Pass;
use goose_rt::fault::{FaultPlan, NetFault, TornMode};
use perennial::GhostError;
use serde_json::{json, Map, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

/// Parses the `i/n` shard syntax: `0/4` is the first of four shards.
pub fn parse_shard(s: &str) -> Result<(u32, u32), String> {
    let (i, n) = s
        .split_once('/')
        .ok_or_else(|| format!("shard {s:?}: expected i/n, e.g. 0/4"))?;
    let i: u32 = i.parse().map_err(|_| format!("shard index {i:?}"))?;
    let n: u32 = n.parse().map_err(|_| format!("shard count {n:?}"))?;
    if n == 0 || i >= n {
        return Err(format!("shard {i}/{n}: index must satisfy i < n, n > 0"));
    }
    Ok((i, n))
}

/// 64-bit values go through JSON as hex strings (the shim's numbers are
/// f64; see `telemetry::hex64`). Zero-padded to a fixed 16 hex digits,
/// same invariant as the telemetry stream.
fn hex64(v: u64) -> String {
    format!("{v:#018x}")
}

fn faults_to_json(f: &FaultPlan) -> Value {
    let torn = f.torn.map(|t| match t {
        TornMode::KeepAll => "keep-all".to_string(),
        TornMode::KeepNone => "keep-none".to_string(),
        TornMode::Subset(k) => format!("subset:{k}"),
    });
    json!({
        "transient_io": f.transient_io.iter().copied().collect::<Vec<u64>>(),
        "torn": torn,
        "disk_fail": f.disk_fail.map(|(d, g)| vec![d as u64, g]),
        "net": f
            .net
            .iter()
            .map(|(i, nf)| {
                let name = match nf {
                    NetFault::Drop => "drop",
                    NetFault::Duplicate => "duplicate",
                    NetFault::Delay => "delay",
                };
                json!([i, name])
            })
            .collect::<Vec<Value>>(),
    })
}

fn outcome_to_json(o: &ExecOutcome) -> Value {
    let msg = match o {
        ExecOutcome::Ok | ExecOutcome::Deadlock => String::new(),
        ExecOutcome::Violation(e) => e.to_string(),
        ExecOutcome::Ub(m)
        | ExecOutcome::Bug(m)
        | ExecOutcome::FinalCheckFailed(m)
        | ExecOutcome::HarnessPanic(m) => m.clone(),
        ExecOutcome::Wedged(b) => b.to_string(),
    };
    json!({ "kind": OutcomeKind::of(o).name(), "msg": msg })
}

fn cx_to_json(cx: &Counterexample) -> Value {
    json!({
        "outcome": outcome_to_json(&cx.outcome),
        "pass": cx.pass.name(),
        "index": cx.index,
        "seed": hex64(cx.seed),
        "schedule_prefix": cx.schedule_prefix.iter().map(|v| *v as u64).collect::<Vec<u64>>(),
        "crash_points": cx.crash_points.clone(),
        "clamped": cx.clamped.iter().map(|v| *v as u64).collect::<Vec<u64>>(),
        "faults": faults_to_json(&cx.faults),
        "trace": cx.trace.clone(),
        // `cx.timeline` is deliberately NOT serialized: it is a debug
        // payload (re-derivable by replaying the counterexample) and
        // keeping it out of campaign JSON keeps report fingerprints
        // identical whether trace capture was on or off.
    })
}

fn hist_to_json(h: &Histogram) -> Value {
    json!({
        "buckets": h.raw_buckets().to_vec(),
        "count": h.count(),
        "sum": h.sum(),
        "max": h.max(),
    })
}

/// Serializes a [`CheckReport`] for cross-process merging and the
/// campaign fingerprint. The inverse is [`report_from_json`].
pub fn report_to_json(r: &CheckReport) -> Value {
    let mut outcomes = Map::new();
    for (name, n) in r.outcomes.entries() {
        outcomes.insert(name.to_string(), serde_json::to_value(&n));
    }
    json!({
        "name": r.name.clone(),
        "executions": r.executions as u64,
        "total_steps": r.total_steps,
        "crashes_injected": r.crashes_injected as u64,
        "crash_points": r.crash_points as u64,
        "fault_plans": r.fault_plans as u64,
        "helped_ops": r.helped_ops,
        "disk_reads": r.disk_reads,
        "disk_writes": r.disk_writes,
        "disk_flushes": r.disk_flushes,
        "net_sends": r.net_sends,
        "net_recvs": r.net_recvs,
        "strategy": r.strategy.clone(),
        "pruned": r.pruned,
        "coverage_guided": r.coverage_guided,
        "outcomes": Value::Object(outcomes),
        "counterexamples": r.counterexamples.iter().map(cx_to_json).collect::<Vec<Value>>(),
        "per_pass": r
            .per_pass
            .iter()
            .map(|pm| {
                json!({
                    "pass": pm.pass.name(),
                    "executions": pm.executions,
                    "steps": pm.steps,
                    "crashes": pm.crashes,
                    "fault_plans": pm.fault_plans,
                    "failures": pm.failures,
                    "pruned": pm.pruned,
                    "coverage_guided": pm.coverage_guided,
                    "busy_time_us": pm.busy_time.as_micros() as u64,
                })
            })
            .collect::<Vec<Value>>(),
        "steps_hist": hist_to_json(&r.steps_hist),
        "depth_hist": hist_to_json(&r.depth_hist),
        "coverage": {
            "crash_points_enumerable": r.coverage.crash_points_enumerable,
            "disk_fault_plans_exercised": r.coverage.disk_fault_plans_exercised,
            "disk_fault_plans_enumerable": r.coverage.disk_fault_plans_enumerable,
            "torn_plans_exercised": r.coverage.torn_plans_exercised,
            "torn_plans_enumerable": r.coverage.torn_plans_enumerable,
            "net_plans_exercised": r.coverage.net_plans_exercised,
            "net_plans_enumerable": r.coverage.net_plans_enumerable,
        },
        "crash_point_set": r.crash_point_set.iter().copied().collect::<Vec<u64>>(),
        "trace_fps": r.trace_fps.iter().map(|fp| hex64(*fp)).collect::<Vec<String>>(),
        "shard": r.shard.map(|(i, n)| format!("{i}/{n}")),
        "replayed": r.replayed,
        "incomplete": r.incomplete.clone(),
        "workers": r.workers as u64,
        // The environment stamp is volatile (it names the machine's
        // toolchain and pool size), but serialized so baselines and
        // archived campaign reports say where they came from.
        // `r.profile` is deliberately NOT serialized, like
        // `cx.timeline`: both are debug/observability side channels,
        // and excluding them keeps report fingerprints identical
        // whether profiling (or trace capture) was on or off.
        "env": r.env.to_json(),
        "wall_time_s": r.wall_time.as_secs_f64(),
        "execs_per_sec": r.execs_per_sec,
    })
}

fn get<'a>(m: &'a Map, k: &str) -> Result<&'a Value, String> {
    m.get(k).ok_or_else(|| format!("missing field {k:?}"))
}

fn get_u64(m: &Map, k: &str) -> Result<u64, String> {
    match get(m, k)? {
        Value::Number(n) if *n >= 0.0 => Ok(*n as u64),
        v => Err(format!("field {k:?}: expected number, got {v:?}")),
    }
}

fn get_str(m: &Map, k: &str) -> Result<String, String> {
    match get(m, k)? {
        Value::String(s) => Ok(s.clone()),
        v => Err(format!("field {k:?}: expected string, got {v:?}")),
    }
}

fn get_hex(m: &Map, k: &str) -> Result<u64, String> {
    let s = get_str(m, k)?;
    u64::from_str_radix(s.trim_start_matches("0x"), 16)
        .map_err(|e| format!("field {k:?}: bad hex {s:?}: {e}"))
}

fn get_arr<'a>(m: &'a Map, k: &str) -> Result<&'a [Value], String> {
    match get(m, k)? {
        Value::Array(items) => Ok(items),
        v => Err(format!("field {k:?}: expected array, got {v:?}")),
    }
}

fn get_obj<'a>(m: &'a Map, k: &str) -> Result<&'a Map, String> {
    match get(m, k)? {
        Value::Object(o) => Ok(o),
        v => Err(format!("field {k:?}: expected object, got {v:?}")),
    }
}

fn num_array(items: &[Value], what: &str) -> Result<Vec<u64>, String> {
    items
        .iter()
        .map(|v| match v {
            Value::Number(n) if *n >= 0.0 => Ok(*n as u64),
            other => Err(format!("{what}: expected number, got {other:?}")),
        })
        .collect()
}

fn outcome_from_json(m: &Map) -> Result<ExecOutcome, String> {
    let kind = get_str(m, "kind")?;
    let msg = get_str(m, "msg")?;
    Ok(match kind.as_str() {
        "ok" => ExecOutcome::Ok,
        "violation" => ExecOutcome::Violation(GhostError::Imported { msg }),
        "ub" => ExecOutcome::Ub(msg),
        "bug" => ExecOutcome::Bug(msg),
        "deadlock" => ExecOutcome::Deadlock,
        "final_check_failed" => ExecOutcome::FinalCheckFailed(msg),
        "wedged" => ExecOutcome::Wedged(
            msg.parse()
                .map_err(|e| format!("wedged budget {msg:?}: {e}"))?,
        ),
        "harness_panic" => ExecOutcome::HarnessPanic(msg),
        other => return Err(format!("unknown outcome kind {other:?}")),
    })
}

#[allow(clippy::field_reassign_with_default)] // each field's parse can fail; a struct literal can't `?` per field readably
fn faults_from_json(m: &Map) -> Result<FaultPlan, String> {
    let mut f = FaultPlan::default();
    f.transient_io = num_array(get_arr(m, "transient_io")?, "transient_io")?
        .into_iter()
        .collect();
    f.torn = match get(m, "torn")? {
        Value::Null => None,
        Value::String(s) => Some(match s.as_str() {
            "keep-all" => TornMode::KeepAll,
            "keep-none" => TornMode::KeepNone,
            other => match other.strip_prefix("subset:") {
                Some(k) => TornMode::Subset(k.parse().map_err(|e| format!("torn {other:?}: {e}"))?),
                None => return Err(format!("unknown torn mode {other:?}")),
            },
        }),
        v => return Err(format!("torn: expected string or null, got {v:?}")),
    };
    f.disk_fail = match get(m, "disk_fail")? {
        Value::Null => None,
        Value::Array(pair) => {
            let pair = num_array(pair, "disk_fail")?;
            match pair.as_slice() {
                [d, g] => Some((*d as u8, *g)),
                _ => return Err("disk_fail: expected [disk, grant]".to_string()),
            }
        }
        v => return Err(format!("disk_fail: expected array or null, got {v:?}")),
    };
    for entry in get_arr(m, "net")? {
        let Value::Array(pair) = entry else {
            return Err(format!("net: expected [index, fault], got {entry:?}"));
        };
        let (Some(Value::Number(i)), Some(Value::String(name))) = (pair.first(), pair.get(1))
        else {
            return Err(format!("net: expected [index, fault], got {entry:?}"));
        };
        let nf = match name.as_str() {
            "drop" => NetFault::Drop,
            "duplicate" => NetFault::Duplicate,
            "delay" => NetFault::Delay,
            other => return Err(format!("unknown net fault {other:?}")),
        };
        f.net.insert(*i as u64, nf);
    }
    Ok(f)
}

fn cx_from_json(v: &Value) -> Result<Counterexample, String> {
    let Value::Object(m) = v else {
        return Err(format!("counterexample: expected object, got {v:?}"));
    };
    Ok(Counterexample {
        outcome: outcome_from_json(get_obj(m, "outcome")?)?,
        pass: get_str(m, "pass")?
            .parse::<Pass>()
            .map_err(|e| e.to_string())?,
        index: get_u64(m, "index")?,
        seed: get_hex(m, "seed")?,
        schedule_prefix: num_array(get_arr(m, "schedule_prefix")?, "schedule_prefix")?
            .into_iter()
            .map(|v| v as usize)
            .collect(),
        crash_points: num_array(get_arr(m, "crash_points")?, "crash_points")?,
        clamped: num_array(get_arr(m, "clamped")?, "clamped")?
            .into_iter()
            .map(|v| v as usize)
            .collect(),
        faults: faults_from_json(get_obj(m, "faults")?)?,
        trace: get_str(m, "trace")?,
        timeline: None,
    })
}

fn hist_from_json(m: &Map) -> Result<Histogram, String> {
    Ok(Histogram::from_parts(
        num_array(get_arr(m, "buckets")?, "buckets")?,
        get_u64(m, "count")?,
        get_u64(m, "sum")?,
        get_u64(m, "max")?,
    ))
}

/// Deserializes a report written by [`report_to_json`].
pub fn report_from_json(v: &Value) -> Result<CheckReport, String> {
    let Value::Object(m) = v else {
        return Err("report: expected a JSON object".to_string());
    };
    let mut r = CheckReport {
        name: get_str(m, "name")?,
        executions: get_u64(m, "executions")? as usize,
        total_steps: get_u64(m, "total_steps")?,
        crashes_injected: get_u64(m, "crashes_injected")? as usize,
        crash_points: get_u64(m, "crash_points")? as usize,
        fault_plans: get_u64(m, "fault_plans")? as usize,
        helped_ops: get_u64(m, "helped_ops")?,
        disk_reads: get_u64(m, "disk_reads")?,
        disk_writes: get_u64(m, "disk_writes")?,
        disk_flushes: get_u64(m, "disk_flushes")?,
        net_sends: get_u64(m, "net_sends")?,
        net_recvs: get_u64(m, "net_recvs")?,
        strategy: get_str(m, "strategy")?,
        pruned: get_u64(m, "pruned")?,
        coverage_guided: get_u64(m, "coverage_guided")?,
        replayed: get_u64(m, "replayed")?,
        workers: get_u64(m, "workers")? as usize,
        ..CheckReport::default()
    };
    let outcomes = get_obj(m, "outcomes")?;
    r.outcomes.ok = get_u64(outcomes, "ok")?;
    r.outcomes.violation = get_u64(outcomes, "violation")?;
    r.outcomes.ub = get_u64(outcomes, "ub")?;
    r.outcomes.bug = get_u64(outcomes, "bug")?;
    r.outcomes.deadlock = get_u64(outcomes, "deadlock")?;
    r.outcomes.final_check_failed = get_u64(outcomes, "final_check_failed")?;
    r.outcomes.wedged = get_u64(outcomes, "wedged")?;
    r.outcomes.harness_panic = get_u64(outcomes, "harness_panic")?;
    for cx in get_arr(m, "counterexamples")? {
        r.counterexamples.push(cx_from_json(cx)?);
    }
    r.counterexample = r.counterexamples.first().cloned();
    for pm in get_arr(m, "per_pass")? {
        let Value::Object(p) = pm else {
            return Err(format!("per_pass: expected object, got {pm:?}"));
        };
        let pass = get_str(p, "pass")?
            .parse::<Pass>()
            .map_err(|e| e.to_string())?;
        r.per_pass.push(PassMetrics {
            pass,
            rank: pass.rank(),
            executions: get_u64(p, "executions")?,
            steps: get_u64(p, "steps")?,
            crashes: get_u64(p, "crashes")?,
            fault_plans: get_u64(p, "fault_plans")?,
            failures: get_u64(p, "failures")?,
            pruned: get_u64(p, "pruned")?,
            coverage_guided: get_u64(p, "coverage_guided")?,
            busy_time: Duration::from_micros(get_u64(p, "busy_time_us")?),
        });
    }
    r.steps_hist = hist_from_json(get_obj(m, "steps_hist")?)?;
    r.depth_hist = hist_from_json(get_obj(m, "depth_hist")?)?;
    let cov = get_obj(m, "coverage")?;
    r.coverage.crash_points_enumerable = get_u64(cov, "crash_points_enumerable")?;
    r.coverage.disk_fault_plans_exercised = get_u64(cov, "disk_fault_plans_exercised")?;
    r.coverage.disk_fault_plans_enumerable = get_u64(cov, "disk_fault_plans_enumerable")?;
    r.coverage.torn_plans_exercised = get_u64(cov, "torn_plans_exercised")?;
    r.coverage.torn_plans_enumerable = get_u64(cov, "torn_plans_enumerable")?;
    r.coverage.net_plans_exercised = get_u64(cov, "net_plans_exercised")?;
    r.coverage.net_plans_enumerable = get_u64(cov, "net_plans_enumerable")?;
    r.crash_point_set = num_array(get_arr(m, "crash_point_set")?, "crash_point_set")?
        .into_iter()
        .collect();
    for fp in get_arr(m, "trace_fps")? {
        let Value::String(s) = fp else {
            return Err(format!("trace_fps: expected hex string, got {fp:?}"));
        };
        let fp = u64::from_str_radix(s.trim_start_matches("0x"), 16)
            .map_err(|e| format!("trace_fps {s:?}: {e}"))?;
        r.trace_fps.insert(fp);
    }
    r.coverage.crash_points_exercised = r.crash_point_set.len() as u64;
    r.coverage.distinct_traces = r.trace_fps.len() as u64;
    r.shard = match get(m, "shard")? {
        Value::Null => None,
        Value::String(s) => Some(parse_shard(s)?),
        v => return Err(format!("shard: expected string or null, got {v:?}")),
    };
    for msg in get_arr(m, "incomplete")? {
        let Value::String(s) = msg else {
            return Err(format!("incomplete: expected string, got {msg:?}"));
        };
        r.incomplete.push(s.clone());
    }
    r.wall_time = match get(m, "wall_time_s")? {
        Value::Number(n) if *n >= 0.0 => Duration::from_secs_f64(*n),
        v => return Err(format!("wall_time_s: expected number, got {v:?}")),
    };
    r.execs_per_sec = match get(m, "execs_per_sec")? {
        Value::Number(n) => *n,
        v => return Err(format!("execs_per_sec: expected number, got {v:?}")),
    };
    // Lenient: reports serialized before the env stamp existed (or
    // hand-stripped ones) deserialize with an empty stamp.
    r.env = m
        .get("env")
        .and_then(crate::telemetry::EnvStamp::from_json)
        .unwrap_or_default();
    Ok(r)
}

/// Keys excluded from [`report_fingerprint`]: wall-clock timing, pool
/// size, shard assignment, and the resume diagnostic — everything that
/// may differ between two runs that checked the same executions.
pub const VOLATILE_KEYS: [&str; 8] = [
    "wall_time_s",
    "execs_per_sec",
    "busy_time_us",
    "workers",
    "shard",
    "replayed",
    "duration_us",
    "env",
];

fn strip_volatile(v: &Value) -> Value {
    match v {
        Value::Object(map) => {
            let mut out = Map::new();
            for (k, val) in map.iter() {
                if !VOLATILE_KEYS.contains(&k.as_str()) {
                    out.insert(k.clone(), strip_volatile(val));
                }
            }
            Value::Object(out)
        }
        Value::Array(items) => Value::Array(items.iter().map(strip_volatile).collect()),
        other => other.clone(),
    }
}

/// A hash of the report's deterministic content. Two runs of the same
/// configuration — whatever their worker count, shard split, or
/// kill/resume history — must agree on this value.
pub fn report_fingerprint(r: &CheckReport) -> u64 {
    let canon = strip_volatile(&report_to_json(r));
    trace_fingerprint(&serde_json::to_string(&canon).expect("shim serialization is infallible"))
}

/// Merges one [`CheckReport`] per shard (a complete `0..n` cover, all
/// from the same scenario) into the report an unsharded run would have
/// produced. See the module docs for the field-by-field rules.
pub fn merge_reports(mut reports: Vec<CheckReport>) -> Result<CheckReport, String> {
    let Some(first) = reports.first() else {
        return Err("nothing to merge".to_string());
    };
    let name = first.name.clone();
    let n = match first.shard {
        Some((_, n)) => n,
        None => return Err(format!("report for {name:?} is not a shard")),
    };
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    for r in &reports {
        if r.name != name {
            return Err(format!(
                "cannot merge shards of different scenarios: {name:?} vs {:?}",
                r.name
            ));
        }
        match r.shard {
            Some((i, m)) if m == n => {
                if !seen.insert(i) {
                    return Err(format!("duplicate shard {i}/{n} for {name:?}"));
                }
            }
            other => {
                return Err(format!(
                    "shard mismatch for {name:?}: expected i/{n}, got {other:?}"
                ))
            }
        }
    }
    if seen.len() != n as usize {
        return Err(format!(
            "incomplete cover for {name:?}: {} of {n} shards",
            seen.len()
        ));
    }
    reports.sort_by_key(|r| r.shard.map(|(i, _)| i));

    let mut out = CheckReport {
        name,
        strategy: reports[0].strategy.clone(),
        // The stamp survives the merge: shards of one campaign share a
        // toolchain, so the first shard's block speaks for all (the
        // worker count is re-pointed at the merged pool size below).
        env: reports[0].env.clone(),
        ..CheckReport::default()
    };
    let mut per_pass: BTreeMap<u8, PassMetrics> = BTreeMap::new();
    for r in &reports {
        out.executions += r.executions;
        out.total_steps += r.total_steps;
        out.crashes_injected += r.crashes_injected;
        out.crash_points += r.crash_points;
        out.fault_plans += r.fault_plans;
        out.helped_ops += r.helped_ops;
        out.disk_reads += r.disk_reads;
        out.disk_writes += r.disk_writes;
        out.disk_flushes += r.disk_flushes;
        out.net_sends += r.net_sends;
        out.net_recvs += r.net_recvs;
        out.wall_time += r.wall_time;
        out.workers = out.workers.max(r.workers);
        out.replayed += r.replayed;
        // The schedule phase runs identically in every shard (it is
        // derivation spine), so its session counters agree; max = any.
        out.pruned = out.pruned.max(r.pruned);
        out.coverage_guided = out.coverage_guided.max(r.coverage_guided);
        out.outcomes.merge(&r.outcomes);
        out.steps_hist.merge(&r.steps_hist);
        out.depth_hist.merge(&r.depth_hist);
        out.crash_point_set
            .extend(r.crash_point_set.iter().copied());
        out.trace_fps.extend(r.trace_fps.iter().copied());
        out.counterexamples
            .extend(r.counterexamples.iter().cloned());
        for msg in &r.incomplete {
            if !out.incomplete.contains(msg) {
                out.incomplete.push(msg.clone());
            }
        }
        // Exercised counts are per-owned-execution (disjoint across
        // shards): sum. Enumerable horizons are probe-derived and agree
        // across shards: max = any.
        out.coverage.disk_fault_plans_exercised += r.coverage.disk_fault_plans_exercised;
        out.coverage.torn_plans_exercised += r.coverage.torn_plans_exercised;
        out.coverage.net_plans_exercised += r.coverage.net_plans_exercised;
        out.coverage.crash_points_enumerable = out
            .coverage
            .crash_points_enumerable
            .max(r.coverage.crash_points_enumerable);
        out.coverage.disk_fault_plans_enumerable = out
            .coverage
            .disk_fault_plans_enumerable
            .max(r.coverage.disk_fault_plans_enumerable);
        out.coverage.torn_plans_enumerable = out
            .coverage
            .torn_plans_enumerable
            .max(r.coverage.torn_plans_enumerable);
        out.coverage.net_plans_enumerable = out
            .coverage
            .net_plans_enumerable
            .max(r.coverage.net_plans_enumerable);
        for pm in &r.per_pass {
            let slot = per_pass.entry(pm.rank).or_insert(PassMetrics {
                pass: pm.pass,
                rank: pm.rank,
                ..PassMetrics::default()
            });
            slot.executions += pm.executions;
            slot.steps += pm.steps;
            slot.crashes += pm.crashes;
            slot.fault_plans += pm.fault_plans;
            slot.failures += pm.failures;
            slot.pruned = slot.pruned.max(pm.pruned);
            slot.coverage_guided = slot.coverage_guided.max(pm.coverage_guided);
            slot.busy_time += pm.busy_time;
        }
    }
    out.coverage.crash_points_exercised = out.crash_point_set.len() as u64;
    out.coverage.distinct_traces = out.trace_fps.len() as u64;
    out.per_pass = per_pass.into_values().collect();
    out.counterexamples.sort_by_key(|cx| cx.key());
    out.counterexample = out.counterexamples.first().cloned();
    out.execs_per_sec = out.executions as f64 / out.wall_time.as_secs_f64().max(1e-9);
    out.env.workers = out.workers as u64;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_syntax_parses_and_rejects() {
        assert_eq!(parse_shard("0/4").unwrap(), (0, 4));
        assert_eq!(parse_shard("3/4").unwrap(), (3, 4));
        assert!(parse_shard("4/4").is_err());
        assert!(parse_shard("0/0").is_err());
        assert!(parse_shard("x/2").is_err());
        assert!(parse_shard("2").is_err());
    }

    fn sample_report() -> CheckReport {
        let mut r = CheckReport {
            name: "demo".into(),
            executions: 10,
            total_steps: 500,
            crashes_injected: 3,
            crash_points: 3,
            fault_plans: 2,
            helped_ops: 1,
            strategy: "exhaustive".into(),
            pruned: 4,
            coverage_guided: 0,
            workers: 8,
            replayed: 2,
            incomplete: vec!["execution budget of 10 exhausted".into()],
            ..CheckReport::default()
        };
        r.outcomes.ok = 9;
        r.outcomes.violation = 1;
        r.steps_hist.record(50);
        r.depth_hist.record(12);
        r.crash_point_set.extend([1, 2, 5]);
        r.trace_fps.extend([0xabc, 0xdef]);
        r.coverage.crash_points_exercised = 3;
        r.coverage.distinct_traces = 2;
        r.coverage.crash_points_enumerable = 7;
        let mut faults = FaultPlan::default();
        faults.transient_io.insert(3);
        faults.torn = Some(TornMode::Subset(1));
        faults.net.insert(2, NetFault::Delay);
        faults.disk_fail = Some((2, 9));
        let cx = Counterexample {
            outcome: ExecOutcome::Violation(GhostError::HelpTokenMissing { key: 3 }),
            pass: Pass::CrashSweep,
            index: 5,
            seed: u64::MAX - 99,
            schedule_prefix: vec![0, 2, 1],
            crash_points: vec![5],
            clamped: vec![1],
            faults,
            trace: "t0 op begin\nt1 crash".into(),
            timeline: None,
        };
        r.counterexample = Some(cx.clone());
        r.counterexamples = vec![cx];
        r.per_pass = vec![PassMetrics {
            pass: Pass::CrashSweep,
            rank: Pass::CrashSweep.rank(),
            executions: 10,
            steps: 500,
            crashes: 3,
            fault_plans: 2,
            failures: 1,
            pruned: 0,
            coverage_guided: 0,
            busy_time: Duration::from_micros(1234),
        }];
        r
    }

    #[test]
    fn report_round_trips_through_json_with_stable_fingerprint() {
        let r = sample_report();
        let v = report_to_json(&r);
        let text = serde_json::to_string(&v).unwrap();
        let back = report_from_json(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(report_fingerprint(&r), report_fingerprint(&back));
        assert_eq!(back.executions, r.executions);
        assert_eq!(back.counterexamples.len(), 1);
        // The violation comes back as Imported but renders identically.
        let orig = match &r.counterexample.as_ref().unwrap().outcome {
            ExecOutcome::Violation(e) => e.to_string(),
            _ => unreachable!(),
        };
        match &back.counterexample.as_ref().unwrap().outcome {
            ExecOutcome::Violation(GhostError::Imported { msg }) => assert_eq!(*msg, orig),
            other => panic!("expected imported violation, got {other:?}"),
        }
        assert_eq!(
            back.counterexample.unwrap().faults.compact(),
            r.counterexample.unwrap().faults.compact()
        );
    }

    #[test]
    fn fingerprint_ignores_volatile_fields_only() {
        let r = sample_report();
        let mut timed = r.clone();
        timed.wall_time = Duration::from_secs(99);
        timed.execs_per_sec = 1e6;
        timed.workers = 1;
        timed.replayed = 0;
        timed.shard = Some((0, 2));
        timed.per_pass[0].busy_time = Duration::ZERO;
        assert_eq!(report_fingerprint(&r), report_fingerprint(&timed));
        let mut changed = r.clone();
        changed.total_steps += 1;
        assert_ne!(report_fingerprint(&r), report_fingerprint(&changed));
        let mut marked = r.clone();
        marked.incomplete.push("sink died".into());
        assert_ne!(report_fingerprint(&r), report_fingerprint(&marked));
    }

    #[test]
    fn merge_requires_a_complete_cover() {
        let mut a = sample_report();
        a.shard = Some((0, 2));
        assert!(merge_reports(vec![a.clone()]).is_err());
        assert!(merge_reports(vec![]).is_err());
        let mut dup = a.clone();
        dup.shard = Some((0, 2));
        assert!(merge_reports(vec![a.clone(), dup]).is_err());
        let mut other = sample_report();
        other.shard = Some((1, 2));
        other.name = "different".into();
        assert!(merge_reports(vec![a, other]).is_err());
    }

    #[test]
    fn merge_sums_disjoint_halves() {
        let mut a = sample_report();
        a.shard = Some((0, 2));
        let mut b = sample_report();
        b.shard = Some((1, 2));
        b.counterexamples.clear();
        b.counterexample = None;
        b.outcomes.violation = 0;
        b.outcomes.ok = 10;
        b.crash_point_set = [5, 9].into_iter().collect();
        b.trace_fps = [0xdef, 0x123].into_iter().collect();
        let merged = merge_reports(vec![b, a]).unwrap();
        assert_eq!(merged.executions, 20);
        assert_eq!(merged.total_steps, 1000);
        assert_eq!(merged.outcomes.ok, 19);
        assert_eq!(merged.outcomes.violation, 1);
        // Sets union: {1,2,5} ∪ {5,9} and {abc,def} ∪ {def,123}.
        assert_eq!(merged.coverage.crash_points_exercised, 4);
        assert_eq!(merged.coverage.distinct_traces, 3);
        // Session counters agree across shards: max, not sum.
        assert_eq!(merged.pruned, 4);
        assert_eq!(merged.shard, None);
        assert_eq!(merged.replayed, 4);
        assert!(merged.counterexample.is_some());
        assert_eq!(merged.incomplete.len(), 1, "identical messages dedup");
    }
}
