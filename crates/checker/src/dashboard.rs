//! Campaign dashboards: one merged text view over many telemetry
//! streams.
//!
//! A sharded campaign leaves behind one JSONL WAL per scenario shard
//! (see DESIGN.md §13). This module folds any number of those streams
//! into a single [`Dashboard`] — per-scenario outcome grid across
//! shards, coverage ratios, a per-pass wall-time profile (from the
//! `pass_start`/`pass_end` timing records), the slowest scenarios, and
//! pruning effectiveness — and renders it as text (`scan --dashboard`).
//!
//! Totals come from `run_end` records only. Summing `exec_done` lines
//! would double-count derivation-spine executions, which run in every
//! shard but are *counted* only by their owner; the `run_end` totals
//! already apply that rule, so dashboard totals agree with
//! [`merge_reports`](crate::campaign::merge_reports) over the same
//! shards. A resumed WAL holds several `run_start`/`run_end` pairs for
//! the same shard: the last `run_end` wins (it covers the whole run,
//! replayed prefix included), while pass wall times accumulate across
//! resumes (wall-clock actually spent).

use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The last `run_end` record of one scenario shard stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardRun {
    /// Whether the shard's verdict was a pass.
    pub passed: bool,
    /// Whether the run was marked incomplete (budget hit, stream error).
    pub incomplete: bool,
    /// Executions the shard finished.
    pub executions: u64,
    /// Scheduler grants summed over the shard's executions.
    pub total_steps: u64,
    /// Crashes the shard injected.
    pub crashes_injected: u64,
    /// Fault plans the shard exercised.
    pub fault_plans: u64,
    /// Counterexamples the shard recorded.
    pub counterexamples: u64,
    /// Distinct absolute-grant-count crash points exercised.
    pub crash_points_exercised: u64,
    /// Crash points the probe pass enumerated as reachable.
    pub crash_points_enumerable: u64,
    /// Fault plans exercised across all fault surfaces.
    pub fault_plans_exercised: u64,
    /// Fault plans enumerable across all fault surfaces.
    pub fault_plans_enumerable: u64,
    /// Executions pruned by the strategy (DPOR sleep sets).
    pub pruned: u64,
    /// Executions replayed from a WAL instead of re-run.
    pub replayed: u64,
    /// Wall-clock seconds, accumulated across resumes.
    pub wall_time_s: f64,
}

/// One `exec_done` record's deterministic cost (dashboard profile feed).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecCostRow {
    /// Pass name the execution ran under.
    pub pass: String,
    /// Scheduler grants the execution consumed.
    pub steps: u64,
    /// Crashes injected during the execution.
    pub crashes: u64,
    /// Times a thread blocked on a contended lock.
    pub lock_blocks: u64,
    /// Total disk operations.
    pub disk_ops: u64,
    /// Total network messages.
    pub net_msgs: u64,
}

/// One scenario's view across every ingested stream.
#[derive(Debug, Clone, Default)]
pub struct ScenarioDash {
    /// Last `run_end` per shard label (`"-"` for unsharded runs).
    pub shards: BTreeMap<String, ShardRun>,
    /// Summed `pass_end` wall time per `(rank, pass name)`.
    pub pass_wall_us: BTreeMap<(u64, String), u64>,
    /// `exec_done` costs keyed by canonical job key `(rank, index)`.
    /// Keying dedupes derivation-spine executions, which appear in every
    /// shard's stream with identical deterministic statistics — so the
    /// per-pass cost profile matches what an unsharded run would report.
    pub exec_costs: BTreeMap<(u64, u64), ExecCostRow>,
}

impl ScenarioDash {
    /// Whether every shard of this scenario passed.
    pub fn passed(&self) -> bool {
        self.shards.values().all(|s| s.passed)
    }

    fn sum(&self, f: impl Fn(&ShardRun) -> u64) -> u64 {
        self.shards.values().map(f).sum()
    }

    fn max(&self, f: impl Fn(&ShardRun) -> u64) -> u64 {
        self.shards.values().map(f).max().unwrap_or(0)
    }

    /// Summed wall time across shards (and resumes), in seconds.
    pub fn wall_time_s(&self) -> f64 {
        self.shards.values().map(|s| s.wall_time_s).sum()
    }

    /// Merged executions, following the same rules as `merge_reports`:
    /// counted statistics sum across shards; enumerable horizons are
    /// probe-derived and agree across shards, so max = any.
    pub fn executions(&self) -> u64 {
        self.sum(|s| s.executions)
    }
    /// Summed scheduler grants across shards.
    pub fn total_steps(&self) -> u64 {
        self.sum(|s| s.total_steps)
    }
    /// Summed injected crashes across shards.
    pub fn crashes_injected(&self) -> u64 {
        self.sum(|s| s.crashes_injected)
    }
    /// Summed fault plans exercised across shards.
    pub fn fault_plans(&self) -> u64 {
        self.sum(|s| s.fault_plans)
    }
    /// Summed counterexamples across shards.
    pub fn counterexamples(&self) -> u64 {
        self.sum(|s| s.counterexamples)
    }
    /// Summed per-surface fault plans exercised across shards.
    pub fn fault_plans_exercised(&self) -> u64 {
        self.sum(|s| s.fault_plans_exercised)
    }
    /// Strategy-pruned executions (max: the spine is shared, not split).
    pub fn pruned(&self) -> u64 {
        self.max(|s| s.pruned)
    }
    /// Summed WAL-replayed executions across shards.
    pub fn replayed(&self) -> u64 {
        self.sum(|s| s.replayed)
    }
    /// Probe-enumerated crash-point horizon (agrees across shards).
    pub fn crash_points_enumerable(&self) -> u64 {
        self.max(|s| s.crash_points_enumerable)
    }
    /// Probe-enumerated fault-plan horizon (agrees across shards).
    pub fn fault_plans_enumerable(&self) -> u64 {
        self.max(|s| s.fault_plans_enumerable)
    }

    /// Distinct crash points across shards is not recoverable from
    /// `run_end` alone (sets union, counts don't) — report the max as a
    /// lower bound, exactly what one shard proved on its own.
    pub fn crash_points_exercised_at_least(&self) -> u64 {
        self.max(|s| s.crash_points_exercised)
    }
}

/// A campaign-wide merge of telemetry streams.
#[derive(Debug, Clone, Default)]
pub struct Dashboard {
    /// Scenarios by name.
    pub scenarios: BTreeMap<String, ScenarioDash>,
    /// Streams ingested.
    pub streams: u64,
    /// Unparseable lines skipped across all streams (torn WAL tails).
    pub torn_lines: u64,
}

fn f_u64(m: &serde_json::Map, k: &str) -> u64 {
    match m.get(k) {
        Some(Value::Number(n)) if *n >= 0.0 => *n as u64,
        _ => 0,
    }
}

fn f_f64(m: &serde_json::Map, k: &str) -> f64 {
    match m.get(k) {
        Some(Value::Number(n)) => *n,
        _ => 0.0,
    }
}

fn f_str(m: &serde_json::Map, k: &str) -> Option<String> {
    match m.get(k) {
        Some(Value::String(s)) => Some(s.clone()),
        _ => None,
    }
}

impl Dashboard {
    /// Folds one JSONL telemetry stream into the dashboard.
    ///
    /// `scenario_hint` overrides the per-record scenario stamp as the
    /// grouping key — pass the registry name when ingesting a per-
    /// scenario WAL file (mutant variants share their base harness's
    /// human name, and the file name is what disambiguates them).
    /// Tolerant like the WAL parser: torn lines are counted, not fatal.
    pub fn ingest(&mut self, scenario_hint: Option<&str>, text: &str) {
        self.streams += 1;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let Ok(Value::Object(map)) = serde_json::from_str(line) else {
                self.torn_lines += 1;
                continue;
            };
            let Some(ty) = f_str(&map, "type") else {
                self.torn_lines += 1;
                continue;
            };
            let Some(scenario) = scenario_hint
                .map(str::to_string)
                .or_else(|| f_str(&map, "scenario"))
            else {
                continue;
            };
            match ty.as_str() {
                "run_end" => {
                    let shard = f_str(&map, "shard").unwrap_or_else(|| "-".to_string());
                    let run = ShardRun {
                        passed: matches!(map.get("passed"), Some(Value::Bool(true))),
                        incomplete: matches!(
                            map.get("incomplete"),
                            Some(Value::Array(v)) if !v.is_empty()
                        ),
                        executions: f_u64(&map, "executions"),
                        total_steps: f_u64(&map, "total_steps"),
                        crashes_injected: f_u64(&map, "crashes_injected"),
                        fault_plans: f_u64(&map, "fault_plans"),
                        counterexamples: f_u64(&map, "counterexamples"),
                        crash_points_exercised: f_u64(&map, "crash_points_exercised"),
                        crash_points_enumerable: f_u64(&map, "crash_points_enumerable"),
                        fault_plans_exercised: f_u64(&map, "fault_plans_exercised"),
                        fault_plans_enumerable: f_u64(&map, "fault_plans_enumerable"),
                        pruned: f_u64(&map, "pruned"),
                        replayed: f_u64(&map, "replayed"),
                        wall_time_s: f_f64(&map, "wall_time_s"),
                    };
                    // Last run_end per shard wins (resume appends runs).
                    self.scenarios
                        .entry(scenario)
                        .or_default()
                        .shards
                        .insert(shard, run);
                }
                "pass_end" => {
                    let Some(pass) = f_str(&map, "pass") else {
                        continue;
                    };
                    let rank = f_u64(&map, "rank");
                    *self
                        .scenarios
                        .entry(scenario)
                        .or_default()
                        .pass_wall_us
                        .entry((rank, pass))
                        .or_insert(0) += f_u64(&map, "duration_us");
                }
                "exec_done" => {
                    let Some(pass) = f_str(&map, "pass") else {
                        continue;
                    };
                    let Ok(p) = pass.parse::<crate::Pass>() else {
                        continue;
                    };
                    let key = (p.rank() as u64, f_u64(&map, "index"));
                    self.scenarios
                        .entry(scenario)
                        .or_default()
                        .exec_costs
                        .insert(
                            key,
                            ExecCostRow {
                                pass,
                                steps: f_u64(&map, "steps"),
                                crashes: f_u64(&map, "crashes"),
                                lock_blocks: f_u64(&map, "lock_blocks"),
                                disk_ops: f_u64(&map, "disk_ops"),
                                net_msgs: f_u64(&map, "net_msgs"),
                            },
                        );
                }
                _ => {}
            }
        }
    }

    /// Campaign-wide totals (executions, steps, counterexamples).
    pub fn totals(&self) -> (u64, u64, u64) {
        let mut execs = 0;
        let mut steps = 0;
        let mut cxs = 0;
        for s in self.scenarios.values() {
            execs += s.executions();
            steps += s.total_steps();
            cxs += s.counterexamples();
        }
        (execs, steps, cxs)
    }

    /// Per-pass wall profile summed over every scenario, rank order.
    pub fn pass_profile(&self) -> Vec<(String, u64)> {
        let mut acc: BTreeMap<(u64, String), u64> = BTreeMap::new();
        for s in self.scenarios.values() {
            for ((rank, pass), us) in &s.pass_wall_us {
                *acc.entry((*rank, pass.clone())).or_insert(0) += us;
            }
        }
        acc.into_iter().map(|((_, p), us)| (p, us)).collect()
    }

    /// Per-pass deterministic cost profile summed over every scenario's
    /// deduplicated `exec_done` records, rank order:
    /// `(pass, executions, steps, crashes, lock_blocks, disk_ops, net_msgs)`.
    #[allow(clippy::type_complexity)]
    pub fn cost_profile(&self) -> Vec<(String, u64, u64, u64, u64, u64, u64)> {
        let mut acc: BTreeMap<(u64, String), (u64, u64, u64, u64, u64, u64)> = BTreeMap::new();
        for s in self.scenarios.values() {
            for ((rank, _), c) in &s.exec_costs {
                let e = acc.entry((*rank, c.pass.clone())).or_default();
                e.0 += 1;
                e.1 += c.steps;
                e.2 += c.crashes;
                e.3 += c.lock_blocks;
                e.4 += c.disk_ops;
                e.5 += c.net_msgs;
            }
        }
        acc.into_iter()
            .map(|((_, p), (e, st, cr, lb, d, n))| (p, e, st, cr, lb, d, n))
            .collect()
    }
}

fn pct(part: u64, whole: u64) -> String {
    if whole == 0 {
        "  -".to_string()
    } else {
        format!("{:>3.0}%", 100.0 * part as f64 / whole as f64)
    }
}

fn bar(part: u64, whole: u64, width: usize) -> String {
    if whole == 0 {
        return String::new();
    }
    let n = ((part as f64 / whole as f64) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

/// Renders the merged campaign dashboard as text.
pub fn render_dashboard(d: &Dashboard) -> String {
    let mut out = String::new();
    let (execs, steps, cxs) = d.totals();
    let failing = d.scenarios.values().filter(|s| !s.passed()).count();
    writeln!(out, "CAMPAIGN DASHBOARD").unwrap();
    writeln!(
        out,
        "  {} scenarios from {} streams — {execs} executions, {steps} steps, {cxs} counterexamples in {} failing scenarios",
        d.scenarios.len(),
        d.streams,
        failing
    )
    .unwrap();
    if d.torn_lines > 0 {
        writeln!(out, "  ({} torn lines skipped)", d.torn_lines).unwrap();
    }
    out.push('\n');

    let name_w = d
        .scenarios
        .keys()
        .map(|n| n.len())
        .max()
        .unwrap_or(8)
        .max(8);
    // Crash coverage uses the same unit `render_failure()` reports:
    // absolute grant counts from the start of the execution, not
    // per-pass offsets.
    writeln!(
        out,
        "  outcome grid ('.' shard passed, 'X' failed, '!' incomplete; \
         crash a/b = absolute-grant-count crash points exercised/enumerable, \
         fault c/d = fault plans):"
    )
    .unwrap();
    for (name, s) in &d.scenarios {
        let grid: String = s
            .shards
            .values()
            .map(|run| {
                if !run.passed {
                    'X'
                } else if run.incomplete {
                    '!'
                } else {
                    '.'
                }
            })
            .collect();
        let cov = format!(
            "crash {}/{} fault {}/{}",
            s.crash_points_exercised_at_least(),
            s.crash_points_enumerable(),
            s.fault_plans_exercised(),
            s.fault_plans_enumerable(),
        );
        writeln!(
            out,
            "    {name:<name_w$}  [{grid:<4}]  {:>7} execs  {:>9} steps  {:>2} cx  {cov}",
            s.executions(),
            s.total_steps(),
            s.counterexamples(),
        )
        .unwrap();
    }
    out.push('\n');

    let profile = d.pass_profile();
    let total_us: u64 = profile.iter().map(|(_, us)| *us).sum();
    if total_us > 0 {
        writeln!(out, "  per-pass wall profile:").unwrap();
        for (pass, us) in &profile {
            writeln!(
                out,
                "    {pass:<18} {:>9.3}s  {} {}",
                *us as f64 / 1e6,
                pct(*us, total_us),
                bar(*us, total_us, 24),
            )
            .unwrap();
        }
        out.push('\n');
    }

    let costs = d.cost_profile();
    let cost_steps: u64 = costs.iter().map(|r| r.2).sum();
    if cost_steps > 0 {
        writeln!(out, "  profile (deterministic cost per pass):").unwrap();
        for (pass, execs, steps, crashes, lock_blocks, disk_ops, net_msgs) in &costs {
            writeln!(
                out,
                "    {pass:<18} {execs:>7} execs {steps:>10} steps  {} {}  ({crashes} crashes, {lock_blocks} blocks, {disk_ops} disk ops, {net_msgs} net msgs)",
                pct(*steps, cost_steps),
                bar(*steps, cost_steps, 24),
            )
            .unwrap();
        }
        out.push('\n');
    }

    let mut slowest: Vec<(&String, f64)> = d
        .scenarios
        .iter()
        .map(|(n, s)| (n, s.wall_time_s()))
        .collect();
    slowest.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    writeln!(out, "  slowest scenarios:").unwrap();
    for (name, wall) in slowest.iter().take(5) {
        writeln!(out, "    {wall:>8.3}s  {name}").unwrap();
    }
    out.push('\n');

    let pruned: u64 = d.scenarios.values().map(|s| s.pruned()).sum();
    let replayed: u64 = d.scenarios.values().map(|s| s.replayed()).sum();
    writeln!(
        out,
        "  pruning: {pruned} schedules pruned; {replayed} executions replayed from WALs"
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_end_line(scenario: &str, shard: &str, execs: u64, passed: bool) -> String {
        format!(
            concat!(
                "{{\"type\": \"run_end\", \"scenario\": {s:?}, \"shard\": {sh:?}, ",
                "\"passed\": {p}, \"executions\": {e}, \"total_steps\": {st}, ",
                "\"counterexamples\": {cx}, \"crashes_injected\": 3, ",
                "\"crash_points_exercised\": 4, \"crash_points_enumerable\": 8, ",
                "\"pruned\": 7, \"replayed\": 2, \"wall_time_s\": 0.25, ",
                "\"incomplete\": []}}"
            ),
            s = scenario,
            sh = shard,
            p = passed,
            e = execs,
            st = execs * 10,
            cx = u64::from(!passed),
        )
    }

    #[test]
    fn shard_totals_sum_and_enumerables_max() {
        let mut d = Dashboard::default();
        d.ingest(None, &run_end_line("s", "0/2", 100, true));
        d.ingest(None, &run_end_line("s", "1/2", 50, false));
        let s = &d.scenarios["s"];
        assert_eq!(s.executions(), 150);
        assert_eq!(s.total_steps(), 1500);
        assert_eq!(s.counterexamples(), 1);
        assert_eq!(s.crash_points_enumerable(), 8);
        assert_eq!(s.pruned(), 7, "spine counters agree across shards: max");
        assert_eq!(s.replayed(), 4);
        assert!(!s.passed());
        assert_eq!(d.totals(), (150, 1500, 1));
    }

    #[test]
    fn resumed_wal_keeps_only_the_last_run_end_per_shard() {
        let mut d = Dashboard::default();
        let text = format!(
            "{}\n{}\n",
            run_end_line("s", "0/2", 10, false),
            run_end_line("s", "0/2", 100, true),
        );
        d.ingest(None, &text);
        assert_eq!(d.scenarios["s"].executions(), 100);
        assert!(d.scenarios["s"].passed());
    }

    #[test]
    fn pass_wall_profile_accumulates_and_hint_overrides_stamp() {
        let mut d = Dashboard::default();
        let text = concat!(
            "{\"type\": \"pass_end\", \"scenario\": \"base\", \"pass\": \"dfs\", \"rank\": 0, \"duration_us\": 100}\n",
            "{\"type\": \"pass_end\", \"scenario\": \"base\", \"pass\": \"dfs\", \"rank\": 0, \"duration_us\": 50}\n",
            "not json at all\n",
        );
        d.ingest(Some("mutant/skip-flush"), text);
        assert_eq!(d.torn_lines, 1);
        let s = &d.scenarios["mutant/skip-flush"];
        assert_eq!(s.pass_wall_us[&(0, "dfs".to_string())], 150);
        assert_eq!(d.pass_profile(), vec![("dfs".to_string(), 150)]);
    }

    fn exec_done_line(scenario: &str, pass: &str, index: u64, steps: u64) -> String {
        format!(
            concat!(
                "{{\"type\": \"exec_done\", \"scenario\": {s:?}, \"pass\": {p:?}, ",
                "\"index\": {i}, \"outcome\": \"ok\", \"steps\": {st}, \"crashes\": 1, ",
                "\"lock_blocks\": 2, \"disk_ops\": 3, \"net_msgs\": 4}}"
            ),
            s = scenario,
            p = pass,
            i = index,
            st = steps,
        )
    }

    #[test]
    fn cost_profile_dedupes_spine_executions_across_shards() {
        let mut d = Dashboard::default();
        // The same dfs execution appears in both shard streams (spine);
        // a second distinct execution appears once.
        let text = format!(
            "{}\n{}\n{}\n",
            exec_done_line("s", "dfs", 0, 10),
            exec_done_line("s", "dfs", 0, 10),
            exec_done_line("s", "dfs", 1, 20),
        );
        d.ingest(None, &text);
        let costs = d.cost_profile();
        assert_eq!(costs.len(), 1);
        let (ref pass, execs, steps, crashes, lock_blocks, disk_ops, net_msgs) = costs[0];
        assert_eq!(pass, "dfs");
        assert_eq!(execs, 2, "duplicate (rank, index) must collapse");
        assert_eq!(steps, 30);
        assert_eq!((crashes, lock_blocks, disk_ops, net_msgs), (2, 4, 6, 8));
        let text = render_dashboard(&d);
        assert!(
            text.contains("profile (deterministic cost per pass)"),
            "{text}"
        );
    }

    #[test]
    fn render_mentions_every_scenario_and_the_profile() {
        let mut d = Dashboard::default();
        d.ingest(None, &run_end_line("alpha", "0/1", 10, true));
        d.ingest(
            None,
            concat!(
                "{\"type\": \"pass_end\", \"scenario\": \"alpha\", ",
                "\"pass\": \"crash-sweep\", \"rank\": 3, \"duration_us\": 2000}\n"
            ),
        );
        let text = render_dashboard(&d);
        assert!(text.contains("CAMPAIGN DASHBOARD"), "{text}");
        assert!(text.contains("alpha"), "{text}");
        assert!(text.contains("crash-sweep"), "{text}");
        assert!(text.contains("slowest scenarios"), "{text}");
    }
}
