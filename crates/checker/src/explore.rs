//! The explorer: bounded model checking over schedules and crash points.
//!
//! This is the reproduction's substitute for the paper's Coq proofs (see
//! DESIGN.md §1): instead of a theorem over *all* executions, the
//! explorer enumerates a bounded set — a schedule phase over crash-free
//! interleavings driven by a pluggable [`Strategy`] (exhaustive DFS,
//! random sampling, sleep-set DPOR, coverage-guided sampling; see
//! DESIGN.md §12), and a systematic sweep of crash points including
//! crashes during recovery — and requires the ghost discipline
//! (Theorem 2's obligations) to hold on every one.
//!
//! # Parallel exploration and the determinism contract
//!
//! Every explored execution is independent (fresh [`ModelRt`] + ghost
//! state per run), so the explorer dispatches them across a worker pool
//! ([`CheckConfig::workers`]). Determinism is preserved by construction:
//!
//! - Every execution has a canonical **job key** `(pass.rank(), index)`
//!   assigned before it runs, independent of worker count or timing
//!   (ranks in [`Pass`]).
//! - Each execution's model seed is `hash(base_seed, pass_rank, index)`
//!   (see [`exec_seed`]), never a shared mutable RNG.
//! - The reported counterexample is the failure with the **minimum job
//!   key**, not the first one found on the wall clock. A job is skipped
//!   only when a failure with a *smaller* key is already known, which
//!   cannot hide the minimum-key failure — so `workers = 8` reports the
//!   same [`Counterexample`] as `workers = 1` for the same config.
//! - Strategy feedback (DFS frontier expansion, sleep-set pruning,
//!   coverage re-seeding) advances only on *complete* waves in canonical
//!   job order; a wave interrupted by a failure is never observed. So
//!   the explored set — and the `pruned`/`coverage_guided` counters —
//!   are identical at every worker count.
//! - Report statistics count exactly the executions with keys up to the
//!   winning counterexample's key (all of them, if no failure), so
//!   `executions`/`total_steps`/... are reproducible too.
//!
//! With [`CheckConfig::keep_going`] set, nothing is cancelled and every
//! failure is collected into [`CheckReport::counterexamples`], sorted by
//! canonical key.

use crate::harness::{Harness, World};
use crate::metrics::{
    trace_fingerprint, Coverage, Histogram, OutcomeCounts, OutcomeKind, PassMetrics,
};
use crate::pass::{Pass, PassSet};
use crate::strategy::{DepTrace, Exhaustive, ObservedExec, ScheduleSpec, Strategy};
use crate::telemetry::{self, RunTelemetry, TelemetrySink};
use goose_rt::fault::{FaultPlan, NetFault, TornMode};
use goose_rt::sched::{res, ModelRt, PanicKind, StepAccess, StepResult, Tid};
use parking_lot::Mutex;
use perennial::{Ghost, GhostError};
use perennial_spec::SpecTS;
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Explorer configuration.
///
/// Construct with [`CheckConfig::builder`] (preferred), or start from
/// [`CheckConfig::default`] / [`CheckConfig::quick`] and override fields.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Base seed for deterministic randomness. Per-execution seeds are
    /// derived from it as `hash(seed, pass_rank, index)`.
    pub seed: u64,
    /// Per-execution step bound (livelock backstop).
    pub max_steps: u64,
    /// Cap on DFS-enumerated schedules (0 disables DFS). Under
    /// [`SleepSetDpor`](crate::strategy::SleepSetDpor), pruned schedules
    /// are charged against this budget too.
    pub dfs_max_executions: usize,
    /// Number of random schedules to sample (crash-free).
    pub random_samples: usize,
    /// Random schedules to sample *with* a random crash point each.
    pub random_crash_samples: usize,
    /// Which exploration passes run. [`PassSet::defaults`] enables DFS,
    /// random sampling, the crash sweep with nesting, and random
    /// crashes; the fault sweeps ([`Pass::DiskFault`],
    /// [`Pass::TornWrite`], [`Pass::NetFault`]) opt in and additionally
    /// require the matching [`Harness::fault_surface`] flag.
    pub passes: PassSet,
    /// Schedule-phase exploration strategy: how the crash-free DFS and
    /// random passes pick what to run (see [`crate::strategy`] and
    /// DESIGN.md §12). The crash and fault sweeps are strategy-
    /// independent. Defaults to [`Exhaustive`].
    pub strategy: Arc<dyn Strategy>,
    /// Worker threads for the exploration pool; `0` means use
    /// `std::thread::available_parallelism()`.
    pub workers: usize,
    /// Keep exploring after a failure and collect every counterexample
    /// (instead of cancelling outstanding work).
    pub keep_going: bool,
    /// Optional JSONL event stream (see [`crate::telemetry`] and
    /// DESIGN.md §11). Side-channel only: enabling it changes neither
    /// the explored set nor the reported counterexample.
    pub telemetry: Option<TelemetrySink>,
    /// Convenience alternative to [`CheckConfig::telemetry`]: create
    /// (truncate) this file as the event stream when the check starts.
    /// Ignored when `telemetry` is set.
    pub telemetry_path: Option<PathBuf>,
    /// Print a progress line to stderr every N completed executions
    /// (`0` = off, the default) so long sweeps are observable live.
    pub progress_every: u64,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            seed: 0,
            max_steps: 100_000,
            dfs_max_executions: 2_000,
            random_samples: 50,
            random_crash_samples: 100,
            passes: PassSet::defaults(),
            strategy: Arc::new(Exhaustive),
            workers: 0,
            keep_going: false,
            telemetry: None,
            telemetry_path: None,
            progress_every: 0,
        }
    }
}

impl CheckConfig {
    /// A quick configuration for unit tests (small bounds).
    pub fn quick() -> Self {
        let mut passes = PassSet::defaults();
        passes.remove(Pass::NestedCrash);
        CheckConfig {
            dfs_max_executions: 200,
            random_samples: 10,
            random_crash_samples: 20,
            passes,
            ..CheckConfig::default()
        }
    }

    /// Starts a builder preloaded with the defaults.
    pub fn builder() -> CheckConfigBuilder {
        CheckConfigBuilder {
            config: CheckConfig::default(),
        }
    }

    /// The worker count this config resolves to at run time.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Fluent constructor for [`CheckConfig`]:
///
/// ```
/// use perennial_checker::{CheckConfig, Pass, SleepSetDpor};
/// let cfg = CheckConfig::builder()
///     .seed(7)
///     .workers(8)
///     .with_passes([Pass::DiskFault])
///     .strategy(SleepSetDpor)
///     .build();
/// assert_eq!(cfg.seed, 7);
/// assert_eq!(cfg.workers, 8);
/// assert!(cfg.passes.contains(Pass::DiskFault));
/// assert_eq!(cfg.strategy.name(), "sleep-set-dpor");
/// ```
#[derive(Debug, Clone)]
pub struct CheckConfigBuilder {
    config: CheckConfig,
}

impl CheckConfigBuilder {
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    pub fn max_steps(mut self, max_steps: u64) -> Self {
        self.config.max_steps = max_steps;
        self
    }

    pub fn dfs_max_executions(mut self, n: usize) -> Self {
        self.config.dfs_max_executions = n;
        self
    }

    pub fn random_samples(mut self, n: usize) -> Self {
        self.config.random_samples = n;
        self
    }

    pub fn random_crash_samples(mut self, n: usize) -> Self {
        self.config.random_crash_samples = n;
        self
    }

    /// Replaces the pass set wholesale.
    pub fn passes(mut self, passes: impl IntoIterator<Item = Pass>) -> Self {
        self.config.passes = passes.into_iter().collect();
        self
    }

    /// Adds passes to the current set.
    pub fn with_passes(mut self, passes: impl IntoIterator<Item = Pass>) -> Self {
        for p in passes {
            self.config.passes.insert(p);
        }
        self
    }

    /// Removes passes from the current set.
    pub fn without_passes(mut self, passes: impl IntoIterator<Item = Pass>) -> Self {
        for p in passes {
            self.config.passes.remove(p);
        }
        self
    }

    /// Sets the schedule-phase exploration strategy.
    pub fn strategy(mut self, strategy: impl Strategy + 'static) -> Self {
        self.config.strategy = Arc::new(strategy);
        self
    }

    fn set_pass(mut self, p: Pass, on: bool) -> Self {
        if on {
            self.config.passes.insert(p);
        } else {
            self.config.passes.remove(p);
        }
        self
    }

    #[deprecated(note = "use passes()/with_passes()/without_passes() with Pass::CrashSweep")]
    pub fn crash_sweep(self, on: bool) -> Self {
        self.set_pass(Pass::CrashSweep, on)
    }

    #[deprecated(note = "use passes()/with_passes()/without_passes() with Pass::NestedCrash")]
    pub fn nested_crash_sweep(self, on: bool) -> Self {
        self.set_pass(Pass::NestedCrash, on)
    }

    #[deprecated(note = "use passes()/with_passes()/without_passes() with Pass::DiskFault")]
    pub fn disk_fault_sweep(self, on: bool) -> Self {
        self.set_pass(Pass::DiskFault, on)
    }

    #[deprecated(note = "use passes()/with_passes()/without_passes() with Pass::TornWrite")]
    pub fn torn_write_sweep(self, on: bool) -> Self {
        self.set_pass(Pass::TornWrite, on)
    }

    #[deprecated(note = "use passes()/with_passes()/without_passes() with Pass::NetFault")]
    pub fn net_fault_sweep(self, on: bool) -> Self {
        self.set_pass(Pass::NetFault, on)
    }

    /// Enables (or disables) all three fault sweeps at once.
    #[deprecated(note = "use with_passes([Pass::DiskFault, Pass::TornWrite, Pass::NetFault])")]
    pub fn fault_sweeps(self, on: bool) -> Self {
        self.set_pass(Pass::DiskFault, on)
            .set_pass(Pass::TornWrite, on)
            .set_pass(Pass::NetFault, on)
    }

    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    pub fn keep_going(mut self, on: bool) -> Self {
        self.config.keep_going = on;
        self
    }

    /// Streams JSONL telemetry into an existing sink (shareable across
    /// scenario runs — every run appends to the same stream).
    pub fn telemetry(mut self, sink: TelemetrySink) -> Self {
        self.config.telemetry = Some(sink);
        self
    }

    /// Streams JSONL telemetry into any writer.
    pub fn telemetry_writer(self, w: impl std::io::Write + Send + 'static) -> Self {
        self.telemetry(TelemetrySink::to_writer(w))
    }

    /// Streams JSONL telemetry into a file created at check start.
    pub fn telemetry_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.config.telemetry_path = Some(path.into());
        self
    }

    /// Prints a progress line to stderr every `n` executions (0 = off).
    pub fn progress_every(mut self, n: u64) -> Self {
        self.config.progress_every = n;
        self
    }

    pub fn build(self) -> CheckConfig {
        self.config
    }
}

/// How one explored execution ended.
#[derive(Debug, Clone)]
pub enum ExecOutcome {
    /// Ghost validation and the final check both passed.
    Ok,
    /// A ghost capability rule or end-of-execution obligation failed —
    /// a refinement violation.
    Violation(GhostError),
    /// Modelled undefined behaviour was triggered.
    Ub(String),
    /// A plain panic in the code under test.
    Bug(String),
    /// No runnable thread but unfinished work: a deadlock.
    Deadlock,
    /// The harness's final predicate failed.
    FinalCheckFailed(String),
}

impl ExecOutcome {
    /// Whether this outcome counts as a verification failure.
    pub fn is_failure(&self) -> bool {
        !matches!(self, ExecOutcome::Ok)
    }
}

/// A failing execution, with enough context to reproduce and debug it.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// What failed.
    pub outcome: ExecOutcome,
    /// Which exploration pass produced it.
    pub pass: Pass,
    /// Canonical index of the failing execution within its pass; the
    /// pair (pass, index) totally orders counterexamples and is how the
    /// parallel explorer picks the one to report.
    pub index: u64,
    /// The derived per-execution seed (model randomness; also the
    /// schedule seed for random passes). [`replay`] feeds it back in.
    pub seed: u64,
    /// The schedule prefix (choice indices) that reproduces it — DFS
    /// prefixes, or the replayed corpus prefix of a coverage-guided
    /// random sample; empty for round-robin and plain random passes.
    pub schedule_prefix: Vec<usize>,
    /// Injected crash points. Unit: **absolute grant counts** from the
    /// start of the execution (crash k fires before the (k+1)-th grant);
    /// an injected crash itself consumes one count, so nested points
    /// land inside recovery.
    pub crash_points: Vec<u64>,
    /// Decision depths at which the schedule prefix asked for a choice
    /// index out of range and was clamped to the last runnable thread —
    /// non-empty means the prefix came from a differently-shaped run.
    pub clamped: Vec<usize>,
    /// The fault plan active during the failing execution (empty for the
    /// schedule/crash passes). [`replay`] re-injects it.
    pub faults: FaultPlan,
    /// Rendered ghost trace at failure.
    pub trace: String,
}

impl Counterexample {
    /// The canonical ordering key `(pass_rank, index)`.
    pub fn key(&self) -> (u8, u64) {
        (self.pass.rank(), self.index)
    }
}

/// Aggregate result of checking one scenario.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Scenario name.
    pub name: String,
    /// Executions explored (counted up to the winning counterexample's
    /// canonical key, so the number is worker-count independent).
    pub executions: usize,
    /// Total scheduled steps across executions.
    pub total_steps: u64,
    /// Crashes injected across executions.
    pub crashes_injected: usize,
    /// Distinct crash points swept.
    pub crash_points: usize,
    /// Distinct fault plans swept (executions run with a non-empty
    /// [`FaultPlan`]).
    pub fault_plans: usize,
    /// Operations helped by recovery across executions.
    pub helped_ops: u64,
    /// Wall-clock time the check took.
    pub wall_time: Duration,
    /// Worker threads the pool actually used.
    pub workers: usize,
    /// Executions per wall-clock second.
    pub execs_per_sec: f64,
    /// Name of the schedule-phase strategy that ran.
    pub strategy: String,
    /// Schedules the strategy pruned as redundant (sleep-set hits) —
    /// deterministic across worker counts.
    pub pruned: u64,
    /// Executions whose schedule was re-seeded by coverage feedback.
    pub coverage_guided: u64,
    /// The canonical (minimum-key) counterexample, if any.
    pub counterexample: Option<Counterexample>,
    /// All counterexamples found, sorted by canonical key. Without
    /// [`CheckConfig::keep_going`] this holds at most the canonical one.
    pub counterexamples: Vec<Counterexample>,
    /// Executions by outcome (same cutoff as `executions`, so
    /// worker-count independent).
    pub outcomes: OutcomeCounts,
    /// Per-pass accounting, in canonical rank order. Only passes that
    /// scheduled at least one execution appear.
    pub per_pass: Vec<PassMetrics>,
    /// Steps-per-execution distribution (log2 buckets).
    pub steps_hist: Histogram,
    /// Schedule-depth (decisions-per-execution) distribution.
    pub depth_hist: Histogram,
    /// Coverage accounting: sweep spaces exercised vs. enumerable, and
    /// distinct ghost-trace fingerprints seen.
    pub coverage: Coverage,
}

impl CheckReport {
    /// Whether every explored execution passed.
    pub fn passed(&self) -> bool {
        self.counterexample.is_none()
    }

    /// One-line summary.
    pub fn summary(&self) -> String {
        let faults = if self.fault_plans > 0 {
            format!(", {} fault plans", self.fault_plans)
        } else {
            String::new()
        };
        format!(
            "{}: {} executions, {} steps, {} crashes over {} crash points{}, {} helped ops, \
             {:.0} execs/s on {} workers — {}",
            self.name,
            self.executions,
            self.total_steps,
            self.crashes_injected,
            self.crash_points,
            faults,
            self.helped_ops,
            self.execs_per_sec,
            self.workers,
            if self.passed() { "PASS" } else { "FAIL" }
        )
    }
}

/// Schedule policy for one execution.
enum Policy {
    /// Deterministic: follow the recorded prefix, then always pick the
    /// first runnable (DFS order).
    DfsPrefix(Vec<usize>),
    /// Round-robin over runnable threads.
    RoundRobin,
    /// Replay the (possibly empty) decision prefix, then seeded
    /// pseudo-random choice.
    Random { seed: u64, prefix: Vec<usize> },
}

struct ScheduleState {
    policy: Policy,
    /// (choice index, number of runnable options) per decision.
    decisions: Vec<(usize, usize)>,
    /// Decision depths where a replayed prefix index was out of range.
    clamped: Vec<usize>,
    rr_next: usize,
    rng: u64,
}

impl ScheduleState {
    fn new(policy: Policy) -> Self {
        let rng = match &policy {
            Policy::Random { seed, .. } => *seed | 1,
            _ => 1,
        };
        ScheduleState {
            policy,
            decisions: Vec::new(),
            clamped: Vec::new(),
            rr_next: 0,
            rng,
        }
    }

    fn choose(&mut self, runnable: &[Tid]) -> Tid {
        let n = runnable.len();
        let d = self.decisions.len();
        let idx = match &self.policy {
            Policy::DfsPrefix(prefix) => {
                if d < prefix.len() {
                    if prefix[d] >= n {
                        // Out-of-range prefix entry: the prefix came from
                        // a run that had more runnable threads here.
                        // Record the clamp so reports can surface it.
                        self.clamped.push(d);
                    }
                    prefix[d].min(n - 1)
                } else {
                    0
                }
            }
            Policy::RoundRobin => {
                let idx = self.rr_next % n;
                self.rr_next += 1;
                idx
            }
            Policy::Random { prefix, .. } => {
                if d < prefix.len() {
                    if prefix[d] >= n {
                        self.clamped.push(d);
                    }
                    prefix[d].min(n - 1)
                } else {
                    // xorshift64*
                    self.rng ^= self.rng << 13;
                    self.rng ^= self.rng >> 7;
                    self.rng ^= self.rng << 17;
                    (self.rng as usize) % n
                }
            }
        };
        self.decisions.push((idx, n));
        runnable[idx]
    }
}

/// Phase of one execution's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Main,
    Recovering,
    After,
}

struct RunResult {
    outcome: ExecOutcome,
    decisions: Vec<(usize, usize)>,
    clamped: Vec<usize>,
    steps: u64,
    crashes: usize,
    helped: u64,
    /// Disk operations attempted (fault-sweep probes use this as the
    /// transient-error enumeration horizon).
    disk_ops: u64,
    /// Network messages sent (net-fault-sweep enumeration horizon).
    net_msgs: u64,
    /// Times a thread parked on a held lock (sched contention counter).
    lock_blocks: u64,
    /// FNV-1a fingerprint of the rendered ghost trace (behavioural
    /// coverage proxy).
    trace_fp: u64,
    /// Wall time of this single execution (telemetry only).
    duration: Duration,
    trace: String,
    /// Per-grant dependency observations (schedule-phase DPOR runs).
    deps: Option<DepTrace>,
}

/// Runs one execution under `policy`, injecting crashes at the given
/// absolute grant counts and faults per `faults`. With `track_deps`, the
/// runtime records each grant's dependency footprint and the result
/// carries a [`DepTrace`] for partial-order reduction.
fn run_one<S: SpecTS, H: Harness<S>>(
    harness: &H,
    policy: Policy,
    crash_points: &[u64],
    faults: &FaultPlan,
    seed: u64,
    max_steps: u64,
    track_deps: bool,
) -> RunResult {
    let rt = ModelRt::with_faults(seed, max_steps, faults.clone());
    rt.set_track_deps(track_deps);
    let ghost = Ghost::new(harness.spec());
    let w = World {
        rt: Arc::clone(&rt),
        ghost: Arc::clone(&ghost),
    };
    let mut exec = harness.make(&w);
    exec.boot(&w);
    for (name, body) in exec.threads(&w) {
        rt.spawn(name, body);
    }

    let mut sched = ScheduleState::new(policy);
    let mut steps: u64 = 0;
    let mut crashes = 0usize;
    let mut crash_iter = crash_points.iter().copied().peekable();
    let mut disk_fail = faults.disk_fail;
    let mut phase = Phase::Main;
    let mut recovery_tid: Option<Tid> = None;
    let mut after_spawned = false;
    let mut dep: Option<DepTrace> = track_deps.then(DepTrace::default);
    if track_deps {
        // Discard anything noted during boot/spawn: footprints belong to
        // granted steps, not setup.
        rt.take_step_accesses();
    }

    let run_started = Instant::now();
    let finish = |outcome: ExecOutcome,
                  sched: &ScheduleState,
                  steps: u64,
                  crashes: usize,
                  rt: &Arc<ModelRt>,
                  ghost: &Arc<Ghost<S>>,
                  deps: Option<DepTrace>| {
        let stats = rt.sched_stats();
        let trace = ghost.trace().render();
        RunResult {
            outcome,
            decisions: sched.decisions.clone(),
            clamped: sched.clamped.clone(),
            steps,
            crashes,
            helped: 0,
            disk_ops: stats.disk_ops,
            net_msgs: stats.net_msgs,
            lock_blocks: stats.lock_blocks,
            trace_fp: trace_fingerprint(&trace),
            duration: run_started.elapsed(),
            trace,
            deps,
        }
    };

    loop {
        // Plan-scheduled permanent disk failure at this grant boundary?
        // (Fires before a same-count crash and does not consume a step —
        // it models the device dying, not the process.)
        if let Some((d, g)) = disk_fail {
            if g == steps {
                disk_fail = None;
                exec.inject_disk_failure(&w, d);
            }
        }

        // Crash injection at this step boundary?
        if crash_iter.peek() == Some(&steps) {
            crash_iter.next();
            crashes += 1;
            rt.crash_all();
            ghost.crash();
            exec.crash_reset(&w);
            exec.boot(&w);
            let body = exec.recovery(&w);
            recovery_tid = Some(rt.spawn("recovery", body));
            phase = Phase::Recovering;
            if track_deps {
                // Crash unwinding and re-boot are controller transitions,
                // not granted steps; drop any footprint they left behind.
                rt.take_step_accesses();
            }
            // A crash consumes a "step" so nested sweeps can target
            // positions inside recovery distinctly.
            steps += 1;
            continue;
        }

        let runnable = rt.runnable();
        if runnable.is_empty() {
            if rt.all_done() {
                // Pending crash points beyond the end are simply unused.
                break;
            }
            return finish(
                ExecOutcome::Deadlock,
                &sched,
                steps,
                crashes,
                &rt,
                &ghost,
                dep.take(),
            );
        }
        let tid = sched.choose(&runnable);
        // Snapshot immediately before the grant so controller-side ghost
        // calls (crash(), validate()) between grants never pollute the
        // per-grant delta.
        let ghost_ops = if track_deps { ghost.op_count() } else { 0 };
        let step = rt.grant(tid);
        steps += 1;
        if let Some(dep) = dep.as_mut() {
            let mut acc = rt.take_step_accesses();
            if ghost.op_count() != ghost_ops {
                // Ghost activity is tagged per thread: a thread's spec
                // events are ordered by its own program order, and any
                // cross-thread spec coupling (helping, linearization
                // against a shared object) is mediated by a physical
                // primitive whose resource tag is already in the
                // footprint. Untagged cross-thread ghost coupling would
                // be unsound to commute — see DESIGN.md §12.
                acc.push(StepAccess::write(res::GHOST | tid as u64));
            }
            dep.runnables.push(runnable.clone());
            dep.accesses.push(acc);
        }
        match step {
            StepResult::Yielded | StepResult::Blocked => {}
            StepResult::Finished => {
                if phase == Phase::Recovering && recovery_tid == Some(tid) {
                    phase = Phase::After;
                    if !after_spawned {
                        after_spawned = true;
                        for (name, body) in exec.after_recovery(&w) {
                            rt.spawn(name, body);
                        }
                    }
                }
            }
            StepResult::Panicked(PanicKind::Ghost(e)) => {
                return finish(
                    ExecOutcome::Violation(e),
                    &sched,
                    steps,
                    crashes,
                    &rt,
                    &ghost,
                    dep.take(),
                );
            }
            StepResult::Panicked(PanicKind::Ub(msg)) => {
                return finish(
                    ExecOutcome::Ub(msg),
                    &sched,
                    steps,
                    crashes,
                    &rt,
                    &ghost,
                    dep.take(),
                );
            }
            StepResult::Panicked(PanicKind::Other(msg)) => {
                return finish(
                    ExecOutcome::Bug(msg),
                    &sched,
                    steps,
                    crashes,
                    &rt,
                    &ghost,
                    dep.take(),
                );
            }
            StepResult::Panicked(PanicKind::CrashUnwind) => {
                // Only reachable via crash_all, which we drive ourselves.
                unreachable!("crash unwind surfaced outside crash injection");
            }
        }
    }
    rt.join_all();

    // A crash point scheduled exactly at the end of all work: treat as
    // unused (nothing was in flight; the sweep's earlier points covered
    // every interesting boundary).

    let (outcome, helped) = match ghost.validate() {
        Ok(report) => {
            let helped = report.helped as u64;
            match exec.final_check(&w) {
                Ok(()) => (ExecOutcome::Ok, helped),
                Err(msg) => (ExecOutcome::FinalCheckFailed(msg), helped),
            }
        }
        Err(e) => (ExecOutcome::Violation(e), 0),
    };
    let mut r = finish(outcome, &sched, steps, crashes, &rt, &ghost, dep.take());
    r.helped = helped;
    r
}

// ---------------------------------------------------------------------
// Parallel exploration machinery
// ---------------------------------------------------------------------

/// Canonical job key: (pass rank, index within the pass).
type JobKey = (u8, u64);

/// Derives the per-execution seed: `hash(base_seed, pass_rank, index)`.
/// Every execution's randomness is a pure function of these three, which
/// is what makes parallel and sequential runs indistinguishable.
fn exec_seed(base: u64, rank: u8, index: u64) -> u64 {
    splitmix(splitmix(base ^ (rank as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)) ^ index)
}

enum JobKind {
    /// One `run_one` execution.
    Single,
    /// A random-crash pair: probe the schedule crash-free to find its
    /// horizon, then rerun it with one derived crash point. The crash
    /// run reports under pass "random-crash" with the same index.
    ProbeThenCrash,
}

enum PolicySpec {
    Dfs {
        prefix: Vec<usize>,
        track_deps: bool,
    },
    RoundRobin,
    Random {
        prefix: Vec<usize>,
    },
}

struct Job {
    key: JobKey,
    pass: Pass,
    policy: PolicySpec,
    crash_points: Vec<u64>,
    /// Distinct crash points this job sweeps (for the report counter).
    swept: usize,
    /// The fault plan injected into this job's execution.
    faults: FaultPlan,
    kind: JobKind,
}

impl Job {
    /// A fault-free single execution (the common case).
    fn plain(key: JobKey, pass: Pass, policy: PolicySpec) -> Job {
        Job {
            key,
            pass,
            policy,
            crash_points: Vec::new(),
            swept: 0,
            faults: FaultPlan::default(),
            kind: JobKind::Single,
        }
    }
}

/// Which fault surface a plan exercises (coverage accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultFamily {
    None,
    Disk,
    Torn,
    Net,
}

impl FaultFamily {
    fn of(plan: &FaultPlan) -> Self {
        if !plan.transient_io.is_empty() || plan.disk_fail.is_some() {
            FaultFamily::Disk
        } else if plan.torn.is_some() {
            FaultFamily::Torn
        } else if !plan.net.is_empty() {
            FaultFamily::Net
        } else {
            FaultFamily::None
        }
    }
}

struct JobOutcome {
    key: JobKey,
    pass: Pass,
    steps: u64,
    crashes: usize,
    helped: u64,
    swept: usize,
    /// Fault plans this job swept (1 for fault-injection jobs).
    plans: usize,
    /// Which surface the job's plan exercised (coverage accounting).
    family: FaultFamily,
    /// Disk ops / net messages of the execution (probe horizons).
    disk_ops: u64,
    net_msgs: u64,
    /// How the execution ended (outcome histogram feed).
    kind: OutcomeKind,
    /// Schedule decisions taken (depth histogram feed).
    depth: u64,
    /// Crash points this execution injected (coverage accounting).
    crash_points: Vec<u64>,
    /// Ghost-trace fingerprint (behavioural coverage feed).
    trace_fp: u64,
    /// Wall time of the execution (telemetry only; the lone
    /// non-deterministic field here).
    duration: Duration,
    /// Full decision path — kept for schedule-phase jobs (strategy
    /// feedback: tree expansion, coverage corpora).
    decisions: Vec<(usize, usize)>,
    /// Dependency observations (DPOR-tracked jobs only).
    deps: Option<DepTrace>,
    cx: Option<Counterexample>,
}

/// Shared cancellation state: the minimum-key counterexample found so
/// far, plus a cheap "anything failed yet?" flag.
struct Cancel {
    keep_going: bool,
    stop: AtomicBool,
    best: Mutex<Option<JobKey>>,
}

impl Cancel {
    fn new(keep_going: bool) -> Self {
        Cancel {
            keep_going,
            stop: AtomicBool::new(false),
            best: Mutex::new(None),
        }
    }

    /// Whether a job with this key still needs to run. Skipping only
    /// jobs whose key is *greater* than a known failure's key preserves
    /// determinism: the minimum-key failure can never be skipped, so the
    /// reported counterexample is independent of worker timing.
    fn should_run(&self, key: JobKey) -> bool {
        if self.keep_going || !self.stop.load(Ordering::Relaxed) {
            return true;
        }
        match *self.best.lock() {
            Some(best) => key < best,
            None => true,
        }
    }

    fn offer(&self, key: JobKey) {
        let mut best = self.best.lock();
        if best.is_none_or(|b| key < b) {
            *best = Some(key);
        }
        self.stop.store(true, Ordering::Relaxed);
    }

    fn any_failure(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    /// Whether the exploration should stop scheduling further phases:
    /// a failure has been found and the config asked for early exit.
    fn cancelled(&self) -> bool {
        !self.keep_going && self.any_failure()
    }
}

fn make_counterexample(
    r: &RunResult,
    pass: Pass,
    index: u64,
    seed: u64,
    schedule_prefix: Vec<usize>,
    crash_points: Vec<u64>,
    faults: FaultPlan,
) -> Counterexample {
    Counterexample {
        outcome: r.outcome.clone(),
        pass,
        index,
        seed,
        schedule_prefix,
        crash_points,
        clamped: r.clamped.clone(),
        faults,
        trace: r.trace.clone(),
    }
}

/// Builds a [`JobOutcome`] from one finished execution and emits its
/// telemetry (`exec_done`, live counters, optional `counterexample`).
#[allow(clippy::too_many_arguments)]
fn finish_execution(
    r: &RunResult,
    key: JobKey,
    pass: Pass,
    seed: u64,
    crash_points: Vec<u64>,
    swept: usize,
    faults: &FaultPlan,
    keep_decisions: bool,
    telem: &RunTelemetry,
) -> JobOutcome {
    let kind = OutcomeKind::of(&r.outcome);
    telem.emit(&telemetry::ev_exec_done(
        pass,
        key.1,
        seed,
        kind,
        r.steps,
        r.decisions.len() as u64,
        r.crashes as u64,
        r.lock_blocks,
        r.trace_fp,
        &faults.compact(),
        r.duration,
    ));
    telem.exec_finished(r.steps, r.outcome.is_failure());
    JobOutcome {
        key,
        pass,
        steps: r.steps,
        crashes: r.crashes,
        helped: r.helped,
        swept,
        plans: usize::from(!faults.is_empty()),
        family: FaultFamily::of(faults),
        disk_ops: r.disk_ops,
        net_msgs: r.net_msgs,
        kind,
        depth: r.decisions.len() as u64,
        crash_points,
        trace_fp: r.trace_fp,
        duration: r.duration,
        decisions: if keep_decisions {
            r.decisions.clone()
        } else {
            Vec::new()
        },
        deps: r.deps.clone(),
        cx: None,
    }
}

/// Runs one job (one or two executions) and produces its outcomes.
fn execute_job<S: SpecTS, H: Harness<S>>(
    harness: &H,
    config: &CheckConfig,
    cancel: &Cancel,
    telem: &RunTelemetry,
    job: &Job,
) -> Vec<JobOutcome> {
    if !cancel.should_run(job.key) {
        return Vec::new();
    }
    let (rank, index) = job.key;
    let seed = exec_seed(config.seed, rank, index);
    let (policy, keep_decisions) = match &job.policy {
        PolicySpec::Dfs { prefix, .. } => (Policy::DfsPrefix(prefix.clone()), true),
        PolicySpec::RoundRobin => (Policy::RoundRobin, false),
        PolicySpec::Random { prefix } => (
            Policy::Random {
                seed,
                prefix: prefix.clone(),
            },
            // The coverage strategy feeds on random-pass decision paths;
            // the random-crash probes (rank 5) don't need them.
            job.pass == Pass::Random,
        ),
    };
    let track = matches!(
        &job.policy,
        PolicySpec::Dfs {
            track_deps: true,
            ..
        }
    );
    let r = run_one(
        harness,
        policy,
        &job.crash_points,
        &job.faults,
        seed,
        config.max_steps,
        track,
    );

    let mut out = finish_execution(
        &r,
        job.key,
        job.pass,
        seed,
        job.crash_points.clone(),
        job.swept,
        &job.faults,
        keep_decisions,
        telem,
    );
    if r.outcome.is_failure() {
        let prefix = match &job.policy {
            PolicySpec::Dfs { prefix, .. } => prefix.clone(),
            PolicySpec::Random { prefix } => prefix.clone(),
            PolicySpec::RoundRobin => Vec::new(),
        };
        let cx = make_counterexample(
            &r,
            job.pass,
            index,
            seed,
            prefix,
            job.crash_points.clone(),
            job.faults.clone(),
        );
        telem.emit(&telemetry::ev_counterexample(&cx));
        out.cx = Some(cx);
        cancel.offer(job.key);
        return vec![out];
    }

    match job.kind {
        JobKind::Single => vec![out],
        JobKind::ProbeThenCrash => {
            // The probe succeeded: rerun the same schedule with one
            // crash point derived from the probe's horizon. The crash
            // run reuses the probe's seed so the schedule replays.
            let crash_key = (Pass::RandomCrash.rank(), index);
            if !cancel.should_run(crash_key) {
                return vec![out];
            }
            let horizon = r.steps.max(1);
            let k = splitmix(seed) % horizon;
            let r2 = run_one(
                harness,
                Policy::Random {
                    seed,
                    prefix: Vec::new(),
                },
                &[k],
                &job.faults,
                seed,
                config.max_steps,
                false,
            );
            let mut out2 = finish_execution(
                &r2,
                crash_key,
                Pass::RandomCrash,
                seed,
                vec![k],
                1,
                &job.faults,
                false,
                telem,
            );
            if r2.outcome.is_failure() {
                let cx = make_counterexample(
                    &r2,
                    Pass::RandomCrash,
                    index,
                    seed,
                    Vec::new(),
                    vec![k],
                    job.faults.clone(),
                );
                telem.emit(&telemetry::ev_counterexample(&cx));
                out2.cx = Some(cx);
                cancel.offer(crash_key);
            }
            vec![out, out2]
        }
    }
}

/// Runs a batch of jobs across the worker pool (inline when a single
/// worker suffices) and returns their outcomes in job order.
fn run_wave<S: SpecTS, H: Harness<S>>(
    harness: &H,
    config: &CheckConfig,
    cancel: &Cancel,
    telem: &RunTelemetry,
    workers: usize,
    jobs: &[Job],
) -> Vec<JobOutcome> {
    let workers = workers.min(jobs.len()).max(1);
    if workers == 1 {
        return jobs
            .iter()
            .flat_map(|job| execute_job(harness, config, cancel, telem, job))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Vec<JobOutcome>>> =
        (0..jobs.len()).map(|_| Mutex::new(Vec::new())).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let outs = execute_job(harness, config, cancel, telem, &jobs[i]);
                *slots[i].lock() = outs;
            });
        }
    });
    slots
        .into_iter()
        .flat_map(|slot| slot.into_inner())
        .collect()
}

/// Runs all configured exploration passes over a scenario, dispatching
/// executions across [`CheckConfig::workers`] threads. See the module
/// docs for the determinism contract.
pub fn check<S: SpecTS, H: Harness<S>>(harness: &H, config: &CheckConfig) -> CheckReport {
    let start = Instant::now();
    let workers = config.effective_workers();
    let telem = RunTelemetry::new(harness.name(), config);
    telem.emit(&telemetry::ev_run_start(harness.name(), config, workers));
    let cancel = Cancel::new(config.keep_going);
    let mut outcomes: Vec<JobOutcome> = Vec::new();
    // Enumerable sweep spaces, recorded as each pass derives its job
    // list (deterministic: job derivation is probe-driven, not timed).
    let mut coverage = Coverage::default();
    let pass_start = |pass: Pass| {
        telem.emit(&telemetry::ev_pass_start(pass));
    };

    // Schedule phase (ranks 0-1): the strategy decides which crash-free
    // schedules to run, as a wave loop with feedback. Each wave's job
    // keys are assigned in spec order before anything runs; feedback
    // (frontier expansion, sleep-set pruning, coverage re-seeding) is
    // applied only from *complete* waves — a wave cut short by a failure
    // is never observed — so the explored set and the pruned/guided
    // counters are worker-count independent.
    let mut session = config.strategy.session(config);
    let mut announced = PassSet::empty();
    let mut next_index: BTreeMap<u8, u64> = BTreeMap::new();
    while !cancel.cancelled() {
        let Some(wave) = session.next_wave() else {
            break;
        };
        let pass = wave.pass;
        if !announced.contains(pass) {
            announced.insert(pass);
            pass_start(pass);
        }
        let first = *next_index.entry(pass.rank()).or_insert(0);
        let jobs: Vec<Job> = wave
            .specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let key = (pass.rank(), first + i as u64);
                let policy = match spec {
                    ScheduleSpec::Dfs { prefix, track_deps } => PolicySpec::Dfs {
                        prefix: prefix.clone(),
                        track_deps: *track_deps,
                    },
                    ScheduleSpec::Random { prefix } => PolicySpec::Random {
                        prefix: prefix.clone(),
                    },
                };
                Job::plain(key, pass, policy)
            })
            .collect();
        next_index.insert(pass.rank(), first + jobs.len() as u64);
        let outs = run_wave(harness, config, &cancel, &telem, workers, &jobs);
        let observed: Vec<ObservedExec> = outs
            .iter()
            .map(|o| ObservedExec {
                slot: (o.key.1 - first) as usize,
                decisions: o.decisions.clone(),
                trace_fp: o.trace_fp,
                failed: o.kind != OutcomeKind::Ok,
                deps: o.deps.clone(),
            })
            .collect();
        outcomes.extend(outs);
        if !config.keep_going && cancel.any_failure() {
            // Break *before* observing: the failing wave may be partial
            // (later jobs skipped), and partial feedback would make
            // strategy state depend on worker timing.
            break;
        }
        session.observe(pass, &observed);
    }

    // Passes 2-4: systematic crash sweep on the round-robin schedule.
    if config.passes.contains(Pass::CrashSweep) && !cancel.cancelled() {
        pass_start(Pass::CrashSweepBase);
        // Rank 2: discover the crash-free horizon first.
        let base_jobs = vec![Job::plain(
            (Pass::CrashSweepBase.rank(), 0),
            Pass::CrashSweepBase,
            PolicySpec::RoundRobin,
        )];
        let base = run_wave(harness, config, &cancel, &telem, workers, &base_jobs);
        let horizon = base.first().map_or(0, |o| o.steps);
        outcomes.extend(base);

        // Rank 3: one crash at every grant count up to the horizon.
        if !cancel.cancelled() {
            pass_start(Pass::CrashSweep);
            coverage.crash_points_enumerable = horizon;
            let jobs: Vec<Job> = (0..horizon)
                .map(|k| Job {
                    crash_points: vec![k],
                    swept: 1,
                    ..Job::plain(
                        (Pass::CrashSweep.rank(), k),
                        Pass::CrashSweep,
                        PolicySpec::RoundRobin,
                    )
                })
                .collect();
            let sweep = run_wave(harness, config, &cancel, &telem, workers, &jobs);

            // Rank 4: a second crash inside each recovery, generated in
            // deterministic (k, m) order from the sweep's step counts.
            if config.passes.contains(Pass::NestedCrash) && !cancel.cancelled() {
                pass_start(Pass::NestedCrash);
                let mut nested: Vec<Job> = Vec::new();
                let mut index: u64 = 0;
                for out in &sweep {
                    let k = out.key.1;
                    let after = out.steps.saturating_sub(k + 1);
                    for m in 0..after {
                        nested.push(Job {
                            crash_points: vec![k, k + 1 + m],
                            swept: 1,
                            ..Job::plain(
                                (Pass::NestedCrash.rank(), index),
                                Pass::NestedCrash,
                                PolicySpec::RoundRobin,
                            )
                        });
                        index += 1;
                    }
                }
                outcomes.extend(sweep);
                outcomes.extend(run_wave(harness, config, &cancel, &telem, workers, &nested));
            } else {
                outcomes.extend(sweep);
            }
        }
    }

    // Passes 5-6: random schedules with a random crash point each (probe
    // + crash run are one job; the crash run reuses the probe's seed).
    if config.passes.contains(Pass::RandomCrash) && !cancel.cancelled() {
        pass_start(Pass::RandomCrashProbe);
        let jobs: Vec<Job> = (0..config.random_crash_samples as u64)
            .map(|i| Job {
                kind: JobKind::ProbeThenCrash,
                ..Job::plain(
                    (Pass::RandomCrashProbe.rank(), i),
                    Pass::RandomCrashProbe,
                    PolicySpec::Random { prefix: Vec::new() },
                )
            })
            .collect();
        outcomes.extend(run_wave(harness, config, &cancel, &telem, workers, &jobs));
    }

    // Passes 7-9: deterministic fault-injection sweeps. Each pass probes
    // the fault-free round-robin schedule at index 0 to learn the
    // enumeration horizon (grant count, disk-op count, or message
    // count), then enumerates one fault plan per job at indices >= 1.
    // The probe is deterministic, so the derived job list — and hence
    // every job key — is independent of worker count.
    let surface = harness.fault_surface();

    // Pass 7: transient I/O errors on every disk op, plus (on two-disk
    // substrates) a permanent single-disk failure at every grant count,
    // including during recovery.
    if config.passes.contains(Pass::DiskFault)
        && (surface.transient_disk_io || surface.two_disk)
        && !cancel.cancelled()
    {
        let rank = Pass::DiskFault.rank();
        pass_start(Pass::DiskFault);
        let probe = run_wave(
            harness,
            config,
            &cancel,
            &telem,
            workers,
            &[Job::plain(
                (rank, 0),
                Pass::DiskFault,
                PolicySpec::RoundRobin,
            )],
        );
        let horizon = probe.first().map_or(0, |o| o.steps);
        let disk_ops = probe.first().map_or(0, |o| o.disk_ops);
        outcomes.extend(probe);

        if !cancel.cancelled() {
            let mut jobs: Vec<Job> = Vec::new();
            let mut index: u64 = 1;
            if surface.transient_disk_io {
                for j in 0..disk_ops {
                    let mut faults = FaultPlan::default();
                    faults.transient_io.insert(j);
                    jobs.push(Job {
                        faults,
                        ..Job::plain((rank, index), Pass::DiskFault, PolicySpec::RoundRobin)
                    });
                    index += 1;
                }
            }
            if surface.two_disk {
                for g in 0..horizon {
                    for d in [1u8, 2u8] {
                        let faults = FaultPlan {
                            disk_fail: Some((d, g)),
                            ..FaultPlan::default()
                        };
                        jobs.push(Job {
                            faults,
                            ..Job::plain((rank, index), Pass::DiskFault, PolicySpec::RoundRobin)
                        });
                        index += 1;
                    }
                }
            }
            coverage.disk_fault_plans_enumerable += jobs.len() as u64;
            outcomes.extend(run_wave(harness, config, &cancel, &telem, workers, &jobs));

            // Disk failure *during recovery*: probe one mid-schedule
            // crash to learn the recovery horizon, then fail each disk
            // at every post-crash grant count.
            if surface.two_disk && horizon > 0 && !cancel.cancelled() {
                let k = horizon / 2;
                let probe2_jobs = vec![Job {
                    crash_points: vec![k],
                    swept: 1,
                    ..Job::plain((rank, index), Pass::DiskFault, PolicySpec::RoundRobin)
                }];
                index += 1;
                let probe2 = run_wave(harness, config, &cancel, &telem, workers, &probe2_jobs);
                let h2 = probe2.first().map_or(0, |o| o.steps);
                outcomes.extend(probe2);
                if !cancel.cancelled() {
                    let mut jobs: Vec<Job> = Vec::new();
                    for g in k + 1..h2 {
                        for d in [1u8, 2u8] {
                            let faults = FaultPlan {
                                disk_fail: Some((d, g)),
                                ..FaultPlan::default()
                            };
                            jobs.push(Job {
                                crash_points: vec![k],
                                swept: 1,
                                faults,
                                ..Job::plain((rank, index), Pass::DiskFault, PolicySpec::RoundRobin)
                            });
                            index += 1;
                        }
                    }
                    coverage.disk_fault_plans_enumerable += jobs.len() as u64;
                    outcomes.extend(run_wave(harness, config, &cancel, &telem, workers, &jobs));
                }
            }
        }
    }

    // Pass 8: torn-write sweep — at every crash point of the baseline
    // schedule, crashes that persist none or a pseudo-random subset of
    // the unflushed write buffer (persisting *all* of it is exactly the
    // plain crash sweep).
    if config.passes.contains(Pass::TornWrite) && surface.torn_writes && !cancel.cancelled() {
        let rank = Pass::TornWrite.rank();
        pass_start(Pass::TornWrite);
        let probe = run_wave(
            harness,
            config,
            &cancel,
            &telem,
            workers,
            &[Job::plain(
                (rank, 0),
                Pass::TornWrite,
                PolicySpec::RoundRobin,
            )],
        );
        let horizon = probe.first().map_or(0, |o| o.steps);
        outcomes.extend(probe);

        if !cancel.cancelled() {
            const MODES: [TornMode; 3] =
                [TornMode::KeepNone, TornMode::Subset(0), TornMode::Subset(1)];
            let jobs: Vec<Job> = (0..horizon)
                .flat_map(|k| {
                    MODES.iter().enumerate().map(move |(m, mode)| {
                        let faults = FaultPlan {
                            torn: Some(*mode),
                            ..FaultPlan::default()
                        };
                        Job {
                            crash_points: vec![k],
                            swept: 1,
                            faults,
                            ..Job::plain(
                                (rank, 1 + k * MODES.len() as u64 + m as u64),
                                Pass::TornWrite,
                                PolicySpec::RoundRobin,
                            )
                        }
                    })
                })
                .collect();
            coverage.torn_plans_enumerable += jobs.len() as u64;
            outcomes.extend(run_wave(harness, config, &cancel, &telem, workers, &jobs));
        }
    }

    // Pass 9: network-fault sweep — drop, duplicate, or delay each
    // message of the baseline schedule, one fault per execution.
    if config.passes.contains(Pass::NetFault) && surface.net && !cancel.cancelled() {
        let rank = Pass::NetFault.rank();
        pass_start(Pass::NetFault);
        let probe = run_wave(
            harness,
            config,
            &cancel,
            &telem,
            workers,
            &[Job::plain(
                (rank, 0),
                Pass::NetFault,
                PolicySpec::RoundRobin,
            )],
        );
        let net_msgs = probe.first().map_or(0, |o| o.net_msgs);
        outcomes.extend(probe);

        if !cancel.cancelled() {
            const FAULTS: [NetFault; 3] = [NetFault::Drop, NetFault::Duplicate, NetFault::Delay];
            let jobs: Vec<Job> = (0..net_msgs)
                .flat_map(|m| {
                    FAULTS.iter().enumerate().map(move |(f, fault)| {
                        let mut faults = FaultPlan::default();
                        faults.net.insert(m, *fault);
                        Job {
                            faults,
                            ..Job::plain(
                                (rank, 1 + m * FAULTS.len() as u64 + f as u64),
                                Pass::NetFault,
                                PolicySpec::RoundRobin,
                            )
                        }
                    })
                })
                .collect();
            coverage.net_plans_enumerable += jobs.len() as u64;
            outcomes.extend(run_wave(harness, config, &cancel, &telem, workers, &jobs));
        }
    }

    // Aggregate. Without keep_going, statistics and counterexamples are
    // restricted to jobs at or below the winning key — exactly the set a
    // canonical-order sequential run would have executed — which makes
    // the whole report worker-count independent.
    let mut counterexamples: Vec<Counterexample> =
        outcomes.iter().filter_map(|o| o.cx.clone()).collect();
    counterexamples.sort_by_key(|cx| cx.key());
    let cutoff = if config.keep_going {
        None
    } else {
        counterexamples.first().map(|cx| cx.key())
    };
    if let Some(cut) = cutoff {
        counterexamples.retain(|cx| cx.key() <= cut);
    }

    let mut report = CheckReport {
        name: harness.name().to_string(),
        workers,
        ..CheckReport::default()
    };
    let mut per_pass: BTreeMap<Pass, PassMetrics> = BTreeMap::new();
    let mut crash_point_set: BTreeSet<u64> = BTreeSet::new();
    let mut trace_set: BTreeSet<u64> = BTreeSet::new();
    for out in &outcomes {
        if cutoff.is_some_and(|cut| out.key > cut) {
            continue;
        }
        report.executions += 1;
        report.total_steps += out.steps;
        report.crashes_injected += out.crashes;
        report.helped_ops += out.helped;
        report.crash_points += out.swept;
        report.fault_plans += out.plans;

        report.outcomes.record(out.kind);
        report.steps_hist.record(out.steps);
        report.depth_hist.record(out.depth);
        trace_set.insert(out.trace_fp);
        crash_point_set.extend(out.crash_points.iter().copied());
        if out.plans > 0 {
            match out.family {
                FaultFamily::Disk => coverage.disk_fault_plans_exercised += 1,
                FaultFamily::Torn => coverage.torn_plans_exercised += 1,
                FaultFamily::Net => coverage.net_plans_exercised += 1,
                FaultFamily::None => {}
            }
        }
        let pm = per_pass.entry(out.pass).or_insert(PassMetrics {
            pass: out.pass,
            rank: out.key.0,
            ..PassMetrics::default()
        });
        pm.executions += 1;
        pm.steps += out.steps;
        pm.crashes += out.crashes as u64;
        pm.fault_plans += out.plans as u64;
        pm.failures += u64::from(out.kind != OutcomeKind::Ok);
        pm.busy_time += out.duration;
    }
    coverage.crash_points_exercised = crash_point_set.len() as u64;
    coverage.distinct_traces = trace_set.len() as u64;
    report.per_pass = per_pass.into_values().collect();
    report.coverage = coverage;
    report.strategy = config.strategy.name().to_string();
    report.pruned = session.pruned();
    report.coverage_guided = session.guided();
    for pm in &mut report.per_pass {
        if pm.pass == Pass::Dfs {
            pm.pruned = report.pruned;
        }
        if pm.pass == Pass::Random {
            pm.coverage_guided = report.coverage_guided;
        }
    }
    report.counterexample = counterexamples.first().cloned();
    report.counterexamples = counterexamples;
    report.wall_time = start.elapsed();
    report.execs_per_sec = report.executions as f64 / report.wall_time.as_secs_f64().max(1e-9);
    telem.emit(&telemetry::ev_run_end(&report));
    report
}

/// Reruns a single execution (round-robin schedule) with explicit crash
/// points — used by tests that target one specific interleaving, like the
/// paper's Figure 6 scenario.
pub fn run_scenario<S: SpecTS, H: Harness<S>>(
    harness: &H,
    crash_points: &[u64],
    config: &CheckConfig,
) -> (ExecOutcome, String) {
    let r = run_one(
        harness,
        Policy::RoundRobin,
        crash_points,
        &FaultPlan::default(),
        config.seed,
        config.max_steps,
        false,
    );
    (r.outcome, r.trace)
}

/// Replays a counterexample: reruns the execution with the recorded
/// schedule, seed, and crash points, returning the (deterministic)
/// outcome and trace — the debugging entry point for a failing
/// [`Counterexample`].
///
/// DFS counterexamples carry a choice-index prefix; crash-sweep ones
/// replay round-robin with the recorded crash points; random-pass
/// counterexamples replay the recorded per-execution seed (plus the
/// corpus prefix, for coverage-guided samples).
pub fn replay<S: SpecTS, H: Harness<S>>(
    harness: &H,
    cx: &Counterexample,
    config: &CheckConfig,
) -> (ExecOutcome, String) {
    let policy = match cx.pass {
        Pass::Random | Pass::RandomCrash | Pass::RandomCrashProbe => Policy::Random {
            seed: cx.seed,
            prefix: cx.schedule_prefix.clone(),
        },
        Pass::CrashSweepBase
        | Pass::CrashSweep
        | Pass::NestedCrash
        | Pass::DiskFault
        | Pass::TornWrite
        | Pass::NetFault => Policy::RoundRobin,
        Pass::Dfs => Policy::DfsPrefix(cx.schedule_prefix.clone()),
    };
    let r = run_one(
        harness,
        policy,
        &cx.crash_points,
        &cx.faults,
        cx.seed,
        config.max_steps,
        false,
    );
    (r.outcome, r.trace)
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}
