//! The explorer: bounded model checking over schedules and crash points.
//!
//! This is the reproduction's substitute for the paper's Coq proofs (see
//! DESIGN.md §1): instead of a theorem over *all* executions, the
//! explorer enumerates a bounded set — exhaustive DFS over interleavings
//! for small configurations, randomized sampling beyond that, and a
//! systematic sweep of crash points including crashes during recovery —
//! and requires the ghost discipline (Theorem 2's obligations) to hold on
//! every one.

use crate::harness::{Harness, World};
use goose_rt::sched::{ModelRt, PanicKind, StepResult, Tid};
use perennial::{Ghost, GhostError};
use perennial_spec::SpecTS;
use std::sync::Arc;

/// Explorer configuration.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Base seed for deterministic randomness (model RNG and random
    /// schedules).
    pub seed: u64,
    /// Per-execution step bound (livelock backstop).
    pub max_steps: u64,
    /// Cap on DFS-enumerated schedules (0 disables DFS).
    pub dfs_max_executions: usize,
    /// Number of random schedules to sample (crash-free).
    pub random_samples: usize,
    /// Sweep a crash at every step of the baseline schedule.
    pub crash_sweep: bool,
    /// Additionally sweep one nested crash during each recovery.
    pub nested_crash_sweep: bool,
    /// Random schedules to sample *with* a random crash point each.
    pub random_crash_samples: usize,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            seed: 0,
            max_steps: 100_000,
            dfs_max_executions: 2_000,
            random_samples: 50,
            crash_sweep: true,
            nested_crash_sweep: true,
            random_crash_samples: 100,
        }
    }
}

impl CheckConfig {
    /// A quick configuration for unit tests (small bounds).
    pub fn quick() -> Self {
        CheckConfig {
            dfs_max_executions: 200,
            random_samples: 10,
            random_crash_samples: 20,
            nested_crash_sweep: false,
            ..CheckConfig::default()
        }
    }
}

/// How one explored execution ended.
#[derive(Debug, Clone)]
pub enum ExecOutcome {
    /// Ghost validation and the final check both passed.
    Ok,
    /// A ghost capability rule or end-of-execution obligation failed —
    /// a refinement violation.
    Violation(GhostError),
    /// Modelled undefined behaviour was triggered.
    Ub(String),
    /// A plain panic in the code under test.
    Bug(String),
    /// No runnable thread but unfinished work: a deadlock.
    Deadlock,
    /// The harness's final predicate failed.
    FinalCheckFailed(String),
}

impl ExecOutcome {
    /// Whether this outcome counts as a verification failure.
    pub fn is_failure(&self) -> bool {
        !matches!(self, ExecOutcome::Ok)
    }
}

/// A failing execution, with enough context to reproduce and debug it.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// What failed.
    pub outcome: ExecOutcome,
    /// Which exploration pass produced it.
    pub pass: &'static str,
    /// The schedule prefix (choice indices) that reproduces it.
    pub schedule_prefix: Vec<usize>,
    /// Injected crash points (absolute grant counts).
    pub crash_points: Vec<u64>,
    /// Rendered ghost trace at failure.
    pub trace: String,
}

/// Aggregate result of checking one scenario.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Scenario name.
    pub name: String,
    /// Executions explored.
    pub executions: usize,
    /// Total scheduled steps across executions.
    pub total_steps: u64,
    /// Crashes injected across executions.
    pub crashes_injected: usize,
    /// Distinct crash points swept.
    pub crash_points: usize,
    /// Operations helped by recovery across executions.
    pub helped_ops: u64,
    /// First counterexample found, if any.
    pub counterexample: Option<Counterexample>,
}

impl CheckReport {
    /// Whether every explored execution passed.
    pub fn passed(&self) -> bool {
        self.counterexample.is_none()
    }

    /// One-line summary.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} executions, {} steps, {} crashes over {} crash points, {} helped ops — {}",
            self.name,
            self.executions,
            self.total_steps,
            self.crashes_injected,
            self.crash_points,
            self.helped_ops,
            if self.passed() { "PASS" } else { "FAIL" }
        )
    }
}

/// Schedule policy for one execution.
enum Policy {
    /// Deterministic: follow the recorded prefix, then always pick the
    /// first runnable (DFS order).
    DfsPrefix(Vec<usize>),
    /// Round-robin over runnable threads.
    RoundRobin,
    /// Seeded pseudo-random choice.
    Random(u64),
}

struct ScheduleState {
    policy: Policy,
    /// (choice index, number of runnable options) per decision.
    decisions: Vec<(usize, usize)>,
    rr_next: usize,
    rng: u64,
}

impl ScheduleState {
    fn new(policy: Policy) -> Self {
        let rng = match &policy {
            Policy::Random(s) => *s | 1,
            _ => 1,
        };
        ScheduleState {
            policy,
            decisions: Vec::new(),
            rr_next: 0,
            rng,
        }
    }

    fn choose(&mut self, runnable: &[Tid]) -> Tid {
        let n = runnable.len();
        let idx = match &self.policy {
            Policy::DfsPrefix(prefix) => {
                let d = self.decisions.len();
                if d < prefix.len() {
                    prefix[d].min(n - 1)
                } else {
                    0
                }
            }
            Policy::RoundRobin => {
                let idx = self.rr_next % n;
                self.rr_next += 1;
                idx
            }
            Policy::Random(_) => {
                // xorshift64*
                self.rng ^= self.rng << 13;
                self.rng ^= self.rng >> 7;
                self.rng ^= self.rng << 17;
                (self.rng as usize) % n
            }
        };
        self.decisions.push((idx, n));
        runnable[idx]
    }
}

/// Phase of one execution's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Main,
    Recovering,
    After,
}

struct RunResult {
    outcome: ExecOutcome,
    decisions: Vec<(usize, usize)>,
    steps: u64,
    crashes: usize,
    helped: u64,
    trace: String,
}

/// Runs one execution under `policy`, injecting crashes at the given
/// absolute grant counts.
fn run_one<S: SpecTS, H: Harness<S>>(
    harness: &H,
    policy: Policy,
    crash_points: &[u64],
    seed: u64,
    max_steps: u64,
) -> RunResult {
    let rt = ModelRt::new(seed, max_steps);
    let ghost = Ghost::new(harness.spec());
    let w = World {
        rt: Arc::clone(&rt),
        ghost: Arc::clone(&ghost),
    };
    let mut exec = harness.make(&w);
    exec.boot(&w);
    for (name, body) in exec.threads(&w) {
        rt.spawn(name, body);
    }

    let mut sched = ScheduleState::new(policy);
    let mut steps: u64 = 0;
    let mut crashes = 0usize;
    let mut crash_iter = crash_points.iter().copied().peekable();
    let mut phase = Phase::Main;
    let mut recovery_tid: Option<Tid> = None;
    let mut after_spawned = false;

    let finish = |outcome: ExecOutcome,
                  sched: &ScheduleState,
                  steps: u64,
                  crashes: usize,
                  ghost: &Arc<Ghost<S>>| RunResult {
        outcome,
        decisions: sched.decisions.clone(),
        steps,
        crashes,
        helped: 0,
        trace: ghost.trace().render(),
    };

    loop {
        // Crash injection at this step boundary?
        if crash_iter.peek() == Some(&steps) {
            crash_iter.next();
            crashes += 1;
            rt.crash_all();
            ghost.crash();
            exec.crash_reset(&w);
            exec.boot(&w);
            let body = exec.recovery(&w);
            recovery_tid = Some(rt.spawn("recovery", body));
            phase = Phase::Recovering;
            // A crash consumes a "step" so nested sweeps can target
            // positions inside recovery distinctly.
            steps += 1;
            continue;
        }

        let runnable = rt.runnable();
        if runnable.is_empty() {
            if rt.all_done() {
                // Pending crash points beyond the end are simply unused.
                break;
            }
            return finish(ExecOutcome::Deadlock, &sched, steps, crashes, &ghost);
        }
        let tid = sched.choose(&runnable);
        let res = rt.grant(tid);
        steps += 1;
        match res {
            StepResult::Yielded | StepResult::Blocked => {}
            StepResult::Finished => {
                if phase == Phase::Recovering && recovery_tid == Some(tid) {
                    phase = Phase::After;
                    if !after_spawned {
                        after_spawned = true;
                        for (name, body) in exec.after_recovery(&w) {
                            rt.spawn(name, body);
                        }
                    }
                }
            }
            StepResult::Panicked(PanicKind::Ghost(e)) => {
                return finish(ExecOutcome::Violation(e), &sched, steps, crashes, &ghost);
            }
            StepResult::Panicked(PanicKind::Ub(msg)) => {
                return finish(ExecOutcome::Ub(msg), &sched, steps, crashes, &ghost);
            }
            StepResult::Panicked(PanicKind::Other(msg)) => {
                return finish(ExecOutcome::Bug(msg), &sched, steps, crashes, &ghost);
            }
            StepResult::Panicked(PanicKind::CrashUnwind) => {
                // Only reachable via crash_all, which we drive ourselves.
                unreachable!("crash unwind surfaced outside crash injection");
            }
        }
    }
    rt.join_all();

    // A crash point scheduled exactly at the end of all work: treat as
    // unused (nothing was in flight; the sweep's earlier points covered
    // every interesting boundary).

    let (outcome, helped) = match ghost.validate() {
        Ok(report) => {
            let helped = report.helped as u64;
            match exec.final_check(&w) {
                Ok(()) => (ExecOutcome::Ok, helped),
                Err(msg) => (ExecOutcome::FinalCheckFailed(msg), helped),
            }
        }
        Err(e) => (ExecOutcome::Violation(e), 0),
    };
    let mut r = finish(outcome, &sched, steps, crashes, &ghost);
    r.helped = helped;
    r
}

/// Advances a DFS prefix to the next unexplored schedule; `None` when the
/// tree is exhausted.
fn next_prefix(decisions: &[(usize, usize)]) -> Option<Vec<usize>> {
    let mut prefix: Vec<usize> = decisions.iter().map(|(i, _)| *i).collect();
    loop {
        let last = prefix.len().checked_sub(1)?;
        let (_, n) = decisions[last];
        if prefix[last] + 1 < n {
            prefix[last] += 1;
            return Some(prefix);
        }
        prefix.pop();
        if prefix.is_empty() {
            return None;
        }
    }
}

/// Runs all configured exploration passes over a scenario.
pub fn check<S: SpecTS, H: Harness<S>>(harness: &H, config: &CheckConfig) -> CheckReport {
    let mut report = CheckReport {
        name: harness.name().to_string(),
        ..CheckReport::default()
    };

    let record = |r: RunResult,
                  pass: &'static str,
                  prefix: Vec<usize>,
                  crash_points: Vec<u64>,
                  report: &mut CheckReport| {
        report.executions += 1;
        report.total_steps += r.steps;
        report.crashes_injected += r.crashes;
        report.helped_ops += r.helped;
        if r.outcome.is_failure() && report.counterexample.is_none() {
            report.counterexample = Some(Counterexample {
                outcome: r.outcome.clone(),
                pass,
                schedule_prefix: prefix,
                crash_points,
                trace: r.trace.clone(),
            });
        }
        r.outcome.is_failure()
    };

    // Pass 1: DFS over crash-free schedules.
    if config.dfs_max_executions > 0 {
        let mut prefix: Vec<usize> = Vec::new();
        for _ in 0..config.dfs_max_executions {
            let r = run_one(
                harness,
                Policy::DfsPrefix(prefix.clone()),
                &[],
                config.seed,
                config.max_steps,
            );
            let decisions = r.decisions.clone();
            if record(r, "dfs", prefix.clone(), vec![], &mut report) {
                return report;
            }
            match next_prefix(&decisions) {
                Some(p) => prefix = p,
                None => break,
            }
        }
    }

    // Pass 2: random crash-free schedules.
    for i in 0..config.random_samples {
        let s = config.seed ^ (0x5151_0000 + i as u64);
        let r = run_one(
            harness,
            Policy::Random(s),
            &[],
            config.seed,
            config.max_steps,
        );
        if record(r, "random", vec![s as usize], vec![], &mut report) {
            return report;
        }
    }

    // Pass 3: systematic crash sweep on the round-robin schedule.
    if config.crash_sweep {
        // Discover the crash-free length first.
        let base = run_one(
            harness,
            Policy::RoundRobin,
            &[],
            config.seed,
            config.max_steps,
        );
        let horizon = base.steps;
        if record(base, "crash-sweep-base", vec![], vec![], &mut report) {
            return report;
        }
        for k in 0..horizon {
            report.crash_points += 1;
            let r = run_one(
                harness,
                Policy::RoundRobin,
                &[k],
                config.seed,
                config.max_steps,
            );
            let steps_after_crash = r.steps.saturating_sub(k + 1);
            if record(r, "crash-sweep", vec![], vec![k], &mut report) {
                return report;
            }
            // Nested: crash during the recovery that followed the crash
            // at k, at every recovery step.
            if config.nested_crash_sweep {
                for m in 0..steps_after_crash {
                    report.crash_points += 1;
                    let second = k + 1 + m;
                    let r2 = run_one(
                        harness,
                        Policy::RoundRobin,
                        &[k, second],
                        config.seed,
                        config.max_steps,
                    );
                    if record(
                        r2,
                        "nested-crash-sweep",
                        vec![],
                        vec![k, second],
                        &mut report,
                    ) {
                        return report;
                    }
                }
            }
        }
    }

    // Pass 4: random schedules with a random crash point each.
    for i in 0..config.random_crash_samples {
        let s = config.seed ^ (0xc4a5_0000 + i as u64);
        // Probe the schedule's length crash-free, then pick a point.
        let probe = run_one(
            harness,
            Policy::Random(s),
            &[],
            config.seed,
            config.max_steps,
        );
        let horizon = probe.steps.max(1);
        if record(
            probe,
            "random-crash-probe",
            vec![s as usize],
            vec![],
            &mut report,
        ) {
            return report;
        }
        let k = splitmix(s) % horizon;
        report.crash_points += 1;
        let r = run_one(
            harness,
            Policy::Random(s),
            &[k],
            config.seed,
            config.max_steps,
        );
        if record(r, "random-crash", vec![s as usize], vec![k], &mut report) {
            return report;
        }
    }

    report
}

/// Reruns a single execution (round-robin schedule) with explicit crash
/// points — used by tests that target one specific interleaving, like the
/// paper's Figure 6 scenario.
pub fn run_scenario<S: SpecTS, H: Harness<S>>(
    harness: &H,
    crash_points: &[u64],
    config: &CheckConfig,
) -> (ExecOutcome, String) {
    let r = run_one(
        harness,
        Policy::RoundRobin,
        crash_points,
        config.seed,
        config.max_steps,
    );
    (r.outcome, r.trace)
}

/// Replays a counterexample: reruns the execution with the recorded
/// schedule prefix and crash points, returning the (deterministic)
/// outcome and trace — the debugging entry point for a failing
/// [`Counterexample`].
///
/// DFS counterexamples carry a choice-index prefix; crash-sweep ones
/// carry an empty prefix (round-robin) plus crash points. Random-pass
/// counterexamples carry the seed in `schedule_prefix[0]` and are
/// replayed with the same random policy.
pub fn replay<S: SpecTS, H: Harness<S>>(
    harness: &H,
    cx: &Counterexample,
    config: &CheckConfig,
) -> (ExecOutcome, String) {
    let policy = match cx.pass {
        "random" | "random-crash" | "random-crash-probe" => {
            Policy::Random(cx.schedule_prefix.first().copied().unwrap_or(1) as u64)
        }
        "crash-sweep" | "crash-sweep-base" | "nested-crash-sweep" => Policy::RoundRobin,
        _ => Policy::DfsPrefix(cx.schedule_prefix.clone()),
    };
    let r = run_one(
        harness,
        policy,
        &cx.crash_points,
        config.seed,
        config.max_steps,
    );
    (r.outcome, r.trace)
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}
