//! The explorer: bounded model checking over schedules and crash points.
//!
//! This is the reproduction's substitute for the paper's Coq proofs (see
//! DESIGN.md §1): instead of a theorem over *all* executions, the
//! explorer enumerates a bounded set — a schedule phase over crash-free
//! interleavings driven by a pluggable [`Strategy`] (exhaustive DFS,
//! random sampling, sleep-set DPOR, coverage-guided sampling; see
//! DESIGN.md §12), and a systematic sweep of crash points including
//! crashes during recovery — and requires the ghost discipline
//! (Theorem 2's obligations) to hold on every one.
//!
//! # Parallel exploration and the determinism contract
//!
//! Every explored execution is independent (fresh [`ModelRt`] + ghost
//! state per run), so the explorer dispatches them across a worker pool
//! ([`CheckConfig::workers`]). Determinism is preserved by construction:
//!
//! - Every execution has a canonical **job key** `(pass.rank(), index)`
//!   assigned before it runs, independent of worker count or timing
//!   (ranks in [`Pass`]).
//! - Each execution's model seed is `hash(base_seed, pass_rank, index)`
//!   (see `exec_seed`), never a shared mutable RNG.
//! - The reported counterexample is the failure with the **minimum job
//!   key**, not the first one found on the wall clock. A job is skipped
//!   only when a failure with a *smaller* key is already known, which
//!   cannot hide the minimum-key failure — so `workers = 8` reports the
//!   same [`Counterexample`] as `workers = 1` for the same config.
//! - Strategy feedback (DFS frontier expansion, sleep-set pruning,
//!   coverage re-seeding) advances only on *complete* waves in canonical
//!   job order; a wave interrupted by a failure is never observed. So
//!   the explored set — and the `pruned`/`coverage_guided` counters —
//!   are identical at every worker count.
//! - Report statistics count exactly the executions with keys up to the
//!   winning counterexample's key (all of them, if no failure), so
//!   `executions`/`total_steps`/... are reproducible too.
//!
//! With [`CheckConfig::keep_going`] set, nothing is cancelled and every
//! failure is collected into [`CheckReport::counterexamples`], sorted by
//! canonical key.

use crate::harness::{Harness, World};
use crate::metrics::{
    trace_fingerprint, Coverage, Histogram, OutcomeCounts, OutcomeKind, PassMetrics,
};
use crate::pass::{Pass, PassSet};
use crate::strategy::{DepTrace, Exhaustive, ObservedExec, ScheduleSpec, Strategy};
use crate::telemetry::{self, RunTelemetry, TelemetrySink};
use goose_rt::fault::{FaultPlan, NetFault, TornMode};
use goose_rt::sched::{quiet_worker_panics, res, ModelRt, PanicKind, StepAccess, StepResult, Tid};
use goose_rt::trace::{ExecTrace, TraceKind};
use parking_lot::Mutex;
use perennial::{Ghost, GhostError};
use perennial_spec::SpecTS;
use serde_json::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Explorer configuration.
///
/// Construct with [`CheckConfig::builder`] (preferred), or start from
/// [`CheckConfig::default`] / [`CheckConfig::quick`] and override fields.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Base seed for deterministic randomness. Per-execution seeds are
    /// derived from it as `hash(seed, pass_rank, index)`.
    pub seed: u64,
    /// Per-execution step bound (livelock backstop).
    pub max_steps: u64,
    /// Cap on DFS-enumerated schedules (0 disables DFS). Under
    /// [`SleepSetDpor`](crate::strategy::SleepSetDpor), pruned schedules
    /// are charged against this budget too.
    pub dfs_max_executions: usize,
    /// Number of random schedules to sample (crash-free).
    pub random_samples: usize,
    /// Random schedules to sample *with* a random crash point each.
    pub random_crash_samples: usize,
    /// Which exploration passes run. [`PassSet::defaults`] enables DFS,
    /// random sampling, the crash sweep with nesting, and random
    /// crashes; the fault sweeps ([`Pass::DiskFault`],
    /// [`Pass::TornWrite`], [`Pass::NetFault`]) opt in and additionally
    /// require the matching [`Harness::fault_surface`] flag.
    pub passes: PassSet,
    /// Schedule-phase exploration strategy: how the crash-free DFS and
    /// random passes pick what to run (see [`crate::strategy`] and
    /// DESIGN.md §12). The crash and fault sweeps are strategy-
    /// independent. Defaults to [`Exhaustive`].
    pub strategy: Arc<dyn Strategy>,
    /// Worker threads for the exploration pool; `0` means use
    /// `std::thread::available_parallelism()`.
    pub workers: usize,
    /// Keep exploring after a failure and collect every counterexample
    /// (instead of cancelling outstanding work).
    pub keep_going: bool,
    /// Optional JSONL event stream (see [`crate::telemetry`] and
    /// DESIGN.md §11). Side-channel only: enabling it changes neither
    /// the explored set nor the reported counterexample.
    pub telemetry: Option<TelemetrySink>,
    /// Convenience alternative to [`CheckConfig::telemetry`]: create
    /// (truncate) this file as the event stream when the check starts.
    /// Ignored when `telemetry` is set.
    pub telemetry_path: Option<PathBuf>,
    /// Print a progress line to stderr every N completed executions
    /// (`0` = off, the default) so long sweeps are observable live.
    pub progress_every: u64,
    /// Shard assignment `(i, n)`: this run owns only the job keys whose
    /// [`shard_of`] hash lands on shard `i` of `n`. Derivation-spine
    /// executions (schedule phase, probes, and the first-level crash
    /// sweep when the nested sweep is on) still run in every shard so
    /// every shard enumerates the identical job space, but they are
    /// *counted* only by their owner — `merge_reports` over all `n`
    /// shards reproduces the unsharded report (DESIGN.md §13). Sharded
    /// runs imply `keep_going` semantics so shard statistics are exactly
    /// summable.
    pub shard: Option<(u32, u32)>,
    /// Resume checkpoint: a telemetry JSONL file from a previous
    /// (possibly killed) run of the same scenario + config, replayed as
    /// a write-ahead log. Completed sweep-phase executions (`exec_done`
    /// records with outcome `ok`) are skipped and their recorded
    /// statistics reused; everything else re-runs. A torn final line
    /// (SIGKILL mid-write) is tolerated. A missing file is a cold
    /// start, and a config-mismatched WAL is ignored with a warning.
    pub resume_from: Option<PathBuf>,
    /// Hard cap on executions this run may schedule (0 = unlimited).
    /// Applied by truncating job lists in canonical order, so the cap
    /// is deterministic across worker counts and shards; exhaustion
    /// degrades to a partial report with an `incomplete` marker rather
    /// than a panic.
    pub exec_budget: u64,
    /// Re-run the winning counterexample with the causal trace recorder
    /// on and attach the resulting [`goose_rt::ExecTrace`] as
    /// [`Counterexample::timeline`] (default on). Pure side channel: the
    /// exploration itself always runs untraced, the re-run emits no
    /// telemetry, and report fingerprints are identical either way.
    pub trace_capture: bool,
    /// Build a [`Profile`](crate::profile::Profile) (per-pass cost attribution, resource
    /// contention, strategy introspection, worker utilization) and
    /// attach it as [`CheckReport::profile`] (default off). Pure side
    /// channel: the profile is aggregated from counters the check
    /// collects anyway, is excluded from campaign JSON and report
    /// fingerprints, and its deterministic counts are identical at
    /// every worker count (DESIGN.md §15).
    pub profile: bool,
    /// Delta-debug the winning counterexample after exploration: greedily
    /// drop schedule grants, crash points, and fault events while
    /// re-running and requiring the failure fingerprint (outcome kind +
    /// message, see [`crate::shrink::failure_fingerprint`]) to be
    /// preserved (default off). **Not** a pure side channel: shrinking
    /// rewrites [`CheckReport::counterexample`] in place, so serialized
    /// reports (and their fingerprints) differ between shrink-on and
    /// shrink-off runs — but the shrunk result itself is deterministic at
    /// every worker count (DESIGN.md §16). Shrink statistics land in
    /// [`CheckReport::shrink`].
    pub shrink: bool,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            seed: 0,
            max_steps: 100_000,
            dfs_max_executions: 2_000,
            random_samples: 50,
            random_crash_samples: 100,
            passes: PassSet::defaults(),
            strategy: Arc::new(Exhaustive),
            workers: 0,
            keep_going: false,
            telemetry: None,
            telemetry_path: None,
            progress_every: 0,
            shard: None,
            resume_from: None,
            exec_budget: 0,
            trace_capture: true,
            profile: false,
            shrink: false,
        }
    }
}

impl CheckConfig {
    /// A quick configuration for unit tests (small bounds).
    pub fn quick() -> Self {
        let mut passes = PassSet::defaults();
        passes.remove(Pass::NestedCrash);
        CheckConfig {
            dfs_max_executions: 200,
            random_samples: 10,
            random_crash_samples: 20,
            passes,
            ..CheckConfig::default()
        }
    }

    /// Starts a builder preloaded with the defaults.
    pub fn builder() -> CheckConfigBuilder {
        CheckConfigBuilder {
            config: CheckConfig::default(),
        }
    }

    /// The worker count this config resolves to at run time.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Fluent constructor for [`CheckConfig`]:
///
/// ```
/// use perennial_checker::{CheckConfig, Pass, SleepSetDpor};
/// let cfg = CheckConfig::builder()
///     .seed(7)
///     .workers(8)
///     .with_passes([Pass::DiskFault])
///     .strategy(SleepSetDpor)
///     .build();
/// assert_eq!(cfg.seed, 7);
/// assert_eq!(cfg.workers, 8);
/// assert!(cfg.passes.contains(Pass::DiskFault));
/// assert_eq!(cfg.strategy.name(), "sleep-set-dpor");
/// ```
#[derive(Debug, Clone)]
pub struct CheckConfigBuilder {
    config: CheckConfig,
}

impl CheckConfigBuilder {
    /// Sets the base PRNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the per-execution scheduler-grant budget.
    pub fn max_steps(mut self, max_steps: u64) -> Self {
        self.config.max_steps = max_steps;
        self
    }

    /// Caps the DFS pass's execution count.
    pub fn dfs_max_executions(mut self, n: usize) -> Self {
        self.config.dfs_max_executions = n;
        self
    }

    /// Sets the random-schedule sample count.
    pub fn random_samples(mut self, n: usize) -> Self {
        self.config.random_samples = n;
        self
    }

    /// Sets the random-crash-point sample count.
    pub fn random_crash_samples(mut self, n: usize) -> Self {
        self.config.random_crash_samples = n;
        self
    }

    /// Replaces the pass set wholesale.
    pub fn passes(mut self, passes: impl IntoIterator<Item = Pass>) -> Self {
        self.config.passes = passes.into_iter().collect();
        self
    }

    /// Adds passes to the current set.
    pub fn with_passes(mut self, passes: impl IntoIterator<Item = Pass>) -> Self {
        for p in passes {
            self.config.passes.insert(p);
        }
        self
    }

    /// Removes passes from the current set.
    pub fn without_passes(mut self, passes: impl IntoIterator<Item = Pass>) -> Self {
        for p in passes {
            self.config.passes.remove(p);
        }
        self
    }

    /// Sets the schedule-phase exploration strategy.
    pub fn strategy(mut self, strategy: impl Strategy + 'static) -> Self {
        self.config.strategy = Arc::new(strategy);
        self
    }

    /// Sets the worker-thread count (0 = one per available core).
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Keeps exploring after the first counterexample instead of
    /// stopping the run.
    pub fn keep_going(mut self, on: bool) -> Self {
        self.config.keep_going = on;
        self
    }

    /// Streams JSONL telemetry into an existing sink (shareable across
    /// scenario runs — every run appends to the same stream).
    pub fn telemetry(mut self, sink: TelemetrySink) -> Self {
        self.config.telemetry = Some(sink);
        self
    }

    /// Streams JSONL telemetry into any writer.
    pub fn telemetry_writer(self, w: impl std::io::Write + Send + 'static) -> Self {
        self.telemetry(TelemetrySink::to_writer(w))
    }

    /// Streams JSONL telemetry into a file created at check start.
    pub fn telemetry_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.config.telemetry_path = Some(path.into());
        self
    }

    /// Prints a progress line to stderr every `n` executions (0 = off).
    pub fn progress_every(mut self, n: u64) -> Self {
        self.config.progress_every = n;
        self
    }

    /// Runs only shard `i` of `n` of the deterministic job space (see
    /// [`CheckConfig::shard`]). Panics if `i >= n` or `n == 0`.
    pub fn shard(mut self, i: u32, n: u32) -> Self {
        assert!(n > 0 && i < n, "shard {i}/{n} is not a valid assignment");
        self.config.shard = Some((i, n));
        self
    }

    /// Optional variant of [`Self::shard`] for flag plumbing.
    pub fn shard_opt(mut self, shard: Option<(u32, u32)>) -> Self {
        if let Some((i, n)) = shard {
            assert!(n > 0 && i < n, "shard {i}/{n} is not a valid assignment");
        }
        self.config.shard = shard;
        self
    }

    /// Resumes from a telemetry JSONL checkpoint (see
    /// [`CheckConfig::resume_from`]). When this equals
    /// [`CheckConfig::telemetry_path`] the stream is opened in append
    /// mode so the same file keeps serving as the write-ahead log.
    pub fn resume_from(mut self, path: impl Into<PathBuf>) -> Self {
        self.config.resume_from = Some(path.into());
        self
    }

    /// Caps scheduled executions (0 = unlimited); see
    /// [`CheckConfig::exec_budget`].
    pub fn exec_budget(mut self, n: u64) -> Self {
        self.config.exec_budget = n;
        self
    }

    /// Enables (or disables) counterexample trace capture; see
    /// [`CheckConfig::trace_capture`].
    pub fn trace_capture(mut self, on: bool) -> Self {
        self.config.trace_capture = on;
        self
    }

    /// Enables (or disables) the cost profiler; see
    /// [`CheckConfig::profile`].
    pub fn profile(mut self, on: bool) -> Self {
        self.config.profile = on;
        self
    }

    /// Enables (or disables) counterexample shrinking; see
    /// [`CheckConfig::shrink`].
    pub fn shrink(mut self, on: bool) -> Self {
        self.config.shrink = on;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> CheckConfig {
        self.config
    }
}

/// How one explored execution ended.
#[derive(Debug, Clone)]
pub enum ExecOutcome {
    /// Ghost validation and the final check both passed.
    Ok,
    /// A ghost capability rule or end-of-execution obligation failed —
    /// a refinement violation.
    Violation(GhostError),
    /// Modelled undefined behaviour was triggered.
    Ub(String),
    /// A plain panic in the code under test.
    Bug(String),
    /// No runnable thread but unfinished work: a deadlock.
    Deadlock,
    /// The harness's final predicate failed.
    FinalCheckFailed(String),
    /// The execution exhausted its step budget (`max_steps`) without
    /// finishing — a livelock or runaway loop. Carries the budget. The
    /// watchdog is deterministic (step counts, not wall clock), so a
    /// wedged execution wedges identically on replay.
    Wedged(u64),
    /// The harness itself (a controller-side hook: boot, crash_reset,
    /// recovery construction, final_check) panicked. Isolated by
    /// `catch_unwind` and recorded as an outcome so one broken scenario
    /// cannot poison a campaign.
    HarnessPanic(String),
}

impl ExecOutcome {
    /// Whether this outcome counts as a verification failure.
    pub fn is_failure(&self) -> bool {
        !matches!(self, ExecOutcome::Ok)
    }
}

/// A failing execution, with enough context to reproduce and debug it.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// What failed.
    pub outcome: ExecOutcome,
    /// Which exploration pass produced it.
    pub pass: Pass,
    /// Canonical index of the failing execution within its pass; the
    /// pair (pass, index) totally orders counterexamples and is how the
    /// parallel explorer picks the one to report.
    pub index: u64,
    /// The derived per-execution seed (model randomness; also the
    /// schedule seed for random passes). [`replay`] feeds it back in.
    pub seed: u64,
    /// The schedule prefix (choice indices) that reproduces it — DFS
    /// prefixes, or the replayed corpus prefix of a coverage-guided
    /// random sample; empty for round-robin and plain random passes.
    pub schedule_prefix: Vec<usize>,
    /// Injected crash points. Unit: **absolute grant counts** from the
    /// start of the execution (crash k fires before the (k+1)-th grant);
    /// an injected crash itself consumes one count, so nested points
    /// land inside recovery.
    pub crash_points: Vec<u64>,
    /// Decision depths at which the schedule prefix asked for a choice
    /// index out of range and was clamped to the last runnable thread —
    /// non-empty means the prefix came from a differently-shaped run.
    pub clamped: Vec<usize>,
    /// The fault plan active during the failing execution (empty for the
    /// schedule/crash passes). [`replay`] re-injects it.
    pub faults: FaultPlan,
    /// Rendered ghost trace at failure.
    pub trace: String,
    /// Causal execution trace of the failing run, recorded by re-running
    /// it with the [`goose_rt::trace`] recorder on (see
    /// [`CheckConfig::trace_capture`]). Debug-only payload: excluded
    /// from campaign JSON and from every fingerprint, so reports are
    /// byte-identical with capture on or off.
    pub timeline: Option<goose_rt::ExecTrace>,
}

impl Counterexample {
    /// The canonical ordering key `(pass_rank, index)`.
    pub fn key(&self) -> (u8, u64) {
        (self.pass.rank(), self.index)
    }
}

/// Aggregate result of checking one scenario.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Scenario name.
    pub name: String,
    /// Executions explored (counted up to the winning counterexample's
    /// canonical key, so the number is worker-count independent).
    pub executions: usize,
    /// Total scheduled steps across executions.
    pub total_steps: u64,
    /// Crashes injected across executions.
    pub crashes_injected: usize,
    /// Distinct crash points swept.
    pub crash_points: usize,
    /// Distinct fault plans swept (executions run with a non-empty
    /// [`FaultPlan`]).
    pub fault_plans: usize,
    /// Operations helped by recovery across executions.
    pub helped_ops: u64,
    /// Disk block reads across executions (model-op accounting).
    pub disk_reads: u64,
    /// Disk block writes (buffered + write-through) across executions.
    pub disk_writes: u64,
    /// Disk flush barriers across executions.
    pub disk_flushes: u64,
    /// Network sends across executions.
    pub net_sends: u64,
    /// Network receives that dequeued a message, across executions.
    pub net_recvs: u64,
    /// Wall-clock time the check took.
    pub wall_time: Duration,
    /// Worker threads the pool actually used.
    pub workers: usize,
    /// Executions per wall-clock second.
    pub execs_per_sec: f64,
    /// Name of the schedule-phase strategy that ran.
    pub strategy: String,
    /// Schedules the strategy pruned as redundant (sleep-set hits) —
    /// deterministic across worker counts.
    pub pruned: u64,
    /// Executions whose schedule was re-seeded by coverage feedback.
    pub coverage_guided: u64,
    /// The canonical (minimum-key) counterexample, if any.
    pub counterexample: Option<Counterexample>,
    /// All counterexamples found, sorted by canonical key. Without
    /// [`CheckConfig::keep_going`] this holds at most the canonical one.
    pub counterexamples: Vec<Counterexample>,
    /// Executions by outcome (same cutoff as `executions`, so
    /// worker-count independent).
    pub outcomes: OutcomeCounts,
    /// Per-pass accounting, in canonical rank order. Only passes that
    /// scheduled at least one execution appear.
    pub per_pass: Vec<PassMetrics>,
    /// Steps-per-execution distribution (log2 buckets).
    pub steps_hist: Histogram,
    /// Schedule-depth (decisions-per-execution) distribution.
    pub depth_hist: Histogram,
    /// Coverage accounting: sweep spaces exercised vs. enumerable, and
    /// distinct ghost-trace fingerprints seen.
    pub coverage: Coverage,
    /// Shard assignment this report covers (`None` = the whole space).
    pub shard: Option<(u32, u32)>,
    /// Executions satisfied from the resume WAL instead of re-run.
    /// Excluded from the report fingerprint: a resumed run and a cold
    /// run must otherwise be identical.
    pub replayed: u64,
    /// Why the run degraded to a partial result (execution budget
    /// exhausted, telemetry sink failures). Empty for a complete run;
    /// [`CheckReport::passed`] is unaffected, but summaries carry an
    /// explicit INCOMPLETE marker.
    pub incomplete: Vec<String>,
    /// The distinct crash points behind
    /// [`Coverage::crash_points_exercised`] — kept as a set so shard
    /// reports merge by union, not by sum.
    pub crash_point_set: BTreeSet<u64>,
    /// The distinct ghost-trace fingerprints behind
    /// [`Coverage::distinct_traces`], kept for the same reason.
    pub trace_fps: BTreeSet<u64>,
    /// Cost profile, present when [`CheckConfig::profile`] was on.
    /// Debug/observability payload: excluded from campaign JSON and
    /// report fingerprints exactly like a counterexample's timeline.
    pub profile: Option<crate::profile::Profile>,
    /// Shrink statistics, present when [`CheckConfig::shrink`] was on
    /// and a counterexample was found (the counterexample itself is then
    /// the *shrunk* one). Observability payload: excluded from campaign
    /// JSON like [`CheckReport::profile`] — the shrunk counterexample,
    /// not its bookkeeping, is the durable artifact.
    pub shrink: Option<crate::shrink::ShrinkStats>,
    /// Environment stamp (rustc, crate version, workers, strategy) for
    /// cross-machine comparability of serialized reports. Volatile:
    /// stripped by [`crate::report_fingerprint`].
    pub env: crate::telemetry::EnvStamp,
}

impl CheckReport {
    /// Whether every explored execution passed.
    pub fn passed(&self) -> bool {
        self.counterexample.is_none()
    }

    /// Whether the run degraded to a partial result (see
    /// [`CheckReport::incomplete`]).
    pub fn is_incomplete(&self) -> bool {
        !self.incomplete.is_empty()
    }

    /// One-line summary.
    pub fn summary(&self) -> String {
        let faults = if self.fault_plans > 0 {
            format!(", {} fault plans", self.fault_plans)
        } else {
            String::new()
        };
        let shard = match self.shard {
            Some((i, n)) => format!(" [shard {i}/{n}]"),
            None => String::new(),
        };
        format!(
            "{}: {} executions, {} steps, {} crashes over {} crash points{}, {} helped ops, \
             {:.0} execs/s on {} workers{} — {}{}",
            self.name,
            self.executions,
            self.total_steps,
            self.crashes_injected,
            self.crash_points,
            faults,
            self.helped_ops,
            self.execs_per_sec,
            self.workers,
            shard,
            if self.passed() { "PASS" } else { "FAIL" },
            if self.is_incomplete() {
                " (INCOMPLETE)"
            } else {
                ""
            }
        )
    }
}

/// Schedule policy for one execution.
enum Policy {
    /// Deterministic: follow the recorded prefix, then always pick the
    /// first runnable (DFS order).
    DfsPrefix(Vec<usize>),
    /// Round-robin over runnable threads.
    RoundRobin,
    /// Replay the (possibly empty) decision prefix, then seeded
    /// pseudo-random choice.
    Random { seed: u64, prefix: Vec<usize> },
}

struct ScheduleState {
    policy: Policy,
    /// (choice index, number of runnable options) per decision.
    decisions: Vec<(usize, usize)>,
    /// Decision depths where a replayed prefix index was out of range.
    clamped: Vec<usize>,
    rr_next: usize,
    rng: u64,
}

impl ScheduleState {
    fn new(policy: Policy) -> Self {
        let rng = match &policy {
            Policy::Random { seed, .. } => *seed | 1,
            _ => 1,
        };
        ScheduleState {
            policy,
            decisions: Vec::new(),
            clamped: Vec::new(),
            rr_next: 0,
            rng,
        }
    }

    fn choose(&mut self, runnable: &[Tid]) -> Tid {
        let n = runnable.len();
        let d = self.decisions.len();
        let idx = match &self.policy {
            Policy::DfsPrefix(prefix) => {
                if d < prefix.len() {
                    if prefix[d] >= n {
                        // Out-of-range prefix entry: the prefix came from
                        // a run that had more runnable threads here.
                        // Record the clamp so reports can surface it.
                        self.clamped.push(d);
                    }
                    prefix[d].min(n - 1)
                } else {
                    0
                }
            }
            Policy::RoundRobin => {
                let idx = self.rr_next % n;
                self.rr_next += 1;
                idx
            }
            Policy::Random { prefix, .. } => {
                if d < prefix.len() {
                    if prefix[d] >= n {
                        self.clamped.push(d);
                    }
                    prefix[d].min(n - 1)
                } else {
                    // xorshift64*
                    self.rng ^= self.rng << 13;
                    self.rng ^= self.rng >> 7;
                    self.rng ^= self.rng << 17;
                    (self.rng as usize) % n
                }
            }
        };
        self.decisions.push((idx, n));
        runnable[idx]
    }
}

/// Phase of one execution's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Main,
    Recovering,
    After,
}

struct RunResult {
    outcome: ExecOutcome,
    decisions: Vec<(usize, usize)>,
    clamped: Vec<usize>,
    steps: u64,
    crashes: usize,
    helped: u64,
    /// Disk operations attempted (fault-sweep probes use this as the
    /// transient-error enumeration horizon).
    disk_ops: u64,
    /// Network messages sent (net-fault-sweep enumeration horizon).
    net_msgs: u64,
    /// Times a thread parked on a held lock (sched contention counter).
    lock_blocks: u64,
    /// Per-lock share of `lock_blocks` (`ModelRt::lock_block_profile`),
    /// consumed by the profiler's resource-contention table.
    lock_profile: Vec<(u64, u64)>,
    /// FNV-1a fingerprint of the rendered ghost trace (behavioural
    /// coverage proxy).
    trace_fp: u64,
    /// Model-op accounting from [`SchedStats`]: block reads, block
    /// writes, flush barriers, net sends, net receives.
    disk_reads: u64,
    disk_writes: u64,
    disk_flushes: u64,
    net_sends: u64,
    net_recvs: u64,
    /// Wall time of this single execution (telemetry only).
    duration: Duration,
    trace: String,
    /// Per-grant dependency observations (schedule-phase DPOR runs).
    deps: Option<DepTrace>,
    /// Causal execution trace (capture-trace runs only).
    exec_trace: Option<ExecTrace>,
}

/// Runs one execution under `policy`, injecting crashes at the given
/// absolute grant counts and faults per `faults`. With `track_deps`, the
/// runtime records each grant's dependency footprint and the result
/// carries a [`DepTrace`] for partial-order reduction. With
/// `capture_trace`, the runtime's causal recorder is on and the result
/// carries an [`ExecTrace`] — a pure observer that changes no counter,
/// schedule, or fault index.
///
/// The execution is **isolated**: the harness body runs under
/// `catch_unwind`, so a panicking harness hook becomes an
/// [`ExecOutcome::HarnessPanic`] outcome instead of killing the worker,
/// and any virtual threads a failed or panicked execution left parked
/// are unwound and joined before returning (no OS-thread leaks across a
/// long keep-going campaign).
#[allow(clippy::too_many_arguments)]
fn run_one<S: SpecTS, H: Harness<S>>(
    harness: &H,
    policy: Policy,
    crash_points: &[u64],
    faults: &FaultPlan,
    seed: u64,
    max_steps: u64,
    track_deps: bool,
    capture_trace: bool,
) -> RunResult {
    let rt = ModelRt::with_faults(seed, max_steps, faults.clone());
    let run_started = Instant::now();
    let result = quiet_worker_panics(|| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_one_inner(
                harness,
                &rt,
                policy,
                crash_points,
                faults,
                track_deps,
                capture_trace,
            )
        }))
    });
    match result {
        Ok(r) => {
            if r.outcome.is_failure() {
                // Deadlocked, wedged, or panicked executions leave
                // virtual threads parked; reap them.
                rt.crash_all();
                rt.join_all();
            }
            r
        }
        Err(payload) => {
            rt.crash_all();
            rt.join_all();
            let stats = rt.sched_stats();
            RunResult {
                outcome: ExecOutcome::HarnessPanic(panic_message(payload)),
                decisions: Vec::new(),
                clamped: Vec::new(),
                steps: stats.steps,
                crashes: 0,
                helped: 0,
                disk_ops: stats.disk_ops,
                net_msgs: stats.net_msgs,
                lock_blocks: stats.lock_blocks,
                lock_profile: rt.lock_block_profile(),
                trace_fp: trace_fingerprint(""),
                disk_reads: stats.disk_reads,
                disk_writes: stats.disk_writes,
                disk_flushes: stats.disk_flushes,
                net_sends: stats.net_sends,
                net_recvs: stats.net_recvs,
                duration: run_started.elapsed(),
                trace: String::new(),
                deps: None,
                exec_trace: capture_trace.then(|| rt.take_trace()),
            }
        }
    }
}

/// Renders an arbitrary unwind payload for the harness-panic outcome.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn run_one_inner<S: SpecTS, H: Harness<S>>(
    harness: &H,
    rt: &Arc<ModelRt>,
    policy: Policy,
    crash_points: &[u64],
    faults: &FaultPlan,
    track_deps: bool,
    capture_trace: bool,
) -> RunResult {
    let rt = Arc::clone(rt);
    rt.set_track_deps(track_deps);
    rt.set_tracing(capture_trace);
    let ghost = Ghost::new(harness.spec());
    let w = World {
        rt: Arc::clone(&rt),
        ghost: Arc::clone(&ghost),
    };
    let mut exec = harness.make(&w);
    exec.boot(&w);
    for (name, body) in exec.threads(&w) {
        rt.spawn(name, body);
    }

    let mut sched = ScheduleState::new(policy);
    let mut steps: u64 = 0;
    let mut crashes = 0usize;
    let mut crash_iter = crash_points.iter().copied().peekable();
    let mut disk_fail = faults.disk_fail;
    let mut phase = Phase::Main;
    let mut recovery_tid: Option<Tid> = None;
    let mut after_spawned = false;
    let mut dep: Option<DepTrace> = track_deps.then(DepTrace::default);
    if track_deps {
        // Discard anything noted during boot/spawn: footprints belong to
        // granted steps, not setup.
        rt.take_step_accesses();
    }

    // Spec-visible ghost events stream into the causal trace as they
    // appear: a watermark over the ghost trace is drained after every
    // grant (attributed to the granted thread) and around controller
    // transitions (attributed to the controller).
    let spec_mark = std::cell::Cell::new(0usize);
    let drain_spec = |tid: Option<Tid>| {
        if !capture_trace {
            return;
        }
        let snapshot = ghost.trace();
        let events = snapshot.events();
        for ev in &events[spec_mark.get()..] {
            rt.trace_event_for(
                tid,
                TraceKind::Spec {
                    event: format!("{ev:?}"),
                },
            );
        }
        spec_mark.set(events.len());
    };
    drain_spec(None);

    let run_started = Instant::now();
    let finish = |outcome: ExecOutcome,
                  sched: &ScheduleState,
                  steps: u64,
                  crashes: usize,
                  rt: &Arc<ModelRt>,
                  ghost: &Arc<Ghost<S>>,
                  deps: Option<DepTrace>| {
        let stats = rt.sched_stats();
        let trace = ghost.trace().render();
        RunResult {
            outcome,
            decisions: sched.decisions.clone(),
            clamped: sched.clamped.clone(),
            steps,
            crashes,
            helped: 0,
            disk_ops: stats.disk_ops,
            net_msgs: stats.net_msgs,
            lock_blocks: stats.lock_blocks,
            lock_profile: rt.lock_block_profile(),
            trace_fp: trace_fingerprint(&trace),
            disk_reads: stats.disk_reads,
            disk_writes: stats.disk_writes,
            disk_flushes: stats.disk_flushes,
            net_sends: stats.net_sends,
            net_recvs: stats.net_recvs,
            duration: run_started.elapsed(),
            trace,
            deps,
            exec_trace: capture_trace.then(|| rt.take_trace()),
        }
    };

    loop {
        // Plan-scheduled permanent disk failure at this grant boundary?
        // (Fires before a same-count crash and does not consume a step —
        // it models the device dying, not the process.)
        if let Some((d, g)) = disk_fail {
            if g == steps {
                disk_fail = None;
                exec.inject_disk_failure(&w, d);
            }
        }

        // Crash injection at this step boundary?
        if crash_iter.peek() == Some(&steps) {
            crash_iter.next();
            crashes += 1;
            rt.crash_all();
            ghost.crash();
            exec.crash_reset(&w);
            exec.boot(&w);
            let body = exec.recovery(&w);
            recovery_tid = Some(rt.spawn("recovery", body));
            phase = Phase::Recovering;
            drain_spec(None);
            if track_deps {
                // Crash unwinding and re-boot are controller transitions,
                // not granted steps; drop any footprint they left behind.
                rt.take_step_accesses();
            }
            // A crash consumes a "step" so nested sweeps can target
            // positions inside recovery distinctly.
            steps += 1;
            continue;
        }

        let runnable = rt.runnable();
        if runnable.is_empty() {
            if rt.all_done() {
                // Pending crash points beyond the end are simply unused.
                break;
            }
            return finish(
                ExecOutcome::Deadlock,
                &sched,
                steps,
                crashes,
                &rt,
                &ghost,
                dep.take(),
            );
        }
        let tid = sched.choose(&runnable);
        // Snapshot immediately before the grant so controller-side ghost
        // calls (crash(), validate()) between grants never pollute the
        // per-grant delta.
        let ghost_ops = if track_deps { ghost.op_count() } else { 0 };
        let step = rt.grant(tid);
        steps += 1;
        drain_spec(Some(tid));
        if let Some(dep) = dep.as_mut() {
            let mut acc = rt.take_step_accesses();
            if ghost.op_count() != ghost_ops {
                // Ghost activity is tagged per thread: a thread's spec
                // events are ordered by its own program order, and any
                // cross-thread spec coupling (helping, linearization
                // against a shared object) is mediated by a physical
                // primitive whose resource tag is already in the
                // footprint. Untagged cross-thread ghost coupling would
                // be unsound to commute — see DESIGN.md §12.
                acc.push(StepAccess::write(res::GHOST | tid as u64));
            }
            dep.runnables.push(runnable.clone());
            dep.accesses.push(acc);
        }
        match step {
            StepResult::Yielded | StepResult::Blocked => {}
            StepResult::Finished => {
                if phase == Phase::Recovering && recovery_tid == Some(tid) {
                    phase = Phase::After;
                    if !after_spawned {
                        after_spawned = true;
                        for (name, body) in exec.after_recovery(&w) {
                            rt.spawn(name, body);
                        }
                    }
                }
            }
            StepResult::Panicked(PanicKind::Ghost(e)) => {
                return finish(
                    ExecOutcome::Violation(e),
                    &sched,
                    steps,
                    crashes,
                    &rt,
                    &ghost,
                    dep.take(),
                );
            }
            StepResult::Panicked(PanicKind::Ub(msg)) => {
                return finish(
                    ExecOutcome::Ub(msg),
                    &sched,
                    steps,
                    crashes,
                    &rt,
                    &ghost,
                    dep.take(),
                );
            }
            StepResult::Panicked(PanicKind::Other(msg)) => {
                return finish(
                    ExecOutcome::Bug(msg),
                    &sched,
                    steps,
                    crashes,
                    &rt,
                    &ghost,
                    dep.take(),
                );
            }
            StepResult::Panicked(PanicKind::StepBudget(budget)) => {
                // Deterministic stall watchdog: the execution burned its
                // whole step budget without finishing.
                return finish(
                    ExecOutcome::Wedged(budget),
                    &sched,
                    steps,
                    crashes,
                    &rt,
                    &ghost,
                    dep.take(),
                );
            }
            StepResult::Panicked(PanicKind::CrashUnwind) => {
                // Only reachable via crash_all, which we drive ourselves.
                unreachable!("crash unwind surfaced outside crash injection");
            }
        }
    }
    rt.join_all();

    // A crash point scheduled exactly at the end of all work: treat as
    // unused (nothing was in flight; the sweep's earlier points covered
    // every interesting boundary).

    let (outcome, helped) = match ghost.validate() {
        Ok(report) => {
            let helped = report.helped as u64;
            match exec.final_check(&w) {
                Ok(()) => (ExecOutcome::Ok, helped),
                Err(msg) => (ExecOutcome::FinalCheckFailed(msg), helped),
            }
        }
        Err(e) => (ExecOutcome::Violation(e), 0),
    };
    drain_spec(None);
    let mut r = finish(outcome, &sched, steps, crashes, &rt, &ghost, dep.take());
    r.helped = helped;
    r
}

// ---------------------------------------------------------------------
// Parallel exploration machinery
// ---------------------------------------------------------------------

/// Canonical job key: (pass rank, index within the pass).
type JobKey = (u8, u64);

/// Derives the per-execution seed: `hash(base_seed, pass_rank, index)`.
/// Every execution's randomness is a pure function of these three, which
/// is what makes parallel and sequential runs indistinguishable.
fn exec_seed(base: u64, rank: u8, index: u64) -> u64 {
    splitmix(splitmix(base ^ (rank as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)) ^ index)
}

/// Deterministic shard assignment for a job key: a splitmix hash of
/// `(rank, index)` reduced mod `n`. Pure function of the key, so every
/// process — and every worker count — agrees on who owns which job
/// (DESIGN.md §13).
pub fn shard_of(key: (u8, u64), n: u32) -> u32 {
    if n <= 1 {
        return 0;
    }
    let mixed = splitmix(((key.0 as u64) << 56) ^ key.1.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    (mixed % n as u64) as u32
}

enum JobKind {
    /// One `run_one` execution.
    Single,
    /// A random-crash pair: probe the schedule crash-free to find its
    /// horizon, then rerun it with one derived crash point. The crash
    /// run reports under pass "random-crash" with the same index.
    ProbeThenCrash,
}

enum PolicySpec {
    Dfs {
        prefix: Vec<usize>,
        track_deps: bool,
    },
    RoundRobin,
    Random {
        prefix: Vec<usize>,
    },
}

struct Job {
    key: JobKey,
    pass: Pass,
    policy: PolicySpec,
    crash_points: Vec<u64>,
    /// Distinct crash points this job sweeps (for the report counter).
    swept: usize,
    /// The fault plan injected into this job's execution.
    faults: FaultPlan,
    kind: JobKind,
    /// Whether later job derivation depends on this execution's result
    /// (horizon probes). Probes run in every shard — a shard that
    /// skipped them could not enumerate the same downstream job keys —
    /// but are counted only by their owner.
    probe: bool,
}

impl Job {
    /// A fault-free single execution (the common case).
    fn plain(key: JobKey, pass: Pass, policy: PolicySpec) -> Job {
        Job {
            key,
            pass,
            policy,
            crash_points: Vec::new(),
            swept: 0,
            faults: FaultPlan::default(),
            kind: JobKind::Single,
            probe: false,
        }
    }
}

/// Which fault surface a plan exercises (coverage accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultFamily {
    None,
    Disk,
    Torn,
    Net,
}

impl FaultFamily {
    fn of(plan: &FaultPlan) -> Self {
        if !plan.transient_io.is_empty() || plan.disk_fail.is_some() {
            FaultFamily::Disk
        } else if plan.torn.is_some() {
            FaultFamily::Torn
        } else if !plan.net.is_empty() {
            FaultFamily::Net
        } else {
            FaultFamily::None
        }
    }
}

struct JobOutcome {
    key: JobKey,
    pass: Pass,
    steps: u64,
    crashes: usize,
    helped: u64,
    swept: usize,
    /// Fault plans this job swept (1 for fault-injection jobs).
    plans: usize,
    /// Which surface the job's plan exercised (coverage accounting).
    family: FaultFamily,
    /// Disk ops / net messages of the execution (probe horizons).
    disk_ops: u64,
    net_msgs: u64,
    /// Lock contention: total parks and the per-lock split (profiler
    /// feed; the split is empty for WAL-replayed outcomes).
    lock_blocks: u64,
    lock_profile: Vec<(u64, u64)>,
    /// Model-op accounting (report totals; recorded in the WAL so
    /// resumed totals match cold ones).
    disk_reads: u64,
    disk_writes: u64,
    disk_flushes: u64,
    net_sends: u64,
    net_recvs: u64,
    /// How the execution ended (outcome histogram feed).
    kind: OutcomeKind,
    /// Schedule decisions taken (depth histogram feed).
    depth: u64,
    /// Crash points this execution injected (coverage accounting).
    crash_points: Vec<u64>,
    /// Ghost-trace fingerprint (behavioural coverage feed).
    trace_fp: u64,
    /// Wall time of the execution (telemetry only; the lone
    /// non-deterministic field here).
    duration: Duration,
    /// Full decision path — kept for schedule-phase jobs (strategy
    /// feedback: tree expansion, coverage corpora).
    decisions: Vec<(usize, usize)>,
    /// Dependency observations (DPOR-tracked jobs only).
    deps: Option<DepTrace>,
    cx: Option<Counterexample>,
    /// Whether this shard owns the job key. Spine executions (schedule
    /// phase, probes) run everywhere but count toward statistics and
    /// counterexample selection only in the owning shard, which is what
    /// makes shard reports exactly summable.
    counted: bool,
}

/// Per-run exploration context: shard ownership and the WAL replay map.
struct ExploreCtx {
    shard: Option<(u32, u32)>,
    /// Completed `ok` executions from the resume WAL, keyed by job key.
    replay: BTreeMap<JobKey, telemetry::WalExec>,
    /// Whether the nested crash sweep is enabled (it promotes the
    /// first-level crash sweep into the derivation spine: nested job
    /// enumeration needs every rank-3 step count).
    nested_on: bool,
    /// Executions satisfied from the WAL instead of run.
    replayed: AtomicU64,
}

impl ExploreCtx {
    fn owns(&self, key: JobKey) -> bool {
        match self.shard {
            None => true,
            Some((i, n)) => shard_of(key, n) == i,
        }
    }

    /// Whether every shard must *execute* this job even when it does
    /// not own it: its result feeds deterministic job derivation or
    /// strategy feedback, which must be identical across shards.
    fn is_spine(&self, job: &Job) -> bool {
        job.probe
            || matches!(job.pass, Pass::Dfs | Pass::Random)
            || (job.pass == Pass::CrashSweep && self.nested_on)
    }
}

/// Shared cancellation state: the minimum-key counterexample found so
/// far, plus a cheap "anything failed yet?" flag.
struct Cancel {
    keep_going: bool,
    stop: AtomicBool,
    best: Mutex<Option<JobKey>>,
}

impl Cancel {
    fn new(keep_going: bool) -> Self {
        Cancel {
            keep_going,
            stop: AtomicBool::new(false),
            best: Mutex::new(None),
        }
    }

    /// Whether a job with this key still needs to run. Skipping only
    /// jobs whose key is *greater* than a known failure's key preserves
    /// determinism: the minimum-key failure can never be skipped, so the
    /// reported counterexample is independent of worker timing.
    fn should_run(&self, key: JobKey) -> bool {
        if self.keep_going || !self.stop.load(Ordering::Relaxed) {
            return true;
        }
        match *self.best.lock() {
            Some(best) => key < best,
            None => true,
        }
    }

    fn offer(&self, key: JobKey) {
        let mut best = self.best.lock();
        if best.is_none_or(|b| key < b) {
            *best = Some(key);
        }
        self.stop.store(true, Ordering::Relaxed);
    }

    fn any_failure(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    /// Whether the exploration should stop scheduling further phases:
    /// a failure has been found and the config asked for early exit.
    fn cancelled(&self) -> bool {
        !self.keep_going && self.any_failure()
    }
}

fn make_counterexample(
    r: &RunResult,
    pass: Pass,
    index: u64,
    seed: u64,
    schedule_prefix: Vec<usize>,
    crash_points: Vec<u64>,
    faults: FaultPlan,
) -> Counterexample {
    Counterexample {
        outcome: r.outcome.clone(),
        pass,
        index,
        seed,
        schedule_prefix,
        crash_points,
        clamped: r.clamped.clone(),
        faults,
        trace: r.trace.clone(),
        timeline: None,
    }
}

/// Builds a [`JobOutcome`] from one finished execution and emits its
/// telemetry (`exec_done`, live counters, optional `counterexample`).
/// The `exec_done` record doubles as the resume WAL entry, so it
/// carries everything a replayed outcome needs (helped ops and probe
/// horizons included).
#[allow(clippy::too_many_arguments)]
fn finish_execution(
    r: &RunResult,
    key: JobKey,
    pass: Pass,
    seed: u64,
    crash_points: Vec<u64>,
    swept: usize,
    faults: &FaultPlan,
    keep_decisions: bool,
    telem: &RunTelemetry,
    counted: bool,
) -> JobOutcome {
    let kind = OutcomeKind::of(&r.outcome);
    telem.emit(&telemetry::ev_exec_done(&telemetry::ExecEvent {
        pass,
        index: key.1,
        seed,
        outcome: kind,
        steps: r.steps,
        depth: r.decisions.len() as u64,
        crashes: r.crashes as u64,
        helped: r.helped,
        lock_blocks: r.lock_blocks,
        disk_ops: r.disk_ops,
        net_msgs: r.net_msgs,
        disk_reads: r.disk_reads,
        disk_writes: r.disk_writes,
        disk_flushes: r.disk_flushes,
        net_sends: r.net_sends,
        net_recvs: r.net_recvs,
        trace_fp: r.trace_fp,
        faults: &faults.compact(),
        duration: r.duration,
    }));
    telem.exec_finished(r.steps, r.outcome.is_failure());
    JobOutcome {
        key,
        pass,
        steps: r.steps,
        crashes: r.crashes,
        helped: r.helped,
        swept,
        plans: usize::from(!faults.is_empty()),
        family: FaultFamily::of(faults),
        disk_ops: r.disk_ops,
        net_msgs: r.net_msgs,
        lock_blocks: r.lock_blocks,
        lock_profile: r.lock_profile.clone(),
        disk_reads: r.disk_reads,
        disk_writes: r.disk_writes,
        disk_flushes: r.disk_flushes,
        net_sends: r.net_sends,
        net_recvs: r.net_recvs,
        kind,
        depth: r.decisions.len() as u64,
        crash_points,
        trace_fp: r.trace_fp,
        duration: r.duration,
        decisions: if keep_decisions {
            r.decisions.clone()
        } else {
            Vec::new()
        },
        deps: r.deps.clone(),
        cx: None,
        counted,
    }
}

/// Synthesizes a [`JobOutcome`] from a WAL record instead of running
/// the execution. Only `ok` records are replayable, and every field
/// below is either deterministic job metadata or a recorded
/// deterministic statistic, so a resumed run aggregates to the same
/// report as a cold one. Emits no telemetry: the record is already in
/// the WAL.
fn replayed_outcome(
    key: JobKey,
    pass: Pass,
    w: &telemetry::WalExec,
    crash_points: Vec<u64>,
    swept: usize,
    faults: &FaultPlan,
    counted: bool,
) -> JobOutcome {
    JobOutcome {
        key,
        pass,
        steps: w.steps,
        crashes: w.crashes as usize,
        helped: w.helped,
        swept,
        plans: usize::from(!faults.is_empty()),
        family: FaultFamily::of(faults),
        disk_ops: w.disk_ops,
        net_msgs: w.net_msgs,
        lock_blocks: w.lock_blocks,
        lock_profile: Vec::new(),
        disk_reads: w.disk_reads,
        disk_writes: w.disk_writes,
        disk_flushes: w.disk_flushes,
        net_sends: w.net_sends,
        net_recvs: w.net_recvs,
        kind: OutcomeKind::Ok,
        depth: w.depth,
        crash_points,
        trace_fp: w.trace_fp,
        duration: Duration::ZERO,
        decisions: Vec::new(),
        deps: None,
        cx: None,
        counted,
    }
}

/// Runs one job (one or two executions) and produces its outcomes,
/// applying shard ownership (skip leaf jobs other shards own; run but
/// don't count spine jobs) and the WAL replay map (skip sweep-phase
/// executions the checkpoint already completed).
fn execute_job<S: SpecTS, H: Harness<S>>(
    harness: &H,
    config: &CheckConfig,
    cancel: &Cancel,
    telem: &RunTelemetry,
    ctx: &ExploreCtx,
    job: &Job,
) -> Vec<JobOutcome> {
    let owned = ctx.owns(job.key);
    let paired = matches!(job.kind, JobKind::ProbeThenCrash);
    let crash_key = (Pass::RandomCrash.rank(), job.key.1);
    // A random-crash probe must also run when this shard owns only the
    // derived crash half: the crash point is a function of the probe's
    // horizon.
    let crash_owned = paired && ctx.owns(crash_key);
    if !owned && !crash_owned && !ctx.is_spine(job) {
        return Vec::new();
    }
    if !cancel.should_run(job.key) {
        return Vec::new();
    }
    let (rank, index) = job.key;
    let seed = exec_seed(config.seed, rank, index);

    // Schedule-phase executions (ranks 0-1) always run live — the
    // strategy needs their decision paths and dependency traces for
    // feedback; everything from the crash-sweep base up is replayable.
    let replayable = rank >= Pass::CrashSweepBase.rank();

    let mut first_failed = false;
    let out = if replayable && ctx.replay.contains_key(&job.key) {
        ctx.replayed.fetch_add(1, Ordering::Relaxed);
        replayed_outcome(
            job.key,
            job.pass,
            &ctx.replay[&job.key],
            job.crash_points.clone(),
            job.swept,
            &job.faults,
            owned,
        )
    } else {
        let (policy, keep_decisions) = match &job.policy {
            PolicySpec::Dfs { prefix, .. } => (Policy::DfsPrefix(prefix.clone()), true),
            PolicySpec::RoundRobin => (Policy::RoundRobin, false),
            PolicySpec::Random { prefix } => (
                Policy::Random {
                    seed,
                    prefix: prefix.clone(),
                },
                // The coverage strategy feeds on random-pass decision
                // paths; the random-crash probes (rank 5) don't need
                // them.
                job.pass == Pass::Random,
            ),
        };
        let track = matches!(
            &job.policy,
            PolicySpec::Dfs {
                track_deps: true,
                ..
            }
        );
        let r = run_one(
            harness,
            policy,
            &job.crash_points,
            &job.faults,
            seed,
            config.max_steps,
            track,
            false,
        );
        let mut out = finish_execution(
            &r,
            job.key,
            job.pass,
            seed,
            job.crash_points.clone(),
            job.swept,
            &job.faults,
            keep_decisions,
            telem,
            owned,
        );
        if r.outcome.is_failure() {
            first_failed = true;
            let prefix = match &job.policy {
                PolicySpec::Dfs { prefix, .. } => prefix.clone(),
                PolicySpec::Random { prefix } => prefix.clone(),
                PolicySpec::RoundRobin => Vec::new(),
            };
            let cx = make_counterexample(
                &r,
                job.pass,
                index,
                seed,
                prefix,
                job.crash_points.clone(),
                job.faults.clone(),
            );
            telem.emit(&telemetry::ev_counterexample(&cx));
            out.cx = Some(cx);
            cancel.offer(job.key);
        }
        out
    };
    if first_failed {
        return vec![out];
    }

    match job.kind {
        JobKind::Single => vec![out],
        JobKind::ProbeThenCrash => {
            // The probe succeeded: rerun the same schedule with one
            // crash point derived from the probe's horizon. The crash
            // run reuses the probe's seed so the schedule replays.
            if !crash_owned || !cancel.should_run(crash_key) {
                return vec![out];
            }
            let horizon = out.steps.max(1);
            let k = splitmix(seed) % horizon;
            if let Some(w) = ctx.replay.get(&crash_key) {
                ctx.replayed.fetch_add(1, Ordering::Relaxed);
                let out2 = replayed_outcome(
                    crash_key,
                    Pass::RandomCrash,
                    w,
                    vec![k],
                    1,
                    &job.faults,
                    true,
                );
                return vec![out, out2];
            }
            let r2 = run_one(
                harness,
                Policy::Random {
                    seed,
                    prefix: Vec::new(),
                },
                &[k],
                &job.faults,
                seed,
                config.max_steps,
                false,
                false,
            );
            let mut out2 = finish_execution(
                &r2,
                crash_key,
                Pass::RandomCrash,
                seed,
                vec![k],
                1,
                &job.faults,
                false,
                telem,
                true,
            );
            if r2.outcome.is_failure() {
                let cx = make_counterexample(
                    &r2,
                    Pass::RandomCrash,
                    index,
                    seed,
                    Vec::new(),
                    vec![k],
                    job.faults.clone(),
                );
                telem.emit(&telemetry::ev_counterexample(&cx));
                out2.cx = Some(cx);
                cancel.offer(crash_key);
            }
            vec![out, out2]
        }
    }
}

/// Runs a batch of jobs across the worker pool (inline when a single
/// worker suffices) and returns their outcomes in job order.
fn run_wave<S: SpecTS, H: Harness<S>>(
    harness: &H,
    config: &CheckConfig,
    cancel: &Cancel,
    telem: &RunTelemetry,
    ctx: &ExploreCtx,
    workers: usize,
    jobs: &[Job],
) -> Vec<JobOutcome> {
    let workers = workers.min(jobs.len()).max(1);
    if workers == 1 {
        return jobs
            .iter()
            .flat_map(|job| execute_job(harness, config, cancel, telem, ctx, job))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Vec<JobOutcome>>> =
        (0..jobs.len()).map(|_| Mutex::new(Vec::new())).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let outs = execute_job(harness, config, cancel, telem, ctx, &jobs[i]);
                *slots[i].lock() = outs;
            });
        }
    });
    slots
        .into_iter()
        .flat_map(|slot| slot.into_inner())
        .collect()
}

/// Deterministic execution-budget gate: admits job waves in canonical
/// order until [`CheckConfig::exec_budget`] executions have been
/// *enumerated* (owned or not, replayed or not — so the gate closes at
/// the same job across shards and resumes), then truncates.
struct BudgetGate {
    limit: u64,
    used: u64,
    exhausted: bool,
}

impl BudgetGate {
    fn new(limit: u64) -> Self {
        BudgetGate {
            limit,
            used: 0,
            exhausted: false,
        }
    }

    fn open(&self) -> bool {
        !self.exhausted
    }

    /// Truncates `jobs` to the remaining budget (a probe-then-crash job
    /// costs two executions); marks the gate exhausted on truncation.
    fn admit(&mut self, mut jobs: Vec<Job>) -> Vec<Job> {
        if self.limit == 0 {
            return jobs;
        }
        let mut kept = 0;
        for job in &jobs {
            let cost = match job.kind {
                JobKind::Single => 1,
                JobKind::ProbeThenCrash => 2,
            };
            if self.used + cost > self.limit {
                break;
            }
            self.used += cost;
            kept += 1;
        }
        if kept < jobs.len() {
            self.exhausted = true;
            jobs.truncate(kept);
        }
        jobs
    }
}

/// Whether a WAL's `run_start` record matches the resuming
/// configuration. Workers are excluded (reports are worker-count
/// independent); everything else — seed, budgets, passes, strategy,
/// shard — must agree, or replayed statistics would be lies.
fn wal_matches_config(stored: &Value, name: &str, config: &CheckConfig) -> bool {
    let mut want = telemetry::ev_run_start(name, config, 0);
    let mut got = stored.clone();
    for v in [&mut want, &mut got] {
        if let Value::Object(m) = v {
            m.remove("workers");
            // The env stamp carries the worker count and toolchain; a
            // WAL from a different machine is still replayable because
            // every replayed statistic is deterministic.
            m.remove("env");
        }
    }
    want == got
}

/// Loads the resume WAL, if configured. Any problem — unreadable file,
/// config mismatch — degrades to a cold start with a warning rather
/// than failing the run: a campaign must make progress even when its
/// checkpoint is useless.
fn load_wal(name: &str, config: &CheckConfig) -> BTreeMap<JobKey, telemetry::WalExec> {
    let Some(path) = &config.resume_from else {
        return BTreeMap::new();
    };
    let wal = match telemetry::read_wal(path, name) {
        Ok(w) => w,
        Err(e) => {
            eprintln!(
                "[checker] {name}: cannot read WAL {}: {e}; starting cold",
                path.display()
            );
            return BTreeMap::new();
        }
    };
    match &wal.run_start {
        Some(rs) if wal_matches_config(rs, name, config) => {
            if wal.torn_lines > 0 {
                eprintln!(
                    "[checker] {name}: WAL {}: dropped {} torn line(s)",
                    path.display(),
                    wal.torn_lines
                );
            }
            wal.completed
        }
        Some(_) => {
            eprintln!(
                "[checker] {name}: WAL {} was written by a different configuration; starting cold",
                path.display()
            );
            BTreeMap::new()
        }
        None => {
            if wal.runs_started + wal.torn_lines + wal.completed.len() as u64 > 0 {
                eprintln!(
                    "[checker] {name}: WAL {} has no usable run_start record; starting cold",
                    path.display()
                );
            }
            BTreeMap::new()
        }
    }
}

/// Runs all configured exploration passes over a scenario, dispatching
/// executions across [`CheckConfig::workers`] threads. See the module
/// docs for the determinism contract.
pub fn check<S: SpecTS, H: Harness<S>>(harness: &H, config: &CheckConfig) -> CheckReport {
    let start = Instant::now();
    let workers = config.effective_workers();
    let mut incomplete: Vec<String> = Vec::new();
    let replay = load_wal(harness.name(), config);
    let ctx = ExploreCtx {
        shard: config.shard,
        replay,
        nested_on: config.passes.contains(Pass::NestedCrash),
        replayed: AtomicU64::new(0),
    };
    let mut budget = BudgetGate::new(config.exec_budget);
    let telem = RunTelemetry::new(harness.name(), config);
    if let Some(e) = &telem.open_error {
        incomplete.push(format!("telemetry degraded: {e}"));
    }
    telem.emit(&telemetry::ev_run_start(harness.name(), config, workers));
    // Sharded runs force keep-going semantics: a cutoff chosen inside
    // one shard would depend on which jobs that shard owns, and shard
    // statistics must be exactly summable by `merge_reports`.
    let keep_going = config.keep_going || config.shard.is_some();
    let cancel = Cancel::new(keep_going);
    let mut outcomes: Vec<JobOutcome> = Vec::new();
    // Enumerable sweep spaces, recorded as each pass derives its job
    // list (deterministic: job derivation is probe-driven, not timed).
    let mut coverage = Coverage::default();
    // Per-pass wall-time profile: each `pass_start` closes the previous
    // pass with a timed `pass_end` record, and the run tail closes the
    // last one. Emitted from the coordinating thread only, so the event
    // order is deterministic for a fixed config.
    let pass_timer: Mutex<Option<(Pass, Instant)>> = Mutex::new(None);
    let pass_start = |pass: Pass| {
        let mut cur = pass_timer.lock();
        if let Some((prev, started)) = cur.take() {
            telem.emit(&telemetry::ev_pass_end(prev, started.elapsed()));
        }
        *cur = Some((pass, Instant::now()));
        telem.emit(&telemetry::ev_pass_start(pass));
    };

    // Schedule phase (ranks 0-1): the strategy decides which crash-free
    // schedules to run, as a wave loop with feedback. Each wave's job
    // keys are assigned in spec order before anything runs; feedback
    // (frontier expansion, sleep-set pruning, coverage re-seeding) is
    // applied only from *complete* waves — a wave cut short by a failure
    // is never observed — so the explored set and the pruned/guided
    // counters are worker-count independent.
    let mut session = config.strategy.session(config);
    let mut announced = PassSet::empty();
    let mut next_index: BTreeMap<u8, u64> = BTreeMap::new();
    while !cancel.cancelled() && budget.open() {
        let Some(wave) = session.next_wave() else {
            break;
        };
        let pass = wave.pass;
        if !announced.contains(pass) {
            announced.insert(pass);
            pass_start(pass);
        }
        let first = *next_index.entry(pass.rank()).or_insert(0);
        let jobs: Vec<Job> = wave
            .specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let key = (pass.rank(), first + i as u64);
                let policy = match spec {
                    ScheduleSpec::Dfs { prefix, track_deps } => PolicySpec::Dfs {
                        prefix: prefix.clone(),
                        track_deps: *track_deps,
                    },
                    ScheduleSpec::Random { prefix } => PolicySpec::Random {
                        prefix: prefix.clone(),
                    },
                };
                Job::plain(key, pass, policy)
            })
            .collect();
        let jobs = budget.admit(jobs);
        next_index.insert(pass.rank(), first + jobs.len() as u64);
        let outs = run_wave(harness, config, &cancel, &telem, &ctx, workers, &jobs);
        let observed: Vec<ObservedExec> = outs
            .iter()
            .map(|o| ObservedExec {
                slot: (o.key.1 - first) as usize,
                decisions: o.decisions.clone(),
                trace_fp: o.trace_fp,
                failed: o.kind != OutcomeKind::Ok,
                deps: o.deps.clone(),
            })
            .collect();
        outcomes.extend(outs);
        if !keep_going && cancel.any_failure() {
            // Break *before* observing: the failing wave may be partial
            // (later jobs skipped), and partial feedback would make
            // strategy state depend on worker timing.
            break;
        }
        if !budget.open() {
            // A budget-truncated wave is run (its executions were paid
            // for) but never observed: feedback from a partial wave
            // would make strategy state depend on where the budget
            // landed rather than on canonical job order.
            break;
        }
        session.observe(pass, &observed);
    }

    // Passes 2-4: systematic crash sweep on the round-robin schedule.
    if config.passes.contains(Pass::CrashSweep) && !cancel.cancelled() && budget.open() {
        pass_start(Pass::CrashSweepBase);
        // Rank 2: discover the crash-free horizon first. The probe is
        // derivation spine: every shard runs it (only the owner counts
        // it), because the rank-3 job list depends on its step count.
        let base_jobs = budget.admit(vec![Job {
            probe: true,
            ..Job::plain(
                (Pass::CrashSweepBase.rank(), 0),
                Pass::CrashSweepBase,
                PolicySpec::RoundRobin,
            )
        }]);
        let base = run_wave(harness, config, &cancel, &telem, &ctx, workers, &base_jobs);
        let horizon = base.first().map_or(0, |o| o.steps);
        outcomes.extend(base);

        // Rank 3: one crash at every grant count up to the horizon.
        if !cancel.cancelled() && budget.open() {
            pass_start(Pass::CrashSweep);
            coverage.crash_points_enumerable = horizon;
            let jobs: Vec<Job> = (0..horizon)
                .map(|k| Job {
                    crash_points: vec![k],
                    swept: 1,
                    ..Job::plain(
                        (Pass::CrashSweep.rank(), k),
                        Pass::CrashSweep,
                        PolicySpec::RoundRobin,
                    )
                })
                .collect();
            let jobs = budget.admit(jobs);
            let sweep = run_wave(harness, config, &cancel, &telem, &ctx, workers, &jobs);

            // Rank 4: a second crash inside each recovery, generated in
            // deterministic (k, m) order from the sweep's step counts.
            if config.passes.contains(Pass::NestedCrash) && !cancel.cancelled() && budget.open() {
                pass_start(Pass::NestedCrash);
                let mut nested: Vec<Job> = Vec::new();
                let mut index: u64 = 0;
                for out in &sweep {
                    let k = out.key.1;
                    let after = out.steps.saturating_sub(k + 1);
                    for m in 0..after {
                        nested.push(Job {
                            crash_points: vec![k, k + 1 + m],
                            swept: 1,
                            ..Job::plain(
                                (Pass::NestedCrash.rank(), index),
                                Pass::NestedCrash,
                                PolicySpec::RoundRobin,
                            )
                        });
                        index += 1;
                    }
                }
                let nested = budget.admit(nested);
                outcomes.extend(sweep);
                outcomes.extend(run_wave(
                    harness, config, &cancel, &telem, &ctx, workers, &nested,
                ));
            } else {
                outcomes.extend(sweep);
            }
        }
    }

    // Passes 5-6: random schedules with a random crash point each (probe
    // + crash run are one job; the crash run reuses the probe's seed).
    if config.passes.contains(Pass::RandomCrash) && !cancel.cancelled() && budget.open() {
        pass_start(Pass::RandomCrashProbe);
        let jobs: Vec<Job> = (0..config.random_crash_samples as u64)
            .map(|i| Job {
                kind: JobKind::ProbeThenCrash,
                ..Job::plain(
                    (Pass::RandomCrashProbe.rank(), i),
                    Pass::RandomCrashProbe,
                    PolicySpec::Random { prefix: Vec::new() },
                )
            })
            .collect();
        let jobs = budget.admit(jobs);
        outcomes.extend(run_wave(
            harness, config, &cancel, &telem, &ctx, workers, &jobs,
        ));
    }

    // Passes 7-9: deterministic fault-injection sweeps. Each pass probes
    // the fault-free round-robin schedule at index 0 to learn the
    // enumeration horizon (grant count, disk-op count, or message
    // count), then enumerates one fault plan per job at indices >= 1.
    // The probe is deterministic, so the derived job list — and hence
    // every job key — is independent of worker count.
    let surface = harness.fault_surface();

    // Pass 7: transient I/O errors on every disk op, plus (on two-disk
    // substrates) a permanent single-disk failure at every grant count,
    // including during recovery.
    if config.passes.contains(Pass::DiskFault)
        && (surface.transient_disk_io || surface.two_disk)
        && !cancel.cancelled()
        && budget.open()
    {
        let rank = Pass::DiskFault.rank();
        pass_start(Pass::DiskFault);
        let probe_jobs = budget.admit(vec![Job {
            probe: true,
            ..Job::plain((rank, 0), Pass::DiskFault, PolicySpec::RoundRobin)
        }]);
        let probe = run_wave(harness, config, &cancel, &telem, &ctx, workers, &probe_jobs);
        let horizon = probe.first().map_or(0, |o| o.steps);
        let disk_ops = probe.first().map_or(0, |o| o.disk_ops);
        outcomes.extend(probe);

        if !cancel.cancelled() && budget.open() {
            let mut jobs: Vec<Job> = Vec::new();
            let mut index: u64 = 1;
            if surface.transient_disk_io {
                for j in 0..disk_ops {
                    let mut faults = FaultPlan::default();
                    faults.transient_io.insert(j);
                    jobs.push(Job {
                        faults,
                        ..Job::plain((rank, index), Pass::DiskFault, PolicySpec::RoundRobin)
                    });
                    index += 1;
                }
            }
            if surface.two_disk {
                for g in 0..horizon {
                    for d in [1u8, 2u8] {
                        let faults = FaultPlan {
                            disk_fail: Some((d, g)),
                            ..FaultPlan::default()
                        };
                        jobs.push(Job {
                            faults,
                            ..Job::plain((rank, index), Pass::DiskFault, PolicySpec::RoundRobin)
                        });
                        index += 1;
                    }
                }
            }
            coverage.disk_fault_plans_enumerable += jobs.len() as u64;
            let jobs = budget.admit(jobs);
            outcomes.extend(run_wave(
                harness, config, &cancel, &telem, &ctx, workers, &jobs,
            ));

            // Disk failure *during recovery*: probe one mid-schedule
            // crash to learn the recovery horizon, then fail each disk
            // at every post-crash grant count.
            if surface.two_disk && horizon > 0 && !cancel.cancelled() && budget.open() {
                let k = horizon / 2;
                let probe2_jobs = budget.admit(vec![Job {
                    crash_points: vec![k],
                    swept: 1,
                    probe: true,
                    ..Job::plain((rank, index), Pass::DiskFault, PolicySpec::RoundRobin)
                }]);
                index += 1;
                let probe2 = run_wave(
                    harness,
                    config,
                    &cancel,
                    &telem,
                    &ctx,
                    workers,
                    &probe2_jobs,
                );
                let h2 = probe2.first().map_or(0, |o| o.steps);
                outcomes.extend(probe2);
                if !cancel.cancelled() && budget.open() {
                    let mut jobs: Vec<Job> = Vec::new();
                    for g in k + 1..h2 {
                        for d in [1u8, 2u8] {
                            let faults = FaultPlan {
                                disk_fail: Some((d, g)),
                                ..FaultPlan::default()
                            };
                            jobs.push(Job {
                                crash_points: vec![k],
                                swept: 1,
                                faults,
                                ..Job::plain((rank, index), Pass::DiskFault, PolicySpec::RoundRobin)
                            });
                            index += 1;
                        }
                    }
                    coverage.disk_fault_plans_enumerable += jobs.len() as u64;
                    let jobs = budget.admit(jobs);
                    outcomes.extend(run_wave(
                        harness, config, &cancel, &telem, &ctx, workers, &jobs,
                    ));
                }
            }
        }
    }

    // Pass 8: torn-write sweep — at every crash point of the baseline
    // schedule, crashes that persist none or a pseudo-random subset of
    // the unflushed write buffer (persisting *all* of it is exactly the
    // plain crash sweep).
    if config.passes.contains(Pass::TornWrite)
        && surface.torn_writes
        && !cancel.cancelled()
        && budget.open()
    {
        let rank = Pass::TornWrite.rank();
        pass_start(Pass::TornWrite);
        let probe_jobs = budget.admit(vec![Job {
            probe: true,
            ..Job::plain((rank, 0), Pass::TornWrite, PolicySpec::RoundRobin)
        }]);
        let probe = run_wave(harness, config, &cancel, &telem, &ctx, workers, &probe_jobs);
        let horizon = probe.first().map_or(0, |o| o.steps);
        outcomes.extend(probe);

        if !cancel.cancelled() && budget.open() {
            const MODES: [TornMode; 3] =
                [TornMode::KeepNone, TornMode::Subset(0), TornMode::Subset(1)];
            let jobs: Vec<Job> = (0..horizon)
                .flat_map(|k| {
                    MODES.iter().enumerate().map(move |(m, mode)| {
                        let faults = FaultPlan {
                            torn: Some(*mode),
                            ..FaultPlan::default()
                        };
                        Job {
                            crash_points: vec![k],
                            swept: 1,
                            faults,
                            ..Job::plain(
                                (rank, 1 + k * MODES.len() as u64 + m as u64),
                                Pass::TornWrite,
                                PolicySpec::RoundRobin,
                            )
                        }
                    })
                })
                .collect();
            coverage.torn_plans_enumerable += jobs.len() as u64;
            let jobs = budget.admit(jobs);
            outcomes.extend(run_wave(
                harness, config, &cancel, &telem, &ctx, workers, &jobs,
            ));
        }
    }

    // Pass 9: network-fault sweep — drop, duplicate, or delay each
    // message of the baseline schedule, one fault per execution.
    if config.passes.contains(Pass::NetFault) && surface.net && !cancel.cancelled() && budget.open()
    {
        let rank = Pass::NetFault.rank();
        pass_start(Pass::NetFault);
        let probe_jobs = budget.admit(vec![Job {
            probe: true,
            ..Job::plain((rank, 0), Pass::NetFault, PolicySpec::RoundRobin)
        }]);
        let probe = run_wave(harness, config, &cancel, &telem, &ctx, workers, &probe_jobs);
        let net_msgs = probe.first().map_or(0, |o| o.net_msgs);
        outcomes.extend(probe);

        if !cancel.cancelled() && budget.open() {
            const FAULTS: [NetFault; 3] = [NetFault::Drop, NetFault::Duplicate, NetFault::Delay];
            let jobs: Vec<Job> = (0..net_msgs)
                .flat_map(|m| {
                    FAULTS.iter().enumerate().map(move |(f, fault)| {
                        let mut faults = FaultPlan::default();
                        faults.net.insert(m, *fault);
                        Job {
                            faults,
                            ..Job::plain(
                                (rank, 1 + m * FAULTS.len() as u64 + f as u64),
                                Pass::NetFault,
                                PolicySpec::RoundRobin,
                            )
                        }
                    })
                })
                .collect();
            coverage.net_plans_enumerable += jobs.len() as u64;
            let jobs = budget.admit(jobs);
            outcomes.extend(run_wave(
                harness, config, &cancel, &telem, &ctx, workers, &jobs,
            ));
        }
    }

    // Aggregate. Without keep_going, statistics and counterexamples are
    // restricted to jobs at or below the winning key — exactly the set a
    // canonical-order sequential run would have executed — which makes
    // the whole report worker-count independent. Sharded runs count only
    // owned outcomes (spine jobs executed for derivation are excluded),
    // so summing shard reports reproduces the unsharded totals.
    let mut counterexamples: Vec<Counterexample> = outcomes
        .iter()
        .filter(|o| o.counted)
        .filter_map(|o| o.cx.clone())
        .collect();
    counterexamples.sort_by_key(|cx| cx.key());
    let cutoff = if keep_going {
        None
    } else {
        counterexamples.first().map(|cx| cx.key())
    };
    if let Some(cut) = cutoff {
        counterexamples.retain(|cx| cx.key() <= cut);
    }

    // Shrink the winning counterexample before the timeline is captured,
    // so the causal trace below is recorded from the *minimized*
    // schedule. Shrinking is sequential post-processing over one
    // counterexample, so the result is deterministic at every worker
    // count; its re-runs emit no telemetry and count toward no
    // statistic (DESIGN.md §16).
    let mut shrink_stats = None;
    if config.shrink {
        if let Some(first) = counterexamples.first_mut() {
            shrink_stats = Some(crate::shrink::shrink_counterexample(
                harness,
                first,
                config.max_steps,
            ));
        }
    }

    // Attach a causal timeline to the winning counterexample by
    // re-running it with the trace recorder on. The re-run is a pure
    // side channel: it emits no telemetry, counts toward no statistic,
    // and the timeline is excluded from campaign JSON and fingerprints,
    // so the report is byte-identical with capture on or off.
    if config.trace_capture {
        if let Some(first) = counterexamples.first_mut() {
            let r = run_one(
                harness,
                cx_policy(first),
                &first.crash_points,
                &first.faults,
                first.seed,
                config.max_steps,
                false,
                true,
            );
            first.timeline = r.exec_trace;
        }
    }

    let mut report = CheckReport {
        name: harness.name().to_string(),
        workers,
        ..CheckReport::default()
    };
    let mut per_pass: BTreeMap<Pass, PassMetrics> = BTreeMap::new();
    let mut crash_point_set: BTreeSet<u64> = BTreeSet::new();
    let mut trace_set: BTreeSet<u64> = BTreeSet::new();
    // The profiler folds the same cutoff-filtered outcomes the report
    // statistics come from, so its counts inherit the worker-count
    // independence argument instead of needing their own.
    let mut prof = config.profile.then(crate::profile::ProfileBuilder::default);
    for out in &outcomes {
        if !out.counted || cutoff.is_some_and(|cut| out.key > cut) {
            continue;
        }
        report.executions += 1;
        report.total_steps += out.steps;
        report.crashes_injected += out.crashes;
        report.helped_ops += out.helped;
        report.crash_points += out.swept;
        report.fault_plans += out.plans;
        report.disk_reads += out.disk_reads;
        report.disk_writes += out.disk_writes;
        report.disk_flushes += out.disk_flushes;
        report.net_sends += out.net_sends;
        report.net_recvs += out.net_recvs;

        report.outcomes.record(out.kind);
        report.steps_hist.record(out.steps);
        report.depth_hist.record(out.depth);
        trace_set.insert(out.trace_fp);
        crash_point_set.extend(out.crash_points.iter().copied());
        if out.plans > 0 {
            match out.family {
                FaultFamily::Disk => coverage.disk_fault_plans_exercised += 1,
                FaultFamily::Torn => coverage.torn_plans_exercised += 1,
                FaultFamily::Net => coverage.net_plans_exercised += 1,
                FaultFamily::None => {}
            }
        }
        let pm = per_pass.entry(out.pass).or_insert(PassMetrics {
            pass: out.pass,
            rank: out.key.0,
            ..PassMetrics::default()
        });
        pm.executions += 1;
        pm.steps += out.steps;
        pm.crashes += out.crashes as u64;
        pm.fault_plans += out.plans as u64;
        pm.failures += u64::from(out.kind != OutcomeKind::Ok);
        pm.busy_time += out.duration;
        if let Some(p) = prof.as_mut() {
            p.record_exec(&crate::profile::ExecCost {
                pass: out.pass,
                rank: out.key.0,
                steps: out.steps,
                crashes: out.crashes as u64,
                lock_blocks: out.lock_blocks,
                disk_ops: out.disk_ops,
                net_msgs: out.net_msgs,
                model_ops: out.disk_reads
                    + out.disk_writes
                    + out.disk_flushes
                    + out.net_sends
                    + out.net_recvs,
                duration_us: out.duration.as_micros() as u64,
            });
            p.record_lock_profile(&out.lock_profile);
            if let Some(deps) = &out.deps {
                p.record_deps(&out.decisions, deps);
            }
        }
    }
    coverage.crash_points_exercised = crash_point_set.len() as u64;
    coverage.distinct_traces = trace_set.len() as u64;
    report.crash_point_set = crash_point_set;
    report.trace_fps = trace_set;
    report.per_pass = per_pass.into_values().collect();
    report.coverage = coverage;
    report.strategy = config.strategy.name().to_string();
    report.pruned = session.pruned();
    report.coverage_guided = session.guided();
    for pm in &mut report.per_pass {
        if pm.pass == Pass::Dfs {
            pm.pruned = report.pruned;
        }
        if pm.pass == Pass::Random {
            pm.coverage_guided = report.coverage_guided;
        }
    }
    report.counterexample = counterexamples.first().cloned();
    report.counterexamples = counterexamples;
    report.shrink = shrink_stats;
    report.shard = config.shard;
    report.replayed = ctx.replayed.load(Ordering::Relaxed);
    if !budget.open() {
        incomplete.push(format!(
            "execution budget of {} exhausted; later jobs were skipped",
            config.exec_budget
        ));
    }
    if let Some(e) = telem.stream_error() {
        incomplete.push(format!("telemetry stream error: {e}"));
    }
    report.incomplete = incomplete;
    report.wall_time = start.elapsed();
    report.execs_per_sec = report.executions as f64 / report.wall_time.as_secs_f64().max(1e-9);
    report.env = telemetry::EnvStamp::current(workers as u64, config.strategy.name());
    if let Some(p) = prof {
        let strategy = crate::profile::StrategyProfile {
            strategy: report.strategy.clone(),
            pruned: report.pruned,
            coverage_guided: report.coverage_guided,
            prunes_by_resource: session.prunes_by_resource(),
            coverage: session.coverage_introspection(),
        };
        report.profile = Some(p.finish(harness.name(), strategy, workers as u64, report.wall_time));
    }
    if let Some((prev, started)) = pass_timer.lock().take() {
        telem.emit(&telemetry::ev_pass_end(prev, started.elapsed()));
    }
    telem.emit(&telemetry::ev_run_end(&report));
    report
}

/// Reruns a single execution (round-robin schedule) with explicit crash
/// points — used by tests that target one specific interleaving, like the
/// paper's Figure 6 scenario.
pub fn run_scenario<S: SpecTS, H: Harness<S>>(
    harness: &H,
    crash_points: &[u64],
    config: &CheckConfig,
) -> (ExecOutcome, String) {
    let r = run_one(
        harness,
        Policy::RoundRobin,
        crash_points,
        &FaultPlan::default(),
        config.seed,
        config.max_steps,
        false,
        false,
    );
    (r.outcome, r.trace)
}

/// The schedule policy that reproduces a counterexample: DFS prefixes
/// for the DFS pass, the recorded seed (plus corpus prefix) for the
/// random passes, round-robin for the sweep passes.
fn cx_policy(cx: &Counterexample) -> Policy {
    match cx.pass {
        Pass::Random | Pass::RandomCrash | Pass::RandomCrashProbe => Policy::Random {
            seed: cx.seed,
            prefix: cx.schedule_prefix.clone(),
        },
        Pass::CrashSweepBase
        | Pass::CrashSweep
        | Pass::NestedCrash
        | Pass::DiskFault
        | Pass::TornWrite
        | Pass::NetFault => Policy::RoundRobin,
        Pass::Dfs => Policy::DfsPrefix(cx.schedule_prefix.clone()),
    }
}

/// Re-runs a shrink candidate: the counterexample's recorded policy,
/// crash points, and fault plan, untraced and untracked. Returns the
/// outcome plus the clamp depths and ghost trace of the re-run, which
/// the shrinker folds back into an accepted candidate.
pub(crate) fn rerun_candidate<S: SpecTS, H: Harness<S>>(
    harness: &H,
    cx: &Counterexample,
    max_steps: u64,
) -> (ExecOutcome, Vec<usize>, String) {
    let r = run_one(
        harness,
        cx_policy(cx),
        &cx.crash_points,
        &cx.faults,
        cx.seed,
        max_steps,
        false,
        false,
    );
    (r.outcome, r.clamped, r.trace)
}

/// Replays a counterexample: reruns the execution with the recorded
/// schedule, seed, and crash points, returning the (deterministic)
/// outcome and trace — the debugging entry point for a failing
/// [`Counterexample`].
///
/// DFS counterexamples carry a choice-index prefix; crash-sweep ones
/// replay round-robin with the recorded crash points; random-pass
/// counterexamples replay the recorded per-execution seed (plus the
/// corpus prefix, for coverage-guided samples).
pub fn replay<S: SpecTS, H: Harness<S>>(
    harness: &H,
    cx: &Counterexample,
    config: &CheckConfig,
) -> (ExecOutcome, String) {
    let r = run_one(
        harness,
        cx_policy(cx),
        &cx.crash_points,
        &cx.faults,
        cx.seed,
        config.max_steps,
        false,
        false,
    );
    (r.outcome, r.trace)
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}
