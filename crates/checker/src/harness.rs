//! The harness interface: how a system under test plugs into the
//! explorer.
//!
//! One [`Harness`] describes a *scenario*: the spec, how to build fresh
//! durable state, the workload threads, and the recovery procedure. The
//! explorer instantiates it once per explored execution (stateless model
//! checking), drives the schedule, injects crashes, and validates the
//! ghost trace at the end.
//!
//! The lifecycle of one execution:
//!
//! ```text
//! make() ──► boot() ──► threads() run under the explorer's schedule
//!                │
//!                │  (injected crash: rt.crash_all, ghost.crash,
//!                ▼   crash_reset, boot again)
//!           recovery() runs as a scheduled thread (crashes here are
//!                │      explored too — "crash during recovery")
//!                ▼
//!          after_recovery() threads (optional) ──► final_check()
//! ```

use goose_rt::fault::FaultSurface;
use goose_rt::sched::ModelRt;
use perennial::Ghost;
use perennial_spec::SpecTS;
use std::sync::Arc;

/// Shared execution context handed to every harness hook.
pub struct World<S: SpecTS> {
    /// The model runtime (scheduler).
    pub rt: Arc<ModelRt>,
    /// The ghost engine for this execution.
    pub ghost: Arc<Ghost<S>>,
}

impl<S: SpecTS> Clone for World<S> {
    fn clone(&self) -> Self {
        World {
            rt: Arc::clone(&self.rt),
            ghost: Arc::clone(&self.ghost),
        }
    }
}

/// A workload thread body.
pub type ThreadBody = Box<dyn FnOnce() + Send + 'static>;

/// One execution of the system under test.
pub trait Execution<S: SpecTS>: Send {
    /// (Re)builds in-memory structures — locks, caches, handles — called
    /// after [`Harness::make`] and again after every crash, modelling the
    /// process restart.
    fn boot(&mut self, w: &World<S>);

    /// The main workload threads (called once, after the first boot).
    fn threads(&mut self, w: &World<S>) -> Vec<(String, ThreadBody)>;

    /// Clears volatile *substrate* state on crash (heap contents, file
    /// descriptors). The explorer has already unwound the threads and
    /// called `ghost.crash()`.
    fn crash_reset(&mut self, w: &World<S>);

    /// The recovery procedure, run as a scheduled virtual thread so
    /// crashes *during recovery* are explored like any other step. Must
    /// finish by spending the crash token (`ghost.recovery_done()`).
    fn recovery(&mut self, w: &World<S>) -> ThreadBody;

    /// Optional workload to run after a completed recovery (checks the
    /// system still serves requests correctly post-crash).
    fn after_recovery(&mut self, _w: &World<S>) -> Vec<(String, ThreadBody)> {
        Vec::new()
    }

    /// Extra end-of-execution predicate over the real (non-ghost) state,
    /// e.g. "the two disk platters agree".
    fn final_check(&self, _w: &World<S>) -> Result<(), String> {
        Ok(())
    }

    /// Controller-side hook for plan-scheduled permanent disk failures
    /// (`disk` is 1 or 2). Called between grants at the plan's grant
    /// count; harnesses over a two-disk substrate forward it to
    /// `ModelTwoDisks::fail`. Default: no failable disks, ignore.
    fn inject_disk_failure(&mut self, _w: &World<S>, _disk: u8) {}
}

/// A checkable scenario.
pub trait Harness<S: SpecTS>: Sync {
    /// A fresh spec instance (defines the initial abstract state).
    fn spec(&self) -> S;

    /// Builds fresh durable state and ghost resources for one execution.
    fn make(&self, w: &World<S>) -> Box<dyn Execution<S>>;

    /// Human-readable scenario name (reports and statistics).
    fn name(&self) -> &str {
        "unnamed scenario"
    }

    /// Which fault classes this scenario's substrate actually models.
    /// The fault sweeps only enumerate plans a scenario can express:
    /// e.g. a torn-write sweep over a system with no write buffer would
    /// re-explore identical executions. Default: no fault surface.
    fn fault_surface(&self) -> FaultSurface {
        FaultSurface::none()
    }
}

/// Harness-fault mutant: wraps any scenario so that `crash_reset`
/// panics. Scenario code — not the code under test — failing this way
/// must not abort a campaign: the explorer isolates the panic and
/// records the execution as [`crate::ExecOutcome::HarnessPanic`].
pub struct PanicOnReset<H> {
    /// The wrapped harness.
    pub inner: H,
    /// The mutant's scenario name.
    pub name: String,
}

impl<H> PanicOnReset<H> {
    /// Wraps `inner` under the mutant name `name`.
    pub fn new(name: impl Into<String>, inner: H) -> Self {
        PanicOnReset {
            inner,
            name: name.into(),
        }
    }
}

struct PanicOnResetExec<S: SpecTS> {
    inner: Box<dyn Execution<S>>,
}

impl<S: SpecTS> Execution<S> for PanicOnResetExec<S> {
    fn boot(&mut self, w: &World<S>) {
        self.inner.boot(w);
    }

    fn threads(&mut self, w: &World<S>) -> Vec<(String, ThreadBody)> {
        self.inner.threads(w)
    }

    fn crash_reset(&mut self, _w: &World<S>) {
        panic!("injected harness fault: crash_reset panics");
    }

    fn recovery(&mut self, w: &World<S>) -> ThreadBody {
        self.inner.recovery(w)
    }

    fn after_recovery(&mut self, w: &World<S>) -> Vec<(String, ThreadBody)> {
        self.inner.after_recovery(w)
    }

    fn final_check(&self, w: &World<S>) -> Result<(), String> {
        self.inner.final_check(w)
    }

    fn inject_disk_failure(&mut self, w: &World<S>, disk: u8) {
        self.inner.inject_disk_failure(w, disk);
    }
}

impl<S: SpecTS, H: Harness<S>> Harness<S> for PanicOnReset<H> {
    fn spec(&self) -> S {
        self.inner.spec()
    }

    fn make(&self, w: &World<S>) -> Box<dyn Execution<S>> {
        Box::new(PanicOnResetExec {
            inner: self.inner.make(w),
        })
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn fault_surface(&self) -> FaultSurface {
        self.inner.fault_surface()
    }
}

/// Liveness mutant: wraps any scenario and adds one workload thread
/// that spins on a lock forever. Every explored execution exhausts
/// [`crate::CheckConfig::max_steps`] and is classified
/// [`crate::ExecOutcome::Wedged`] — never a checker hang. Use with a
/// small step budget: each wedged execution costs the full budget.
pub struct SpinForever<H> {
    /// The wrapped harness.
    pub inner: H,
    /// The mutant's scenario name.
    pub name: String,
}

impl<H> SpinForever<H> {
    /// Wraps `inner` under the mutant name `name`.
    pub fn new(name: impl Into<String>, inner: H) -> Self {
        SpinForever {
            inner,
            name: name.into(),
        }
    }
}

struct SpinForeverExec<S: SpecTS> {
    inner: Box<dyn Execution<S>>,
}

impl<S: SpecTS> Execution<S> for SpinForeverExec<S> {
    fn boot(&mut self, w: &World<S>) {
        self.inner.boot(w);
    }

    fn threads(&mut self, w: &World<S>) -> Vec<(String, ThreadBody)> {
        use goose_rt::runtime::ModelRtExt;
        let mut out = self.inner.threads(w);
        let lock = w.rt.new_glock();
        out.push((
            "spinner".into(),
            Box::new(move || loop {
                lock.acquire();
                lock.release();
            }),
        ));
        out
    }

    fn crash_reset(&mut self, w: &World<S>) {
        self.inner.crash_reset(w);
    }

    fn recovery(&mut self, w: &World<S>) -> ThreadBody {
        self.inner.recovery(w)
    }

    fn after_recovery(&mut self, w: &World<S>) -> Vec<(String, ThreadBody)> {
        self.inner.after_recovery(w)
    }

    fn final_check(&self, w: &World<S>) -> Result<(), String> {
        self.inner.final_check(w)
    }

    fn inject_disk_failure(&mut self, w: &World<S>, disk: u8) {
        self.inner.inject_disk_failure(w, disk);
    }
}

impl<S: SpecTS, H: Harness<S>> Harness<S> for SpinForever<H> {
    fn spec(&self) -> S {
        self.inner.spec()
    }

    fn make(&self, w: &World<S>) -> Box<dyn Execution<S>> {
        Box::new(SpinForeverExec {
            inner: self.inner.make(w),
        })
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn fault_surface(&self) -> FaultSurface {
        self.inner.fault_surface()
    }
}
