//! The Perennial reproduction's model checker: bounded exploration of
//! thread interleavings and crash points with online refinement
//! validation.
//!
//! This crate is the substitute for the paper's "for all executions" Coq
//! theorem (DESIGN.md §1). A system plugs in as a [`Harness`]; the
//! [`check`] entry point then:
//!
//! 1. enumerates crash-free schedules by DFS (exhaustive for small
//!    configurations) and random sampling;
//! 2. sweeps an injected crash at *every* step of a baseline schedule,
//!    runs the recovery procedure as a scheduled thread, and optionally
//!    sweeps a *second* crash at every step of recovery ("crashes during
//!    recovery", §5.5's idempotence obligation);
//! 3. requires, on every execution, that the ghost capability discipline
//!    (Table 1) held at each step, that the Theorem 2 end-of-execution
//!    obligations are met, and that the harness's final-state predicate
//!    holds.
//!
//! A separate Wing–Gong [`linearize`] checker validates histories from
//! observable events alone, as an independent cross-check of the
//! commit-point instrumentation.
//!
//! When a check fails, [`shrink`] delta-debugs the counterexample down
//! to a minimal reproducer and [`playback`] compiles it into a
//! standalone replay test (DESIGN.md §16).

#![warn(missing_docs)]

pub mod campaign;
pub mod dashboard;
pub mod explore;
pub mod harness;
pub mod linearize;
pub mod metrics;
pub mod pass;
pub mod playback;
pub mod profile;
pub mod recorder;
pub mod report;
pub mod scenario;
pub mod shrink;
pub mod strategy;
pub mod telemetry;
pub mod timeline;

pub use campaign::{
    merge_reports, parse_shard, report_fingerprint, report_from_json, report_to_json,
};
pub use dashboard::{render_dashboard, Dashboard, ScenarioDash, ShardRun};
pub use explore::{
    check, replay, run_scenario, shard_of, CheckConfig, CheckConfigBuilder, CheckReport,
    Counterexample, ExecOutcome,
};
pub use goose_rt::fault::{FaultPlan, FaultSurface, IoError, IoResult, NetFault, TornMode};
pub use harness::{Execution, Harness, PanicOnReset, SpinForever, ThreadBody, World};
pub use linearize::{check_linearizable, HistOp, Verdict};
pub use metrics::{
    trace_fingerprint, Coverage, Histogram, OutcomeCounts, OutcomeKind, PassMetrics,
};
pub use pass::{Pass, PassSet};
pub use playback::{emit_test, test_file_name};
pub use profile::{profile_to_json, render_profile, Profile};
pub use recorder::{Recorder, DROPPED};
pub use report::{describe_outcome, render_failure, render_summary, verdict_line};
pub use scenario::{Scenario, ScenarioSet};
pub use shrink::{failure_fingerprint, shrink_counterexample, ShrinkStats};
pub use strategy::{CoverageGuided, Exhaustive, Random, SleepSetDpor, Strategy, StrategySession};
pub use telemetry::{strip_timing, validate_json_line, EnvStamp, TelemetrySink, TIMING_KEYS};
pub use timeline::{chrome_trace_json, render_explain};

/// One-stop imports for writing and running harnesses:
/// `use perennial_checker::prelude::*;`.
pub mod prelude {
    pub use crate::explore::{
        check, replay, run_scenario, CheckConfig, CheckConfigBuilder, CheckReport, Counterexample,
        ExecOutcome,
    };
    pub use crate::harness::{Execution, Harness, ThreadBody, World};
    pub use crate::pass::{Pass, PassSet};
    pub use crate::scenario::{Scenario, ScenarioSet};
    pub use crate::shrink::{failure_fingerprint, ShrinkStats};
    pub use crate::strategy::{CoverageGuided, Exhaustive, SleepSetDpor, Strategy};
    pub use crate::telemetry::TelemetrySink;
    pub use goose_rt::fault::{FaultPlan, FaultSurface, IoError, IoResult, NetFault, TornMode};
}
