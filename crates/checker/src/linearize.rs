//! A standalone Wing–Gong linearizability checker.
//!
//! The ghost engine certifies refinement *online* via commit points. This
//! module is the independent cross-check: given only the observable
//! history (invocations and responses — no commit information), search
//! for a legal linearization against the spec. Used in tests to confirm
//! the ghost discipline is not vacuously strong or weak.
//!
//! Complexity is exponential in the number of concurrent operations;
//! intended for the small histories model checking produces. Memoization
//! on (linearized set, abstract state) keeps typical cases fast.

use perennial_spec::transition::Outcome;
use perennial_spec::{Jid, SpecTS};
use std::collections::HashSet;
use std::fmt::Debug;

/// One operation instance in a complete history.
#[derive(Debug, Clone)]
pub struct HistOp<Op, Ret> {
    /// Operation instance id.
    pub jid: Jid,
    /// The operation.
    pub op: Op,
    /// Observed return value (`None` when the op never returned — it may
    /// then linearize or vanish).
    pub ret: Option<Ret>,
    /// Global timestamp of the invocation.
    pub invoked_at: u64,
    /// Global timestamp of the response (`u64::MAX` if none).
    pub returned_at: u64,
}

/// Verdict of a linearizability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// A legal linearization exists.
    Linearizable,
    /// No linearization exists.
    NotLinearizable,
    /// The search exceeded its budget (inconclusive).
    BudgetExceeded,
}

/// Checks a crash-free history for linearizability against `spec`,
/// starting from the spec's initial state.
///
/// Completed operations must linearize with their observed return values,
/// respecting real-time order (an op that returned before another was
/// invoked must linearize first). Incomplete operations may linearize
/// (with any return value) or be dropped.
pub fn check_linearizable<S: SpecTS>(
    spec: &S,
    ops: &[HistOp<S::Op, S::Ret>],
    budget: usize,
) -> Verdict {
    let state = spec.init();
    let mut remaining: Vec<usize> = (0..ops.len()).collect();
    // Incomplete ops can always be dropped; enumerate each subset choice
    // lazily inside the search instead of up front: dropping is modelled
    // as "linearize never", which the search handles by allowing success
    // with incomplete ops left over.
    let mut memo: HashSet<(Vec<usize>, String)> = HashSet::new();
    let mut steps = 0usize;
    let r = search(
        spec,
        ops,
        &state,
        &mut remaining,
        &mut memo,
        &mut steps,
        budget,
    );
    match r {
        Some(true) => Verdict::Linearizable,
        Some(false) => Verdict::NotLinearizable,
        None => Verdict::BudgetExceeded,
    }
}

fn search<S: SpecTS>(
    spec: &S,
    ops: &[HistOp<S::Op, S::Ret>],
    state: &S::State,
    remaining: &mut Vec<usize>,
    memo: &mut HashSet<(Vec<usize>, String)>,
    steps: &mut usize,
    budget: usize,
) -> Option<bool> {
    *steps += 1;
    if *steps > budget {
        return None;
    }
    // Success: every *completed* operation has been linearized.
    if remaining.iter().all(|&i| ops[i].ret.is_none()) {
        return Some(true);
    }
    let key = {
        let mut ids = remaining.clone();
        ids.sort_unstable();
        (ids, format!("{state:?}"))
    };
    if !memo.insert(key) {
        return Some(false);
    }

    // Minimal ops: those whose invocation precedes every remaining
    // completed op's response (classic Wing–Gong frontier).
    let earliest_response = remaining
        .iter()
        .map(|&i| ops[i].returned_at)
        .min()
        .unwrap_or(u64::MAX);

    let candidates: Vec<usize> = remaining
        .iter()
        .copied()
        .filter(|&i| ops[i].invoked_at <= earliest_response)
        .collect();

    for i in candidates {
        let hop = &ops[i];
        match spec.op_transition(&hop.op).run(state) {
            Outcome::Ok(next_state, v) => {
                let matches = match &hop.ret {
                    Some(r) => r == &v,
                    None => true, // incomplete: any value is consistent
                };
                if matches {
                    let pos = remaining.iter().position(|&x| x == i).unwrap();
                    remaining.remove(pos);
                    match search(spec, ops, &next_state, remaining, memo, steps, budget) {
                        Some(true) => return Some(true),
                        Some(false) => {}
                        None => return None,
                    }
                    remaining.insert(pos, i);
                }
            }
            Outcome::Undefined | Outcome::Blocked => {}
        }
    }
    Some(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use perennial_spec::fixtures::{RegOp, RegSpec};

    fn op(
        jid: u64,
        op: RegOp,
        ret: Option<Option<u64>>,
        inv: u64,
        ret_at: u64,
    ) -> HistOp<RegOp, Option<u64>> {
        HistOp {
            jid: Jid(jid),
            op,
            ret,
            invoked_at: inv,
            returned_at: ret_at,
        }
    }

    #[test]
    fn sequential_history_linearizable() {
        let spec = RegSpec { size: 4 };
        let ops = vec![
            op(0, RegOp::Write(0, 5), Some(None), 0, 1),
            op(1, RegOp::Read(0), Some(Some(5)), 2, 3),
        ];
        assert_eq!(
            check_linearizable(&spec, &ops, 10_000),
            Verdict::Linearizable
        );
    }

    #[test]
    fn stale_read_after_write_not_linearizable() {
        let spec = RegSpec { size: 4 };
        // Write(0,5) fully returns before Read(0) is invoked, yet the
        // read observed the old value 0 — illegal.
        let ops = vec![
            op(0, RegOp::Write(0, 5), Some(None), 0, 1),
            op(1, RegOp::Read(0), Some(Some(0)), 2, 3),
        ];
        assert_eq!(
            check_linearizable(&spec, &ops, 10_000),
            Verdict::NotLinearizable
        );
    }

    #[test]
    fn concurrent_read_may_see_either_value() {
        let spec = RegSpec { size: 4 };
        // Read overlaps the write: both 0 and 5 are legal.
        for seen in [0u64, 5] {
            let ops = vec![
                op(0, RegOp::Write(0, 5), Some(None), 0, 10),
                op(1, RegOp::Read(0), Some(Some(seen)), 1, 9),
            ];
            assert_eq!(
                check_linearizable(&spec, &ops, 10_000),
                Verdict::Linearizable,
                "value {seen} should be linearizable"
            );
        }
    }

    #[test]
    fn incomplete_op_may_or_may_not_take_effect() {
        let spec = RegSpec { size: 4 };
        // A write that never returned; a later read may see it or not.
        for seen in [0u64, 7] {
            let ops = vec![
                op(0, RegOp::Write(1, 7), None, 0, u64::MAX),
                op(1, RegOp::Read(1), Some(Some(seen)), 5, 6),
            ];
            assert_eq!(
                check_linearizable(&spec, &ops, 10_000),
                Verdict::Linearizable,
                "value {seen} should be linearizable"
            );
        }
    }

    #[test]
    fn impossible_value_rejected() {
        let spec = RegSpec { size: 4 };
        let ops = vec![
            op(0, RegOp::Write(1, 7), None, 0, u64::MAX),
            op(1, RegOp::Read(1), Some(Some(8)), 5, 6),
        ];
        assert_eq!(
            check_linearizable(&spec, &ops, 10_000),
            Verdict::NotLinearizable
        );
    }

    #[test]
    fn budget_exceeded_is_inconclusive() {
        let spec = RegSpec { size: 4 };
        let ops: Vec<_> = (0..6)
            .map(|i| op(i, RegOp::Write(0, i), Some(None), 0, u64::MAX - 1))
            .collect();
        assert_eq!(check_linearizable(&spec, &ops, 3), Verdict::BudgetExceeded);
    }

    #[test]
    fn real_time_order_enforced_across_three_ops() {
        let spec = RegSpec { size: 4 };
        // w1 returns before w2 invoked; read sees w1's value after w2
        // completed — illegal (w2 must overwrite).
        let ops = vec![
            op(0, RegOp::Write(0, 1), Some(None), 0, 1),
            op(1, RegOp::Write(0, 2), Some(None), 2, 3),
            op(2, RegOp::Read(0), Some(Some(1)), 4, 5),
        ];
        assert_eq!(
            check_linearizable(&spec, &ops, 10_000),
            Verdict::NotLinearizable
        );
    }
}
