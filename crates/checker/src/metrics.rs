//! Deterministic run metrics: outcome histograms, per-pass accounting,
//! and coverage ratios.
//!
//! Everything in this module is computed from the explorer's canonical
//! job outcomes *after* the worker-count-independent cutoff is applied
//! (see `explore.rs`), so — with the sole exception of the wall-clock
//! `busy_time` fields — every number here is identical for 1 and 8
//! workers, and identical with telemetry on or off. The live, racy
//! counters that feed the progress line live in [`crate::telemetry`];
//! these are the trustworthy ones that end up in [`crate::CheckReport`].

use crate::explore::ExecOutcome;
use crate::pass::Pass;
use std::fmt::Write as _;
use std::time::Duration;

/// The eight ways an explored execution can end, as a flat tag (the
/// histogram key; [`ExecOutcome`] carries the full payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OutcomeKind {
    /// Every obligation held ([`ExecOutcome::Ok`]).
    Ok,
    /// Ghost capability rule violated ([`ExecOutcome::Violation`]).
    Violation,
    /// Modelled undefined behaviour ([`ExecOutcome::Ub`]).
    Ub,
    /// Plain panic in the code under test ([`ExecOutcome::Bug`]).
    Bug,
    /// No runnable thread with work left ([`ExecOutcome::Deadlock`]).
    Deadlock,
    /// Final predicate failed ([`ExecOutcome::FinalCheckFailed`]).
    FinalCheckFailed,
    /// Step budget exhausted ([`ExecOutcome::Wedged`]).
    Wedged,
    /// Controller-side hook panicked ([`ExecOutcome::HarnessPanic`]).
    HarnessPanic,
}

impl OutcomeKind {
    /// Classifies a full outcome into its histogram tag.
    pub fn of(outcome: &ExecOutcome) -> Self {
        match outcome {
            ExecOutcome::Ok => OutcomeKind::Ok,
            ExecOutcome::Violation(_) => OutcomeKind::Violation,
            ExecOutcome::Ub(_) => OutcomeKind::Ub,
            ExecOutcome::Bug(_) => OutcomeKind::Bug,
            ExecOutcome::Deadlock => OutcomeKind::Deadlock,
            ExecOutcome::FinalCheckFailed(_) => OutcomeKind::FinalCheckFailed,
            ExecOutcome::Wedged(_) => OutcomeKind::Wedged,
            ExecOutcome::HarnessPanic(_) => OutcomeKind::HarnessPanic,
        }
    }

    /// Stable lowercase name (the JSONL `outcome` field).
    pub fn name(self) -> &'static str {
        match self {
            OutcomeKind::Ok => "ok",
            OutcomeKind::Violation => "violation",
            OutcomeKind::Ub => "ub",
            OutcomeKind::Bug => "bug",
            OutcomeKind::Deadlock => "deadlock",
            OutcomeKind::FinalCheckFailed => "final_check_failed",
            OutcomeKind::Wedged => "wedged",
            OutcomeKind::HarnessPanic => "harness_panic",
        }
    }
}

/// Counts of executions by [`OutcomeKind`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// Executions with [`OutcomeKind::Ok`].
    pub ok: u64,
    /// Executions with [`OutcomeKind::Violation`].
    pub violation: u64,
    /// Executions with [`OutcomeKind::Ub`].
    pub ub: u64,
    /// Executions with [`OutcomeKind::Bug`].
    pub bug: u64,
    /// Executions with [`OutcomeKind::Deadlock`].
    pub deadlock: u64,
    /// Executions with [`OutcomeKind::FinalCheckFailed`].
    pub final_check_failed: u64,
    /// Executions with [`OutcomeKind::Wedged`].
    pub wedged: u64,
    /// Executions with [`OutcomeKind::HarnessPanic`].
    pub harness_panic: u64,
}

impl OutcomeCounts {
    /// Bumps the bucket for one outcome.
    pub fn record(&mut self, kind: OutcomeKind) {
        match kind {
            OutcomeKind::Ok => self.ok += 1,
            OutcomeKind::Violation => self.violation += 1,
            OutcomeKind::Ub => self.ub += 1,
            OutcomeKind::Bug => self.bug += 1,
            OutcomeKind::Deadlock => self.deadlock += 1,
            OutcomeKind::FinalCheckFailed => self.final_check_failed += 1,
            OutcomeKind::Wedged => self.wedged += 1,
            OutcomeKind::HarnessPanic => self.harness_panic += 1,
        }
    }

    /// Adds another tally into this one (shard-report merging).
    pub fn merge(&mut self, other: &OutcomeCounts) {
        self.ok += other.ok;
        self.violation += other.violation;
        self.ub += other.ub;
        self.bug += other.bug;
        self.deadlock += other.deadlock;
        self.final_check_failed += other.final_check_failed;
        self.wedged += other.wedged;
        self.harness_panic += other.harness_panic;
    }

    /// Total executions recorded.
    pub fn total(&self) -> u64 {
        self.ok + self.failures()
    }

    /// Executions that ended in any non-Ok outcome.
    pub fn failures(&self) -> u64 {
        self.violation
            + self.ub
            + self.bug
            + self.deadlock
            + self.final_check_failed
            + self.wedged
            + self.harness_panic
    }

    /// `(name, count)` pairs in canonical order, zeros included.
    pub fn entries(&self) -> [(&'static str, u64); 8] {
        [
            ("ok", self.ok),
            ("violation", self.violation),
            ("ub", self.ub),
            ("bug", self.bug),
            ("deadlock", self.deadlock),
            ("final_check_failed", self.final_check_failed),
            ("wedged", self.wedged),
            ("harness_panic", self.harness_panic),
        ]
    }

    /// One-line rendering, omitting zero buckets: `ok=120 deadlock=2`.
    pub fn render(&self) -> String {
        let parts: Vec<String> = self
            .entries()
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(name, n)| format!("{name}={n}"))
            .collect();
        if parts.is_empty() {
            "(none)".to_string()
        } else {
            parts.join(" ")
        }
    }
}

/// A power-of-two bucketed histogram of u64 samples (bucket `i` covers
/// `[2^(i-1), 2^i)`, with bucket 0 holding exact zeros). Coarse on
/// purpose: the checker cares about the *shape* of steps-per-execution
/// and schedule-depth distributions, not exact quantiles, and log2
/// buckets merge deterministically and render in a fixed width.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Adds one sample.
    pub fn record(&mut self, v: u64) {
        let b = (64 - v.leading_zeros()) as usize; // 0 for v == 0
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Merges another histogram into this one — bucket-wise addition,
    /// so merging shard histograms equals the unsharded histogram
    /// (shard-report merging, DESIGN.md §13).
    pub fn merge(&mut self, other: &Histogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (i, n) in other.buckets.iter().enumerate() {
            self.buckets[i] += n;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Raw bucket counts (index = log2 bucket), for serialization.
    pub fn raw_buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Rebuilds a histogram from its serialized parts.
    pub fn from_parts(buckets: Vec<u64>, count: u64, sum: u64, max: u64) -> Self {
        Histogram {
            buckets,
            count,
            sum,
            max,
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// `(bucket_lo, bucket_hi_inclusive, count)` triples for non-empty
    /// buckets, in increasing order.
    pub fn buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(i, n)| match i {
                0 => (0, 0, *n),
                _ => (1u64 << (i - 1), (1u64 << i) - 1, *n),
            })
            .collect()
    }

    /// One-line rendering: `0:3 1:5 2-3:9 4-7:21 (mean 5.2, max 7)`.
    pub fn render(&self) -> String {
        if self.count == 0 {
            return "(empty)".to_string();
        }
        let mut out = String::new();
        for (lo, hi, n) in self.buckets() {
            if !out.is_empty() {
                out.push(' ');
            }
            if lo == hi {
                let _ = write!(out, "{lo}:{n}");
            } else {
                let _ = write!(out, "{lo}-{hi}:{n}");
            }
        }
        let _ = write!(out, " (mean {:.1}, max {})", self.mean(), self.max);
        out
    }
}

/// Accounting for one exploration pass, accumulated over its executions.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PassMetrics {
    /// Which pass.
    pub pass: Pass,
    /// Canonical pass rank (the report sort key).
    pub rank: u8,
    /// Executions this pass scheduled (post-cutoff).
    pub executions: u64,
    /// Scheduled steps summed over the pass's executions.
    pub steps: u64,
    /// Crashes injected by the pass.
    pub crashes: u64,
    /// Executions that ran with a non-empty fault plan.
    pub fault_plans: u64,
    /// Executions that ended in a non-Ok outcome.
    pub failures: u64,
    /// Schedules the strategy pruned as redundant (attributed to the
    /// DFS pass; 0 elsewhere and under non-DPOR strategies).
    pub pruned: u64,
    /// Executions re-seeded by coverage feedback (attributed to the
    /// random pass; 0 elsewhere and under non-guided strategies).
    pub coverage_guided: u64,
    /// Summed per-execution wall time across the pass. The one
    /// timing-dependent field in this module: with a pool, passes
    /// overlap on the wall clock, so this is *busy* time, not elapsed.
    pub busy_time: Duration,
}

/// Coverage accounting: how much of each enumerable sweep space the run
/// actually exercised. Ratios stay below 1.0 when a counterexample cut
/// the run short (statistics stop at the winning key) or when a bound
/// (e.g. `dfs_max_executions`) clipped the space.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Coverage {
    /// Distinct crash points injected (any pass, nested points counted
    /// individually).
    pub crash_points_exercised: u64,
    /// Crash points the systematic sweep enumerates: the baseline
    /// schedule's horizon (0 when the crash sweep is disabled).
    pub crash_points_enumerable: u64,
    /// Distinct non-empty disk-fault plans executed.
    pub disk_fault_plans_exercised: u64,
    /// Disk-fault plans the sweep enumerates.
    pub disk_fault_plans_enumerable: u64,
    /// Distinct torn-write plans executed.
    pub torn_plans_exercised: u64,
    /// Torn-write plans the sweep enumerates.
    pub torn_plans_enumerable: u64,
    /// Distinct network-fault plans executed.
    pub net_plans_exercised: u64,
    /// Network-fault plans the sweep enumerates.
    pub net_plans_enumerable: u64,
    /// Distinct ghost-trace fingerprints observed across executions — a
    /// proxy for behavioural coverage (two executions with the same
    /// fingerprint drove the spec through the same event sequence).
    pub distinct_traces: u64,
}

impl Coverage {
    fn ratio(done: u64, total: u64) -> f64 {
        if total == 0 {
            // Nothing enumerable (sweep disabled or no surface): treat
            // as fully covered rather than dividing by zero.
            1.0
        } else {
            done as f64 / total as f64
        }
    }

    /// Crash points exercised over enumerable (1.0 when none are
    /// enumerable).
    pub fn crash_point_ratio(&self) -> f64 {
        Self::ratio(self.crash_points_exercised, self.crash_points_enumerable)
    }

    /// All fault surfaces pooled into one ratio.
    pub fn fault_plan_ratio(&self) -> f64 {
        Self::ratio(self.fault_plans_exercised(), self.fault_plans_enumerable())
    }

    /// Non-empty fault plans executed, summed over every surface.
    pub fn fault_plans_exercised(&self) -> u64 {
        self.disk_fault_plans_exercised + self.torn_plans_exercised + self.net_plans_exercised
    }

    /// Enumerable fault plans, summed over every surface.
    pub fn fault_plans_enumerable(&self) -> u64 {
        self.disk_fault_plans_enumerable + self.torn_plans_enumerable + self.net_plans_enumerable
    }

    /// Multi-line rendering for [`crate::report::render_summary`].
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "  crash points   : {}/{} exercised ({:.0}%)",
            self.crash_points_exercised,
            self.crash_points_enumerable,
            100.0 * self.crash_point_ratio()
        );
        let per_surface = [
            (
                "disk",
                self.disk_fault_plans_exercised,
                self.disk_fault_plans_enumerable,
            ),
            (
                "torn",
                self.torn_plans_exercised,
                self.torn_plans_enumerable,
            ),
            ("net", self.net_plans_exercised, self.net_plans_enumerable),
        ];
        let surfaces: Vec<String> = per_surface
            .iter()
            .filter(|(_, _, total)| *total > 0)
            .map(|(name, done, total)| format!("{name} {done}/{total}"))
            .collect();
        let _ = writeln!(
            out,
            "  fault plans    : {}/{} exercised ({:.0}%){}",
            self.fault_plans_exercised(),
            self.fault_plans_enumerable(),
            100.0 * self.fault_plan_ratio(),
            if surfaces.is_empty() {
                String::new()
            } else {
                format!(" [{}]", surfaces.join(", "))
            }
        );
        let _ = writeln!(
            out,
            "  ghost traces   : {} distinct fingerprints",
            self.distinct_traces
        );
        out
    }
}

/// FNV-1a over a rendered ghost trace: the behavioural-coverage
/// fingerprint. Stable across runs (pure function of the bytes).
pub fn trace_fingerprint(trace: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in trace.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_counts_classify_and_render() {
        let mut c = OutcomeCounts::default();
        c.record(OutcomeKind::of(&ExecOutcome::Ok));
        c.record(OutcomeKind::of(&ExecOutcome::Ok));
        c.record(OutcomeKind::of(&ExecOutcome::Deadlock));
        c.record(OutcomeKind::of(&ExecOutcome::Bug("b".into())));
        assert_eq!(c.ok, 2);
        assert_eq!(c.total(), 4);
        assert_eq!(c.failures(), 2);
        assert_eq!(c.render(), "ok=2 bug=1 deadlock=1");
        assert_eq!(OutcomeCounts::default().render(), "(none)");
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 7, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.max(), 1000);
        assert_eq!(
            h.buckets(),
            vec![
                (0, 0, 1),
                (1, 1, 1),
                (2, 3, 2),
                (4, 7, 2),
                (8, 15, 1),
                (512, 1023, 1)
            ]
        );
        let r = h.render();
        assert!(r.contains("2-3:2"), "{r}");
        assert!(r.contains("max 1000"), "{r}");
        assert_eq!(Histogram::default().render(), "(empty)");
    }

    #[test]
    fn coverage_ratios_handle_empty_spaces() {
        let c = Coverage::default();
        assert_eq!(c.crash_point_ratio(), 1.0);
        assert_eq!(c.fault_plan_ratio(), 1.0);
        let c = Coverage {
            crash_points_exercised: 3,
            crash_points_enumerable: 12,
            torn_plans_exercised: 6,
            torn_plans_enumerable: 36,
            ..Coverage::default()
        };
        assert!((c.crash_point_ratio() - 0.25).abs() < 1e-12);
        assert!((c.fault_plan_ratio() - 6.0 / 36.0).abs() < 1e-12);
        let text = c.render();
        assert!(text.contains("3/12"), "{text}");
        assert!(text.contains("torn 6/36"), "{text}");
    }

    #[test]
    fn trace_fingerprints_distinguish_traces() {
        let a = trace_fingerprint("Invoke { jid: j0 }");
        let b = trace_fingerprint("Invoke { jid: j1 }");
        assert_ne!(a, b);
        assert_eq!(a, trace_fingerprint("Invoke { jid: j0 }"));
    }
}
