//! Exploration passes as first-class data.
//!
//! Historically a pass was a `&'static str` plus a `pass_rank` lookup;
//! [`Pass`] makes it an enum so configuration ([`PassSet`]), job keys,
//! telemetry, and report rendering all speak the same type. The rank
//! order is part of the determinism contract (DESIGN.md §10): job keys
//! are `(pass.rank(), index)` and the canonical counterexample is the
//! minimum key, so variant order here is load-bearing.

use std::fmt;
use std::str::FromStr;

/// One exploration pass, in canonical rank order.
///
/// The rank table (the major component of the job key — lower rank wins
/// counterexample selection, see DESIGN.md §10):
///
/// | rank | variant            | wire name            | phase    |
/// |-----:|--------------------|----------------------|----------|
/// |    0 | `Dfs`              | `dfs`                | schedule |
/// |    1 | `Random`           | `random`             | schedule |
/// |    2 | `CrashSweepBase`   | `crash-sweep-base`   | probe    |
/// |    3 | `CrashSweep`       | `crash-sweep`        | sweep    |
/// |    4 | `NestedCrash`      | `nested-crash-sweep` | sweep    |
/// |    5 | `RandomCrashProbe` | `random-crash-probe` | probe    |
/// |    6 | `RandomCrash`      | `random-crash`       | sweep    |
/// |    7 | `DiskFault`        | `disk-fault-sweep`   | sweep    |
/// |    8 | `TornWrite`        | `torn-write-sweep`   | sweep    |
/// |    9 | `NetFault`         | `net-fault-sweep`    | sweep    |
///
/// Schedule-phase passes explore thread interleavings with no injected
/// faults; sweep-phase passes inject crashes/faults at named
/// coordinates. The distinction matters to the shrinker: schedule-phase
/// counterexamples minimize their DFS prefix, sweep-phase ones minimize
/// injection coordinates (DESIGN.md §16).
///
/// `CrashSweepBase` and `RandomCrashProbe` are internal probe sub-passes
/// (the fault-free executions that measure a schedule's horizon before
/// the real sweep); they are not meant to be configured directly but
/// appear in reports and telemetry when their parent pass runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Pass {
    /// Bounded exhaustive DFS over schedules.
    #[default]
    Dfs,
    /// Uniform random schedule sampling.
    Random,
    /// Fault-free probe run that measures the crash-sweep horizon.
    CrashSweepBase,
    /// One crash injected at every step of the canonical schedule.
    CrashSweep,
    /// A second crash during recovery, for every first-crash point.
    NestedCrash,
    /// Fault-free probe of one random schedule (horizon measurement).
    RandomCrashProbe,
    /// A crash at a random point of a random schedule.
    RandomCrash,
    /// Transient/permanent disk-fault plans.
    DiskFault,
    /// Torn-write (partial buffer persistence) plans.
    TornWrite,
    /// Network drop/duplicate/delay plans.
    NetFault,
}

impl Pass {
    /// All passes in rank order.
    pub const ALL: [Pass; 10] = [
        Pass::Dfs,
        Pass::Random,
        Pass::CrashSweepBase,
        Pass::CrashSweep,
        Pass::NestedCrash,
        Pass::RandomCrashProbe,
        Pass::RandomCrash,
        Pass::DiskFault,
        Pass::TornWrite,
        Pass::NetFault,
    ];

    /// Canonical rank: the major component of the job key.
    pub fn rank(self) -> u8 {
        match self {
            Pass::Dfs => 0,
            Pass::Random => 1,
            Pass::CrashSweepBase => 2,
            Pass::CrashSweep => 3,
            Pass::NestedCrash => 4,
            Pass::RandomCrashProbe => 5,
            Pass::RandomCrash => 6,
            Pass::DiskFault => 7,
            Pass::TornWrite => 8,
            Pass::NetFault => 9,
        }
    }

    /// Stable wire/display name (matches the historical strings, so
    /// telemetry streams and rendered reports are unchanged).
    pub fn name(self) -> &'static str {
        match self {
            Pass::Dfs => "dfs",
            Pass::Random => "random",
            Pass::CrashSweepBase => "crash-sweep-base",
            Pass::CrashSweep => "crash-sweep",
            Pass::NestedCrash => "nested-crash-sweep",
            Pass::RandomCrashProbe => "random-crash-probe",
            Pass::RandomCrash => "random-crash",
            Pass::DiskFault => "disk-fault-sweep",
            Pass::TornWrite => "torn-write-sweep",
            Pass::NetFault => "net-fault-sweep",
        }
    }
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `pad` honours width/alignment ({:<20} in report tables).
        f.pad(self.name())
    }
}

impl FromStr for Pass {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Pass::ALL
            .into_iter()
            .find(|p| p.name() == s)
            .ok_or_else(|| format!("unknown pass {s:?}"))
    }
}

impl PartialEq<&str> for Pass {
    fn eq(&self, other: &&str) -> bool {
        self.name() == *other
    }
}

impl PartialEq<Pass> for &str {
    fn eq(&self, other: &Pass) -> bool {
        *self == other.name()
    }
}

/// A set of passes (bitset over ranks).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PassSet(u16);

impl PassSet {
    /// The empty set.
    pub const fn empty() -> Self {
        PassSet(0)
    }

    /// Every pass.
    pub fn all() -> Self {
        Pass::ALL.into_iter().collect()
    }

    /// The default exploration pipeline: DFS, random sampling, crash
    /// sweep with nesting, and random crashes — fault sweeps opt in.
    pub fn defaults() -> Self {
        [
            Pass::Dfs,
            Pass::Random,
            Pass::CrashSweep,
            Pass::NestedCrash,
            Pass::RandomCrash,
        ]
        .into_iter()
        .collect()
    }

    /// Whether `p` is in the set.
    pub fn contains(self, p: Pass) -> bool {
        self.0 & (1 << p.rank()) != 0
    }

    /// Adds a pass.
    pub fn insert(&mut self, p: Pass) {
        self.0 |= 1 << p.rank();
    }

    /// Removes a pass.
    pub fn remove(&mut self, p: Pass) {
        self.0 &= !(1 << p.rank());
    }

    /// Number of passes in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates members in rank order.
    pub fn iter(self) -> impl Iterator<Item = Pass> {
        Pass::ALL.into_iter().filter(move |p| self.contains(*p))
    }
}

impl FromIterator<Pass> for PassSet {
    fn from_iter<I: IntoIterator<Item = Pass>>(iter: I) -> Self {
        let mut s = PassSet::empty();
        for p in iter {
            s.insert(p);
        }
        s
    }
}

impl fmt::Debug for PassSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_positional() {
        for (i, p) in Pass::ALL.into_iter().enumerate() {
            assert_eq!(p.rank() as usize, i);
        }
    }

    #[test]
    fn names_round_trip() {
        for p in Pass::ALL {
            assert_eq!(p.name().parse::<Pass>().unwrap(), p);
        }
        assert!("bogus".parse::<Pass>().is_err());
    }

    #[test]
    fn display_pads() {
        assert_eq!(format!("{:<10}|", Pass::Dfs), "dfs       |");
        assert_eq!(Pass::CrashSweep, "crash-sweep");
    }

    #[test]
    fn set_operations() {
        let mut s = PassSet::defaults();
        assert!(s.contains(Pass::Dfs));
        assert!(!s.contains(Pass::DiskFault));
        s.insert(Pass::DiskFault);
        s.remove(Pass::NestedCrash);
        assert!(s.contains(Pass::DiskFault));
        assert!(!s.contains(Pass::NestedCrash));
        let names: Vec<_> = s.iter().map(Pass::name).collect();
        assert_eq!(
            names,
            [
                "dfs",
                "random",
                "crash-sweep",
                "random-crash",
                "disk-fault-sweep"
            ]
        );
    }
}
