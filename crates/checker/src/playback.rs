//! Concrete playback: compile a shrunk counterexample into a
//! self-contained Rust test (DESIGN.md §16).
//!
//! A counterexample report is evidence you have to trust; a generated
//! test that *re-derives* the failure on every `cargo test` is evidence
//! you can re-check. [`emit_test`] renders a [`Counterexample`] as a
//! standalone integration-test source file: it looks the scenario up by
//! registry name, rebuilds the pinned replay coordinates (pass, seed,
//! schedule prefix, crash points, [`FaultPlan`]), replays them through
//! the public [`Scenario::replay`](crate::Scenario::replay) entry
//! point, and asserts both that the run fails and that its
//! [`failure_fingerprint`] matches
//! the recorded one. While the bug is present the test passes (the
//! certificate holds); once the code is fixed the replay stops failing
//! and the test trips — telling you the reproducer is stale and can be
//! deleted.
//!
//! The emitted file is valid as a workspace integration test: drop it
//! into `tests/` (the CI `playback` job does exactly that) and run
//! `cargo test --test <name>`. Everything it needs is re-stated in the
//! file — no side-channel fixture, no serialized blob.

use crate::explore::Counterexample;
use crate::pass::Pass;
use crate::shrink::failure_fingerprint;
use goose_rt::fault::{FaultPlan, NetFault, TornMode};
use std::fmt::Write as _;

/// The Rust path of a [`Pass`] variant, for codegen.
fn pass_variant(pass: Pass) -> &'static str {
    match pass {
        Pass::Dfs => "Pass::Dfs",
        Pass::Random => "Pass::Random",
        Pass::CrashSweepBase => "Pass::CrashSweepBase",
        Pass::CrashSweep => "Pass::CrashSweep",
        Pass::NestedCrash => "Pass::NestedCrash",
        Pass::RandomCrashProbe => "Pass::RandomCrashProbe",
        Pass::RandomCrash => "Pass::RandomCrash",
        Pass::DiskFault => "Pass::DiskFault",
        Pass::TornWrite => "Pass::TornWrite",
        Pass::NetFault => "Pass::NetFault",
    }
}

/// Renders the statements that rebuild a [`FaultPlan`] into `name`.
fn fault_plan_stmts(faults: &FaultPlan, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "    let mut {name} = FaultPlan::default();");
    for p in &faults.transient_io {
        let _ = writeln!(out, "    {name}.transient_io.insert({p});");
    }
    // Fully-qualified variant paths keep the emitted imports identical
    // whether or not a fault family is present (no unused-import lint).
    match faults.torn {
        None => {}
        Some(TornMode::KeepAll) => {
            let _ = writeln!(
                out,
                "    {name}.torn = Some(perennial_checker::TornMode::KeepAll);"
            );
        }
        Some(TornMode::KeepNone) => {
            let _ = writeln!(
                out,
                "    {name}.torn = Some(perennial_checker::TornMode::KeepNone);"
            );
        }
        Some(TornMode::Subset(s)) => {
            let _ = writeln!(
                out,
                "    {name}.torn = Some(perennial_checker::TornMode::Subset({s}));"
            );
        }
    }
    if let Some((d, g)) = faults.disk_fail {
        let _ = writeln!(out, "    {name}.disk_fail = Some(({d}, {g}));");
    }
    for (i, f) in &faults.net {
        let variant = match f {
            NetFault::Drop => "perennial_checker::NetFault::Drop",
            NetFault::Duplicate => "perennial_checker::NetFault::Duplicate",
            NetFault::Delay => "perennial_checker::NetFault::Delay",
        };
        let _ = writeln!(out, "    {name}.net.insert({i}, {variant});");
    }
    out
}

/// A registry name sanitized into a Rust identifier:
/// `patterns/mutant/wal-skip-commit-flush` →
/// `patterns_mutant_wal_skip_commit_flush`.
pub fn sanitize_ident(name: &str) -> String {
    let mut id: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if id.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        id.insert(0, '_');
    }
    id
}

/// The file name [`emit_test`]'s output should be saved under
/// (`replay_<sanitized scenario name>.rs`) — also the `cargo test
/// --test` target name, minus the extension.
pub fn test_file_name(scenario_name: &str) -> String {
    format!("replay_{}.rs", sanitize_ident(scenario_name))
}

/// Renders a self-contained integration-test source file that replays
/// `cx` against the named scenario and pins its failure fingerprint.
///
/// The generated test resolves the scenario from the workspace facade's
/// combined registry (`perennial_suite::all_scenarios()` +
/// `all_mutant_scenarios()`), exactly like the `scan` driver, so any
/// name `scan` can check, the emitted test can replay.
pub fn emit_test(scenario_name: &str, cx: &Counterexample, max_steps: u64) -> String {
    let ident = sanitize_ident(scenario_name);
    let fp = failure_fingerprint(&cx.outcome);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "//! Auto-generated by `scan --shrink --emit-test`; do not edit.\n\
         //!\n\
         //! Scenario    : {scenario_name}\n\
         //! Found by    : {} pass, execution #{}\n\
         //! Fingerprint : {:#018x} (outcome kind + message)\n\
         //!\n\
         //! A concrete, deterministic replay of a shrunk counterexample\n\
         //! (DESIGN.md \u{a7}16). The test passes while the failure still\n\
         //! reproduces; once the underlying bug is fixed it trips, which\n\
         //! means this file is stale and should be deleted.",
        cx.pass, cx.index, fp,
    );
    out.push('\n');
    out.push_str(
        "use perennial_checker::shrink::failure_fingerprint;\n\
         use perennial_checker::{CheckConfig, Counterexample, ExecOutcome, FaultPlan, Pass};\n\n",
    );
    let _ = writeln!(out, "#[test]");
    let _ = writeln!(out, "fn replay_{ident}() {{");
    let _ = writeln!(
        out,
        "    let mut registry = perennial_suite::all_scenarios();\n\
         \x20   registry.extend(perennial_suite::all_mutant_scenarios());\n\
         \x20   let scenario = registry\n\
         \x20       .get(\"{scenario_name}\")\n\
         \x20       .expect(\"scenario present in the workspace registry\");"
    );
    out.push_str(&fault_plan_stmts(&cx.faults, "faults"));
    let _ = writeln!(
        out,
        "    let cx = Counterexample {{\n\
         \x20       // Placeholder: replay ignores the recorded outcome and\n\
         \x20       // recomputes it from the pinned coordinates below.\n\
         \x20       outcome: ExecOutcome::Ok,\n\
         \x20       pass: {},\n\
         \x20       index: {},\n\
         \x20       seed: {:#018x},\n\
         \x20       schedule_prefix: vec!{:?},\n\
         \x20       crash_points: vec!{:?},\n\
         \x20       clamped: Vec::new(),\n\
         \x20       faults,\n\
         \x20       trace: String::new(),\n\
         \x20       timeline: None,\n\
         \x20   }};",
        pass_variant(cx.pass),
        cx.index,
        cx.seed,
        cx.schedule_prefix,
        cx.crash_points,
    );
    let _ = writeln!(
        out,
        "    let config = CheckConfig::builder().max_steps({max_steps}).build();\n\
         \x20   let (outcome, trace) = scenario.replay(&cx, &config);\n\
         \x20   assert!(\n\
         \x20       outcome.is_failure(),\n\
         \x20       \"pinned counterexample no longer reproduces (bug fixed?); \\\n\
         \x20        delete this file\\n{{trace}}\"\n\
         \x20   );\n\
         \x20   assert_eq!(\n\
         \x20       failure_fingerprint(&outcome),\n\
         \x20       {fp:#018x},\n\
         \x20       \"replay failed, but with a different failure than the pinned one: {{outcome:?}}\"\n\
         \x20   );\n\
         }}"
    );
    out
}
