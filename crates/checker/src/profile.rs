//! Deterministic cost profiler: where a check spent its budget.
//!
//! A [`Profile`] answers the questions a campaign owner actually asks
//! when the ROADMAP's "as fast as the hardware allows" goal slips:
//! which *pass* burned the executions and steps, which *resource* the
//! schedules fought over, what the *strategy* did with its feedback,
//! and whether the *workers* were actually busy. It is aggregated from
//! the same canonical job outcomes the report statistics come from —
//! inside the cutoff-filtered loop of `explore::check` — so every count
//! obeys the PR-1 determinism contract: identical at every worker
//! count, and unchanged by enabling the profiler itself
//! (DESIGN.md §15).
//!
//! Determinism boundary: the only wall-clock data in a profile are the
//! per-pass `busy_time_us` attribution and the [`WorkerUtilization`]
//! summary, and every such field is named by a
//! [`TIMING_KEYS`](crate::telemetry::TIMING_KEYS) member so
//! [`strip_timing`](crate::telemetry::strip_timing) over
//! [`profile_to_json`] yields the canonical, machine-independent form
//! (pinned by `tests/profile.rs`).
//!
//! The profile is a **pure side channel**: [`CheckReport::profile`](crate::CheckReport)
//! (see [`crate::CheckReport`]) is excluded from campaign JSON and
//! report fingerprints exactly like a counterexample's timeline, and
//! building it reads counters the explorer already collected — it
//! schedules no execution and emits no telemetry.

use crate::pass::Pass;
use crate::strategy::{CoverageIntrospection, DepTrace};
use goose_rt::sched::{res, Tid};
use serde_json::{json, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::time::Duration;

/// Contended-resource rows kept after ranking (the hotspot table stays
/// readable; the dropped tail is noted in the render).
const RESOURCE_TOP: usize = 12;

/// See `telemetry::hex64`: 64-bit ids go into JSON as fixed-width hex
/// strings so they survive the shim's f64 numbers.
fn hex64(v: u64) -> String {
    format!("{v:#018x}")
}

/// Human name of a resource id's class (the high byte of the
/// `goose_rt::sched::res` naming scheme).
pub fn resource_kind(id: u64) -> &'static str {
    const MASK: u64 = 0xff << 56;
    match id & MASK {
        x if x == res::LOCK => "lock",
        x if x == res::HEAP => "heap",
        x if x == res::RAND => "rand",
        x if x == res::ALLOC => "alloc",
        x if x == res::DISK => "disk",
        x if x == res::INSTANCE => "instance",
        x if x == res::GHOST => "ghost",
        x if x == res::DISK_FAULT_CTR => "disk-fault",
        x if x == res::NET_FAULT_CTR => "net-fault",
        _ => "other",
    }
}

/// Cost attribution of one pass: executions, steps, and model-op
/// counters summed over the pass's counted executions, plus the wall
/// time those executions took (`busy_us`, the lone timing field).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PassCost {
    /// Pass name.
    pub pass: String,
    /// Pass rank (canonical ordering key).
    pub rank: u8,
    /// Executions counted toward this pass.
    pub executions: u64,
    /// Scheduler grants summed over the pass's executions.
    pub steps: u64,
    /// Crashes injected by the pass.
    pub crashes: u64,
    /// Times a thread parked on a held model lock.
    pub lock_blocks: u64,
    /// Disk operations consulted against the fault plan.
    pub disk_ops: u64,
    /// Network sends consulted against the fault plan.
    pub net_msgs: u64,
    /// Block reads + writes + flushes + net sends + net receives (the
    /// `SchedStats` model-op accounting, folded).
    pub model_ops: u64,
    /// Summed wall time of the pass's executions, µs (timing-only).
    pub busy_us: u64,
}

/// One contended resource: how often schedules fought over it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResourceRow {
    /// Opaque resource id (`goose_rt::sched::res` naming scheme).
    pub resource: u64,
    /// Resource class (`"lock"`, `"disk"`, `"instance"`, ...).
    pub kind: &'static str,
    /// Times a thread parked on it (model locks only).
    pub lock_blocks: u64,
    /// Dependency-footprint collisions: granted steps that touched the
    /// resource in executions where ≥2 threads accessed it with a
    /// write on some side (DPOR-tracked runs only — the same footprints
    /// the sleep sets are built from).
    pub collisions: u64,
    /// Sleep-set prunes credited to the resource (the commuting steps'
    /// footprints).
    pub prunes: u64,
}

impl ResourceRow {
    /// Ranking weight for the hotspot table.
    fn weight(&self) -> u64 {
        self.lock_blocks + self.collisions + self.prunes
    }
}

/// What the schedule-phase strategy did with its feedback.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StrategyProfile {
    /// Strategy name (`exhaustive`, `dpor`, `coverage`).
    pub strategy: String,
    /// Schedules pruned as redundant (sleep-set hits).
    pub pruned: u64,
    /// Executions whose schedule was re-seeded by coverage feedback.
    pub coverage_guided: u64,
    /// Prunes attributed per resource, in resource order.
    pub prunes_by_resource: Vec<(u64, u64)>,
    /// Corpus bookkeeping (coverage-guided sessions only).
    pub coverage: Option<CoverageIntrospection>,
}

/// Worker-pool utilization: summed execution wall time against the
/// pool's wall-clock capacity. Timing-only — machines and worker counts
/// change these numbers freely, which is why they live apart from the
/// deterministic tables.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerUtilization {
    /// Worker-thread count of the pool.
    pub workers: u64,
    /// Summed wall time of counted executions, µs.
    pub busy_us: u64,
    /// Wall time of the whole check, µs.
    pub wall_us: u64,
}

impl WorkerUtilization {
    /// Fraction of the pool's wall-clock capacity spent executing.
    pub fn utilization(&self) -> f64 {
        if self.workers == 0 || self.wall_us == 0 {
            return 0.0;
        }
        self.busy_us as f64 / (self.workers as f64 * self.wall_us as f64)
    }
}

/// A check's cost profile. See the module docs for the determinism
/// contract; construct via [`CheckConfig::profile`](crate::CheckConfig)
/// and render with [`render_profile`] or [`profile_to_json`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    /// Scenario name the profile belongs to.
    pub scenario: String,
    /// Per-pass cost attribution, in canonical rank order.
    pub passes: Vec<PassCost>,
    /// Top contended resources, ranked by blocks + collisions + prunes
    /// (ties broken by resource id, so the order is deterministic).
    pub resources: Vec<ResourceRow>,
    /// Contended resources dropped by the top-N cut (never silently:
    /// the render says what it hid).
    pub resources_dropped: u64,
    /// What the schedule-phase strategy did with its feedback.
    pub strategy: StrategyProfile,
    /// Worker-pool utilization (timing-only).
    pub workers: WorkerUtilization,
}

/// One counted execution's contribution to the profile.
#[derive(Debug, Clone, Copy)]
pub struct ExecCost {
    /// Pass the execution ran under.
    pub pass: Pass,
    /// The pass's rank.
    pub rank: u8,
    /// Scheduler grants consumed.
    pub steps: u64,
    /// Crashes injected.
    pub crashes: u64,
    /// Times a thread parked on a held model lock.
    pub lock_blocks: u64,
    /// Disk operations consulted against the fault plan.
    pub disk_ops: u64,
    /// Network sends consulted against the fault plan.
    pub net_msgs: u64,
    /// Folded model-op count (reads + writes + flushes + sends + recvs).
    pub model_ops: u64,
    /// Wall time of the execution, µs (timing-only).
    pub duration_us: u64,
}

/// Accumulates a [`Profile`] from canonical job outcomes. Driven by
/// `explore::check` inside the same cutoff-filtered aggregation loop
/// that builds the report statistics, so worker-count independence is
/// inherited rather than re-proved.
#[derive(Debug, Default)]
pub struct ProfileBuilder {
    per_pass: BTreeMap<(u8, Pass), PassCost>,
    resources: BTreeMap<u64, ResourceRow>,
    busy_us: u64,
}

impl ProfileBuilder {
    /// Folds one counted execution into the per-pass table.
    pub fn record_exec(&mut self, c: &ExecCost) {
        let row = self
            .per_pass
            .entry((c.rank, c.pass))
            .or_insert_with(|| PassCost {
                pass: c.pass.name().to_string(),
                rank: c.rank,
                ..PassCost::default()
            });
        row.executions += 1;
        row.steps += c.steps;
        row.crashes += c.crashes;
        row.lock_blocks += c.lock_blocks;
        row.disk_ops += c.disk_ops;
        row.net_msgs += c.net_msgs;
        row.model_ops += c.model_ops;
        row.busy_us += c.duration_us;
        self.busy_us += c.duration_us;
    }

    fn resource(&mut self, id: u64) -> &mut ResourceRow {
        self.resources.entry(id).or_insert_with(|| ResourceRow {
            resource: id,
            kind: resource_kind(id),
            ..ResourceRow::default()
        })
    }

    /// Folds one execution's per-lock contention counts
    /// (`ModelRt::lock_block_profile`).
    pub fn record_lock_profile(&mut self, profile: &[(u64, u64)]) {
        for (id, blocks) in profile {
            self.resource(*id).lock_blocks += blocks;
        }
    }

    /// Folds one DPOR-tracked execution's dependency footprints into
    /// the collision table: a resource collides when at least two
    /// threads touched it with a write on some side — exactly the
    /// non-commutable overlaps the sleep sets reason about — and every
    /// granted step touching such a resource counts as one collision.
    pub fn record_deps(&mut self, decisions: &[(usize, usize)], deps: &DepTrace) {
        let mut acc: BTreeMap<u64, (BTreeSet<Tid>, u64, bool)> = BTreeMap::new();
        for (d, accesses) in deps.accesses.iter().enumerate() {
            let granted = deps
                .runnables
                .get(d)
                .zip(decisions.get(d))
                .and_then(|(runnable, (choice, _))| runnable.get(*choice))
                .copied();
            let Some(tid) = granted else { continue };
            for a in accesses {
                let e = acc
                    .entry(a.resource)
                    .or_insert_with(|| (BTreeSet::new(), 0, false));
                e.0.insert(tid);
                e.1 += 1;
                e.2 |= a.write;
            }
        }
        for (id, (tids, touches, wrote)) in acc {
            if tids.len() >= 2 && wrote {
                self.resource(id).collisions += touches;
            }
        }
    }

    /// Finishes the profile: merges the strategy's per-resource prune
    /// attribution into the contention table, ranks it, and attaches
    /// the worker-utilization summary.
    pub fn finish(
        mut self,
        scenario: &str,
        strategy: StrategyProfile,
        workers: u64,
        wall: Duration,
    ) -> Profile {
        for (id, prunes) in &strategy.prunes_by_resource {
            self.resource(*id).prunes += prunes;
        }
        let mut rows: Vec<ResourceRow> = self.resources.into_values().collect();
        rows.sort_by(|a, b| {
            b.weight()
                .cmp(&a.weight())
                .then(a.resource.cmp(&b.resource))
        });
        let dropped = rows.len().saturating_sub(RESOURCE_TOP) as u64;
        rows.truncate(RESOURCE_TOP);
        Profile {
            scenario: scenario.to_string(),
            passes: self.per_pass.into_values().collect(),
            resources: rows,
            resources_dropped: dropped,
            strategy,
            workers: WorkerUtilization {
                workers,
                busy_us: self.busy_us,
                wall_us: wall.as_micros() as u64,
            },
        }
    }
}

/// Serializes a profile. Deterministic counts are plain fields; every
/// wall-clock field is named by a `TIMING_KEYS` member (`busy_time_us`,
/// `duration_us`, `utilization`), so `strip_timing` produces the
/// canonical machine-independent form.
pub fn profile_to_json(p: &Profile) -> Value {
    json!({
        "scenario": p.scenario,
        "passes": p
            .passes
            .iter()
            .map(|pc| {
                json!({
                    "pass": pc.pass,
                    "rank": pc.rank,
                    "executions": pc.executions,
                    "steps": pc.steps,
                    "crashes": pc.crashes,
                    "lock_blocks": pc.lock_blocks,
                    "disk_ops": pc.disk_ops,
                    "net_msgs": pc.net_msgs,
                    "model_ops": pc.model_ops,
                    "busy_time_us": pc.busy_us,
                })
            })
            .collect::<Vec<Value>>(),
        "resources": p
            .resources
            .iter()
            .map(|r| {
                json!({
                    "resource": hex64(r.resource),
                    "kind": r.kind,
                    "lock_blocks": r.lock_blocks,
                    "collisions": r.collisions,
                    "prunes": r.prunes,
                })
            })
            .collect::<Vec<Value>>(),
        "resources_dropped": p.resources_dropped,
        "strategy": {
            "strategy": p.strategy.strategy,
            "pruned": p.strategy.pruned,
            "coverage_guided": p.strategy.coverage_guided,
            "prunes_by_resource": p
                .strategy
                .prunes_by_resource
                .iter()
                .map(|(id, n)| json!([hex64(*id), n]))
                .collect::<Vec<Value>>(),
            "coverage": p.strategy.coverage.map(|c| {
                json!({
                    "corpus_hits": c.corpus_hits,
                    "corpus_evictions": c.corpus_evictions,
                    "saturated_waves": c.saturated_waves,
                })
            }),
        },
        "workers": {
            "workers": p.workers.workers,
            "busy_time_us": p.workers.busy_us,
            "duration_us": p.workers.wall_us,
            "utilization": p.workers.utilization(),
        },
    })
}

fn pct(part: u64, whole: u64) -> String {
    if whole == 0 {
        "  -".to_string()
    } else {
        format!("{:>3.0}%", 100.0 * part as f64 / whole as f64)
    }
}

fn bar(part: u64, whole: u64, width: usize) -> String {
    if whole == 0 {
        return String::new();
    }
    let n = ((part as f64 / whole as f64) * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

/// Renders the ASCII hotspot view.
pub fn render_profile(p: &Profile) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "PROFILE — {} (strategy {})",
        p.scenario, p.strategy.strategy
    )
    .unwrap();

    let total_steps: u64 = p.passes.iter().map(|pc| pc.steps).sum();
    writeln!(out, "  per-pass cost (share of steps):").unwrap();
    for pc in &p.passes {
        writeln!(
            out,
            "    {:<18} {:>7} execs {:>10} steps  {} {}  ({} blocks, {} disk ops, {} net msgs, {} model ops, {:.3}s busy)",
            pc.pass,
            pc.executions,
            pc.steps,
            pct(pc.steps, total_steps),
            bar(pc.steps, total_steps, 24),
            pc.lock_blocks,
            pc.disk_ops,
            pc.net_msgs,
            pc.model_ops,
            pc.busy_us as f64 / 1e6,
        )
        .unwrap();
    }

    if !p.resources.is_empty() {
        writeln!(out, "  contended resources (top {}):", p.resources.len()).unwrap();
        for r in &p.resources {
            writeln!(
                out,
                "    {:<10} {}  {:>6} blocks  {:>6} collisions  {:>6} prunes",
                r.kind,
                hex64(r.resource),
                r.lock_blocks,
                r.collisions,
                r.prunes,
            )
            .unwrap();
        }
        if p.resources_dropped > 0 {
            writeln!(out, "    (+{} more below the cut)", p.resources_dropped).unwrap();
        }
    }

    writeln!(
        out,
        "  strategy: {} pruned, {} coverage-guided",
        p.strategy.pruned, p.strategy.coverage_guided
    )
    .unwrap();
    if let Some(c) = &p.strategy.coverage {
        writeln!(
            out,
            "    corpus: {} hits, {} evictions, {} saturated waves",
            c.corpus_hits, c.corpus_evictions, c.saturated_waves
        )
        .unwrap();
    }

    writeln!(
        out,
        "  workers: {} × {:.3}s wall, {:.3}s busy — {:.0}% utilized",
        p.workers.workers,
        p.workers.wall_us as f64 / 1e6,
        p.workers.busy_us as f64 / 1e6,
        100.0 * p.workers.utilization(),
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use goose_rt::sched::StepAccess;

    fn cost(pass: Pass, steps: u64, blocks: u64) -> ExecCost {
        ExecCost {
            pass,
            rank: pass.rank(),
            steps,
            crashes: 0,
            lock_blocks: blocks,
            disk_ops: 0,
            net_msgs: 0,
            model_ops: 0,
            duration_us: 10,
        }
    }

    #[test]
    fn builder_attributes_costs_per_pass_in_rank_order() {
        let mut b = ProfileBuilder::default();
        b.record_exec(&cost(Pass::Random, 5, 1));
        b.record_exec(&cost(Pass::Dfs, 10, 2));
        b.record_exec(&cost(Pass::Dfs, 10, 0));
        let p = b.finish(
            "s",
            StrategyProfile::default(),
            4,
            Duration::from_micros(100),
        );
        assert_eq!(p.passes.len(), 2);
        assert_eq!(p.passes[0].pass, "dfs");
        assert_eq!(p.passes[0].executions, 2);
        assert_eq!(p.passes[0].steps, 20);
        assert_eq!(p.passes[0].lock_blocks, 2);
        assert_eq!(p.passes[1].pass, "random");
        assert_eq!(p.workers.busy_us, 30);
        assert_eq!(p.workers.workers, 4);
    }

    #[test]
    fn collisions_require_two_threads_and_a_write() {
        let shared = res::LOCK | 7;
        let private = res::HEAP | 9;
        let read_only = res::INSTANCE | 3;
        let deps = DepTrace {
            runnables: vec![vec![0, 1], vec![0, 1], vec![0, 1]],
            accesses: vec![
                vec![StepAccess::write(shared), StepAccess::read(read_only)],
                vec![StepAccess::read(shared), StepAccess::read(read_only)],
                vec![StepAccess::write(private)],
            ],
        };
        // Grants: thread 0, thread 1, thread 0.
        let decisions = vec![(0, 2), (1, 2), (0, 2)];
        let mut b = ProfileBuilder::default();
        b.record_deps(&decisions, &deps);
        let p = b.finish("s", StrategyProfile::default(), 1, Duration::ZERO);
        assert_eq!(p.resources.len(), 1, "{:?}", p.resources);
        assert_eq!(p.resources[0].resource, shared);
        assert_eq!(p.resources[0].kind, "lock");
        assert_eq!(p.resources[0].collisions, 2, "both touching grants count");
    }

    #[test]
    fn resource_table_ranks_by_weight_and_notes_the_dropped_tail() {
        let mut b = ProfileBuilder::default();
        let rows: Vec<(u64, u64)> = (0..20).map(|i| (res::LOCK | i, 20 - i)).collect();
        b.record_lock_profile(&rows);
        let p = b.finish("s", StrategyProfile::default(), 1, Duration::ZERO);
        assert_eq!(p.resources.len(), RESOURCE_TOP);
        assert_eq!(p.resources_dropped, 20 - RESOURCE_TOP as u64);
        assert_eq!(p.resources[0].lock_blocks, 20, "heaviest first");
        let text = render_profile(&p);
        assert!(text.contains("more below the cut"), "{text}");
    }

    #[test]
    fn profile_json_hides_all_timing_under_timing_keys() {
        let mut b = ProfileBuilder::default();
        b.record_exec(&cost(Pass::Dfs, 10, 1));
        let p = b.finish(
            "s",
            StrategyProfile {
                strategy: "exhaustive".to_string(),
                ..StrategyProfile::default()
            },
            8,
            Duration::from_micros(500),
        );
        let v = profile_to_json(&p);
        let stripped = crate::telemetry::strip_timing(&v);
        let text = serde_json::to_string(&stripped).unwrap();
        for key in ["busy_time_us", "utilization", "duration_us"] {
            assert!(!text.contains(key), "{key} survived strip_timing: {text}");
        }
        assert!(text.contains("\"executions\""), "{text}");
    }

    #[test]
    fn resource_kind_names_every_class() {
        assert_eq!(resource_kind(res::LOCK | 1), "lock");
        assert_eq!(resource_kind(res::DISK | 42), "disk");
        assert_eq!(resource_kind(res::INSTANCE), "instance");
        assert_eq!(resource_kind(res::GHOST | 2), "ghost");
        assert_eq!(resource_kind(res::NET_FAULT_CTR | 1), "net-fault");
        assert_eq!(resource_kind(0), "other");
    }
}
