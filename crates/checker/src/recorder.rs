//! A thread-safe recorder of observable histories, feeding the
//! standalone linearizability checker.

use crate::linearize::HistOp;
use parking_lot::Mutex;
use perennial_spec::Jid;
use std::fmt::Debug;

/// Index returned by [`Recorder::invoke`] for an op the recorder
/// dropped because its capacity was reached. [`Recorder::finish`]
/// ignores it, so callers can thread it through unconditionally.
pub const DROPPED: usize = usize::MAX;

struct Inner<Op, Ret> {
    clock: u64,
    ops: Vec<HistOp<Op, Ret>>,
    dropped: u64,
}

/// Records invocations and responses with a global logical clock.
///
/// An optional capacity bounds the history: once `capacity` ops have
/// been invoked, further invocations still advance the clock (so the
/// recorded ops keep their real-time order) but are not stored —
/// [`Recorder::invoke`] returns the [`DROPPED`] sentinel and
/// [`Recorder::dropped`] counts them. The retained prefix is a valid
/// history on its own: every kept response belongs to a kept
/// invocation, so the linearizability checker can still run over it.
pub struct Recorder<Op, Ret> {
    inner: Mutex<Inner<Op, Ret>>,
    capacity: Option<usize>,
}

impl<Op: Clone + Debug, Ret: Clone + Debug> Default for Recorder<Op, Ret> {
    fn default() -> Self {
        Recorder {
            inner: Mutex::new(Inner {
                clock: 0,
                ops: Vec::new(),
                dropped: 0,
            }),
            capacity: None,
        }
    }
}

impl<Op: Clone + Debug, Ret: Clone + Debug> Recorder<Op, Ret> {
    /// Creates an empty recorder with unbounded capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a recorder that keeps at most `capacity` ops; later
    /// invocations are counted but not stored.
    pub fn with_capacity(capacity: usize) -> Self {
        Recorder {
            capacity: Some(capacity),
            ..Self::default()
        }
    }

    /// Records an invocation; returns the op's history index, or
    /// [`DROPPED`] if the capacity was already reached.
    pub fn invoke(&self, op: Op) -> usize {
        let mut g = self.inner.lock();
        g.clock += 1;
        let at = g.clock;
        if self.capacity.is_some_and(|cap| g.ops.len() >= cap) {
            g.dropped += 1;
            return DROPPED;
        }
        let idx = g.ops.len();
        g.ops.push(HistOp {
            jid: Jid(idx as u64),
            op,
            ret: None,
            invoked_at: at,
            returned_at: u64::MAX,
        });
        idx
    }

    /// Records the response for a previously invoked op. A [`DROPPED`]
    /// index is ignored (the invocation was never stored); the clock
    /// still advances so retained ops order correctly around it.
    pub fn finish(&self, idx: usize, ret: Ret) {
        let mut g = self.inner.lock();
        g.clock += 1;
        let at = g.clock;
        let Some(op) = g.ops.get_mut(idx) else {
            return;
        };
        op.ret = Some(ret);
        op.returned_at = at;
    }

    /// Snapshot of the recorded history.
    pub fn history(&self) -> Vec<HistOp<Op, Ret>> {
        self.inner.lock().ops.clone()
    }

    /// Number of ops recorded (excluding dropped ones).
    pub fn len(&self) -> usize {
        self.inner.lock().ops.len()
    }

    /// Whether no ops were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Invocations dropped because the capacity was reached.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linearize::{check_linearizable, Verdict};
    use perennial_spec::fixtures::{RegOp, RegSpec};

    #[test]
    fn events_are_ordered_by_the_global_clock() {
        let rec: Recorder<RegOp, Option<u64>> = Recorder::new();
        let w = rec.invoke(RegOp::Write(0, 5));
        rec.finish(w, None);
        let r = rec.invoke(RegOp::Read(0));
        rec.finish(r, Some(5));
        let hist = rec.history();
        assert_eq!(hist.len(), 2);
        // Strictly increasing clock across all four events, and the
        // write's response precedes the read's invocation.
        assert!(hist[0].invoked_at < hist[0].returned_at);
        assert!(hist[0].returned_at < hist[1].invoked_at);
        assert!(hist[1].invoked_at < hist[1].returned_at);
        assert_eq!(hist[0].jid, Jid(0));
        assert_eq!(hist[1].jid, Jid(1));
    }

    #[test]
    fn unfinished_op_has_open_interval() {
        let rec: Recorder<RegOp, Option<u64>> = Recorder::new();
        rec.invoke(RegOp::Write(0, 1));
        let hist = rec.history();
        assert_eq!(hist[0].ret, None);
        assert_eq!(hist[0].returned_at, u64::MAX);
    }

    #[test]
    fn capacity_truncates_and_counts_drops() {
        let rec: Recorder<RegOp, Option<u64>> = Recorder::with_capacity(2);
        let a = rec.invoke(RegOp::Write(0, 1));
        let b = rec.invoke(RegOp::Write(0, 2));
        let c = rec.invoke(RegOp::Write(0, 3));
        assert_eq!((a, b), (0, 1));
        assert_eq!(c, DROPPED);
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped(), 1);
        // Finishing a dropped op is a no-op, not a panic.
        rec.finish(c, None);
        rec.finish(a, None);
        rec.finish(b, None);
        let hist = rec.history();
        assert_eq!(hist.len(), 2);
        assert!(hist.iter().all(|op| op.ret.is_some()));
        // The clock kept advancing through the dropped events, so the
        // kept intervals still reflect real-time order.
        assert!(hist[0].invoked_at < hist[1].invoked_at);
        assert!(hist[1].invoked_at < hist[0].returned_at);
    }

    #[test]
    fn truncated_history_still_linearizes() {
        // Sequential write-then-read kept; a trailing op dropped. The
        // retained prefix must remain a checkable, linearizable history.
        let rec: Recorder<RegOp, Option<u64>> = Recorder::with_capacity(2);
        let w = rec.invoke(RegOp::Write(0, 5));
        rec.finish(w, None);
        let r = rec.invoke(RegOp::Read(0));
        rec.finish(r, Some(5));
        let d = rec.invoke(RegOp::Write(0, 9));
        rec.finish(d, None);
        assert_eq!(rec.dropped(), 1);
        let spec = RegSpec { size: 4 };
        assert_eq!(
            check_linearizable(&spec, &rec.history(), 10_000),
            Verdict::Linearizable
        );
    }
}
