//! A thread-safe recorder of observable histories, feeding the
//! standalone linearizability checker.

use crate::linearize::HistOp;
use parking_lot::Mutex;
use perennial_spec::Jid;
use std::fmt::Debug;

struct Inner<Op, Ret> {
    clock: u64,
    ops: Vec<HistOp<Op, Ret>>,
}

/// Records invocations and responses with a global logical clock.
pub struct Recorder<Op, Ret> {
    inner: Mutex<Inner<Op, Ret>>,
}

impl<Op: Clone + Debug, Ret: Clone + Debug> Default for Recorder<Op, Ret> {
    fn default() -> Self {
        Recorder {
            inner: Mutex::new(Inner {
                clock: 0,
                ops: Vec::new(),
            }),
        }
    }
}

impl<Op: Clone + Debug, Ret: Clone + Debug> Recorder<Op, Ret> {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an invocation; returns the op's history index.
    pub fn invoke(&self, op: Op) -> usize {
        let mut g = self.inner.lock();
        g.clock += 1;
        let at = g.clock;
        let idx = g.ops.len();
        g.ops.push(HistOp {
            jid: Jid(idx as u64),
            op,
            ret: None,
            invoked_at: at,
            returned_at: u64::MAX,
        });
        idx
    }

    /// Records the response for a previously invoked op.
    pub fn finish(&self, idx: usize, ret: Ret) {
        let mut g = self.inner.lock();
        g.clock += 1;
        let at = g.clock;
        let op = &mut g.ops[idx];
        op.ret = Some(ret);
        op.returned_at = at;
    }

    /// Snapshot of the recorded history.
    pub fn history(&self) -> Vec<HistOp<Op, Ret>> {
        self.inner.lock().ops.clone()
    }
}
