//! Human-readable counterexample reports and run summaries.
//!
//! When the checker rejects a system, the raw [`crate::Counterexample`]
//! carries a schedule prefix, crash points, and a ghost trace. This
//! module turns that into the report a developer actually reads: what
//! failed, where the crash was injected, the spec-level history up to
//! the failure, and how to replay it. For *passing* runs,
//! [`render_summary`] renders the deterministic run metrics — outcome
//! histogram, per-pass accounting, step/depth distributions, and
//! coverage ratios — from the [`CheckReport`].

use crate::explore::{CheckReport, ExecOutcome};
use std::fmt::Write as _;

/// Renders the throughput-and-per-pass footer shared by the failure
/// report and the summary: overall rate, then one line per pass.
fn render_pass_breakdown(report: &CheckReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Throughput      : {:.0} execs/s on {} workers ({:.3}s wall)",
        report.execs_per_sec,
        report.workers,
        report.wall_time.as_secs_f64()
    );
    if report.per_pass.is_empty() {
        return out;
    }
    let _ = writeln!(out, "Per pass        :");
    for pm in &report.per_pass {
        let mut extras = String::new();
        if pm.crashes > 0 {
            let _ = write!(extras, ", {} crashes", pm.crashes);
        }
        if pm.fault_plans > 0 {
            let _ = write!(extras, ", {} fault plans", pm.fault_plans);
        }
        if pm.pruned > 0 {
            let _ = write!(extras, ", {} pruned", pm.pruned);
        }
        if pm.coverage_guided > 0 {
            let _ = write!(extras, ", {} guided", pm.coverage_guided);
        }
        if pm.failures > 0 {
            let _ = write!(extras, ", {} FAILURES", pm.failures);
        }
        let _ = writeln!(
            out,
            "  {:<20} {:>6} execs, {:>8} steps{} ({:.3}s busy)",
            pm.pass,
            pm.executions,
            pm.steps,
            extras,
            pm.busy_time.as_secs_f64()
        );
    }
    out
}

/// Renders the full run summary — the passing-run counterpart of
/// [`render_failure`]. Always available (failing runs get the verdict
/// line plus the same metrics); printed by `scenario_smoke --summary`.
pub fn render_summary(report: &CheckReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: {}",
        if report.passed() { "PASS" } else { "FAIL" },
        report.name
    );
    let _ = writeln!(
        out,
        "Executions      : {} ({} steps total)",
        report.executions, report.total_steps
    );
    if !report.strategy.is_empty() {
        let mut extras = String::new();
        if report.pruned > 0 {
            let _ = write!(extras, " ({} schedules pruned)", report.pruned);
        }
        if report.coverage_guided > 0 {
            let _ = write!(extras, " ({} coverage-guided)", report.coverage_guided);
        }
        let _ = writeln!(out, "Strategy        : {}{}", report.strategy, extras);
    }
    if report.is_incomplete() {
        let _ = writeln!(out, "INCOMPLETE      : {}", report.incomplete.join("; "));
    }
    if let Some((i, n)) = report.shard {
        let _ = writeln!(out, "Shard           : {i}/{n}");
    }
    if report.replayed > 0 {
        let _ = writeln!(
            out,
            "Resumed         : {} executions replayed from the WAL",
            report.replayed
        );
    }
    let _ = writeln!(out, "Outcomes        : {}", report.outcomes.render());
    let _ = writeln!(out, "Steps/exec      : {}", report.steps_hist.render());
    let _ = writeln!(out, "Schedule depth  : {}", report.depth_hist.render());
    if report.disk_reads + report.disk_writes + report.disk_flushes > 0
        || report.net_sends + report.net_recvs > 0
    {
        let _ = writeln!(
            out,
            "Model ops       : disk {}r/{}w/{}f, net {}s/{}r",
            report.disk_reads,
            report.disk_writes,
            report.disk_flushes,
            report.net_sends,
            report.net_recvs
        );
    }
    out.push_str(&render_pass_breakdown(report));
    let _ = writeln!(out, "Coverage        :");
    out.push_str(&report.coverage.render());
    out
}

/// Renders a full failure report for a scenario, or `None` if every
/// explored execution passed. See `tests/selftest.rs` for an end-to-end
/// example with a real counterexample.
pub fn render_failure(report: &CheckReport) -> Option<String> {
    let cx = report.counterexample.as_ref()?;
    let mut out = String::new();
    let _ = writeln!(out, "VERIFICATION FAILED: {}", report.name);
    let _ = writeln!(out, "{}", describe_outcome(&cx.outcome));
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Found in pass   : {} (execution #{})",
        cx.pass, cx.index
    );
    if cx.crash_points.is_empty() {
        let _ = writeln!(out, "Crash injection : none (crash-free execution)");
    } else {
        // The unit is defined on `Counterexample::crash_points`: absolute
        // grant counts, where an injected crash consumes one count.
        let _ = writeln!(
            out,
            "Crash injection : at absolute grant count(s) {:?} (crash k fires \
             before the (k+1)-th grant; a crash consumes one count)",
            cx.crash_points
        );
    }
    if !cx.faults.is_empty() {
        let _ = writeln!(out, "Fault injection : {}", cx.faults.describe());
    }
    if !cx.schedule_prefix.is_empty() {
        let _ = writeln!(
            out,
            "Schedule prefix : {:?} (choice indices; replay with checker::replay)",
            cx.schedule_prefix
        );
    }
    if !cx.clamped.is_empty() {
        let _ = writeln!(
            out,
            "Schedule note   : DFS prefix clamped at decision depth(s) {:?} — the \
             prefix asked for a choice index beyond the runnable count and was \
             clamped to the last runnable thread",
            cx.clamped
        );
    }
    if let Some(s) = &report.shrink {
        let _ = writeln!(
            out,
            "Shrinking       : removed {} step(s) in {} round(s) over {} re-run(s); \
             the schedule/crash/fault coordinates above are the minimized ones \
             (fingerprint-preserving, DESIGN.md \u{a7}16)",
            s.steps_removed, s.rounds, s.re_runs
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "Spec-level trace up to the failure:");
    if cx.trace.is_empty() {
        let _ = writeln!(out, "  (no ghost events recorded)");
    } else {
        out.push_str(&cx.trace);
    }
    if let Some(timeline) = &cx.timeline {
        let _ = writeln!(out);
        let _ = writeln!(out, "Causal explain timeline:");
        out.push_str(&crate::timeline::render_explain(timeline));
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Explored before failing: {} executions, {} steps, {} injected crashes.",
        report.executions, report.total_steps, report.crashes_injected
    );
    out.push_str(&render_pass_breakdown(report));
    Some(out)
}

/// One-paragraph description of what an outcome means.
pub fn describe_outcome(outcome: &ExecOutcome) -> String {
    match outcome {
        ExecOutcome::Ok => "No failure: the execution satisfied every obligation.".to_string(),
        ExecOutcome::Violation(e) => format!(
            "Ghost capability discipline violated: {e}\n\
             (a Table 1 rule failed — the runtime analog of a proof\n\
             obligation that would not typecheck in Coq)"
        ),
        ExecOutcome::Ub(msg) => format!(
            "Modelled undefined behaviour: {msg}\n\
             (the caller broke a spec precondition — racy shared-memory\n\
             access or iterator invalidation, §6.1 of the paper)"
        ),
        ExecOutcome::Bug(msg) => format!(
            "Plain panic in the code under test: {msg}\n\
             (an assertion or unwrap failed — a bug independent of the\n\
             refinement machinery)"
        ),
        ExecOutcome::Deadlock => "Deadlock: no thread is runnable but work remains \
             (blocked lock cycle)."
            .to_string(),
        ExecOutcome::FinalCheckFailed(msg) => format!(
            "Final-state predicate failed: {msg}\n\
             (the abstraction relation between physical state and\n\
             source(σ) does not hold at quiescence)"
        ),
        ExecOutcome::Wedged(budget) => format!(
            "Wedged: the execution exhausted its step budget of {budget}\n\
             (no progress toward quiescence — a livelock, an unbounded\n\
             retry loop, or a budget set too low for the scenario)"
        ),
        ExecOutcome::HarnessPanic(msg) => format!(
            "Harness panicked outside the modelled execution: {msg}\n\
             (a bug in the scenario's boot/recovery/final-check code, not\n\
             in the code under test; the campaign records it and goes on)"
        ),
    }
}

/// Compact one-line verdict for dashboards. A counterexample found by a
/// fault pass carries its compact fault schedule, e.g.
/// `[disk-fault-sweep @ crash [5] faults d1@5]`.
pub fn verdict_line(report: &CheckReport) -> String {
    match &report.counterexample {
        None => format!("PASS {}", report.summary()),
        Some(cx) => {
            let faults = if cx.faults.is_empty() {
                String::new()
            } else {
                format!(" faults {}", cx.faults.compact())
            };
            format!(
                "FAIL {} [{} @ crash {:?}{}]",
                report.name, cx.pass, cx.crash_points, faults
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{CheckReport, Counterexample, ExecOutcome};
    use crate::pass::Pass;
    use perennial::GhostError;

    fn failing_report() -> CheckReport {
        CheckReport {
            name: "demo scenario".into(),
            executions: 42,
            total_steps: 1234,
            crashes_injected: 7,
            crash_points: 7,
            helped_ops: 1,
            counterexample: Some(Counterexample {
                outcome: ExecOutcome::Violation(GhostError::HelpTokenMissing { key: 3 }),
                pass: Pass::CrashSweep,
                index: 5,
                seed: 0xdead_beef,
                schedule_prefix: vec![0, 1, 0],
                crash_points: vec![5],
                clamped: vec![],
                faults: goose_rt::fault::FaultPlan::default(),
                trace: "  [  0] Invoke { jid: j0, op: Write(3, 9) }\n".into(),
                timeline: None,
            }),
            ..CheckReport::default()
        }
    }

    #[test]
    fn failure_report_contains_the_essentials() {
        let r = failing_report();
        let text = render_failure(&r).expect("has counterexample");
        assert!(text.contains("VERIFICATION FAILED: demo scenario"));
        assert!(text.contains("crash-sweep"));
        assert!(text.contains("at absolute grant count(s) [5]"));
        assert!(!text.contains("at step(s)"), "old misleading unit wording");
        assert!(text.contains("helping token"));
        assert!(text.contains("Invoke"));
        assert!(text.contains("42 executions"));
    }

    #[test]
    fn clamped_dfs_prefix_is_surfaced() {
        let mut r = failing_report();
        let cx = r.counterexample.as_mut().unwrap();
        cx.pass = Pass::Dfs;
        cx.crash_points = vec![];
        cx.clamped = vec![2, 4];
        let text = render_failure(&r).expect("has counterexample");
        assert!(text.contains("clamped at decision depth(s) [2, 4]"));

        // And absent when nothing was clamped.
        let clean = render_failure(&failing_report()).unwrap();
        assert!(!clean.contains("clamped"));
    }

    #[test]
    fn passing_report_renders_nothing() {
        let r = CheckReport {
            name: "clean".into(),
            ..CheckReport::default()
        };
        assert!(render_failure(&r).is_none());
        assert!(verdict_line(&r).starts_with("PASS"));
    }

    #[test]
    fn verdict_line_for_failure() {
        let line = verdict_line(&failing_report());
        assert!(line.starts_with("FAIL demo scenario"));
        assert!(line.contains("crash-sweep"));
        assert!(!line.contains("faults"), "no fault tag without a plan");
    }

    #[test]
    fn verdict_line_carries_compact_fault_summary() {
        let mut r = failing_report();
        let cx = r.counterexample.as_mut().unwrap();
        cx.pass = Pass::DiskFault;
        cx.faults.disk_fail = Some((1, 5));
        let line = verdict_line(&r);
        assert!(line.contains("disk-fault-sweep"), "{line}");
        assert!(line.contains("faults d1@5"), "{line}");
    }

    #[test]
    fn summary_renders_metrics_and_coverage() {
        use crate::metrics::{Coverage, OutcomeKind, PassMetrics};
        let mut r = CheckReport {
            name: "clean".into(),
            executions: 3,
            total_steps: 30,
            workers: 2,
            execs_per_sec: 123.0,
            ..CheckReport::default()
        };
        for _ in 0..3 {
            r.outcomes.record(OutcomeKind::Ok);
            r.steps_hist.record(10);
            r.depth_hist.record(10);
        }
        r.per_pass.push(PassMetrics {
            pass: Pass::CrashSweep,
            rank: 3,
            executions: 3,
            steps: 30,
            crashes: 2,
            ..PassMetrics::default()
        });
        r.coverage = Coverage {
            crash_points_exercised: 2,
            crash_points_enumerable: 10,
            distinct_traces: 3,
            ..Coverage::default()
        };
        let text = render_summary(&r);
        assert!(text.starts_with("PASS: clean"), "{text}");
        assert!(text.contains("ok=3"), "{text}");
        assert!(text.contains("crash-sweep"), "{text}");
        assert!(text.contains("2/10 exercised (20%)"), "{text}");
        assert!(text.contains("3 distinct fingerprints"), "{text}");
        assert!(text.contains("execs/s"), "{text}");
    }

    #[test]
    fn failure_report_embeds_the_explain_timeline_when_captured() {
        use goose_rt::trace::{ExecTrace, TraceEvent, TraceKind};
        let mut r = failing_report();
        r.counterexample.as_mut().unwrap().timeline = Some(ExecTrace {
            events: vec![TraceEvent {
                seq: 0,
                tid: Some(0),
                kind: TraceKind::DiskWrite { tag: 0, block: 3 },
                happens_after: None,
            }],
            threads: vec!["writer".into()],
            truncated: false,
        });
        let text = render_failure(&r).expect("has counterexample");
        assert!(text.contains("Causal explain timeline:"), "{text}");
        assert!(text.contains("disk write b3"), "{text}");

        // And the section is absent entirely when capture was off.
        let plain = render_failure(&failing_report()).unwrap();
        assert!(!plain.contains("Causal explain timeline"), "{plain}");
    }

    #[test]
    fn summary_shows_model_op_counters_only_when_nonzero() {
        let quiet = CheckReport {
            name: "quiet".into(),
            ..CheckReport::default()
        };
        assert!(!render_summary(&quiet).contains("Model ops"));

        let busy = CheckReport {
            name: "busy".into(),
            disk_reads: 4,
            disk_writes: 9,
            disk_flushes: 2,
            net_sends: 5,
            net_recvs: 5,
            ..CheckReport::default()
        };
        let text = render_summary(&busy);
        assert!(
            text.contains("Model ops       : disk 4r/9w/2f, net 5s/5r"),
            "{text}"
        );
    }

    #[test]
    fn failure_report_includes_throughput_footer() {
        let mut r = failing_report();
        r.execs_per_sec = 99.0;
        r.workers = 4;
        let text = render_failure(&r).expect("has counterexample");
        assert!(text.contains("execs/s"), "{text}");
        assert!(text.contains("4 workers"), "{text}");
    }

    #[test]
    fn outcome_descriptions_are_distinct() {
        let outcomes = [
            ExecOutcome::Ok,
            ExecOutcome::Violation(GhostError::HelpTokenMissing { key: 0 }),
            ExecOutcome::Ub("racy write".into()),
            ExecOutcome::Bug("assert failed".into()),
            ExecOutcome::Deadlock,
            ExecOutcome::FinalCheckFailed("AbsR".into()),
            ExecOutcome::Wedged(200_000),
            ExecOutcome::HarnessPanic("boot failed".into()),
        ];
        let descs: Vec<String> = outcomes.iter().map(describe_outcome).collect();
        for (i, a) in descs.iter().enumerate() {
            for b in descs.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }
}
