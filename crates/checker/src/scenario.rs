//! Named scenario registry: a uniform way to enumerate and run checks.
//!
//! A [`Scenario`] binds a concrete [`Harness`] behind a type-erased
//! runner closure, so heterogeneous systems (the KV store, the
//! replicated disk, the mail server, the pattern suite) can all be
//! collected into one [`ScenarioSet`], listed by name, and driven with a
//! single [`CheckConfig`] — the entry point used by `crash_hunt`, the
//! benchmark suite, and CI smoke runs.
//!
//! Names are conventionally `"<system>/<scenario>"`, e.g.
//! `"kv/cross-bucket"` or `"repldisk/write-race"`.

use crate::explore::{check, replay, CheckConfig, CheckReport, Counterexample, ExecOutcome};
use crate::harness::Harness;
use perennial_spec::SpecTS;
use std::fmt;
use std::sync::Arc;

/// Type-erased [`replay`] closure over a scenario's harness.
type Replayer = dyn Fn(&Counterexample, &CheckConfig) -> (ExecOutcome, String) + Send + Sync;

/// A named, runnable check scenario.
#[derive(Clone)]
pub struct Scenario {
    name: String,
    description: String,
    runner: Arc<dyn Fn(&CheckConfig) -> CheckReport + Send + Sync>,
    replayer: Arc<Replayer>,
}

impl Scenario {
    /// Wraps a harness as a named scenario.
    pub fn new<S, H>(name: impl Into<String>, description: impl Into<String>, harness: H) -> Self
    where
        S: SpecTS,
        H: Harness<S> + Send + 'static,
    {
        let harness = Arc::new(harness);
        let run_harness = Arc::clone(&harness);
        Scenario {
            name: name.into(),
            description: description.into(),
            runner: Arc::new(move |config| check(&*run_harness, config)),
            replayer: Arc::new(move |cx, config| replay(&*harness, cx, config)),
        }
    }

    /// The scenario's registry name (`"<system>/<scenario>"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// One-line human description.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Runs the full exploration over this scenario's harness.
    pub fn run(&self, config: &CheckConfig) -> CheckReport {
        (self.runner)(config)
    }

    /// Replays one pinned counterexample against this scenario's
    /// harness — the registry-level entry point behind emitted playback
    /// tests (see [`crate::playback`]), forwarding to
    /// [`replay`]. Only the counterexample's
    /// replay coordinates (pass, seed, schedule prefix, crash points,
    /// fault plan) matter; its recorded outcome/trace fields are ignored
    /// and recomputed.
    pub fn replay(&self, cx: &Counterexample, config: &CheckConfig) -> (ExecOutcome, String) {
        (self.replayer)(cx, config)
    }
}

impl fmt::Debug for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scenario")
            .field("name", &self.name)
            .field("description", &self.description)
            .finish_non_exhaustive()
    }
}

/// An ordered collection of scenarios with name lookup.
///
/// Registration order is preserved (it is the enumeration and reporting
/// order); names must be unique.
#[derive(Clone, Debug, Default)]
pub struct ScenarioSet {
    scenarios: Vec<Scenario>,
}

impl ScenarioSet {
    /// An empty set.
    pub fn new() -> Self {
        ScenarioSet::default()
    }

    /// Adds a scenario. Panics on duplicate names — registries are
    /// assembled statically, so a collision is a programming error.
    pub fn register(&mut self, scenario: Scenario) {
        assert!(
            self.get(scenario.name()).is_none(),
            "duplicate scenario name: {}",
            scenario.name()
        );
        self.scenarios.push(scenario);
    }

    /// Convenience: wrap and register a harness in one call.
    pub fn add<S, H>(&mut self, name: impl Into<String>, description: impl Into<String>, harness: H)
    where
        S: SpecTS,
        H: Harness<S> + Send + 'static,
    {
        self.register(Scenario::new(name, description, harness));
    }

    /// Absorbs all scenarios from another set.
    pub fn extend(&mut self, other: ScenarioSet) {
        for s in other.scenarios {
            self.register(s);
        }
    }

    /// Looks a scenario up by exact name.
    pub fn get(&self, name: &str) -> Option<&Scenario> {
        self.scenarios.iter().find(|s| s.name() == name)
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.scenarios.iter().map(|s| s.name()).collect()
    }

    /// Iterates scenarios in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &Scenario> {
        self.scenarios.iter()
    }

    /// Number of registered scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the set has no scenarios.
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Runs every scenario under one config, in registration order.
    pub fn run_all(&self, config: &CheckConfig) -> Vec<CheckReport> {
        self.scenarios.iter().map(|s| s.run(config)).collect()
    }
}

impl<'a> IntoIterator for &'a ScenarioSet {
    type Item = &'a Scenario;
    type IntoIter = std::slice::Iter<'a, Scenario>;
    fn into_iter(self) -> Self::IntoIter {
        self.scenarios.iter()
    }
}
