//! Counterexample shrinking: delta-debugging a failing execution down to
//! a minimal reproducer (DESIGN.md §16).
//!
//! The explorer reports the *minimum-key* counterexample, but minimum
//! key is not minimum size: a DFS prefix carries every choice the search
//! made on the way down, a nested crash sweep carries both crash points
//! even when one suffices, and a fault sweep's plan may name events the
//! failure never needed. This module takes the winning
//! [`Counterexample`] and greedily removes what it can — schedule
//! grants, crash points, fault events — re-running the execution after
//! every candidate edit and keeping the edit only if the **failure
//! fingerprint** is preserved.
//!
//! # The fingerprint-preservation invariant
//!
//! A shrink step is accepted iff the re-run still fails *and*
//! [`failure_fingerprint`] — a hash of the outcome kind plus its
//! rendered message — is unchanged. Hashing the outcome identity rather
//! than the ghost trace is deliberate: the whole point of shrinking is
//! that the path to the failure gets shorter, so the trace (and its
//! [`trace_fingerprint`]) legitimately
//! changes, while the *failure being demonstrated* must not. A shrink
//! that turns a `FinalCheckFailed("lost write")` into a
//! `Deadlock` has found a different bug, not a smaller reproducer, and
//! is rejected.
//!
//! # Why the dimensions shrink differently
//!
//! Schedule-phase grants (the DFS/corpus `schedule_prefix`) shrink by
//! classic ddmin chunk removal: any subsequence of the prefix is a valid
//! candidate, because the scheduler treats a too-short prefix as "follow
//! DFS order / the seeded RNG from here" and a clamped entry as "pick
//! the last runnable". Sweep-phase injections (crash points, fault
//! events) are not a sequence of free choices but a *set of named
//! events*, each with an absolute coordinate (grant count, disk-op
//! index, send index); removing one never invalidates the coordinates
//! of the others, so they shrink by per-event deletion plus lowering
//! crash coordinates toward zero. The two phases therefore use the same
//! accept test but different candidate generators.
//!
//! # Determinism
//!
//! Shrinking runs after exploration, sequentially, on one
//! counterexample. Since the parallel explorer reports the same winning
//! counterexample at every worker count, and every candidate re-run is
//! itself deterministic (fixed seed, schedule policy, and fault plan),
//! the shrunk counterexample and the [`ShrinkStats`] are identical under
//! `workers = 1` and `workers = 8` — pinned by
//! `tests/shrink_playback.rs`.

use crate::explore::{rerun_candidate, Counterexample, ExecOutcome};
use crate::harness::Harness;
use crate::metrics::{trace_fingerprint, OutcomeKind};
use goose_rt::fault::FaultPlan;
use perennial_spec::SpecTS;

/// Hard cap on shrink re-runs, so a pathological scenario (huge prefix,
/// expensive executions) cannot stall a campaign. Deterministic: the
/// budget is consumed in candidate order, never by wall clock.
pub const RERUN_BUDGET: u64 = 512;

/// Bookkeeping from one shrink run, attached as
/// [`CheckReport::shrink`](crate::CheckReport::shrink) and surfaced by
/// `render_failure()` and the `run_end` telemetry record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Schedule grants, crash points, and fault events removed (the
    /// difference in [`cx_size`] before and after).
    pub steps_removed: u64,
    /// Greedy sweeps over all dimensions, including the final sweep
    /// that confirmed the fixpoint.
    pub rounds: u64,
    /// Candidate executions re-run (accepted + rejected, baseline
    /// included).
    pub re_runs: u64,
}

/// The canonical failure identity: outcome kind plus rendered message.
/// This is what shrinking must preserve — see the module docs for why
/// it is *not* the ghost-trace fingerprint.
pub fn failure_identity(outcome: &ExecOutcome) -> String {
    let kind = OutcomeKind::of(outcome).name();
    let msg = match outcome {
        ExecOutcome::Ok | ExecOutcome::Deadlock => String::new(),
        ExecOutcome::Violation(e) => e.to_string(),
        ExecOutcome::Ub(m)
        | ExecOutcome::Bug(m)
        | ExecOutcome::FinalCheckFailed(m)
        | ExecOutcome::HarnessPanic(m) => m.clone(),
        ExecOutcome::Wedged(budget) => format!("budget {budget}"),
    };
    format!("{kind}: {msg}")
}

/// FNV-1a hash of [`failure_identity`] — the accept test for every
/// shrink candidate, and what emitted playback tests pin.
pub fn failure_fingerprint(outcome: &ExecOutcome) -> u64 {
    trace_fingerprint(&failure_identity(outcome))
}

/// Number of injected fault events in a plan (transient I/O errors,
/// the torn-write mode, the disk failure, network faults).
pub fn fault_event_count(faults: &FaultPlan) -> usize {
    faults.transient_io.len()
        + usize::from(faults.torn.is_some())
        + usize::from(faults.disk_fail.is_some())
        + faults.net.len()
}

/// The size a shrink run minimizes: schedule grants pinned by the
/// prefix, plus crash points, plus fault events.
pub fn cx_size(cx: &Counterexample) -> usize {
    cx.schedule_prefix.len() + cx.crash_points.len() + fault_event_count(&cx.faults)
}

/// Shrinks `cx` in place: greedy rounds of crash-point dropping and
/// lowering, fault-event dropping, and ddmin schedule-prefix removal,
/// each candidate validated by re-running and comparing
/// [`failure_fingerprint`]. Runs to a fixpoint (a full round with no
/// accepted edit) or until [`RERUN_BUDGET`] is exhausted.
///
/// If the baseline re-run does not reproduce the recorded failure
/// fingerprint (it always should — replay determinism is the checker's
/// core contract), the counterexample is left untouched and the stats
/// record the single baseline re-run.
pub fn shrink_counterexample<S: SpecTS, H: Harness<S>>(
    harness: &H,
    cx: &mut Counterexample,
    max_steps: u64,
) -> ShrinkStats {
    let target = failure_fingerprint(&cx.outcome);
    let original_size = cx_size(cx) as u64;
    let mut stats = ShrinkStats::default();

    // Baseline: the unmodified counterexample must reproduce before any
    // edit is trusted.
    stats.re_runs += 1;
    let (outcome, _, _) = rerun_candidate(harness, cx, max_steps);
    if !outcome.is_failure() || failure_fingerprint(&outcome) != target {
        return stats;
    }

    // Tries one candidate; on acceptance, folds the re-run's outcome,
    // clamp depths, and trace back into the candidate and installs it.
    let attempt = |cx: &mut Counterexample,
                   candidate: &mut Counterexample,
                   stats: &mut ShrinkStats|
     -> bool {
        if stats.re_runs >= RERUN_BUDGET {
            return false;
        }
        stats.re_runs += 1;
        let (outcome, clamped, trace) = rerun_candidate(harness, candidate, max_steps);
        if !outcome.is_failure() || failure_fingerprint(&outcome) != target {
            return false;
        }
        candidate.outcome = outcome;
        candidate.clamped = clamped;
        candidate.trace = trace;
        *cx = candidate.clone();
        true
    };

    loop {
        stats.rounds += 1;
        let mut changed = false;

        // 1. Drop crash points, last first: the nested (inside-recovery)
        //    point is the most likely to be incidental.
        let mut i = cx.crash_points.len();
        while i > 0 {
            i -= 1;
            let mut candidate = cx.clone();
            candidate.crash_points.remove(i);
            if attempt(cx, &mut candidate, &mut stats) {
                changed = true;
            }
        }

        // 2. Lower surviving crash coordinates toward zero (earlier
        //    crashes mean shorter executions). Keeps the list sorted so
        //    the injection iterator still sees ascending counts.
        for i in 0..cx.crash_points.len() {
            loop {
                let v = cx.crash_points[i];
                if v == 0 {
                    break;
                }
                let mut opts = vec![0, v / 2, v - 1];
                opts.dedup();
                let mut accepted = false;
                for smaller in opts {
                    let mut candidate = cx.clone();
                    candidate.crash_points[i] = smaller;
                    candidate.crash_points.sort_unstable();
                    if attempt(cx, &mut candidate, &mut stats) {
                        accepted = true;
                        changed = true;
                        break;
                    }
                }
                if !accepted {
                    break;
                }
            }
        }

        // 3. Drop fault events, one named event at a time.
        let io_points: Vec<u64> = cx.faults.transient_io.iter().copied().collect();
        for p in io_points {
            let mut candidate = cx.clone();
            candidate.faults.transient_io.remove(&p);
            if attempt(cx, &mut candidate, &mut stats) {
                changed = true;
            }
        }
        if cx.faults.torn.is_some() {
            let mut candidate = cx.clone();
            candidate.faults.torn = None;
            if attempt(cx, &mut candidate, &mut stats) {
                changed = true;
            }
        }
        if cx.faults.disk_fail.is_some() {
            let mut candidate = cx.clone();
            candidate.faults.disk_fail = None;
            if attempt(cx, &mut candidate, &mut stats) {
                changed = true;
            }
        }
        let net_points: Vec<u64> = cx.faults.net.keys().copied().collect();
        for p in net_points {
            let mut candidate = cx.clone();
            candidate.faults.net.remove(&p);
            if attempt(cx, &mut candidate, &mut stats) {
                changed = true;
            }
        }

        // 4. ddmin over the schedule prefix: remove chunks, halving the
        //    chunk size down to single grants.
        let mut chunk = cx.schedule_prefix.len().div_ceil(2);
        while chunk >= 1 {
            let mut i = 0;
            while i < cx.schedule_prefix.len() {
                let end = (i + chunk).min(cx.schedule_prefix.len());
                let mut candidate = cx.clone();
                candidate.schedule_prefix.drain(i..end);
                if attempt(cx, &mut candidate, &mut stats) {
                    changed = true;
                    // The suffix shifted down into position i; retry
                    // the same window.
                } else {
                    i += chunk;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }

        // 5. Normalize surviving grants toward choice index 0 (canonical
        //    "first runnable"), without changing the count.
        for i in 0..cx.schedule_prefix.len() {
            loop {
                let v = cx.schedule_prefix[i];
                if v == 0 {
                    break;
                }
                let mut opts = vec![0, v / 2, v - 1];
                opts.dedup();
                let mut accepted = false;
                for smaller in opts {
                    let mut candidate = cx.clone();
                    candidate.schedule_prefix[i] = smaller;
                    if attempt(cx, &mut candidate, &mut stats) {
                        accepted = true;
                        changed = true;
                        break;
                    }
                }
                if !accepted {
                    break;
                }
            }
        }

        if !changed || stats.re_runs >= RERUN_BUDGET {
            break;
        }
    }

    stats.steps_removed = original_size.saturating_sub(cx_size(cx) as u64);
    stats
}
