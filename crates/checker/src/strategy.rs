//! Exploration strategies: how the schedule phase picks what to run.
//!
//! A [`Strategy`] governs the *schedule phase* of a check — the DFS and
//! random passes that enumerate interleavings. The crash and fault
//! sweeps are enumerable spaces driven by probes (see DESIGN.md §12);
//! they stay identical across strategies, which is what lets a pruned
//! run report byte-identical crash/fault counterexamples.
//!
//! The explorer drives a [`StrategySession`] as a wave loop: ask for a
//! [`Wave`] of schedules, execute them across the worker pool, then feed
//! the observed decisions/footprints back via
//! [`StrategySession::observe`]. All strategy state advances only on
//! *complete* waves in canonical job order, never on wall-clock arrival
//! — that is how the PR-1 determinism contract survives pruning.
//!
//! Four implementations:
//!
//! - [`Exhaustive`] — bounded DFS frontier + uniform random sampling
//!   (the historical behaviour, bit-for-bit).
//! - [`Random`] — random sampling only.
//! - [`SleepSetDpor`] — DFS with sleep-set partial-order reduction over
//!   the per-grant dependency footprints recorded by `goose::sched`.
//! - [`CoverageGuided`] — wave-based novelty search that re-seeds random
//!   samples from schedules whose ghost-trace fingerprints were new.

use crate::explore::CheckConfig;
use crate::pass::Pass;
use goose_rt::sched::{StepAccess, Tid};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Lex-ordered wave size for DFS frontier expansion. Fixed (not derived
/// from the worker count) so the explored set is identical for every
/// pool size.
pub(crate) const DFS_WAVE: usize = 64;

/// Wave size for coverage-guided sampling.
const COVERAGE_WAVE: usize = 16;
/// Corpus entries re-seeded per coverage wave.
const COVERAGE_RESEED: usize = 8;
/// Corpus retention bound.
const COVERAGE_CORPUS: usize = 32;
/// Hard cap on coverage-guided samples (4 waves). The stop rule is
/// saturation — a wave with no new fingerprint — but on scenarios whose
/// behaviour space never saturates, novelty alone would burn the whole
/// schedule budget without getting closer to a bug; the cap keeps the
/// phase a cheap biased sample rather than a second exhaustive pass.
const COVERAGE_MAX_SAMPLES: usize = 4 * COVERAGE_WAVE;

/// One schedule the strategy wants executed.
#[derive(Debug, Clone)]
pub enum ScheduleSpec {
    /// Deterministic prefix replay, then first-runnable (DFS order).
    /// With `track_deps`, the run records per-grant dependency
    /// footprints for partial-order reduction.
    Dfs {
        /// Forced scheduler choices, replayed in order before DFS order
        /// takes over.
        prefix: Vec<usize>,
        /// Record per-grant dependency footprints for partial-order
        /// reduction.
        track_deps: bool,
    },
    /// Seeded random schedule, optionally replaying a recorded decision
    /// prefix first (coverage-guided re-seeding).
    Random {
        /// Recorded decision prefix to replay before random choice.
        prefix: Vec<usize>,
    },
}

/// A batch of schedules to run under one pass.
#[derive(Debug)]
pub struct Wave {
    /// The pass the batch's executions are attributed to.
    pub pass: Pass,
    /// The schedules to execute, in slot order.
    pub specs: Vec<ScheduleSpec>,
}

/// Per-grant dependency observations of one execution: which threads
/// were runnable at each decision, and the dependency footprint of the
/// granted step.
#[derive(Debug, Clone, Default)]
pub struct DepTrace {
    /// Runnable thread set at each scheduler decision.
    pub runnables: Vec<Vec<Tid>>,
    /// Dependency footprint of the granted step at each decision.
    pub accesses: Vec<Vec<StepAccess>>,
}

/// What the explorer reports back for one executed schedule.
#[derive(Debug)]
pub struct ObservedExec {
    /// Position in the wave's `specs` (pairs the result with its spec).
    pub slot: usize,
    /// (choice index, number of runnable options) per decision.
    pub decisions: Vec<(usize, usize)>,
    /// Ghost-trace fingerprint of the run.
    pub trace_fp: u64,
    /// Whether the run failed.
    pub failed: bool,
    /// Dependency observations (present when the spec asked for them).
    pub deps: Option<DepTrace>,
}

/// A schedule-phase exploration strategy (factory for sessions).
///
/// # Contract
///
/// A strategy decides *which* crash-free schedules run; it never
/// executes anything itself. The explorer drives a [`StrategySession`]
/// in a wave loop — `next_wave` → execute every spec → `observe` with
/// the complete wave's results — and implementations must uphold:
///
/// - **Determinism across worker counts.** Decisions may depend only on
///   the config (seed included) and on *complete-wave* feedback, never
///   on completion order or timing within a wave. The explored set must
///   be identical at `workers = 1` and `workers = 8` (pinned by
///   `tests/strategy.rs`).
/// - **Canonical job indices.** Specs are numbered by wave-slot order;
///   the explorer turns them into job keys `(pass.rank(), index)`.
///   A strategy must emit specs in a stable order so indices — and
///   therefore counterexample selection — are reproducible.
/// - **Termination.** `next_wave` must eventually return `None`;
///   budgets (`dfs_max_executions`, sample counts) are the strategy's
///   responsibility to enforce.
/// - **Soundness of pruning.** A strategy may skip schedules only when
///   they are provably equivalent to an explored one (e.g. sleep-set
///   commutation); pruned counts are reported, never silent.
pub trait Strategy: fmt::Debug + Send + Sync {
    /// Stable name (telemetry, reports).
    fn name(&self) -> &'static str;
    /// Starts a session for one check run.
    fn session(&self, config: &CheckConfig) -> Box<dyn StrategySession>;
}

/// Corpus bookkeeping of a coverage-guided session, exposed for the
/// profiler (see [`crate::profile`]). Every counter is driven by
/// complete-wave feedback only, so the numbers are worker-count
/// independent like [`StrategySession::guided`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoverageIntrospection {
    /// Executions whose ghost-trace fingerprint was previously unseen
    /// (each one entered the corpus).
    pub corpus_hits: u64,
    /// Corpus entries dropped by the retention bound.
    pub corpus_evictions: u64,
    /// Complete waves that discovered no new fingerprint (the first one
    /// ends the phase).
    pub saturated_waves: u64,
}

/// Mutable per-run strategy state driven by the explorer's wave loop.
pub trait StrategySession: Send {
    /// The next wave of schedules, or `None` when the phase is done.
    fn next_wave(&mut self) -> Option<Wave>;
    /// Feeds back one *complete* wave's results, in slot order.
    fn observe(&mut self, pass: Pass, execs: &[ObservedExec]);
    /// Schedules pruned as redundant (sleep-set hits).
    fn pruned(&self) -> u64 {
        0
    }
    /// Executions whose seed/prefix was chosen by coverage feedback.
    fn guided(&self) -> u64 {
        0
    }
    /// Sleep-set prunes attributed to the resources in the sleeping
    /// step's footprint, as `(resource, prunes)` in resource order.
    /// Empty for strategies that never prune.
    fn prunes_by_resource(&self) -> Vec<(u64, u64)> {
        Vec::new()
    }
    /// Corpus bookkeeping, for strategies that keep one.
    fn coverage_introspection(&self) -> Option<CoverageIntrospection> {
        None
    }
}

/// Whether two step footprints commute: they conflict iff some resource
/// appears in both with a write on either side.
fn independent(a: &[StepAccess], b: &[StepAccess]) -> bool {
    // Footprints are tiny (a handful of entries), so the quadratic scan
    // beats building sets.
    for x in a {
        for y in b {
            if x.resource == y.resource && (x.write || y.write) {
                return false;
            }
        }
    }
    true
}

// ---------------------------------------------------------------------
// Exhaustive
// ---------------------------------------------------------------------

/// The historical default: bounded exhaustive DFS, then uniform random
/// sampling.
#[derive(Debug, Clone, Copy, Default)]
pub struct Exhaustive;

impl Strategy for Exhaustive {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn session(&self, config: &CheckConfig) -> Box<dyn StrategySession> {
        let mut pending = BTreeSet::new();
        pending.insert(Vec::new());
        Box::new(ExhaustiveSession {
            pending,
            budget: if config.passes.contains(Pass::Dfs) {
                config.dfs_max_executions
            } else {
                0
            },
            random_samples: config.random_samples,
            random_enabled: config.passes.contains(Pass::Random),
            random_done: false,
            issued: Vec::new(),
        })
    }
}

struct ExhaustiveSession {
    pending: BTreeSet<Vec<usize>>,
    budget: usize,
    random_samples: usize,
    random_enabled: bool,
    random_done: bool,
    /// Prefixes of the outstanding DFS wave, in slot order.
    issued: Vec<Vec<usize>>,
}

impl StrategySession for ExhaustiveSession {
    fn next_wave(&mut self) -> Option<Wave> {
        if self.budget > 0 && !self.pending.is_empty() {
            let wave: Vec<Vec<usize>> = self
                .pending
                .iter()
                .take(DFS_WAVE.min(self.budget))
                .cloned()
                .collect();
            for p in &wave {
                self.pending.remove(p);
            }
            self.budget -= wave.len();
            self.issued = wave.clone();
            return Some(Wave {
                pass: Pass::Dfs,
                specs: wave
                    .into_iter()
                    .map(|prefix| ScheduleSpec::Dfs {
                        prefix,
                        track_deps: false,
                    })
                    .collect(),
            });
        }
        if self.random_enabled && !self.random_done {
            self.random_done = true;
            return Some(Wave {
                pass: Pass::Random,
                specs: (0..self.random_samples)
                    .map(|_| ScheduleSpec::Random { prefix: Vec::new() })
                    .collect(),
            });
        }
        None
    }

    fn observe(&mut self, pass: Pass, execs: &[ObservedExec]) {
        if pass != Pass::Dfs {
            return;
        }
        // Running a prefix p reveals its decision path; every sibling
        // choice at depths >= |p| becomes a new pending prefix (depths
        // < |p| were already enqueued by p's ancestors), so each
        // schedule is enumerated exactly once.
        for exec in execs {
            let prefix = &self.issued[exec.slot];
            for d in prefix.len()..exec.decisions.len() {
                let (choice, n) = exec.decisions[d];
                for c in choice + 1..n {
                    let mut q: Vec<usize> = exec.decisions[..d].iter().map(|(i, _)| *i).collect();
                    q.push(c);
                    self.pending.insert(q);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Random
// ---------------------------------------------------------------------

/// Random sampling only — no DFS phase at all.
#[derive(Debug, Clone, Copy, Default)]
pub struct Random;

impl Strategy for Random {
    fn name(&self) -> &'static str {
        "random"
    }

    fn session(&self, config: &CheckConfig) -> Box<dyn StrategySession> {
        Box::new(RandomSession {
            random_samples: config.random_samples,
            random_enabled: config.passes.contains(Pass::Random),
            done: false,
        })
    }
}

struct RandomSession {
    random_samples: usize,
    random_enabled: bool,
    done: bool,
}

impl StrategySession for RandomSession {
    fn next_wave(&mut self) -> Option<Wave> {
        if self.done || !self.random_enabled {
            return None;
        }
        self.done = true;
        Some(Wave {
            pass: Pass::Random,
            specs: (0..self.random_samples)
                .map(|_| ScheduleSpec::Random { prefix: Vec::new() })
                .collect(),
        })
    }

    fn observe(&mut self, _pass: Pass, _execs: &[ObservedExec]) {}
}

// ---------------------------------------------------------------------
// Sleep-set DPOR
// ---------------------------------------------------------------------

/// DFS with sleep-set partial-order reduction.
///
/// Two grants commute when their dependency footprints touch disjoint
/// state (or only read shared state). When the DFS would branch to a
/// sibling thread that is in the node's sleep set — meaning the sibling
/// was already explored from an equivalent earlier branch and nothing
/// dependent has run since — the branch is pruned. Pruned branches
/// still consume DFS budget, so reduction translates directly into
/// fewer executions. Soundness leans on a property of this codebase's
/// primitives: a parked thread's next-step footprint is determined by
/// the primitive's arguments, so recorded footprints stay valid while
/// the thread sleeps.
///
/// Unlike [`Exhaustive`], this strategy runs no uniform-random tail:
/// the reduced DFS replaces the whole schedule phase. Random sampling
/// exists to cover what a bounded frontier misses; pruning spends the
/// same budget reaching deeper systematically instead.
#[derive(Debug, Clone, Copy, Default)]
pub struct SleepSetDpor;

impl Strategy for SleepSetDpor {
    fn name(&self) -> &'static str {
        "sleep-set-dpor"
    }

    fn session(&self, config: &CheckConfig) -> Box<dyn StrategySession> {
        let mut pending = BTreeMap::new();
        pending.insert(Vec::new(), Vec::new());
        Box::new(DporSession {
            pending,
            budget: if config.passes.contains(Pass::Dfs) {
                config.dfs_max_executions
            } else {
                0
            },
            issued: Vec::new(),
            pruned: 0,
            prunes_by_resource: BTreeMap::new(),
        })
    }
}

/// A sleeping thread and the footprint of the step it would take.
type SleepEntry = (Tid, Vec<StepAccess>);

struct DporSession {
    /// Pending prefixes (lex order) with their sleep sets.
    pending: BTreeMap<Vec<usize>, Vec<SleepEntry>>,
    budget: usize,
    /// (prefix, sleep set) of the outstanding DFS wave, in slot order.
    issued: Vec<(Vec<usize>, Vec<SleepEntry>)>,
    pruned: u64,
    /// Prunes attributed to the distinct resources of the sleeping
    /// step's footprint (profiler introspection; one prune can credit
    /// several resources).
    prunes_by_resource: BTreeMap<u64, u64>,
}

/// The footprint of `tid`'s next granted step strictly after depth `d`
/// in this execution, if it was ever granted again. By footprint
/// stability (a parked primitive's next-step footprint is determined by
/// its arguments), that footprint is also what `tid` *would have*
/// accessed if granted at depth `d`.
fn next_footprint(
    deps: &DepTrace,
    decisions: &[(usize, usize)],
    d: usize,
    tid: Tid,
) -> Option<Vec<StepAccess>> {
    for (e, (choice, _)) in decisions.iter().enumerate().skip(d + 1) {
        let runnable = deps.runnables.get(e)?;
        let granted = *runnable.get(*choice)?;
        if granted == tid {
            return deps.accesses.get(e).cloned();
        }
    }
    None
}

impl DporSession {
    /// Expands one executed run: enqueue sibling prefixes, pruning those
    /// whose deviating thread is asleep, and maintain the sleep set down
    /// the executed path.
    fn expand(&mut self, prefix: &[usize], sleep: &[SleepEntry], exec: &ObservedExec) {
        let deps = exec.deps.as_ref();
        // `alive` is the sleep set at the current depth. The walk starts
        // one edge *before* the frontier (at the prefix's own last
        // decision) so the wake filter applies this run's true footprint
        // of the deviating step — the footprint recorded when the
        // parent enqueued this prefix belonged to the parent's run.
        let mut alive: Vec<SleepEntry> = sleep.to_vec();
        let start = prefix.len().saturating_sub(1);
        for d in start..exec.decisions.len() {
            let (choice, n) = exec.decisions[d];
            let edge = deps.and_then(|dt| {
                let runnable = dt.runnables.get(d)?;
                let fp = dt.accesses.get(d)?;
                let t0 = *runnable.get(choice)?;
                (runnable.len() == n).then_some((runnable, fp, t0))
            });
            if d >= prefix.len() {
                // Branches already scheduled from this node, in
                // exploration order: the executed continuation first,
                // then each enqueued sibling. Later siblings sleep on
                // all of them — the classical sleep-set accumulation.
                let mut explored: Vec<SleepEntry> = Vec::new();
                if let Some((_, fp, t0)) = edge {
                    explored.push((t0, fp.clone()));
                }
                for c in choice + 1..n {
                    let sleeper = edge.and_then(|(runnable, _, _)| {
                        let tid_c = runnable[c];
                        alive.iter().find(|(t, _)| *t == tid_c)
                    });
                    if let Some((_, fp)) = sleeper {
                        // An equivalent interleaving was already
                        // explored; skip the branch but charge it to
                        // the DFS budget so reduction shows up as
                        // fewer executions, not a longer frontier. The
                        // prune is credited to each distinct resource
                        // of the sleeping step's footprint (profiler
                        // attribution: *what* commuted).
                        self.pruned += 1;
                        self.budget = self.budget.saturating_sub(1);
                        let resources: BTreeSet<u64> = fp.iter().map(|a| a.resource).collect();
                        for r in resources {
                            *self.prunes_by_resource.entry(r).or_insert(0) += 1;
                        }
                        continue;
                    }
                    let mut q: Vec<usize> = exec.decisions[..d].iter().map(|(i, _)| *i).collect();
                    q.push(c);
                    let mut child_sleep = match edge {
                        Some(_) => {
                            let mut s = alive.clone();
                            s.extend(explored.iter().cloned());
                            s
                        }
                        None => Vec::new(),
                    };
                    if edge.is_none() {
                        child_sleep.clear();
                    }
                    // A prefix reachable two ways keeps only the
                    // *intersection* of its sleep sets to stay sound;
                    // the empty set is the conservative intersection
                    // and keeps the outcome order-independent.
                    self.pending
                        .entry(q)
                        .and_modify(|s| s.clear())
                        .or_insert(child_sleep);
                    // This sibling is scheduled now, so still-later
                    // siblings may sleep on it — footprint recovered
                    // from the thread's next granted step in this run
                    // (it parks, unchanged, until then).
                    if let Some((runnable, _, _)) = edge {
                        let tid_c = runnable[c];
                        if let Some(dt) = deps {
                            if let Some(fp_c) = next_footprint(dt, &exec.decisions, d, tid_c) {
                                explored.push((tid_c, fp_c));
                            }
                        }
                    }
                }
            }
            // Wake filter: executing t0 removes t0's own entry, and any
            // sleeper whose step conflicts with what just ran.
            match edge {
                Some((_, fp, t0)) => {
                    alive.retain(|(t, f)| *t != t0 && independent(f, fp));
                }
                None => alive.clear(),
            }
        }
    }
}

impl StrategySession for DporSession {
    fn next_wave(&mut self) -> Option<Wave> {
        if self.budget > 0 && !self.pending.is_empty() {
            let take = DFS_WAVE.min(self.budget);
            let keys: Vec<Vec<usize>> = self.pending.keys().take(take).cloned().collect();
            let wave: Vec<(Vec<usize>, Vec<SleepEntry>)> = keys
                .into_iter()
                .map(|k| {
                    let s = self.pending.remove(&k).unwrap_or_default();
                    (k, s)
                })
                .collect();
            self.budget -= wave.len();
            let specs = wave
                .iter()
                .map(|(prefix, _)| ScheduleSpec::Dfs {
                    prefix: prefix.clone(),
                    track_deps: true,
                })
                .collect();
            self.issued = wave;
            return Some(Wave {
                pass: Pass::Dfs,
                specs,
            });
        }
        // No random tail: the reduced DFS *is* the schedule phase.
        // Uniform sampling exists to cover what a bounded exhaustive
        // frontier misses; sleep-set pruning spends the same budget
        // reaching deeper systematically instead.
        None
    }

    fn observe(&mut self, pass: Pass, execs: &[ObservedExec]) {
        if pass != Pass::Dfs {
            return;
        }
        let issued = std::mem::take(&mut self.issued);
        for exec in execs {
            let (prefix, sleep) = &issued[exec.slot];
            self.expand(prefix, sleep, exec);
        }
    }

    fn pruned(&self) -> u64 {
        self.pruned
    }

    fn prunes_by_resource(&self) -> Vec<(u64, u64)> {
        self.prunes_by_resource
            .iter()
            .map(|(r, n)| (*r, *n))
            .collect()
    }
}

// ---------------------------------------------------------------------
// Coverage-guided
// ---------------------------------------------------------------------

/// Coverage-guided random sampling.
///
/// Runs random schedules in waves and keeps a corpus of schedules whose
/// ghost-trace fingerprints were previously unseen. Later waves replay
/// truncated prefixes of corpus schedules (then diverge randomly),
/// concentrating samples near behaviour that was novel. The phase stops
/// as soon as a wave yields no new fingerprint — on scenarios whose
/// behaviour space saturates quickly this is the 5-10x
/// executions-to-counterexample win measured in BENCH_scale.json.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoverageGuided;

impl Strategy for CoverageGuided {
    fn name(&self) -> &'static str {
        "coverage-guided"
    }

    fn session(&self, config: &CheckConfig) -> Box<dyn StrategySession> {
        let enabled = config.passes.contains(Pass::Random) || config.passes.contains(Pass::Dfs);
        Box::new(CoverageSession {
            budget: if enabled {
                (config.dfs_max_executions + config.random_samples).min(COVERAGE_MAX_SAMPLES)
            } else {
                0
            },
            spent: 0,
            wave_num: 0,
            novel_last_wave: false,
            seen: BTreeSet::new(),
            corpus: Vec::new(),
            guided: 0,
            introspection: CoverageIntrospection::default(),
        })
    }
}

struct CoverageSession {
    budget: usize,
    spent: usize,
    wave_num: usize,
    novel_last_wave: bool,
    /// Ghost-trace fingerprints observed so far.
    seen: BTreeSet<u64>,
    /// Decision paths of novel runs, most recent first.
    corpus: Vec<Vec<usize>>,
    guided: u64,
    /// Corpus bookkeeping for the profiler.
    introspection: CoverageIntrospection,
}

impl StrategySession for CoverageSession {
    fn next_wave(&mut self) -> Option<Wave> {
        if self.spent >= self.budget {
            return None;
        }
        if self.wave_num > 0 && !self.novel_last_wave {
            // Coverage saturated: the last full wave discovered nothing
            // new, so further sampling has diminishing returns.
            return None;
        }
        let mut specs: Vec<ScheduleSpec> = Vec::new();
        if self.wave_num > 0 {
            for path in self.corpus.iter().take(COVERAGE_RESEED) {
                for cut in [path.len() / 3, (2 * path.len()) / 3] {
                    if cut == 0 {
                        continue;
                    }
                    specs.push(ScheduleSpec::Random {
                        prefix: path[..cut].to_vec(),
                    });
                }
            }
            specs.truncate(COVERAGE_WAVE);
        }
        let seeded = specs.len();
        while specs.len() < COVERAGE_WAVE {
            specs.push(ScheduleSpec::Random { prefix: Vec::new() });
        }
        specs.truncate(self.budget - self.spent);
        self.guided += specs.len().min(seeded) as u64;
        self.spent += specs.len();
        self.wave_num += 1;
        self.novel_last_wave = false;
        Some(Wave {
            pass: Pass::Random,
            specs,
        })
    }

    fn observe(&mut self, pass: Pass, execs: &[ObservedExec]) {
        if pass != Pass::Random {
            return;
        }
        for exec in execs {
            if self.seen.insert(exec.trace_fp) {
                self.novel_last_wave = true;
                self.introspection.corpus_hits += 1;
                self.corpus
                    .insert(0, exec.decisions.iter().map(|(i, _)| *i).collect());
            }
        }
        self.introspection.corpus_evictions +=
            self.corpus.len().saturating_sub(COVERAGE_CORPUS) as u64;
        self.corpus.truncate(COVERAGE_CORPUS);
        if !self.novel_last_wave {
            self.introspection.saturated_waves += 1;
        }
    }

    fn guided(&self) -> u64 {
        self.guided
    }

    fn coverage_introspection(&self) -> Option<CoverageIntrospection> {
        Some(self.introspection)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(resource: u64, write: bool) -> StepAccess {
        StepAccess { resource, write }
    }

    #[test]
    fn independence_requires_a_write_on_a_shared_resource() {
        let r = acc(1, false);
        let w = acc(1, true);
        let w2 = acc(2, true);
        assert!(independent(&[r], &[r]));
        assert!(!independent(&[r], &[w]));
        assert!(!independent(&[w], &[w]));
        assert!(independent(&[w], &[w2]));
        assert!(independent(&[], &[w]));
    }

    fn quick_cfg() -> CheckConfig {
        CheckConfig::quick()
    }

    #[test]
    fn exhaustive_session_walks_the_frontier() {
        let mut s = Exhaustive.session(&quick_cfg());
        let w = s.next_wave().expect("dfs wave");
        assert_eq!(w.pass, Pass::Dfs);
        assert_eq!(w.specs.len(), 1); // the empty prefix
                                      // A run with a 2-way branch at depth 0 yields one sibling.
        s.observe(
            Pass::Dfs,
            &[ObservedExec {
                slot: 0,
                decisions: vec![(0, 2), (0, 1)],
                trace_fp: 1,
                failed: false,
                deps: None,
            }],
        );
        let w2 = s.next_wave().expect("second dfs wave");
        assert_eq!(w2.specs.len(), 1);
        match &w2.specs[0] {
            ScheduleSpec::Dfs { prefix, .. } => assert_eq!(prefix, &vec![1]),
            other => panic!("unexpected spec {other:?}"),
        }
    }

    #[test]
    fn dpor_prunes_independent_sibling() {
        // Two threads, disjoint write footprints: after exploring
        // thread 0 first, the sibling branch (thread 1 first) at the
        // *next* node should find thread 0 asleep and prune the
        // commuted continuation.
        let mut s = SleepSetDpor.session(&quick_cfg());
        let w = s.next_wave().expect("dfs wave");
        assert_eq!(w.specs.len(), 1);
        // Root run: grants tid 10 (choice 0 of {10, 11}), then tid 11.
        s.observe(
            Pass::Dfs,
            &[ObservedExec {
                slot: 0,
                decisions: vec![(0, 2), (0, 1)],
                trace_fp: 1,
                failed: false,
                deps: Some(DepTrace {
                    runnables: vec![vec![10, 11], vec![11]],
                    accesses: vec![vec![acc(1, true)], vec![acc(2, true)]],
                }),
            }],
        );
        // Sibling [1] enqueued with sleep {10}.
        let w2 = s.next_wave().expect("sibling wave");
        assert_eq!(w2.specs.len(), 1);
        // Sibling run: grants tid 11 first (choice 1), then tid 10.
        // At depth 1 the only alternative ordering is 10-before-11,
        // which sleeps — the expansion prunes it.
        s.observe(
            Pass::Dfs,
            &[ObservedExec {
                slot: 0,
                decisions: vec![(1, 2), (0, 1)],
                trace_fp: 2,
                failed: false,
                deps: Some(DepTrace {
                    runnables: vec![vec![10, 11], vec![10]],
                    accesses: vec![vec![acc(2, true)], vec![acc(1, true)]],
                }),
            }],
        );
        assert_eq!(s.pruned(), 0, "no sibling existed to prune at depth 1");
        // Frontier is now empty: both interleavings of the dependent
        // pair were explored, nothing redundant was scheduled, and DPOR
        // runs no random tail.
        assert!(s.next_wave().is_none());
    }

    #[test]
    fn dpor_sleep_suppresses_commuted_branch() {
        // Three threads with pairwise-disjoint write footprints: every
        // interleaving is equivalent, so sleep sets must prune at least
        // one commuted branch of the 3! tree.
        let mut s = SleepSetDpor.session(&quick_cfg());
        s.next_wave().expect("root wave");
        // Root run: grants 10, then 11, then 12.
        s.observe(
            Pass::Dfs,
            &[ObservedExec {
                slot: 0,
                decisions: vec![(0, 3), (0, 2), (0, 1)],
                trace_fp: 1,
                failed: false,
                deps: Some(DepTrace {
                    runnables: vec![vec![10, 11, 12], vec![11, 12], vec![12]],
                    accesses: vec![vec![acc(1, true)], vec![acc(2, true)], vec![acc(3, true)]],
                }),
            }],
        );
        // Root expansion enqueues siblings at every depth: [0,1] with
        // sleep {11}, [1] with sleep {10}, and [2] with sleep {10, 11}
        // (sibling accumulation: [2] sleeps on the already-scheduled
        // branch [1] too, with 11's footprint read off its next grant).
        let w2 = s.next_wave().expect("sibling wave");
        assert_eq!(w2.specs.len(), 3);
        let prefixes: Vec<Vec<usize>> = w2
            .specs
            .iter()
            .map(|sp| match sp {
                ScheduleSpec::Dfs { prefix, .. } => prefix.clone(),
                other => panic!("unexpected spec {other:?}"),
            })
            .collect();
        assert_eq!(prefixes, vec![vec![0, 1], vec![1], vec![2]]);
        s.observe(
            Pass::Dfs,
            &[
                // [0,1]: grants 10, 12, 11. No new siblings below the
                // frontier (depth 2 has a single runnable).
                ObservedExec {
                    slot: 0,
                    decisions: vec![(0, 3), (1, 2), (0, 1)],
                    trace_fp: 2,
                    failed: false,
                    deps: Some(DepTrace {
                        runnables: vec![vec![10, 11, 12], vec![11, 12], vec![11]],
                        accesses: vec![vec![acc(1, true)], vec![acc(3, true)], vec![acc(2, true)]],
                    }),
                },
                // [1]: grants 11, 10, 12. Deviating to 12 at depth 1 is
                // awake (12 never slept) — enqueued, not pruned.
                ObservedExec {
                    slot: 1,
                    decisions: vec![(1, 3), (0, 2), (0, 1)],
                    trace_fp: 3,
                    failed: false,
                    deps: Some(DepTrace {
                        runnables: vec![vec![10, 11, 12], vec![10, 12], vec![12]],
                        accesses: vec![vec![acc(2, true)], vec![acc(1, true)], vec![acc(3, true)]],
                    }),
                },
                // [2]: grants 12, 10, 11. Deviating to 11 at depth 1
                // finds 11 asleep (it slept through 12's and 10's
                // independent steps) — the commuted branch is pruned.
                ObservedExec {
                    slot: 2,
                    decisions: vec![(2, 3), (0, 2), (0, 1)],
                    trace_fp: 4,
                    failed: false,
                    deps: Some(DepTrace {
                        runnables: vec![vec![10, 11, 12], vec![10, 11], vec![11]],
                        accesses: vec![vec![acc(3, true)], vec![acc(1, true)], vec![acc(2, true)]],
                    }),
                },
            ],
        );
        assert_eq!(s.pruned(), 1, "the 12-10-11-commuted branch is pruned");
        // Only [1,1] (11, 12, 10) survives into the next wave.
        let w3 = s.next_wave().expect("third dfs wave");
        assert_eq!(w3.pass, Pass::Dfs);
        assert_eq!(w3.specs.len(), 1);
        match &w3.specs[0] {
            ScheduleSpec::Dfs { prefix, .. } => assert_eq!(prefix, &vec![1, 1]),
            other => panic!("unexpected spec {other:?}"),
        }
        // Its expansion finds nothing new; the schedule phase is done.
        s.observe(
            Pass::Dfs,
            &[ObservedExec {
                slot: 0,
                decisions: vec![(1, 3), (1, 2), (0, 1)],
                trace_fp: 5,
                failed: false,
                deps: Some(DepTrace {
                    runnables: vec![vec![10, 11, 12], vec![10, 12], vec![10]],
                    accesses: vec![vec![acc(2, true)], vec![acc(3, true)], vec![acc(1, true)]],
                }),
            }],
        );
        assert!(s.next_wave().is_none());
    }

    #[test]
    fn coverage_session_stops_when_novelty_dries() {
        let mut s = CoverageGuided.session(&quick_cfg());
        let w = s.next_wave().expect("wave 0");
        assert_eq!(w.pass, Pass::Random);
        let execs: Vec<ObservedExec> = (0..w.specs.len())
            .map(|i| ObservedExec {
                slot: i,
                decisions: vec![(0, 2); 6],
                trace_fp: 42, // all identical: one novel fp
                failed: false,
                deps: None,
            })
            .collect();
        s.observe(Pass::Random, &execs);
        let w2 = s.next_wave().expect("wave 1 (novelty seen)");
        assert!(w2
            .specs
            .iter()
            .any(|sp| matches!(sp, ScheduleSpec::Random { prefix } if !prefix.is_empty())));
        assert!(s.guided() > 0);
        // No novelty this time: the phase ends.
        let execs2: Vec<ObservedExec> = (0..w2.specs.len())
            .map(|i| ObservedExec {
                slot: i,
                decisions: vec![(0, 2); 6],
                trace_fp: 42,
                failed: false,
                deps: None,
            })
            .collect();
        s.observe(Pass::Random, &execs2);
        assert!(s.next_wave().is_none());
    }
}
