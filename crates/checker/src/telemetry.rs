//! Telemetry: the explorer's structured JSONL event stream, live
//! counters, and the periodic progress line.
//!
//! Everything here is a **side channel**: sinks observe the exploration
//! but feed nothing back into scheduling, seeding, or counterexample
//! selection, so a run with telemetry enabled reports byte-for-byte the
//! same [`crate::Counterexample`] as one without (pinned by
//! `tests/telemetry.rs`). Two kinds of state live here:
//!
//! - [`TelemetrySink`] — a shared JSONL writer. One JSON object per
//!   line, schema documented in DESIGN.md §11: `run_start`,
//!   `pass_start`, `exec_done`, `counterexample`, `run_end`. Event
//!   *content* is deterministic (timing fields excepted); event *order*
//!   is completion order, so it is canonical at `workers = 1` and
//!   interleaved-but-complete at higher pool sizes.
//! - [`MetricsSink`] — lock-free live counters the worker pool bumps as
//!   executions finish, feeding the opt-in progress line
//!   ([`CheckConfig::progress_every`](crate::CheckConfig)). These are
//!   wall-clock-ordered and therefore *not* the numbers reported in
//!   [`crate::CheckReport`]; the deterministic ones are computed in
//!   `explore.rs` from canonical job outcomes (see [`crate::metrics`]).

use crate::explore::{CheckConfig, CheckReport, Counterexample};
use crate::metrics::OutcomeKind;
use crate::pass::Pass;
use parking_lot::Mutex;
use serde_json::{json, Value};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared handle to a JSONL event stream. Cloning shares the
/// underlying writer (all clones append to the same stream).
#[derive(Clone)]
pub struct TelemetrySink {
    writer: Arc<Mutex<Box<dyn Write + Send>>>,
}

impl std::fmt::Debug for TelemetrySink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetrySink").finish_non_exhaustive()
    }
}

impl TelemetrySink {
    /// Streams events into any writer (a file, a pipe, a test buffer).
    pub fn to_writer(w: impl Write + Send + 'static) -> Self {
        TelemetrySink {
            writer: Arc::new(Mutex::new(Box::new(w))),
        }
    }

    /// Creates (truncates) a JSONL file at `path`.
    pub fn to_file(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let f = std::fs::File::create(path)?;
        Ok(Self::to_writer(std::io::BufWriter::new(f)))
    }

    /// A sink backed by an in-memory buffer, plus the buffer — the
    /// test-side way to capture and inspect a stream.
    pub fn shared_buffer() -> (Self, Arc<Mutex<Vec<u8>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        (TelemetrySink::to_writer(SharedBuf(Arc::clone(&buf))), buf)
    }

    /// Appends one event as a compact JSON line. Write errors are
    /// swallowed after the first report: telemetry must never abort a
    /// check that would otherwise complete.
    pub fn emit(&self, event: &Value) {
        let line = serde_json::to_string(event).expect("shim serialization is infallible");
        let mut w = self.writer.lock();
        if w.write_all(line.as_bytes()).is_err() || w.write_all(b"\n").is_err() {
            return;
        }
        let _ = w.flush();
    }
}

struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Live, lock-free counters the worker pool bumps per finished
/// execution. Wall-clock ordered — the progress line's feed, not the
/// report's.
#[derive(Debug, Default)]
pub struct MetricsSink {
    executions: AtomicU64,
    steps: AtomicU64,
    failures: AtomicU64,
}

impl MetricsSink {
    /// Records one finished execution; returns the new execution count
    /// (the progress-line trigger).
    pub fn record_exec(&self, steps: u64, failed: bool) -> u64 {
        self.steps.fetch_add(steps, Ordering::Relaxed);
        if failed {
            self.failures.fetch_add(1, Ordering::Relaxed);
        }
        self.executions.fetch_add(1, Ordering::Relaxed) + 1
    }

    pub fn executions(&self) -> u64 {
        self.executions.load(Ordering::Relaxed)
    }

    pub fn steps(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// The progress line printed every N executions (stderr, so it
    /// never pollutes piped report output).
    pub fn progress_line(&self, name: &str, since_start: Duration) -> String {
        let execs = self.executions();
        let rate = execs as f64 / since_start.as_secs_f64().max(1e-9);
        format!(
            "[checker] {name}: {execs} execs, {} steps, {} failures, {rate:.0} execs/s",
            self.steps(),
            self.failures()
        )
    }
}

/// Per-run telemetry context threaded through the explorer: the
/// optional event stream, the live counters, and the progress cadence.
pub struct RunTelemetry {
    pub stream: Option<TelemetrySink>,
    pub live: MetricsSink,
    pub progress_every: u64,
    pub start: Instant,
    pub name: String,
}

impl RunTelemetry {
    pub fn new(name: &str, config: &CheckConfig) -> Self {
        let stream = config.telemetry.clone().or_else(|| {
            config.telemetry_path.as_ref().map(|p| {
                TelemetrySink::to_file(p)
                    .unwrap_or_else(|e| panic!("opening telemetry file {}: {e}", p.display()))
            })
        });
        RunTelemetry {
            stream,
            live: MetricsSink::default(),
            progress_every: config.progress_every,
            start: Instant::now(),
            name: name.to_string(),
        }
    }

    pub fn emit(&self, event: &Value) {
        if let Some(stream) = &self.stream {
            // Stamp every record with its scenario, so streams holding
            // several runs (scenario_smoke --telemetry appends all
            // scenarios to one file) stay attributable line-by-line.
            let mut v = event.clone();
            if let Value::Object(map) = &mut v {
                if map.get("scenario").is_none() {
                    map.insert("scenario".to_string(), Value::String(self.name.clone()));
                }
            }
            stream.emit(&v);
        }
    }

    /// Bumps the live counters and prints the progress line when the
    /// cadence says so.
    pub fn exec_finished(&self, steps: u64, failed: bool) {
        let n = self.live.record_exec(steps, failed);
        if self.progress_every > 0 && n.is_multiple_of(self.progress_every) {
            eprintln!(
                "{}",
                self.live.progress_line(&self.name, self.start.elapsed())
            );
        }
    }
}

/// 64-bit values (seeds, fingerprints) go into JSON as hex strings: the
/// shim's numbers are f64 and would silently round above 2^53.
fn hex64(v: u64) -> String {
    format!("{v:#x}")
}

pub fn ev_run_start(name: &str, config: &CheckConfig, workers: usize) -> Value {
    json!({
        "type": "run_start",
        "scenario": name,
        "seed": hex64(config.seed),
        "workers": workers,
        "max_steps": config.max_steps,
        "dfs_max_executions": config.dfs_max_executions,
        "random_samples": config.random_samples,
        "random_crash_samples": config.random_crash_samples,
        "passes": config.passes.iter().map(Pass::name).collect::<Vec<_>>(),
        "strategy": config.strategy.name(),
        "keep_going": config.keep_going,
    })
}

pub fn ev_pass_start(pass: Pass) -> Value {
    json!({
        "type": "pass_start",
        "pass": pass.name(),
        "rank": pass.rank(),
    })
}

#[allow(clippy::too_many_arguments)]
pub fn ev_exec_done(
    pass: Pass,
    index: u64,
    seed: u64,
    outcome: OutcomeKind,
    steps: u64,
    depth: u64,
    crashes: u64,
    lock_blocks: u64,
    trace_fp: u64,
    faults: &str,
    duration: Duration,
) -> Value {
    json!({
        "type": "exec_done",
        "pass": pass.name(),
        "index": index,
        "seed": hex64(seed),
        "outcome": outcome.name(),
        "steps": steps,
        "depth": depth,
        "crashes": crashes,
        "lock_blocks": lock_blocks,
        "trace_fp": hex64(trace_fp),
        "faults": faults,
        "duration_us": (duration.as_micros() as u64),
    })
}

pub fn ev_counterexample(cx: &Counterexample) -> Value {
    json!({
        "type": "counterexample",
        "pass": cx.pass.name(),
        "index": cx.index,
        "seed": hex64(cx.seed),
        "outcome": OutcomeKind::of(&cx.outcome).name(),
        "crash_points": cx.crash_points,
        "schedule_prefix": cx.schedule_prefix,
        "faults": cx.faults.compact(),
    })
}

pub fn ev_run_end(report: &CheckReport) -> Value {
    let mut outcomes = serde_json::Map::new();
    for (name, n) in report.outcomes.entries() {
        outcomes.insert(name.to_string(), serde_json::to_value(&n));
    }
    json!({
        "type": "run_end",
        "scenario": report.name,
        "passed": report.passed(),
        "executions": report.executions,
        "total_steps": report.total_steps,
        "crashes_injected": report.crashes_injected,
        "crash_points": report.crash_points,
        "fault_plans": report.fault_plans,
        "counterexamples": report.counterexamples.len(),
        "outcomes": Value::Object(outcomes),
        "crash_points_exercised": report.coverage.crash_points_exercised,
        "crash_points_enumerable": report.coverage.crash_points_enumerable,
        "fault_plans_exercised": report.coverage.fault_plans_exercised(),
        "fault_plans_enumerable": report.coverage.fault_plans_enumerable(),
        "distinct_traces": report.coverage.distinct_traces,
        "strategy": report.strategy,
        "pruned": report.pruned,
        "coverage_guided": report.coverage_guided,
        "workers": report.workers,
        "wall_time_s": report.wall_time.as_secs_f64(),
        "execs_per_sec": report.execs_per_sec,
    })
}

/// Keys whose values are wall-clock dependent. Strip these before
/// comparing two streams of the same seeded run for byte equality.
pub const TIMING_KEYS: [&str; 3] = ["duration_us", "wall_time_s", "execs_per_sec"];

/// Validates one JSONL line: parseable, an object, with a string
/// `type`. Returns the event type.
pub fn validate_json_line(line: &str) -> Result<String, String> {
    let v = serde_json::from_str(line).map_err(|e| e.to_string())?;
    let Value::Object(map) = &v else {
        return Err("telemetry line is not a JSON object".to_string());
    };
    match map.get("type") {
        Some(Value::String(t)) => Ok(t.clone()),
        _ => Err("telemetry line has no string \"type\" field".to_string()),
    }
}

/// Rebuilds a parsed event without its [`TIMING_KEYS`] (recursively) —
/// the canonical form for byte-stability comparisons.
pub fn strip_timing(v: &Value) -> Value {
    match v {
        Value::Object(map) => {
            let mut out = serde_json::Map::new();
            for (k, val) in map.iter() {
                if !TIMING_KEYS.contains(&k.as_str()) {
                    out.insert(k.clone(), strip_timing(val));
                }
            }
            Value::Object(out)
        }
        Value::Array(items) => Value::Array(items.iter().map(strip_timing).collect()),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_emits_one_line_per_event() {
        let (sink, buf) = TelemetrySink::shared_buffer();
        sink.emit(&json!({ "type": "run_start", "scenario": "t" }));
        sink.emit(&json!({ "type": "run_end" }));
        let text = String::from_utf8(buf.lock().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(validate_json_line(lines[0]).unwrap(), "run_start");
        assert_eq!(validate_json_line(lines[1]).unwrap(), "run_end");
    }

    #[test]
    fn clones_share_the_stream() {
        let (sink, buf) = TelemetrySink::shared_buffer();
        let clone = sink.clone();
        sink.emit(&json!({ "type": "a" }));
        clone.emit(&json!({ "type": "b" }));
        let text = String::from_utf8(buf.lock().clone()).unwrap();
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn metrics_sink_counts_and_renders_progress() {
        let sink = MetricsSink::default();
        assert_eq!(sink.record_exec(10, false), 1);
        assert_eq!(sink.record_exec(5, true), 2);
        assert_eq!(sink.executions(), 2);
        assert_eq!(sink.steps(), 15);
        assert_eq!(sink.failures(), 1);
        let line = sink.progress_line("demo", Duration::from_secs(1));
        assert!(line.contains("demo: 2 execs"), "{line}");
        assert!(line.contains("1 failures"), "{line}");
    }

    #[test]
    fn strip_timing_removes_only_timing_keys() {
        let v = json!({
            "type": "exec_done",
            "steps": 7,
            "duration_us": 123,
            "nested": { "wall_time_s": 0.5, "kept": true },
        });
        let stripped = strip_timing(&v);
        let text = serde_json::to_string(&stripped).unwrap();
        assert!(!text.contains("duration_us"), "{text}");
        assert!(!text.contains("wall_time_s"), "{text}");
        assert!(text.contains("\"steps\": 7"), "{text}");
        assert!(text.contains("\"kept\": true"), "{text}");
    }

    #[test]
    fn validate_rejects_non_events() {
        assert!(validate_json_line("not json").is_err());
        assert!(validate_json_line("[1,2]").is_err());
        assert!(validate_json_line("{\"no_type\": 1}").is_err());
    }

    #[test]
    fn big_seeds_survive_as_hex() {
        let seed = u64::MAX - 12345;
        let v = ev_exec_done(
            Pass::Dfs,
            0,
            seed,
            OutcomeKind::Ok,
            1,
            1,
            0,
            0,
            0xdead_beef,
            "-",
            Duration::ZERO,
        );
        let text = serde_json::to_string(&v).unwrap();
        assert!(text.contains(&format!("{seed:#x}")), "{text}");
        assert!(text.contains("0xdeadbeef"), "{text}");
    }
}
