//! Telemetry: the explorer's structured JSONL event stream, live
//! counters, and the periodic progress line.
//!
//! Everything here is a **side channel**: sinks observe the exploration
//! but feed nothing back into scheduling, seeding, or counterexample
//! selection, so a run with telemetry enabled reports byte-for-byte the
//! same [`crate::Counterexample`] as one without (pinned by
//! `tests/telemetry.rs`). Two kinds of state live here:
//!
//! - [`TelemetrySink`] — a shared JSONL writer. One JSON object per
//!   line, schema documented in DESIGN.md §11: `run_start`,
//!   `pass_start`, `exec_done`, `counterexample`, `run_end`. Event
//!   *content* is deterministic (timing fields excepted); event *order*
//!   is completion order, so it is canonical at `workers = 1` and
//!   interleaved-but-complete at higher pool sizes.
//! - [`MetricsSink`] — lock-free live counters the worker pool bumps as
//!   executions finish, feeding the opt-in progress line
//!   ([`CheckConfig::progress_every`](crate::CheckConfig)). These are
//!   wall-clock-ordered and therefore *not* the numbers reported in
//!   [`crate::CheckReport`]; the deterministic ones are computed in
//!   `explore.rs` from canonical job outcomes (see [`crate::metrics`]).

use crate::explore::{CheckConfig, CheckReport, Counterexample};
use crate::metrics::OutcomeKind;
use crate::pass::Pass;
use parking_lot::Mutex;
use serde_json::{json, Value};
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared handle to a JSONL event stream. Cloning shares the
/// underlying writer (all clones append to the same stream).
#[derive(Clone)]
pub struct TelemetrySink {
    writer: Arc<Mutex<Box<dyn Write + Send>>>,
    /// First write error, if any. Telemetry never aborts a check, but a
    /// campaign resuming from this stream would silently lose progress,
    /// so the error surfaces in `CheckReport::incomplete`.
    error: Arc<Mutex<Option<String>>>,
}

impl std::fmt::Debug for TelemetrySink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetrySink").finish_non_exhaustive()
    }
}

impl TelemetrySink {
    /// Streams events into any writer (a file, a pipe, a test buffer).
    pub fn to_writer(w: impl Write + Send + 'static) -> Self {
        TelemetrySink {
            writer: Arc::new(Mutex::new(Box::new(w))),
            error: Arc::new(Mutex::new(None)),
        }
    }

    /// Creates (truncates) a JSONL file at `path`.
    pub fn to_file(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let f = std::fs::File::create(path)?;
        Ok(Self::to_writer(std::io::BufWriter::new(f)))
    }

    /// Opens `path` for appending, creating it if absent — the WAL mode
    /// used when a resumed run checkpoints into the stream it replayed.
    pub fn append_file(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Self::to_writer(std::io::BufWriter::new(f)))
    }

    /// A sink backed by an in-memory buffer, plus the buffer — the
    /// test-side way to capture and inspect a stream.
    pub fn shared_buffer() -> (Self, Arc<Mutex<Vec<u8>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        (TelemetrySink::to_writer(SharedBuf(Arc::clone(&buf))), buf)
    }

    /// Appends one event as a compact JSON line. Write errors never
    /// abort the check; the first one is recorded and surfaced via
    /// [`TelemetrySink::last_error`].
    pub fn emit(&self, event: &Value) {
        let line = serde_json::to_string(event).expect("shim serialization is infallible");
        let mut w = self.writer.lock();
        let r = w
            .write_all(line.as_bytes())
            .and_then(|()| w.write_all(b"\n"))
            .and_then(|()| w.flush());
        if let Err(e) = r {
            let mut slot = self.error.lock();
            if slot.is_none() {
                *slot = Some(e.to_string());
            }
        }
    }

    /// The first write error this sink hit, if any.
    pub fn last_error(&self) -> Option<String> {
        self.error.lock().clone()
    }
}

struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Live, lock-free counters the worker pool bumps per finished
/// execution. Wall-clock ordered — the progress line's feed, not the
/// report's.
#[derive(Debug, Default)]
pub struct MetricsSink {
    executions: AtomicU64,
    steps: AtomicU64,
    failures: AtomicU64,
}

impl MetricsSink {
    /// Records one finished execution; returns the new execution count
    /// (the progress-line trigger).
    pub fn record_exec(&self, steps: u64, failed: bool) -> u64 {
        self.steps.fetch_add(steps, Ordering::Relaxed);
        if failed {
            self.failures.fetch_add(1, Ordering::Relaxed);
        }
        self.executions.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Executions finished so far.
    pub fn executions(&self) -> u64 {
        self.executions.load(Ordering::Relaxed)
    }

    /// Scheduler steps granted so far, summed over all executions.
    pub fn steps(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }

    /// Executions that ended in a failure outcome so far.
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// The progress line printed every N executions (stderr, so it
    /// never pollutes piped report output).
    pub fn progress_line(&self, name: &str, since_start: Duration) -> String {
        let execs = self.executions();
        let rate = execs as f64 / since_start.as_secs_f64().max(1e-9);
        format!(
            "[checker] {name}: {execs} execs, {} steps, {} failures, {rate:.0} execs/s",
            self.steps(),
            self.failures()
        )
    }
}

/// Per-run telemetry context threaded through the explorer: the
/// optional event stream, the live counters, and the progress cadence.
pub struct RunTelemetry {
    /// The JSONL event stream, when one was configured and opened.
    pub stream: Option<TelemetrySink>,
    /// Live in-memory counters backing the progress line.
    pub live: MetricsSink,
    /// Print the progress line every this many executions (0 = never).
    pub progress_every: u64,
    /// When the run started, for the execs/s rate in the progress line.
    pub start: Instant,
    /// Scenario name, stamped onto every emitted record.
    pub name: String,
    /// Set when the configured telemetry file could not be opened: the
    /// run degrades to in-memory metrics instead of aborting, and the
    /// report is marked incomplete (no checkpoint was written).
    pub open_error: Option<String>,
}

impl RunTelemetry {
    /// Builds the telemetry context for one run, opening the configured
    /// stream (shared sink, or file path — appending when resuming into
    /// the same file the WAL was replayed from).
    pub fn new(name: &str, config: &CheckConfig) -> Self {
        let mut open_error = None;
        let stream = config.telemetry.clone().or_else(|| {
            config.telemetry_path.as_ref().and_then(|p| {
                // Resuming into the same file the WAL was replayed from
                // must append; every other open truncates as before.
                let same = config.resume_from.as_deref() == Some(p.as_path());
                let opened = if same {
                    TelemetrySink::append_file(p)
                } else {
                    TelemetrySink::to_file(p)
                };
                match opened {
                    Ok(sink) => Some(sink),
                    Err(e) => {
                        let msg = format!("telemetry file {}: {e}", p.display());
                        eprintln!("[checker] {name}: {msg}; continuing without a stream");
                        open_error = Some(msg);
                        None
                    }
                }
            })
        });
        RunTelemetry {
            stream,
            live: MetricsSink::default(),
            progress_every: config.progress_every,
            start: Instant::now(),
            name: name.to_string(),
            open_error,
        }
    }

    /// The first write error the stream hit, if any.
    pub fn stream_error(&self) -> Option<String> {
        self.stream.as_ref().and_then(|s| s.last_error())
    }

    /// Writes one event to the stream (no-op when no stream is open),
    /// stamping the scenario name onto records that lack one.
    pub fn emit(&self, event: &Value) {
        if let Some(stream) = &self.stream {
            // Stamp every record with its scenario, so streams holding
            // several runs (scenario_smoke --telemetry appends all
            // scenarios to one file) stay attributable line-by-line.
            let mut v = event.clone();
            if let Value::Object(map) = &mut v {
                if map.get("scenario").is_none() {
                    map.insert("scenario".to_string(), Value::String(self.name.clone()));
                }
            }
            stream.emit(&v);
        }
    }

    /// Bumps the live counters and prints the progress line when the
    /// cadence says so.
    pub fn exec_finished(&self, steps: u64, failed: bool) {
        let n = self.live.record_exec(steps, failed);
        if self.progress_every > 0 && n.is_multiple_of(self.progress_every) {
            eprintln!(
                "{}",
                self.live.progress_line(&self.name, self.start.elapsed())
            );
        }
    }
}

/// 64-bit values (seeds, fingerprints) go into JSON as hex strings: the
/// shim's numbers are f64 and would silently round above 2^53. Always
/// zero-padded to 16 hex digits (18 chars with the `0x` prefix) so hex
/// fields are fixed-width, lexicographically ordered, and trivially
/// greppable across a campaign's worth of streams.
fn hex64(v: u64) -> String {
    format!("{v:#018x}")
}

/// Where a record was produced: toolchain, crate version, worker count,
/// and strategy. Stamped on every `run_start` record and on campaign
/// report JSON / perf baselines, so streams and baselines from
/// different machines are comparable — a perf diff against a baseline
/// built by a different rustc or worker count is flagged, not silently
/// trusted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EnvStamp {
    /// `rustc --version` of the compiler that built the checker.
    pub rustc: String,
    /// The checker crate's own version (`CARGO_PKG_VERSION`).
    pub crate_version: String,
    /// Worker-thread count the run used.
    pub workers: u64,
    /// Exploration strategy name (`exhaustive`, `dpor`, `coverage`).
    pub strategy: String,
}

impl EnvStamp {
    /// The stamp for this build and run configuration.
    pub fn current(workers: u64, strategy: &str) -> Self {
        EnvStamp {
            rustc: env!("CHECKER_RUSTC_VERSION").to_string(),
            crate_version: env!("CARGO_PKG_VERSION").to_string(),
            workers,
            strategy: strategy.to_string(),
        }
    }

    /// Serializes the stamp as the `env` object of a `run_start` record.
    pub fn to_json(&self) -> Value {
        json!({
            "rustc": self.rustc,
            "crate_version": self.crate_version,
            "workers": self.workers,
            "strategy": self.strategy,
        })
    }

    /// Parses a stamp back out of report/baseline JSON; `None` when any
    /// field is missing or mistyped.
    pub fn from_json(v: &Value) -> Option<EnvStamp> {
        let Value::Object(m) = v else { return None };
        let s = |key: &str| match m.get(key) {
            Some(Value::String(s)) => Some(s.clone()),
            _ => None,
        };
        Some(EnvStamp {
            rustc: s("rustc")?,
            crate_version: s("crate_version")?,
            workers: match m.get("workers") {
                Some(Value::Number(n)) if *n >= 0.0 => *n as u64,
                _ => return None,
            },
            strategy: s("strategy")?,
        })
    }
}

/// The `run_start` record: the full deterministic configuration of the
/// run. Deliberately excludes observer-only knobs (trace capture,
/// profiling, shrinking) so enabling them never invalidates a WAL.
pub fn ev_run_start(name: &str, config: &CheckConfig, workers: usize) -> Value {
    json!({
        "type": "run_start",
        "scenario": name,
        "seed": hex64(config.seed),
        "workers": workers,
        "env": EnvStamp::current(workers as u64, config.strategy.name()).to_json(),
        "max_steps": config.max_steps,
        "dfs_max_executions": config.dfs_max_executions,
        "random_samples": config.random_samples,
        "random_crash_samples": config.random_crash_samples,
        "passes": config.passes.iter().map(Pass::name).collect::<Vec<_>>(),
        "strategy": config.strategy.name(),
        "keep_going": config.keep_going,
        "shard": config.shard.map(|(i, n)| format!("{i}/{n}")),
        "exec_budget": config.exec_budget,
    })
}

/// The `pass_start` record: a pass began enumerating jobs.
pub fn ev_pass_start(pass: Pass) -> Value {
    json!({
        "type": "pass_start",
        "pass": pass.name(),
        "rank": pass.rank(),
    })
}

/// Closes a pass with its wall-time profile. `duration_us` is a
/// [`TIMING_KEYS`] member, so byte-stability comparisons see a stable
/// record while dashboards get a per-pass wall profile.
pub fn ev_pass_end(pass: Pass, duration: Duration) -> Value {
    json!({
        "type": "pass_end",
        "pass": pass.name(),
        "rank": pass.rank(),
        "duration_us": (duration.as_micros() as u64),
    })
}

/// One finished execution, as recorded in the JSONL stream. The record
/// doubles as the campaign WAL entry: it carries every deterministic
/// statistic a resumed run needs to reconstruct the execution's
/// outcome record without re-running it.
#[derive(Debug, Clone)]
pub struct ExecEvent<'a> {
    /// Which pass produced this execution.
    pub pass: Pass,
    /// The execution's index within its pass (job key = rank + index).
    pub index: u64,
    /// The per-execution PRNG seed.
    pub seed: u64,
    /// How the execution ended.
    pub outcome: OutcomeKind,
    /// Scheduler grants consumed.
    pub steps: u64,
    /// Deepest schedule depth reached.
    pub depth: u64,
    /// Crashes injected during the execution.
    pub crashes: u64,
    /// Helping steps granted to blocked threads.
    pub helped: u64,
    /// Times a thread blocked on a contended lock.
    pub lock_blocks: u64,
    /// Total disk operations (reads + writes + flushes).
    pub disk_ops: u64,
    /// Total network messages (sends + receives).
    pub net_msgs: u64,
    /// Disk reads performed.
    pub disk_reads: u64,
    /// Disk writes performed.
    pub disk_writes: u64,
    /// Disk flushes performed.
    pub disk_flushes: u64,
    /// Network sends performed.
    pub net_sends: u64,
    /// Network receives performed.
    pub net_recvs: u64,
    /// FNV fingerprint of the execution's ghost trace.
    pub trace_fp: u64,
    /// Compact description of the fault plan in force (empty = none).
    pub faults: &'a str,
    /// Wall-clock time the execution took (a [`TIMING_KEYS`] field).
    pub duration: Duration,
}

/// The `exec_done` record (also the campaign WAL entry) for one
/// finished execution.
pub fn ev_exec_done(e: &ExecEvent<'_>) -> Value {
    json!({
        "type": "exec_done",
        "pass": e.pass.name(),
        "index": e.index,
        "seed": hex64(e.seed),
        "outcome": e.outcome.name(),
        "steps": e.steps,
        "depth": e.depth,
        "crashes": e.crashes,
        "helped": e.helped,
        "lock_blocks": e.lock_blocks,
        "disk_ops": e.disk_ops,
        "net_msgs": e.net_msgs,
        "disk_reads": e.disk_reads,
        "disk_writes": e.disk_writes,
        "disk_flushes": e.disk_flushes,
        "net_sends": e.net_sends,
        "net_recvs": e.net_recvs,
        "trace_fp": hex64(e.trace_fp),
        "faults": e.faults,
        "duration_us": (e.duration.as_micros() as u64),
    })
}

/// The `counterexample` record: the replay coordinates of one failure
/// (pass, index, seed, schedule prefix, crash points, fault plan).
pub fn ev_counterexample(cx: &Counterexample) -> Value {
    json!({
        "type": "counterexample",
        "pass": cx.pass.name(),
        "index": cx.index,
        "seed": hex64(cx.seed),
        "outcome": OutcomeKind::of(&cx.outcome).name(),
        "crash_points": cx.crash_points,
        "schedule_prefix": cx.schedule_prefix,
        "faults": cx.faults.compact(),
    })
}

/// The `run_end` record: the report's deterministic totals and verdict.
/// Shrink statistics are appended only when shrinking ran, so
/// shrink-off streams stay byte-identical to pre-shrink ones.
pub fn ev_run_end(report: &CheckReport) -> Value {
    let mut outcomes = serde_json::Map::new();
    for (name, n) in report.outcomes.entries() {
        outcomes.insert(name.to_string(), serde_json::to_value(&n));
    }
    let mut ev = json!({
        "type": "run_end",
        "scenario": report.name,
        "passed": report.passed(),
        "executions": report.executions,
        "total_steps": report.total_steps,
        "crashes_injected": report.crashes_injected,
        "crash_points": report.crash_points,
        "fault_plans": report.fault_plans,
        "disk_reads": report.disk_reads,
        "disk_writes": report.disk_writes,
        "disk_flushes": report.disk_flushes,
        "net_sends": report.net_sends,
        "net_recvs": report.net_recvs,
        "counterexamples": report.counterexamples.len(),
        "outcomes": Value::Object(outcomes),
        "crash_points_exercised": report.coverage.crash_points_exercised,
        "crash_points_enumerable": report.coverage.crash_points_enumerable,
        "fault_plans_exercised": report.coverage.fault_plans_exercised(),
        "fault_plans_enumerable": report.coverage.fault_plans_enumerable(),
        "distinct_traces": report.coverage.distinct_traces,
        "strategy": report.strategy,
        "pruned": report.pruned,
        "coverage_guided": report.coverage_guided,
        "shard": report.shard.map(|(i, n)| format!("{i}/{n}")),
        "replayed": report.replayed,
        "incomplete": report.incomplete,
        "workers": report.workers,
        "wall_time_s": report.wall_time.as_secs_f64(),
        "execs_per_sec": report.execs_per_sec,
    });
    // Shrink bookkeeping rides along only when shrinking actually ran,
    // so shrink-off streams stay byte-identical to pre-shrink ones.
    if let Some(s) = &report.shrink {
        if let Value::Object(map) = &mut ev {
            map.insert(
                "shrink_steps_removed".to_string(),
                serde_json::to_value(&s.steps_removed),
            );
            map.insert("shrink_rounds".to_string(), serde_json::to_value(&s.rounds));
            map.insert(
                "shrink_re_runs".to_string(),
                serde_json::to_value(&s.re_runs),
            );
        }
    }
    ev
}

/// Keys whose values are wall-clock dependent. Strip these before
/// comparing two streams of the same seeded run for byte equality.
/// `busy_time_us` and `utilization` appear only in profile JSON
/// ([`crate::profile::profile_to_json`]), never in telemetry events, so
/// extending the list cannot destabilize existing streams.
pub const TIMING_KEYS: [&str; 5] = [
    "duration_us",
    "wall_time_s",
    "execs_per_sec",
    "busy_time_us",
    "utilization",
];

/// Validates one JSONL line: parseable, an object, with a string
/// `type`. Returns the event type.
pub fn validate_json_line(line: &str) -> Result<String, String> {
    let v = serde_json::from_str(line).map_err(|e| e.to_string())?;
    let Value::Object(map) = &v else {
        return Err("telemetry line is not a JSON object".to_string());
    };
    match map.get("type") {
        Some(Value::String(t)) => Ok(t.clone()),
        _ => Err("telemetry line has no string \"type\" field".to_string()),
    }
}

/// Deterministic statistics of one completed execution, recovered from
/// an `exec_done` WAL record. Everything a resumed run needs to
/// synthesize the execution's outcome without re-running it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalExec {
    /// Scheduler grants the execution consumed.
    pub steps: u64,
    /// Crashes injected during the execution.
    pub crashes: u64,
    /// Helping steps granted to blocked threads.
    pub helped: u64,
    /// Deepest schedule depth reached.
    pub depth: u64,
    /// Total disk operations.
    pub disk_ops: u64,
    /// Total network messages.
    pub net_msgs: u64,
    /// Disk reads performed.
    pub disk_reads: u64,
    /// Disk writes performed.
    pub disk_writes: u64,
    /// Disk flushes performed.
    pub disk_flushes: u64,
    /// Network sends performed.
    pub net_sends: u64,
    /// Network receives performed.
    pub net_recvs: u64,
    /// Lock-contention count, preserved across resume so profiles built
    /// from replayed outcomes keep their per-pass totals (per-lock
    /// attribution is not in the WAL and resets to empty on replay).
    pub lock_blocks: u64,
    /// FNV fingerprint of the execution's ghost trace.
    pub trace_fp: u64,
}

/// The recovered state of an interrupted (or completed) run: which
/// executions finished, plus enough metadata to sanity-check that the
/// WAL belongs to the configuration about to resume.
#[derive(Debug, Clone, Default)]
pub struct WalReplay {
    /// Successfully completed executions by job key `(pass rank, index)`.
    /// Only `ok` outcomes are recorded: failures are cheap to re-run and
    /// must be, to regenerate their counterexample payloads.
    pub completed: std::collections::BTreeMap<(u8, u64), WalExec>,
    /// Number of `run_start` records seen (1 = first resume of a clean
    /// run; more = the WAL has been resumed into before).
    pub runs_started: u64,
    /// Lines that failed to parse — a SIGKILL mid-write leaves at most
    /// one torn final line, which replay tolerates and drops.
    pub torn_lines: u64,
    /// The last `run_start` record, for the config guard.
    pub run_start: Option<Value>,
}

fn field_u64(map: &serde_json::Map, key: &str) -> Option<u64> {
    match map.get(key) {
        Some(Value::Number(n)) if *n >= 0.0 => Some(*n as u64),
        _ => None,
    }
}

fn field_hex(map: &serde_json::Map, key: &str) -> Option<u64> {
    match map.get(key) {
        Some(Value::String(s)) => u64::from_str_radix(s.trim_start_matches("0x"), 16).ok(),
        _ => None,
    }
}

/// Parses a JSONL telemetry stream as a write-ahead log for `scenario`.
///
/// Tolerant by construction: unparseable lines (torn tails from a
/// mid-write kill) are counted and dropped, records for other scenarios
/// are skipped, and `exec_done` records missing required fields are
/// ignored rather than trusted.
pub fn parse_wal(text: &str, scenario: &str) -> WalReplay {
    let mut wal = WalReplay::default();
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(Value::Object(map)) = serde_json::from_str(line) else {
            wal.torn_lines += 1;
            continue;
        };
        let ty = match map.get("type") {
            Some(Value::String(t)) => t.clone(),
            _ => {
                wal.torn_lines += 1;
                continue;
            }
        };
        // Streams can hold several scenarios (scenario_smoke appends
        // all of them to one file); replay only this scenario's lines.
        match map.get("scenario") {
            Some(Value::String(s)) if s != scenario => continue,
            _ => {}
        }
        match ty.as_str() {
            "run_start" => {
                wal.runs_started += 1;
                wal.run_start = Some(Value::Object(map));
            }
            "exec_done" => {
                let Some(Value::String(pass)) = map.get("pass") else {
                    continue;
                };
                let Ok(pass) = pass.parse::<Pass>() else {
                    continue;
                };
                if !matches!(map.get("outcome"), Some(Value::String(o)) if o == "ok") {
                    continue;
                }
                let (Some(index), Some(steps), Some(trace_fp)) = (
                    field_u64(&map, "index"),
                    field_u64(&map, "steps"),
                    field_hex(&map, "trace_fp"),
                ) else {
                    continue;
                };
                wal.completed.insert(
                    (pass.rank(), index),
                    WalExec {
                        steps,
                        crashes: field_u64(&map, "crashes").unwrap_or(0),
                        helped: field_u64(&map, "helped").unwrap_or(0),
                        depth: field_u64(&map, "depth").unwrap_or(0),
                        disk_ops: field_u64(&map, "disk_ops").unwrap_or(0),
                        net_msgs: field_u64(&map, "net_msgs").unwrap_or(0),
                        disk_reads: field_u64(&map, "disk_reads").unwrap_or(0),
                        disk_writes: field_u64(&map, "disk_writes").unwrap_or(0),
                        disk_flushes: field_u64(&map, "disk_flushes").unwrap_or(0),
                        net_sends: field_u64(&map, "net_sends").unwrap_or(0),
                        net_recvs: field_u64(&map, "net_recvs").unwrap_or(0),
                        lock_blocks: field_u64(&map, "lock_blocks").unwrap_or(0),
                        trace_fp,
                    },
                );
            }
            _ => {}
        }
    }
    wal
}

/// Reads `path` and parses it as a WAL for `scenario`. Invalid UTF-8 is
/// replaced rather than fatal — the log survives arbitrary torn tails.
pub fn read_wal(path: impl AsRef<Path>, scenario: &str) -> std::io::Result<WalReplay> {
    let bytes = std::fs::read(path)?;
    Ok(parse_wal(&String::from_utf8_lossy(&bytes), scenario))
}

/// Rebuilds a parsed event without its [`TIMING_KEYS`] (recursively) —
/// the canonical form for byte-stability comparisons.
pub fn strip_timing(v: &Value) -> Value {
    match v {
        Value::Object(map) => {
            let mut out = serde_json::Map::new();
            for (k, val) in map.iter() {
                if !TIMING_KEYS.contains(&k.as_str()) {
                    out.insert(k.clone(), strip_timing(val));
                }
            }
            Value::Object(out)
        }
        Value::Array(items) => Value::Array(items.iter().map(strip_timing).collect()),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_emits_one_line_per_event() {
        let (sink, buf) = TelemetrySink::shared_buffer();
        sink.emit(&json!({ "type": "run_start", "scenario": "t" }));
        sink.emit(&json!({ "type": "run_end" }));
        let text = String::from_utf8(buf.lock().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(validate_json_line(lines[0]).unwrap(), "run_start");
        assert_eq!(validate_json_line(lines[1]).unwrap(), "run_end");
    }

    #[test]
    fn clones_share_the_stream() {
        let (sink, buf) = TelemetrySink::shared_buffer();
        let clone = sink.clone();
        sink.emit(&json!({ "type": "a" }));
        clone.emit(&json!({ "type": "b" }));
        let text = String::from_utf8(buf.lock().clone()).unwrap();
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn metrics_sink_counts_and_renders_progress() {
        let sink = MetricsSink::default();
        assert_eq!(sink.record_exec(10, false), 1);
        assert_eq!(sink.record_exec(5, true), 2);
        assert_eq!(sink.executions(), 2);
        assert_eq!(sink.steps(), 15);
        assert_eq!(sink.failures(), 1);
        let line = sink.progress_line("demo", Duration::from_secs(1));
        assert!(line.contains("demo: 2 execs"), "{line}");
        assert!(line.contains("1 failures"), "{line}");
    }

    #[test]
    fn strip_timing_removes_only_timing_keys() {
        let v = json!({
            "type": "exec_done",
            "steps": 7,
            "duration_us": 123,
            "nested": { "wall_time_s": 0.5, "kept": true },
        });
        let stripped = strip_timing(&v);
        let text = serde_json::to_string(&stripped).unwrap();
        assert!(!text.contains("duration_us"), "{text}");
        assert!(!text.contains("wall_time_s"), "{text}");
        assert!(text.contains("\"steps\": 7"), "{text}");
        assert!(text.contains("\"kept\": true"), "{text}");
    }

    #[test]
    fn validate_rejects_non_events() {
        assert!(validate_json_line("not json").is_err());
        assert!(validate_json_line("[1,2]").is_err());
        assert!(validate_json_line("{\"no_type\": 1}").is_err());
    }

    fn exec_event(seed: u64, outcome: OutcomeKind) -> Value {
        ev_exec_done(&ExecEvent {
            pass: Pass::Dfs,
            index: 0,
            seed,
            outcome,
            steps: 7,
            depth: 3,
            crashes: 1,
            helped: 2,
            lock_blocks: 6,
            disk_ops: 4,
            net_msgs: 5,
            disk_reads: 11,
            disk_writes: 12,
            disk_flushes: 13,
            net_sends: 14,
            net_recvs: 15,
            trace_fp: 0xdead_beef,
            faults: "-",
            duration: Duration::ZERO,
        })
    }

    #[test]
    fn big_seeds_survive_as_hex() {
        let seed = u64::MAX - 12345;
        let text = serde_json::to_string(&exec_event(seed, OutcomeKind::Ok)).unwrap();
        assert!(text.contains(&format!("{seed:#018x}")), "{text}");
        assert!(text.contains("0x00000000deadbeef"), "{text}");
    }

    /// Every hex-encoded 64-bit field in every event type is exactly 18
    /// characters: `0x` plus 16 zero-padded hex digits. Fixed width
    /// keeps the fields greppable and lexicographically ordered across a
    /// campaign's worth of streams.
    #[test]
    fn hex_fields_are_zero_padded_to_16_digits_in_every_event() {
        fn assert_hex_fields(v: &Value, keys: &[&str]) {
            let Value::Object(m) = v else {
                panic!("event is not an object");
            };
            for key in keys {
                let Some(Value::String(s)) = m.get(key) else {
                    panic!("missing hex field {key} in {v:?}");
                };
                assert_eq!(s.len(), 18, "{key}={s} is not 18 chars");
                assert!(s.starts_with("0x"), "{key}={s}");
                assert!(
                    s[2..].chars().all(|c| c.is_ascii_hexdigit()),
                    "{key}={s} has non-hex digits"
                );
                // Round-trips through the WAL parser's decoding.
                assert!(u64::from_str_radix(&s[2..], 16).is_ok(), "{key}={s}");
            }
        }
        let config = CheckConfig {
            seed: 0x1,
            ..CheckConfig::default()
        };
        assert_hex_fields(&ev_run_start("s", &config, 1), &["seed"]);
        assert_hex_fields(&exec_event(7, OutcomeKind::Ok), &["seed", "trace_fp"]);
        let cx = crate::Counterexample {
            outcome: crate::ExecOutcome::Deadlock,
            pass: Pass::CrashSweep,
            index: 3,
            seed: 0xbeef,
            schedule_prefix: vec![],
            crash_points: vec![2],
            clamped: vec![],
            faults: goose_rt::fault::FaultPlan::default(),
            trace: String::new(),
            timeline: None,
        };
        assert_hex_fields(&ev_counterexample(&cx), &["seed"]);
    }

    /// `strip_timing` is shape-preserving: an event with no timing keys
    /// anywhere — including nested objects and arrays — round-trips
    /// byte-identically.
    #[test]
    fn strip_timing_round_trips_nested_events_unchanged() {
        let v = json!({
            "type": "run_end",
            "outcomes": { "ok": 5, "deadlock": 0 },
            "incomplete": ["a", "b"],
            "nested": { "deep": [ json!({ "seed": "0x00000000000000ff" }) ] },
        });
        assert_eq!(strip_timing(&v), v);
        let text_before = serde_json::to_string(&v).unwrap();
        let text_after = serde_json::to_string(&strip_timing(&v)).unwrap();
        assert_eq!(text_before, text_after);
    }

    #[test]
    fn pass_end_carries_its_duration_as_a_timing_key() {
        let v = ev_pass_end(Pass::CrashSweep, Duration::from_micros(250));
        let Value::Object(m) = &v else {
            panic!("not an object")
        };
        assert_eq!(m.get("type"), Some(&Value::String("pass_end".into())));
        assert_eq!(m.get("duration_us"), Some(&Value::Number(250.0)));
        // The duration is stripped for byte-stability comparisons.
        let stripped = strip_timing(&v);
        let Value::Object(sm) = &stripped else {
            panic!("not an object")
        };
        assert!(sm.get("duration_us").is_none());
        assert_eq!(sm.get("pass"), Some(&Value::String("crash-sweep".into())));
    }

    #[test]
    fn wal_round_trips_ok_executions_and_skips_failures() {
        let mut text = String::new();
        let mut ok = exec_event(42, OutcomeKind::Ok);
        if let Value::Object(m) = &mut ok {
            m.insert("scenario".into(), Value::String("s".into()));
        }
        text.push_str(&serde_json::to_string(&ok).unwrap());
        text.push('\n');
        let mut bad = exec_event(43, OutcomeKind::Violation);
        if let Value::Object(m) = &mut bad {
            m.insert("index".into(), Value::Number(9.0));
            m.insert("scenario".into(), Value::String("s".into()));
        }
        text.push_str(&serde_json::to_string(&bad).unwrap());
        text.push('\n');
        let wal = parse_wal(&text, "s");
        assert_eq!(wal.completed.len(), 1, "violations must not be replayed");
        let w = &wal.completed[&(Pass::Dfs.rank(), 0)];
        assert_eq!(
            *w,
            WalExec {
                steps: 7,
                crashes: 1,
                helped: 2,
                depth: 3,
                disk_ops: 4,
                net_msgs: 5,
                disk_reads: 11,
                disk_writes: 12,
                disk_flushes: 13,
                net_sends: 14,
                net_recvs: 15,
                lock_blocks: 6,
                trace_fp: 0xdead_beef,
            }
        );
        assert_eq!(wal.torn_lines, 0);
    }

    #[test]
    fn wal_filters_by_scenario_and_tracks_run_starts() {
        let text = concat!(
            "{\"type\": \"run_start\", \"scenario\": \"a\", \"seed\": \"0x7\"}\n",
            "{\"type\": \"run_start\", \"scenario\": \"b\", \"seed\": \"0x8\"}\n",
        );
        let wal = parse_wal(text, "a");
        assert_eq!(wal.runs_started, 1);
        let Some(Value::Object(m)) = &wal.run_start else {
            panic!("missing run_start");
        };
        assert_eq!(m.get("seed"), Some(&Value::String("0x7".into())));
    }

    #[test]
    fn wal_survives_any_tail_truncation() {
        // A SIGKILL can land mid-write: replay must cope with the file
        // cut at *every* byte boundary, never panicking and never
        // inventing records.
        let mut text = String::new();
        for i in 0..3u64 {
            let mut ev = exec_event(i, OutcomeKind::Ok);
            if let Value::Object(m) = &mut ev {
                m.insert("index".into(), Value::Number(i as f64));
            }
            text.push_str(&serde_json::to_string(&ev).unwrap());
            text.push('\n');
        }
        let full = parse_wal(&text, "s").completed.len();
        assert_eq!(full, 3);
        for cut in 0..text.len() {
            let wal = parse_wal(&text[..cut], "s");
            assert!(wal.completed.len() <= full);
            assert!(
                wal.torn_lines <= 1,
                "cut at {cut}: {} torn lines",
                wal.torn_lines
            );
            // Every surviving record must be one of the originals.
            for (k, w) in &wal.completed {
                assert_eq!(k.0, Pass::Dfs.rank());
                assert_eq!(w.steps, 7, "cut at {cut} corrupted a record");
            }
        }
    }
}
