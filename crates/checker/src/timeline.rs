//! Counterexample explain timelines and Chrome-trace export.
//!
//! Consumes the [`ExecTrace`] the goose runtime records when
//! [`CheckConfig::trace_capture`](crate::CheckConfig::trace_capture) is
//! on (the default): the winning counterexample is re-run with the
//! recorder enabled and the resulting causal event stream is rendered
//! two ways —
//!
//! - [`render_explain`]: a per-thread ASCII timeline embedded in
//!   [`render_failure`](crate::render_failure), showing the exact
//!   interleaving, lock hand-offs, disk/net traffic, injected faults,
//!   the crash point, and which buffered writes were lost at the crash;
//! - [`chrome_trace_json`]: the Chrome trace-event JSON format, loadable
//!   in Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`, with
//!   causal edges exported as flow arrows.
//!
//! Both are pure functions of the trace, so their output is identical
//! across worker counts and shard splits for the same counterexample.

use goose_rt::trace::{ExecTrace, TraceEvent};
use serde_json::{json, Value};
use std::fmt::Write as _;

/// Synthetic Chrome-trace thread id for controller events (crashes,
/// fault injections outside any virtual thread).
const CONTROLLER_TID: u64 = 999;

/// Widest a thread column gets before labels are truncated with `…`.
const MAX_COL: usize = 34;

/// Grid rendering caps out here; busier traces fall back to a flat
/// one-event-per-line listing that stays readable at any thread count.
const MAX_GRID_THREADS: usize = 6;

fn truncate(label: &str, width: usize) -> String {
    if label.chars().count() <= width {
        return label.to_string();
    }
    let mut out: String = label.chars().take(width.saturating_sub(1)).collect();
    out.push('…');
    out
}

fn thread_header(tid: usize, name: &str) -> String {
    format!("t{tid}:{name}")
}

fn edge_note(ev: &TraceEvent) -> String {
    match ev.happens_after {
        Some(src) => format!("  ←{src}"),
        None => String::new(),
    }
}

/// Renders a per-thread ASCII timeline of a causal execution trace.
///
/// One row per event in global (virtual-clock) order: the left gutter is
/// the event's sequence number, thread events land in their thread's
/// column, and controller events (crash injection, torn-buffer
/// resolution) span the row as `--` banners. A `←n` suffix marks a
/// cross-thread causal edge — this event synchronises with the event at
/// seq `n` (a lock hand-off or a matched network send).
pub fn render_explain(trace: &ExecTrace) -> String {
    let mut out = String::new();
    if trace.events.is_empty() {
        out.push_str("  (empty trace)\n");
        return out;
    }
    writeln!(
        out,
        "  threads: {}",
        trace
            .threads
            .iter()
            .enumerate()
            .map(|(i, n)| format!("[t{i}] {n}"))
            .collect::<Vec<_>>()
            .join("  ")
    )
    .unwrap();
    out.push_str(
        "  (←n = causally after the event at seq n: a lock hand-off or a matched net send)\n\n",
    );

    if trace.threads.len() > MAX_GRID_THREADS {
        // Flat fallback: too many threads for columns.
        for ev in &trace.events {
            let who = match ev.tid {
                Some(t) => format!("t{t}"),
                None => "--".to_string(),
            };
            writeln!(
                out,
                "  {:>5} {:>4} {}{}",
                ev.seq,
                who,
                ev.kind.label(),
                edge_note(ev)
            )
            .unwrap();
        }
    } else {
        // Column widths: each thread's widest label (or its header),
        // capped so spec events can't blow the grid apart.
        let mut widths: Vec<usize> = trace
            .threads
            .iter()
            .enumerate()
            .map(|(i, n)| thread_header(i, n).len())
            .collect();
        for ev in &trace.events {
            if let Some(t) = ev.tid {
                if t < widths.len() {
                    let need = ev.kind.label().len() + edge_note(ev).len();
                    widths[t] = widths[t].max(need);
                }
            }
        }
        for w in &mut widths {
            *w = (*w).min(MAX_COL) + 2;
        }

        let mut header = format!("  {:>5}  ", "seq");
        for (i, name) in trace.threads.iter().enumerate() {
            let h = truncate(&thread_header(i, name), widths[i]);
            write!(header, "{h:<width$}", width = widths[i]).unwrap();
        }
        out.push_str(header.trim_end());
        out.push('\n');

        for ev in &trace.events {
            match ev.tid {
                Some(t) => {
                    let mut row = format!("  {:>5}  ", ev.seq);
                    for w in widths.iter().take(t.min(widths.len())) {
                        row.push_str(&" ".repeat(*w));
                    }
                    let width = widths.get(t).copied().unwrap_or(MAX_COL);
                    let label = format!("{}{}", ev.kind.label(), edge_note(ev));
                    row.push_str(&truncate(&label, width));
                    out.push_str(row.trim_end());
                    out.push('\n');
                }
                None => {
                    writeln!(out, "  {:>5}  -- {} --", ev.seq, ev.kind.label()).unwrap();
                }
            }
        }
    }
    if trace.truncated {
        out.push_str("  … trace truncated (event cap reached)\n");
    }
    out
}

/// Exports a causal trace in the Chrome trace-event JSON format.
///
/// Load the file at <https://ui.perfetto.dev> or `chrome://tracing`:
/// each virtual thread is a track (controller actions get their own),
/// the time axis is the virtual clock (one microsecond per trace seq),
/// and causal edges appear as flow arrows from the source event to the
/// dependent one.
pub fn chrome_trace_json(trace: &ExecTrace, scenario: &str) -> Value {
    let mut events: Vec<Value> = Vec::new();
    for (tid, name) in trace.threads.iter().enumerate() {
        events.push(json!({
            "ph": "M",
            "name": "thread_name",
            "pid": 0,
            "tid": tid as u64,
            "args": { "name": format!("t{tid} {name}") },
        }));
    }
    events.push(json!({
        "ph": "M",
        "name": "thread_name",
        "pid": 0,
        "tid": CONTROLLER_TID,
        "args": { "name": "controller" },
    }));
    for ev in &trace.events {
        let tid = ev.tid.map(|t| t as u64).unwrap_or(CONTROLLER_TID);
        events.push(json!({
            "ph": "X",
            "name": ev.kind.label(),
            "cat": ev.kind.category(),
            "pid": 0,
            "tid": tid,
            "ts": ev.seq,
            "dur": 1,
            "args": { "seq": ev.seq },
        }));
        if let Some(src) = ev.happens_after {
            let src_tid = trace
                .events
                .get(src as usize)
                .and_then(|e| e.tid)
                .map(|t| t as u64)
                .unwrap_or(CONTROLLER_TID);
            events.push(json!({
                "ph": "s",
                "name": "causal",
                "cat": "dep",
                "id": src,
                "pid": 0,
                "tid": src_tid,
                "ts": src,
            }));
            events.push(json!({
                "ph": "f",
                "bp": "e",
                "name": "causal",
                "cat": "dep",
                "id": src,
                "pid": 0,
                "tid": tid,
                "ts": ev.seq,
            }));
        }
    }
    json!({
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "scenario": scenario,
            "threads": trace.threads.len() as u64,
            "truncated": trace.truncated,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use goose_rt::trace::TraceKind;

    fn sample_trace() -> ExecTrace {
        ExecTrace {
            events: vec![
                TraceEvent {
                    seq: 0,
                    tid: Some(0),
                    kind: TraceKind::LockRelease { lock: 1 },
                    happens_after: None,
                },
                TraceEvent {
                    seq: 1,
                    tid: None,
                    kind: TraceKind::Crash { step: 4 },
                    happens_after: None,
                },
                TraceEvent {
                    seq: 2,
                    tid: Some(1),
                    kind: TraceKind::LockAcquire { lock: 1 },
                    happens_after: Some(0),
                },
            ],
            threads: vec!["writer".into(), "recovery".into()],
            truncated: false,
        }
    }

    #[test]
    fn explain_places_threads_in_columns_with_edges_and_banners() {
        let text = render_explain(&sample_trace());
        assert!(text.contains("[t0] writer"), "{text}");
        assert!(text.contains("lock 1 released"), "{text}");
        assert!(text.contains("-- CRASH at step 4 --"), "{text}");
        assert!(text.contains("lock 1 acquired  ←0"), "{text}");
        // The acquire sits in t1's column, i.e. to the right of where
        // the release was printed.
        let rel = text.lines().find(|l| l.contains("released")).unwrap();
        let acq = text.lines().find(|l| l.contains("acquired")).unwrap();
        let col = |line: &str, pat: &str| line.find(pat).unwrap();
        assert!(col(acq, "lock") > col(rel, "lock"), "{text}");
    }

    #[test]
    fn explain_is_deterministic_and_marks_truncation() {
        let mut t = sample_trace();
        assert_eq!(render_explain(&t), render_explain(&t.clone()));
        t.truncated = true;
        assert!(render_explain(&t).contains("trace truncated"));
    }

    #[test]
    fn chrome_export_has_the_documented_shape() {
        let v = chrome_trace_json(&sample_trace(), "demo");
        let Value::Object(top) = &v else {
            panic!("not an object")
        };
        let Some(Value::Array(events)) = top.get("traceEvents") else {
            panic!("missing traceEvents array")
        };
        // 2 thread metadata + controller metadata + 3 slices + 1 flow pair.
        assert_eq!(events.len(), 3 + 3 + 2);
        for ev in events {
            let Value::Object(m) = ev else {
                panic!("event not an object")
            };
            for key in ["ph", "name", "pid", "tid"] {
                assert!(m.get(key).is_some(), "missing {key} in {ev:?}");
            }
        }
        // Flow pair binds source seq 0 to the acquire at seq 2.
        let flows: Vec<&Value> = events
            .iter()
            .filter(|e| matches!(e, Value::Object(m) if m.get("cat") == Some(&Value::String("dep".into()))))
            .collect();
        assert_eq!(flows.len(), 2, "one s/f flow pair");
    }

    #[test]
    fn empty_trace_renders_without_panicking() {
        let t = ExecTrace::default();
        assert!(render_explain(&t).contains("empty trace"));
        let v = chrome_trace_json(&t, "x");
        assert!(serde_json::to_string(&v).unwrap().contains("traceEvents"));
    }
}
