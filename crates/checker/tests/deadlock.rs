//! The checker must also detect liveness-adjacent structural failures:
//! lock-order deadlocks surface as `ExecOutcome::Deadlock` (no runnable
//! thread, unfinished work) rather than hanging the explorer.

use goose_rt::runtime::ModelRtExt;
use perennial::GhostUnwrap;
use perennial_checker::{
    check, CheckConfig, ExecOutcome, Execution, Harness, Pass, ThreadBody, World,
};
use perennial_spec::fixtures::{RegOp, RegSpec};
use std::sync::Arc;

/// A two-lock system where thread A takes (L0, L1) and thread B takes
/// (L1, L0) — the classic ABBA deadlock, reachable under some schedules.
struct AbbaHarness;

struct AbbaExec {
    locks: Vec<Arc<dyn goose_rt::runtime::GLock>>,
}

impl Execution<RegSpec> for AbbaExec {
    fn boot(&mut self, w: &World<RegSpec>) {
        self.locks = vec![w.rt.new_glock(), w.rt.new_glock()];
    }

    fn threads(&mut self, w: &World<RegSpec>) -> Vec<(String, ThreadBody)> {
        let mut out: Vec<(String, ThreadBody)> = Vec::new();
        for (name, first, second) in [("ab", 0usize, 1usize), ("ba", 1, 0)] {
            let l1 = Arc::clone(&self.locks[first]);
            let l2 = Arc::clone(&self.locks[second]);
            let w2 = w.clone();
            out.push((
                name.into(),
                Box::new(move || {
                    let tok = w2.ghost.begin_op(RegOp::Read(0)).ghost_unwrap();
                    l1.acquire();
                    l2.acquire();
                    let ret = w2.ghost.commit_op(&tok).ghost_unwrap();
                    l2.release();
                    l1.release();
                    w2.ghost.finish_op(tok, &ret).ghost_unwrap();
                }),
            ));
        }
        out
    }

    fn crash_reset(&mut self, _w: &World<RegSpec>) {}

    fn recovery(&mut self, w: &World<RegSpec>) -> ThreadBody {
        let w2 = w.clone();
        Box::new(move || w2.ghost.recovery_done().ghost_unwrap())
    }
}

impl Harness<RegSpec> for AbbaHarness {
    fn spec(&self) -> RegSpec {
        RegSpec { size: 1 }
    }

    fn make(&self, _w: &World<RegSpec>) -> Box<dyn Execution<RegSpec>> {
        Box::new(AbbaExec { locks: Vec::new() })
    }

    fn name(&self) -> &str {
        "ABBA deadlock"
    }
}

#[test]
fn abba_deadlock_is_found_and_classified() {
    let report = check(
        &AbbaHarness,
        &CheckConfig::builder()
            .dfs_max_executions(200)
            .random_samples(0)
            .random_crash_samples(0)
            .without_passes([Pass::CrashSweep, Pass::NestedCrash])
            .build(),
    );
    let cx = report
        .counterexample
        .expect("DFS must reach the deadlocking interleaving");
    assert!(
        matches!(cx.outcome, ExecOutcome::Deadlock),
        "expected Deadlock, got {:?}",
        cx.outcome
    );
    assert!(
        !cx.schedule_prefix.is_empty(),
        "counterexample must carry its schedule for replay"
    );
}

/// The same structure with a consistent lock order never deadlocks.
struct OrderedHarness;

struct OrderedExec {
    locks: Vec<Arc<dyn goose_rt::runtime::GLock>>,
}

impl Execution<RegSpec> for OrderedExec {
    fn boot(&mut self, w: &World<RegSpec>) {
        self.locks = vec![w.rt.new_glock(), w.rt.new_glock()];
    }

    fn threads(&mut self, w: &World<RegSpec>) -> Vec<(String, ThreadBody)> {
        let mut out: Vec<(String, ThreadBody)> = Vec::new();
        for name in ["t1", "t2"] {
            let l0 = Arc::clone(&self.locks[0]);
            let l1 = Arc::clone(&self.locks[1]);
            let w2 = w.clone();
            out.push((
                name.into(),
                Box::new(move || {
                    let tok = w2.ghost.begin_op(RegOp::Read(0)).ghost_unwrap();
                    l0.acquire();
                    l1.acquire();
                    let ret = w2.ghost.commit_op(&tok).ghost_unwrap();
                    l1.release();
                    l0.release();
                    w2.ghost.finish_op(tok, &ret).ghost_unwrap();
                }),
            ));
        }
        out
    }

    fn crash_reset(&mut self, _w: &World<RegSpec>) {}

    fn recovery(&mut self, w: &World<RegSpec>) -> ThreadBody {
        let w2 = w.clone();
        Box::new(move || w2.ghost.recovery_done().ghost_unwrap())
    }
}

impl Harness<RegSpec> for OrderedHarness {
    fn spec(&self) -> RegSpec {
        RegSpec { size: 1 }
    }

    fn make(&self, _w: &World<RegSpec>) -> Box<dyn Execution<RegSpec>> {
        Box::new(OrderedExec { locks: Vec::new() })
    }

    fn name(&self) -> &str {
        "ordered locks"
    }
}

#[test]
fn consistent_lock_order_never_deadlocks() {
    let report = check(
        &OrderedHarness,
        &CheckConfig::builder()
            .dfs_max_executions(500)
            .random_samples(20)
            .random_crash_samples(0)
            .without_passes([Pass::CrashSweep, Pass::NestedCrash])
            .build(),
    );
    assert!(
        report.passed(),
        "counterexample: {:?}",
        report.counterexample
    );
    assert!(report.executions > 50, "DFS explored too little");
}
