//! Property tests for the Wing–Gong linearizability checker: histories
//! produced by an actual sequential execution are always accepted;
//! histories with impossible values are always rejected.

use perennial_checker::linearize::{check_linearizable, HistOp, Verdict};
use perennial_spec::fixtures::{RegOp, RegSpec};
use perennial_spec::Jid;
use proptest::prelude::*;
use std::collections::BTreeMap;

const NREGS: u64 = 4;

fn arb_op() -> impl Strategy<Value = RegOp> {
    prop_oneof![
        (0..NREGS).prop_map(RegOp::Read),
        (0..NREGS, 0u64..50).prop_map(|(a, v)| RegOp::Write(a, v)),
    ]
}

/// Executes ops sequentially against a reference, producing an
/// (obviously linearizable) history.
fn sequential_history(ops: &[RegOp]) -> Vec<HistOp<RegOp, Option<u64>>> {
    let mut state: BTreeMap<u64, u64> = (0..NREGS).map(|a| (a, 0)).collect();
    let mut hist = Vec::new();
    let mut clock = 0u64;
    for (i, op) in ops.iter().enumerate() {
        let ret = match op {
            RegOp::Read(a) => Some(state[a]),
            RegOp::Write(a, v) => {
                state.insert(*a, *v);
                None
            }
        };
        hist.push(HistOp {
            jid: Jid(i as u64),
            op: op.clone(),
            ret: Some(ret),
            invoked_at: clock,
            returned_at: clock + 1,
        });
        clock += 2;
    }
    hist
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every sequential execution is linearizable.
    #[test]
    fn sequential_histories_accepted(ops in proptest::collection::vec(arb_op(), 0..12)) {
        let spec = RegSpec { size: NREGS };
        let hist = sequential_history(&ops);
        prop_assert_eq!(
            check_linearizable(&spec, &hist, 1_000_000),
            Verdict::Linearizable
        );
    }

    /// Corrupting one completed read's value to something no write ever
    /// stored breaks linearizability.
    #[test]
    fn impossible_read_value_rejected(ops in proptest::collection::vec(arb_op(), 1..10)) {
        let spec = RegSpec { size: NREGS };
        let mut hist = sequential_history(&ops);
        // Find a read and corrupt it to a sentinel no write produces.
        let Some(pos) = hist.iter().position(|h| matches!(h.op, RegOp::Read(_))) else {
            return Ok(()); // no reads drawn; trivially skip
        };
        hist[pos].ret = Some(Some(999));
        prop_assert_eq!(
            check_linearizable(&spec, &hist, 1_000_000),
            Verdict::NotLinearizable
        );
    }

    /// Making every op concurrent (identical intervals) keeps a
    /// sequentially-consistent history linearizable: the sequential
    /// witness still exists.
    #[test]
    fn widening_intervals_preserves_linearizability(
        ops in proptest::collection::vec(arb_op(), 0..8)
    ) {
        let spec = RegSpec { size: NREGS };
        let mut hist = sequential_history(&ops);
        for h in &mut hist {
            h.invoked_at = 0;
            h.returned_at = 1_000;
        }
        prop_assert_eq!(
            check_linearizable(&spec, &hist, 1_000_000),
            Verdict::Linearizable
        );
    }

    /// Dropping the response of any single op (making it incomplete)
    /// preserves linearizability: the op may still linearize as it did.
    #[test]
    fn incomplete_ops_preserved(ops in proptest::collection::vec(arb_op(), 1..10), k in 0usize..10) {
        let spec = RegSpec { size: NREGS };
        let mut hist = sequential_history(&ops);
        let idx = k % hist.len();
        hist[idx].ret = None;
        hist[idx].returned_at = u64::MAX;
        prop_assert_eq!(
            check_linearizable(&spec, &hist, 1_000_000),
            Verdict::Linearizable
        );
    }
}
