//! End-to-end self-test of the checking pipeline: a lock-per-address
//! durable register machine on the model disk, instrumented with ghost
//! calls (the runtime analog of a Perennial proof), checked across
//! schedules and crash points — plus buggy mutants that the checker must
//! reject. A verifier that cannot fail is not evidence (DESIGN.md §8).

use goose_rt::runtime::{GLock, ModelRtExt};
use perennial::{DurId, GhostUnwrap, Lease, LockInv};
use perennial_checker::{check, CheckConfig, ExecOutcome, Execution, Harness, ThreadBody, World};
use perennial_disk::{ModelDisk, SingleDisk};
use perennial_spec::fixtures::{RegOp, RegSpec};
use std::sync::Arc;

fn enc(v: u64) -> Vec<u8> {
    v.to_le_bytes().to_vec()
}

fn dec(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().unwrap())
}

/// Which deliberate bug (if any) to inject into the implementation.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Bug {
    None,
    /// Write a different value to disk than committed to the spec.
    WrongValue,
    /// Skip the commit (no linearization point).
    SkipCommit,
    /// Skip the per-address lock entirely.
    NoLock,
    /// Recovery forgets to renew leases (post-crash writes use stale
    /// capabilities).
    StaleLeaseAfterRecovery,
    /// Recovery zeroes the disk ("making the disks consistent" the wrong
    /// way, §1's canonical wrong recovery).
    ZeroingRecovery,
}

struct RegHarness {
    nregs: u64,
    bug: Bug,
}

struct RegExec {
    bug: Bug,
    disk: Arc<ModelDisk>,
    cells: Vec<DurId<u64>>,
    lockinvs: Vec<Arc<LockInv<Lease<u64>>>>,
    locks: Vec<Arc<dyn GLock>>,
}

struct RegSys {
    bug: Bug,
    disk: Arc<ModelDisk>,
    cells: Vec<DurId<u64>>,
    lockinvs: Vec<Arc<LockInv<Lease<u64>>>>,
    locks: Vec<Arc<dyn GLock>>,
}

impl RegSys {
    fn write(&self, w: &World<RegSpec>, a: u64, v: u64) {
        let tok = w.ghost.begin_op(RegOp::Write(a, v)).ghost_unwrap();
        if self.bug != Bug::NoLock {
            self.locks[a as usize].acquire();
        }
        let mut lease = self.lockinvs[a as usize].take().ghost_unwrap();
        let disk_value = if self.bug == Bug::WrongValue {
            v + 1
        } else {
            v
        };
        // The disk write is the linearization point: the physical write,
        // the ghost mirror update, and the spec commit happen with no
        // schedule point in between (one atomic step).
        self.disk.write(a, &enc(disk_value));
        w.ghost
            .write_durable(self.cells[a as usize], &mut lease, v)
            .ghost_unwrap();
        let ret = if self.bug == Bug::SkipCommit {
            None
        } else {
            w.ghost.commit_op(&tok).ghost_unwrap()
        };
        self.lockinvs[a as usize].put(lease).ghost_unwrap();
        if self.bug != Bug::NoLock {
            self.locks[a as usize].release();
        }
        w.ghost.finish_op(tok, &ret).ghost_unwrap();
    }

    fn read(&self, w: &World<RegSpec>, a: u64) -> u64 {
        let tok = w.ghost.begin_op(RegOp::Read(a)).ghost_unwrap();
        if self.bug != Bug::NoLock {
            self.locks[a as usize].acquire();
        }
        let lease = self.lockinvs[a as usize].take().ghost_unwrap();
        let v = dec(&self.disk.read(a));
        let ghost_v = w
            .ghost
            .read_durable(self.cells[a as usize], &lease)
            .ghost_unwrap();
        assert_eq!(v, ghost_v, "disk and ghost mirror diverged");
        let ret = w.ghost.commit_op(&tok).ghost_unwrap();
        self.lockinvs[a as usize].put(lease).ghost_unwrap();
        if self.bug != Bug::NoLock {
            self.locks[a as usize].release();
        }
        w.ghost.finish_op(tok, &ret).ghost_unwrap();
        match ret {
            Some(v) => v,
            None => unreachable!("read committed without a value"),
        }
    }
}

impl RegExec {
    fn sys(&self) -> Arc<RegSys> {
        Arc::new(RegSys {
            bug: self.bug,
            disk: Arc::clone(&self.disk),
            cells: self.cells.clone(),
            lockinvs: self.lockinvs.clone(),
            locks: self.locks.clone(),
        })
    }
}

impl Execution<RegSpec> for RegExec {
    fn boot(&mut self, w: &World<RegSpec>) {
        // In-memory locks are rebuilt on every boot.
        self.locks = (0..self.cells.len()).map(|_| w.rt.new_glock()).collect();
    }

    fn threads(&mut self, w: &World<RegSpec>) -> Vec<(String, ThreadBody)> {
        let mut out: Vec<(String, ThreadBody)> = Vec::new();
        let sys = self.sys();
        let w2 = w.clone();
        out.push((
            "writer-a".into(),
            Box::new(move || {
                sys.write(&w2, 0, 10);
                sys.write(&w2, 1, 11);
            }),
        ));
        let sys = self.sys();
        let w2 = w.clone();
        out.push((
            "writer-b".into(),
            Box::new(move || {
                sys.write(&w2, 0, 20);
            }),
        ));
        let sys = self.sys();
        let w2 = w.clone();
        out.push((
            "reader".into(),
            Box::new(move || {
                let v0 = sys.read(&w2, 0);
                assert!(v0 == 0 || v0 == 10 || v0 == 20, "impossible read {v0}");
            }),
        ));
        out
    }

    fn crash_reset(&mut self, _w: &World<RegSpec>) {
        // Disk contents are durable; nothing volatile to clear besides
        // the locks boot() rebuilds.
    }

    fn recovery(&mut self, w: &World<RegSpec>) -> ThreadBody {
        let w2 = w.clone();
        let cells = self.cells.clone();
        let lockinvs = self.lockinvs.clone();
        let disk = Arc::clone(&self.disk);
        let bug = self.bug;
        Box::new(move || {
            if bug == Bug::ZeroingRecovery {
                for a in 0..cells.len() as u64 {
                    disk.write(a, &enc(0));
                }
            }
            for (a, cell) in cells.iter().enumerate() {
                if bug == Bug::StaleLeaseAfterRecovery {
                    // Forgot recover_lease: leave the stale bundle in
                    // place. Post-crash ops will trip the version check.
                    let _ = a;
                } else {
                    let lease = w2.ghost.recover_lease(*cell).ghost_unwrap();
                    lockinvs[a].reset(lease);
                }
            }
            w2.ghost.recovery_done().ghost_unwrap();
        })
    }

    fn after_recovery(&mut self, w: &World<RegSpec>) -> Vec<(String, ThreadBody)> {
        let sys = self.sys();
        let w2 = w.clone();
        vec![(
            "post-crash".into(),
            Box::new(move || {
                sys.write(&w2, 2, 33);
                assert_eq!(sys.read(&w2, 2), 33);
            }),
        )]
    }

    fn final_check(&self, w: &World<RegSpec>) -> Result<(), String> {
        // The abstraction relation at quiescence: every disk block equals
        // the spec state.
        let sigma = w.ghost.spec_state();
        for (a, _) in self.cells.iter().enumerate() {
            let disk_v = dec(&self.disk.peek(a as u64));
            let spec_v = *sigma.get(&(a as u64)).unwrap();
            if disk_v != spec_v {
                return Err(format!(
                    "AbsR violated at address {a}: disk has {disk_v}, spec has {spec_v}"
                ));
            }
        }
        Ok(())
    }
}

impl Harness<RegSpec> for RegHarness {
    fn spec(&self) -> RegSpec {
        RegSpec { size: self.nregs }
    }

    fn make(&self, w: &World<RegSpec>) -> Box<dyn Execution<RegSpec>> {
        let disk = ModelDisk::new(Arc::clone(&w.rt), self.nregs, 8);
        let mut cells = Vec::new();
        let mut lockinvs = Vec::new();
        for _ in 0..self.nregs {
            let (cell, lease) = w.ghost.alloc_durable(0u64);
            cells.push(cell);
            lockinvs.push(Arc::new(LockInv::new(lease)));
        }
        Box::new(RegExec {
            bug: self.bug,
            disk,
            cells,
            lockinvs,
            locks: Vec::new(),
        })
    }

    fn name(&self) -> &str {
        "register self-test"
    }
}

fn quick() -> CheckConfig {
    CheckConfig::builder()
        .dfs_max_executions(300)
        .random_samples(15)
        .random_crash_samples(25)
        .build()
}

#[test]
fn correct_register_machine_passes_all_passes() {
    let h = RegHarness {
        nregs: 4,
        bug: Bug::None,
    };
    let report = check(&h, &quick());
    assert!(
        report.passed(),
        "unexpected counterexample: {:?}",
        report.counterexample
    );
    assert!(report.executions > 100, "too few executions explored");
    assert!(report.crashes_injected > 10, "crash sweep did not run");
}

#[test]
fn mutant_wrong_value_is_caught() {
    let h = RegHarness {
        nregs: 4,
        bug: Bug::WrongValue,
    };
    let report = check(&h, &quick());
    let cx = report.counterexample.expect("wrong-value mutant must fail");
    // Either the reader's mirror assertion (Bug) or the final AbsR check
    // fires, depending on the schedule.
    assert!(
        matches!(
            cx.outcome,
            ExecOutcome::Bug(_) | ExecOutcome::FinalCheckFailed(_) | ExecOutcome::Violation(_)
        ),
        "unexpected outcome {:?}",
        cx.outcome
    );
}

#[test]
fn mutant_skip_commit_is_caught() {
    let h = RegHarness {
        nregs: 4,
        bug: Bug::SkipCommit,
    };
    let report = check(&h, &quick());
    let cx = report.counterexample.expect("skip-commit mutant must fail");
    assert!(
        matches!(cx.outcome, ExecOutcome::Violation(_)),
        "expected a ghost violation, got {:?}",
        cx.outcome
    );
}

#[test]
fn mutant_no_lock_is_caught() {
    let h = RegHarness {
        nregs: 4,
        bug: Bug::NoLock,
    };
    let report = check(&h, &quick());
    let cx = report.counterexample.expect("no-lock mutant must fail");
    assert!(
        matches!(cx.outcome, ExecOutcome::Violation(_) | ExecOutcome::Bug(_)),
        "unexpected outcome {:?}",
        cx.outcome
    );
}

#[test]
fn mutant_stale_lease_recovery_is_caught() {
    let h = RegHarness {
        nregs: 4,
        bug: Bug::StaleLeaseAfterRecovery,
    };
    let report = check(&h, &quick());
    let cx = report.counterexample.expect("stale-lease mutant must fail");
    assert!(
        matches!(cx.outcome, ExecOutcome::Violation(_)),
        "expected a ghost violation, got {:?}",
        cx.outcome
    );
    assert!(!cx.crash_points.is_empty(), "only reachable via a crash");
}

#[test]
fn mutant_zeroing_recovery_is_caught() {
    // §1: "it would be wrong for recovery to make the disks in sync by
    // zeroing them" — here, zeroing loses committed writes.
    let h = RegHarness {
        nregs: 4,
        bug: Bug::ZeroingRecovery,
    };
    let report = check(&h, &quick());
    let cx = report.counterexample.expect("zeroing mutant must fail");
    assert!(
        matches!(
            cx.outcome,
            ExecOutcome::FinalCheckFailed(_) | ExecOutcome::Bug(_) | ExecOutcome::Violation(_)
        ),
        "unexpected outcome {:?}",
        cx.outcome
    );
    assert!(!cx.crash_points.is_empty(), "only reachable via a crash");
}

#[test]
fn counterexamples_replay_deterministically() {
    // A found counterexample must reproduce: same failing outcome kind
    // when re-run from its recorded schedule and crash points.
    let h = RegHarness {
        nregs: 4,
        bug: Bug::ZeroingRecovery,
    };
    let report = check(&h, &quick());
    let cx = report.counterexample.expect("mutant must fail");
    let (outcome, trace) = perennial_checker::replay(&h, &cx, &quick());
    assert!(
        std::mem::discriminant(&outcome) == std::mem::discriminant(&cx.outcome),
        "replay produced {outcome:?}, original was {:?}",
        cx.outcome
    );
    assert!(!trace.is_empty(), "replay must produce a ghost trace");
}

#[test]
fn spawn_from_inside_a_virtual_thread_is_scheduled() {
    // Goroutine-style nested spawn: a workload thread spawns a child
    // mid-execution; the checker schedules it like any other thread.
    use goose_rt::sched::ModelRt;
    use std::sync::atomic::{AtomicU64, Ordering};

    let rt = ModelRt::new(0, 100_000);
    let counter = Arc::new(AtomicU64::new(0));
    let rt2 = Arc::clone(&rt);
    let c2 = Arc::clone(&counter);
    rt.spawn("parent", move || {
        rt2.yield_point();
        let c3 = Arc::clone(&c2);
        let rt3 = Arc::clone(&rt2);
        rt2.spawn("child", move || {
            rt3.yield_point();
            c3.fetch_add(10, Ordering::SeqCst);
        });
        c2.fetch_add(1, Ordering::SeqCst);
    });
    loop {
        let runnable = rt.runnable();
        if runnable.is_empty() {
            assert!(rt.all_done());
            break;
        }
        for tid in runnable {
            let _ = rt.grant(tid);
        }
    }
    rt.join_all();
    assert_eq!(counter.load(Ordering::SeqCst), 11);
    assert!(rt.failures().is_empty());
}
