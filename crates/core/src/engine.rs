//! The ghost engine: Perennial's capability discipline as an executable,
//! runtime-checked object.
//!
//! One [`Ghost`] instance accompanies one checked execution. Every method
//! is one *atomic step* of ghost state (internally serialized by a mutex,
//! mirroring Iris's rule that invariants open and close around a single
//! atomic step). The engine plays three roles:
//!
//! 1. **Capability bookkeeping** — versioned volatile cells, durable
//!    master/lease cells, durable sets, helping tokens, the crash token.
//! 2. **Online refinement** — `commit_op` simulates the spec transition
//!    against `source(σ)` the moment the implementation linearizes, and
//!    `finish_op` checks the value actually returned; any divergence is an
//!    immediate verification failure.
//! 3. **Crash semantics** — `crash()` bumps the version (invalidating all
//!    volatile capabilities and leases, §5.2/§5.3), aborts in-flight
//!    uncommitted operations that were not stashed for helping, and arms
//!    the `⇛Crashing` token that recovery must spend (§5.5).

use crate::error::{GhostError, GhostResult};
use crate::resource::{
    check_version, DurCell, DurId, Lease, PointsTo, SetCell, SetId, SetItem, SetLease, VolCell,
};
use crate::trace::{Trace, TraceEvent};
use parking_lot::Mutex;
use perennial_spec::transition::Outcome;
use perennial_spec::{Jid, SpecTS, Transition};
use std::collections::{BTreeSet, HashMap};
use std::marker::PhantomData;
use std::sync::Arc;

/// Ownership of a pending spec-level operation: the paper's `j ⇛ op`.
///
/// Not `Clone`: holding the Rust value is holding the capability.
#[derive(Debug)]
pub struct OpToken {
    jid: Jid,
}

impl OpToken {
    /// The operation instance this token names.
    pub fn jid(&self) -> Jid {
        self.jid
    }
}

/// State of the spec-level crash token (§5.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashToken {
    /// No crash outstanding.
    Idle,
    /// `⇛Crashing`: a crash happened; recovery must simulate the spec
    /// crash transition before normal operation resumes.
    Crashing,
    /// `⇛Done`: recovery spent the token; normal operation may resume.
    Done,
}

#[derive(Debug, Clone, PartialEq)]
enum OpPhase<Ret> {
    Pending,
    Stashed { key: u64 },
    Committed { ret: Ret },
    Helped { ret: Ret },
    Finished,
    Aborted,
}

struct OpRecord<S: SpecTS> {
    op: S::Op,
    phase: OpPhase<S::Ret>,
}

struct Inner<S: SpecTS> {
    version: u64,
    state: S::State,
    ops: HashMap<Jid, OpRecord<S>>,
    /// Helping tokens stashed in the crash invariant: key → jid.
    help: HashMap<u64, Jid>,
    crash_token: CrashToken,
    next_jid: u64,
    next_res: u64,
    vol: HashMap<u64, VolCell>,
    dur: HashMap<u64, DurCell>,
    sets: HashMap<u64, SetCell>,
    trace: Trace<S::Op, S::Ret>,
    first_error: Option<GhostError>,
    /// Ghost-engine calls made so far. The explorer diffs this around
    /// each scheduler grant to learn whether the step touched ghost
    /// state (many mutators push no trace event, so trace length is not
    /// a usable signal).
    op_count: u64,
}

/// The ghost engine for one checked execution.
pub struct Ghost<S: SpecTS> {
    spec: Arc<S>,
    inner: Mutex<Inner<S>>,
}

impl<S: SpecTS> Ghost<S> {
    /// Creates an engine with the spec's initial abstract state.
    pub fn new(spec: S) -> Arc<Self> {
        let state = spec.init();
        Arc::new(Ghost {
            spec: Arc::new(spec),
            inner: Mutex::new(Inner {
                version: 0,
                state,
                ops: HashMap::new(),
                help: HashMap::new(),
                crash_token: CrashToken::Idle,
                next_jid: 0,
                next_res: 0,
                vol: HashMap::new(),
                dur: HashMap::new(),
                sets: HashMap::new(),
                trace: Trace::default(),
                first_error: None,
                op_count: 0,
            }),
        })
    }

    /// The spec this engine refines against.
    pub fn spec(&self) -> &S {
        &self.spec
    }

    /// Locks the engine, counting the call: every public method goes
    /// through here, so `op_count` over-approximates ghost activity
    /// (conservative for dependency tracking).
    fn step_lock(&self) -> parking_lot::MutexGuard<'_, Inner<S>> {
        let mut g = self.inner.lock();
        g.op_count += 1;
        g
    }

    /// Ghost-engine calls made so far (dependency tracking; see
    /// `Inner::op_count`).
    pub fn op_count(&self) -> u64 {
        self.inner.lock().op_count
    }

    /// Current execution version (bumped by every crash).
    pub fn version(&self) -> u64 {
        self.step_lock().version
    }

    /// A snapshot of `source(σ)`, the current abstract state.
    pub fn spec_state(&self) -> S::State {
        self.step_lock().state.clone()
    }

    /// Current crash-token state.
    pub fn crash_token(&self) -> CrashToken {
        self.step_lock().crash_token
    }

    /// First discipline violation observed, if any (sticky).
    pub fn first_error(&self) -> Option<GhostError> {
        self.step_lock().first_error.clone()
    }

    fn fail<T>(inner: &mut Inner<S>, err: GhostError) -> GhostResult<T> {
        if inner.first_error.is_none() {
            inner.first_error = Some(err.clone());
        }
        Err(err)
    }

    // ------------------------------------------------------------------
    // Refinement resources (§4): j ⇛ op, source(σ).
    // ------------------------------------------------------------------

    /// Mints `j ⇛ op` for a newly invoked operation.
    pub fn begin_op(&self, op: S::Op) -> GhostResult<OpToken> {
        let mut g = self.step_lock();
        if g.crash_token == CrashToken::Crashing {
            return Self::fail(
                &mut g,
                GhostError::CrashToken {
                    msg: "begin_op while recovery has not spent ⇛Crashing",
                },
            );
        }
        let jid = Jid(g.next_jid);
        g.next_jid += 1;
        g.ops.insert(
            jid,
            OpRecord {
                op: op.clone(),
                phase: OpPhase::Pending,
            },
        );
        g.trace.push(TraceEvent::Invoke { jid, op });
        Ok(OpToken { jid })
    }

    /// Simulates the spec step for `tok`'s operation at its linearization
    /// point, replacing `j ⇛ op` with `j ⇛ ret v` (Table 1, *refinement*).
    pub fn commit_op(&self, tok: &OpToken) -> GhostResult<S::Ret> {
        let op = {
            let g = self.step_lock();
            match g.ops.get(&tok.jid) {
                Some(rec) => rec.op.clone(),
                None => {
                    drop(g);
                    let mut g = self.step_lock();
                    return Self::fail(
                        &mut g,
                        GhostError::OpState {
                            jid: tok.jid,
                            msg: "commit of unknown op",
                        },
                    );
                }
            }
        };
        self.commit_op_as(tok, op)
    }

    /// Like [`Ghost::commit_op`] but commits a *refined* operation that
    /// resolves implementation-chosen nondeterminism (checked against
    /// [`SpecTS::op_refines`]).
    pub fn commit_op_as(&self, tok: &OpToken, refined: S::Op) -> GhostResult<S::Ret> {
        let mut g = self.step_lock();
        let rec = match g.ops.get(&tok.jid) {
            Some(r) => r,
            None => {
                return Self::fail(
                    &mut g,
                    GhostError::OpState {
                        jid: tok.jid,
                        msg: "commit of unknown op",
                    },
                )
            }
        };
        if rec.phase != OpPhase::Pending {
            return Self::fail(
                &mut g,
                GhostError::OpState {
                    jid: tok.jid,
                    msg: "commit requires the op to be pending (not stashed/committed)",
                },
            );
        }
        if !self.spec.op_refines(&rec.op, &refined) {
            return Self::fail(
                &mut g,
                GhostError::OpState {
                    jid: tok.jid,
                    msg: "committed op is not a refinement of the invoked op",
                },
            );
        }
        match self.spec.op_transition(&refined).run(&g.state) {
            Outcome::Ok(s2, ret) => {
                g.state = s2;
                let jid = tok.jid;
                if let Some(rec) = g.ops.get_mut(&jid) {
                    rec.op = refined.clone();
                    rec.phase = OpPhase::Committed { ret: ret.clone() };
                }
                g.trace.push(TraceEvent::Commit {
                    jid,
                    op: refined,
                    ret: ret.clone(),
                });
                Ok(ret)
            }
            Outcome::Undefined => Self::fail(
                &mut g,
                GhostError::SpecStep {
                    jid: Some(tok.jid),
                    err: perennial_spec::system::ReplayError::Undefined,
                },
            ),
            Outcome::Blocked => Self::fail(
                &mut g,
                GhostError::SpecStep {
                    jid: Some(tok.jid),
                    err: perennial_spec::system::ReplayError::Blocked,
                },
            ),
        }
    }

    /// Consumes `j ⇛ ret v` when the implementation returns, checking the
    /// returned value matches the committed spec value.
    pub fn finish_op(&self, tok: OpToken, actual: &S::Ret) -> GhostResult<()> {
        let mut g = self.step_lock();
        let rec = match g.ops.get(&tok.jid) {
            Some(r) => r,
            None => {
                return Self::fail(
                    &mut g,
                    GhostError::OpState {
                        jid: tok.jid,
                        msg: "finish of unknown op",
                    },
                )
            }
        };
        let ret = match &rec.phase {
            OpPhase::Committed { ret } => ret.clone(),
            _ => {
                return Self::fail(
                    &mut g,
                    GhostError::OpState {
                        jid: tok.jid,
                        msg: "finish requires a committed op (missing linearization point?)",
                    },
                )
            }
        };
        if &ret != actual {
            let err = GhostError::RetMismatch {
                jid: tok.jid,
                spec: format!("{ret:?}"),
                actual: format!("{actual:?}"),
            };
            return Self::fail(&mut g, err);
        }
        let jid = tok.jid;
        if let Some(rec) = g.ops.get_mut(&jid) {
            rec.phase = OpPhase::Finished;
        }
        g.trace.push(TraceEvent::Return {
            jid,
            ret: ret.clone(),
        });
        Ok(())
    }

    /// Simulates an *internal* spec transition (no external I/O), e.g.
    /// group commit's background flush moving buffered transactions to the
    /// persisted prefix.
    pub fn internal_step(&self, t: &Transition<S::State, ()>) -> GhostResult<()> {
        let mut g = self.step_lock();
        match t.run(&g.state) {
            Outcome::Ok(s2, ()) => {
                g.state = s2;
                Ok(())
            }
            Outcome::Undefined => Self::fail(
                &mut g,
                GhostError::SpecStep {
                    jid: None,
                    err: perennial_spec::system::ReplayError::Undefined,
                },
            ),
            Outcome::Blocked => Self::fail(
                &mut g,
                GhostError::SpecStep {
                    jid: None,
                    err: perennial_spec::system::ReplayError::Blocked,
                },
            ),
        }
    }

    // ------------------------------------------------------------------
    // Recovery helping (§5.4).
    // ------------------------------------------------------------------

    /// Stores `j ⇛ op` in the crash invariant under `key`, so recovery may
    /// complete the operation if a crash intervenes.
    pub fn stash_op(&self, tok: &OpToken, key: u64) -> GhostResult<()> {
        let mut g = self.step_lock();
        if g.help.contains_key(&key) {
            return Self::fail(&mut g, GhostError::HelpKeyBusy { key });
        }
        let rec = match g.ops.get(&tok.jid) {
            Some(r) => r,
            None => {
                return Self::fail(
                    &mut g,
                    GhostError::OpState {
                        jid: tok.jid,
                        msg: "stash of unknown op",
                    },
                )
            }
        };
        if rec.phase != OpPhase::Pending {
            return Self::fail(
                &mut g,
                GhostError::OpState {
                    jid: tok.jid,
                    msg: "only pending ops can be stashed for helping",
                },
            );
        }
        let jid = tok.jid;
        if let Some(rec) = g.ops.get_mut(&jid) {
            rec.phase = OpPhase::Stashed { key };
        }
        g.help.insert(key, jid);
        g.trace.push(TraceEvent::Stash { jid, key });
        Ok(())
    }

    /// Takes `j ⇛ op` back out of the crash invariant (the no-crash path:
    /// the thread finishes its own operation).
    pub fn unstash_op(&self, tok: &OpToken, key: u64) -> GhostResult<()> {
        let mut g = self.step_lock();
        match g.help.get(&key) {
            Some(j) if *j == tok.jid => {}
            _ => return Self::fail(&mut g, GhostError::HelpTokenMissing { key }),
        }
        g.help.remove(&key);
        let jid = tok.jid;
        if let Some(rec) = g.ops.get_mut(&jid) {
            rec.phase = OpPhase::Pending;
        }
        g.trace.push(TraceEvent::Unstash { jid, key });
        Ok(())
    }

    /// Whether a helping token is stashed under `key`.
    pub fn has_help(&self, key: u64) -> bool {
        self.step_lock().help.contains_key(&key)
    }

    /// Recovery redeems the helping token under `key`, committing the
    /// crashed thread's operation on its behalf (§5.4).
    ///
    /// Only legal while `⇛Crashing` is armed: helping is how recovery
    /// justifies its repairs.
    pub fn help_commit(&self, key: u64) -> GhostResult<(Jid, S::Ret)> {
        let mut g = self.step_lock();
        if g.crash_token != CrashToken::Crashing {
            return Self::fail(
                &mut g,
                GhostError::CrashToken {
                    msg: "help_commit outside recovery (⇛Crashing not armed)",
                },
            );
        }
        let jid = match g.help.get(&key) {
            Some(j) => *j,
            None => return Self::fail(&mut g, GhostError::HelpTokenMissing { key }),
        };
        let op = match g.ops.get(&jid) {
            Some(rec) => rec.op.clone(),
            None => {
                return Self::fail(
                    &mut g,
                    GhostError::OpState {
                        jid,
                        msg: "helping token names an unknown op",
                    },
                )
            }
        };
        match self.spec.op_transition(&op).run(&g.state) {
            Outcome::Ok(s2, ret) => {
                g.state = s2;
                g.help.remove(&key);
                if let Some(rec) = g.ops.get_mut(&jid) {
                    rec.phase = OpPhase::Helped { ret: ret.clone() };
                }
                g.trace.push(TraceEvent::HelpCommit {
                    jid,
                    op,
                    ret: ret.clone(),
                });
                Ok((jid, ret))
            }
            Outcome::Undefined => Self::fail(
                &mut g,
                GhostError::SpecStep {
                    jid: Some(jid),
                    err: perennial_spec::system::ReplayError::Undefined,
                },
            ),
            Outcome::Blocked => Self::fail(
                &mut g,
                GhostError::SpecStep {
                    jid: Some(jid),
                    err: perennial_spec::system::ReplayError::Blocked,
                },
            ),
        }
    }

    /// Drops the helping token under `key` without committing: recovery
    /// decided the crashed operation never took effect (legal — the caller
    /// never observed a return).
    pub fn drop_help(&self, key: u64) -> GhostResult<Jid> {
        let mut g = self.step_lock();
        if g.crash_token != CrashToken::Crashing {
            return Self::fail(
                &mut g,
                GhostError::CrashToken {
                    msg: "drop_help outside recovery (⇛Crashing not armed)",
                },
            );
        }
        let jid = match g.help.remove(&key) {
            Some(j) => j,
            None => return Self::fail(&mut g, GhostError::HelpTokenMissing { key }),
        };
        if let Some(rec) = g.ops.get_mut(&jid) {
            rec.phase = OpPhase::Aborted;
        }
        Ok(jid)
    }

    // ------------------------------------------------------------------
    // Crash and recovery (§5.1, §5.5).
    // ------------------------------------------------------------------

    /// A crash: bumps the version, invalidates all volatile capabilities
    /// and leases, aborts unstashed in-flight uncommitted ops, and arms
    /// `⇛Crashing`. Crashes during recovery collapse into the already
    /// armed token (the whole sequence simulates one spec crash step).
    pub fn crash(&self) {
        let mut g = self.step_lock();
        g.version += 1;
        g.vol.clear();
        for cell in g.dur.values_mut() {
            cell.lease_out_for = None;
        }
        for set in g.sets.values_mut() {
            set.lease_out_for = None;
        }
        let mut aborted = Vec::new();
        for (jid, rec) in g.ops.iter_mut() {
            if rec.phase == OpPhase::Pending {
                rec.phase = OpPhase::Aborted;
                aborted.push(*jid);
            }
        }
        aborted.sort();
        g.crash_token = CrashToken::Crashing;
        let new_version = g.version;
        g.trace.push(TraceEvent::Crash {
            new_version,
            aborted,
        });
    }

    /// Recovery spends `⇛Crashing`: simulates the spec crash transition
    /// and moves the token to `⇛Done` (Table 1, *crash refinement*).
    pub fn recovery_done(&self) -> GhostResult<()> {
        let mut g = self.step_lock();
        if g.crash_token != CrashToken::Crashing {
            return Self::fail(
                &mut g,
                GhostError::CrashToken {
                    msg: "recovery_done but ⇛Crashing is not armed",
                },
            );
        }
        match self.spec.crash_transition().run(&g.state) {
            Outcome::Ok(s2, ()) => {
                g.state = s2;
                g.crash_token = CrashToken::Done;
                let version = g.version;
                g.trace.push(TraceEvent::RecoveryDone { version });
                Ok(())
            }
            Outcome::Undefined => Self::fail(
                &mut g,
                GhostError::SpecStep {
                    jid: None,
                    err: perennial_spec::system::ReplayError::Undefined,
                },
            ),
            Outcome::Blocked => Self::fail(
                &mut g,
                GhostError::SpecStep {
                    jid: None,
                    err: perennial_spec::system::ReplayError::Blocked,
                },
            ),
        }
    }

    // ------------------------------------------------------------------
    // Volatile cells (§5.2 versioned memory).
    // ------------------------------------------------------------------

    /// Allocates a volatile cell, returning `p ↦ₙ v` for the current
    /// version.
    pub fn alloc_vol<T: Clone + Send + 'static>(&self, v: T) -> PointsTo<T> {
        let mut g = self.step_lock();
        let id = g.next_res;
        g.next_res += 1;
        let version = g.version;
        g.vol.insert(id, VolCell { value: Box::new(v) });
        PointsTo {
            id,
            version,
            _marker: PhantomData,
        }
    }

    /// Reads through a points-to capability (version checked).
    pub fn read_vol<T: Clone + Send + 'static>(&self, p: &PointsTo<T>) -> GhostResult<T> {
        let mut g = self.step_lock();
        if let Err(e) = check_version("points-to", p.version, g.version) {
            return Self::fail(&mut g, e);
        }
        let cell = match g.vol.get(&p.id) {
            Some(c) => c,
            None => return Self::fail(&mut g, GhostError::UnknownResource { id: p.id }),
        };
        match cell.value.downcast_ref::<T>() {
            Some(v) => Ok(v.clone()),
            None => Self::fail(&mut g, GhostError::TypeMismatch { id: p.id }),
        }
    }

    /// Writes through a points-to capability (version checked; requires a
    /// mutable borrow of the capability, the runtime analog of consuming
    /// and re-producing `p ↦ v`).
    pub fn write_vol<T: Clone + Send + 'static>(
        &self,
        p: &mut PointsTo<T>,
        v: T,
    ) -> GhostResult<()> {
        let mut g = self.step_lock();
        if let Err(e) = check_version("points-to", p.version, g.version) {
            return Self::fail(&mut g, e);
        }
        match g.vol.get_mut(&p.id) {
            Some(cell) => {
                cell.value = Box::new(v);
                Ok(())
            }
            None => Self::fail(&mut g, GhostError::UnknownResource { id: p.id }),
        }
    }

    // ------------------------------------------------------------------
    // Durable cells: master/lease (§5.3 recovery leases).
    // ------------------------------------------------------------------

    /// Allocates a durable cell. The master copy is stored in the crash
    /// invariant (implicitly — the engine holds it); the returned lease
    /// conveys mutation rights for the current version.
    pub fn alloc_durable<T: Clone + Send + 'static>(&self, v: T) -> (DurId<T>, Lease<T>) {
        let mut g = self.step_lock();
        let id = g.next_res;
        g.next_res += 1;
        let version = g.version;
        g.dur.insert(
            id,
            DurCell {
                value: Box::new(v),
                lease_out_for: Some(version),
            },
        );
        (
            DurId {
                id,
                _marker: PhantomData,
            },
            Lease {
                id,
                version,
                _marker: PhantomData,
            },
        )
    }

    /// Reads a durable cell through its lease (version checked).
    pub fn read_durable<T: Clone + Send + 'static>(
        &self,
        id: DurId<T>,
        lease: &Lease<T>,
    ) -> GhostResult<T> {
        let mut g = self.step_lock();
        if lease.id != id.id {
            return Self::fail(
                &mut g,
                GhostError::WrongLease {
                    id: id.id,
                    lease_id: lease.id,
                },
            );
        }
        if let Err(e) = check_version("lease", lease.version, g.version) {
            return Self::fail(&mut g, e);
        }
        Self::dur_value(&mut g, id.id)
    }

    /// Reads a durable cell's master copy from the crash invariant.
    ///
    /// Recovery does this to learn the pre-crash durable state (§5.3: the
    /// master copy records the value so that recovery can use it).
    pub fn read_master<T: Clone + Send + 'static>(&self, id: DurId<T>) -> GhostResult<T> {
        let mut g = self.step_lock();
        Self::dur_value(&mut g, id.id)
    }

    fn dur_value<T: Clone + Send + 'static>(g: &mut Inner<S>, id: u64) -> GhostResult<T> {
        let cell = match g.dur.get(&id) {
            Some(c) => c,
            None => return Self::fail(g, GhostError::UnknownResource { id }),
        };
        match cell.value.downcast_ref::<T>() {
            Some(v) => Ok(v.clone()),
            None => Self::fail(g, GhostError::TypeMismatch { id }),
        }
    }

    /// Writes a durable cell: requires *both* the master copy (named by
    /// `id`, borrowed from the crash invariant) and the current-version
    /// lease — Table 1's lease rule.
    pub fn write_durable<T: Clone + Send + 'static>(
        &self,
        id: DurId<T>,
        lease: &mut Lease<T>,
        v: T,
    ) -> GhostResult<()> {
        let mut g = self.step_lock();
        if lease.id != id.id {
            return Self::fail(
                &mut g,
                GhostError::WrongLease {
                    id: id.id,
                    lease_id: lease.id,
                },
            );
        }
        if let Err(e) = check_version("lease", lease.version, g.version) {
            return Self::fail(&mut g, e);
        }
        match g.dur.get_mut(&id.id) {
            Some(cell) => {
                cell.value = Box::new(v);
                Ok(())
            }
            None => Self::fail(&mut g, GhostError::UnknownResource { id: id.id }),
        }
    }

    /// Synthesizes a fresh lease for the new version from the master copy
    /// — Table 1's `d[a] ↦ₙ v ⟹ d[a] ↦ₙ₊₁ v ∗ leaseₙ₊₁(d[a], v)`.
    ///
    /// At most one lease per resource per version.
    pub fn recover_lease<T: Clone + Send + 'static>(&self, id: DurId<T>) -> GhostResult<Lease<T>> {
        let mut g = self.step_lock();
        let version = g.version;
        let cell = match g.dur.get_mut(&id.id) {
            Some(c) => c,
            None => return Self::fail(&mut g, GhostError::UnknownResource { id: id.id }),
        };
        if cell.lease_out_for == Some(version) {
            return Self::fail(&mut g, GhostError::LeaseAlreadyOut { id: id.id });
        }
        cell.lease_out_for = Some(version);
        Ok(Lease {
            id: id.id,
            version,
            _marker: PhantomData,
        })
    }

    // ------------------------------------------------------------------
    // Durable sets with lower-bound leases (§8.3).
    // ------------------------------------------------------------------

    /// Allocates a durable set; the returned lower-bound lease conveys
    /// deletion rights for the current version.
    pub fn alloc_set<T: SetItem>(
        &self,
        init: impl IntoIterator<Item = T>,
    ) -> (SetId<T>, SetLease<T>) {
        let mut g = self.step_lock();
        let id = g.next_res;
        g.next_res += 1;
        let version = g.version;
        let members: BTreeSet<Vec<u8>> = init.into_iter().map(|x| x.encode()).collect();
        g.sets.insert(
            id,
            SetCell {
                members,
                lease_out_for: Some(version),
            },
        );
        (
            SetId {
                id,
                _marker: PhantomData,
            },
            SetLease {
                id,
                version,
                _marker: PhantomData,
            },
        )
    }

    /// Inserts into a durable set. *No lease required*: the lower-bound
    /// lease only constrains deletion, so concurrent inserters (Mailboat's
    /// `Deliver`) proceed without the mailbox lock.
    pub fn set_insert<T: SetItem>(&self, id: SetId<T>, item: &T) -> GhostResult<()> {
        let mut g = self.step_lock();
        match g.sets.get_mut(&id.id) {
            Some(s) => {
                s.members.insert(item.encode());
                Ok(())
            }
            None => Self::fail(&mut g, GhostError::UnknownResource { id: id.id }),
        }
    }

    /// Deletes from a durable set. Requires the current-version
    /// lower-bound lease and membership.
    pub fn set_delete<T: SetItem>(
        &self,
        id: SetId<T>,
        lease: &mut SetLease<T>,
        item: &T,
    ) -> GhostResult<()> {
        let mut g = self.step_lock();
        if lease.id != id.id {
            return Self::fail(
                &mut g,
                GhostError::WrongLease {
                    id: id.id,
                    lease_id: lease.id,
                },
            );
        }
        if let Err(e) = check_version("set lease", lease.version, g.version) {
            return Self::fail(&mut g, e);
        }
        match g.sets.get_mut(&id.id) {
            Some(s) => {
                if s.members.remove(&item.encode()) {
                    Ok(())
                } else {
                    Self::fail(&mut g, GhostError::SetMembership { id: id.id })
                }
            }
            None => Self::fail(&mut g, GhostError::UnknownResource { id: id.id }),
        }
    }

    /// Whether `item` is currently a member (readable by anyone; the
    /// master copy lives in the crash invariant).
    pub fn set_contains<T: SetItem>(&self, id: SetId<T>, item: &T) -> GhostResult<bool> {
        let mut g = self.step_lock();
        match g.sets.get(&id.id) {
            Some(s) => Ok(s.members.contains(&item.encode())),
            None => Self::fail(&mut g, GhostError::UnknownResource { id: id.id }),
        }
    }

    /// Number of members (recovery uses this to audit cleanup).
    pub fn set_len<T: SetItem>(&self, id: SetId<T>) -> GhostResult<usize> {
        let mut g = self.step_lock();
        match g.sets.get(&id.id) {
            Some(s) => Ok(s.members.len()),
            None => Self::fail(&mut g, GhostError::UnknownResource { id: id.id }),
        }
    }

    /// Synthesizes a fresh lower-bound lease after a crash; at most one
    /// per version.
    pub fn recover_set_lease<T: SetItem>(&self, id: SetId<T>) -> GhostResult<SetLease<T>> {
        let mut g = self.step_lock();
        let version = g.version;
        let cell = match g.sets.get_mut(&id.id) {
            Some(c) => c,
            None => return Self::fail(&mut g, GhostError::UnknownResource { id: id.id }),
        };
        if cell.lease_out_for == Some(version) {
            return Self::fail(&mut g, GhostError::LeaseAlreadyOut { id: id.id });
        }
        cell.lease_out_for = Some(version);
        Ok(SetLease {
            id: id.id,
            version,
            _marker: PhantomData,
        })
    }

    // ------------------------------------------------------------------
    // End-of-execution validation (Theorem 2 obligations).
    // ------------------------------------------------------------------

    /// Validates the end-of-execution obligations and returns a report.
    ///
    /// Checks: no sticky discipline violation; the crash token is not left
    /// armed (every crash was followed by a completed recovery); every
    /// finished op was committed with a matching value (enforced online;
    /// re-counted here).
    pub fn validate(&self) -> Result<crate::validate::Report<S>, GhostError> {
        let g = self.step_lock();
        if let Some(err) = &g.first_error {
            return Err(err.clone());
        }
        if g.crash_token == CrashToken::Crashing {
            return Err(GhostError::Validation {
                msg: "execution ended with ⇛Crashing armed (recovery never completed)".into(),
            });
        }
        let mut finished = 0usize;
        let mut helped = 0usize;
        let mut aborted = 0usize;
        let mut committed_unreturned = 0usize;
        let mut pending = 0usize;
        let mut stashed = 0usize;
        for rec in g.ops.values() {
            match rec.phase {
                OpPhase::Finished => finished += 1,
                OpPhase::Helped { .. } => helped += 1,
                OpPhase::Aborted => aborted += 1,
                OpPhase::Committed { .. } => committed_unreturned += 1,
                OpPhase::Pending => pending += 1,
                OpPhase::Stashed { .. } => stashed += 1,
            }
        }
        if pending > 0 || stashed > 0 {
            return Err(GhostError::Validation {
                msg: format!(
                    "execution ended with {pending} pending and {stashed} stashed ops \
                     (threads neither returned nor crashed)"
                ),
            });
        }
        Ok(crate::validate::Report {
            version: g.version,
            final_state: g.state.clone(),
            ops_invoked: g.ops.len(),
            finished,
            helped,
            aborted,
            committed_unreturned,
            crashes: g.trace.crashes(),
            commits: g.trace.commits(),
            trace: g.trace.clone(),
        })
    }

    /// A snapshot of the refinement trace (for reporting).
    pub fn trace(&self) -> Trace<S::Op, S::Ret> {
        self.step_lock().trace.clone()
    }
}
