//! Verification errors: every way the ghost capability discipline can be
//! violated.
//!
//! In the Coq original these are proof obligations that fail to typecheck;
//! here they are runtime errors that abort the execution and are reported
//! by the checker as refinement violations.

use perennial_spec::system::ReplayError;
use perennial_spec::Jid;
use std::fmt;

/// A violation of the ghost capability discipline (Table 1 of the paper).
#[derive(Debug, Clone, PartialEq)]
pub enum GhostError {
    /// A versioned capability (points-to or lease) was used after a crash
    /// invalidated it (§5.2: only capabilities at the current version are
    /// valid).
    StaleVersion {
        /// What kind of capability was used.
        what: &'static str,
        /// Version stamped on the capability.
        cap_version: u64,
        /// Current execution version.
        current: u64,
    },
    /// A resource id did not name an allocated resource.
    UnknownResource {
        /// Offending id.
        id: u64,
    },
    /// The stored value had a different type than the capability claimed.
    TypeMismatch {
        /// Offending id.
        id: u64,
    },
    /// A second lease was requested for a resource whose lease for the
    /// current version is already outstanding (§5.3: at most one lease).
    LeaseAlreadyOut {
        /// Offending id.
        id: u64,
    },
    /// A lease was presented for a resource it does not govern.
    WrongLease {
        /// Resource the operation targeted.
        id: u64,
        /// Resource the lease actually governs.
        lease_id: u64,
    },
    /// A lock-invariant bundle was taken while already taken, or returned
    /// while not taken.
    LockInvariant {
        /// Description of the misuse.
        msg: &'static str,
    },
    /// An operation token was used in a state that does not permit it
    /// (commit twice, finish before commit, ...).
    OpState {
        /// Which operation.
        jid: Jid,
        /// Description of the misuse.
        msg: &'static str,
    },
    /// The value returned by the implementation differs from the value the
    /// committed spec step produced.
    RetMismatch {
        /// Which operation.
        jid: Jid,
        /// Spec-produced value.
        spec: String,
        /// Implementation-returned value.
        actual: String,
    },
    /// Simulating a spec step failed (the abstract transition was not
    /// enabled, or hit spec-level undefined behaviour).
    SpecStep {
        /// Which operation (None for the crash step).
        jid: Option<Jid>,
        /// Underlying replay failure.
        err: ReplayError,
    },
    /// A helping token was redeemed that was never stashed (§5.4).
    HelpTokenMissing {
        /// Key the recovery procedure looked up.
        key: u64,
    },
    /// A helping token was stashed under a key already in use.
    HelpKeyBusy {
        /// Offending key.
        key: u64,
    },
    /// The crash token (`⇛Crashing` / `⇛Done`) was used out of order
    /// (§5.5): recovery must spend `⇛Crashing` exactly once per crash.
    CrashToken {
        /// Description of the misuse.
        msg: &'static str,
    },
    /// An element was deleted from a durable set it is not a member of.
    SetMembership {
        /// Offending set id.
        id: u64,
    },
    /// End-of-execution validation failed (Theorem 2 obligations).
    Validation {
        /// Description of the unmet obligation.
        msg: String,
    },
    /// A violation reconstructed from a serialized report (shard-merge
    /// and campaign tooling): only the rendered message survives the
    /// round-trip, so it is carried verbatim.
    Imported {
        /// The original violation's rendered message.
        msg: String,
    },
}

impl fmt::Display for GhostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GhostError::StaleVersion {
                what,
                cap_version,
                current,
            } => write!(
                f,
                "stale {what}: capability version {cap_version} but execution is at {current}"
            ),
            GhostError::UnknownResource { id } => write!(f, "unknown ghost resource {id}"),
            GhostError::TypeMismatch { id } => write!(f, "ghost resource {id}: type mismatch"),
            GhostError::LeaseAlreadyOut { id } => {
                write!(
                    f,
                    "lease for resource {id} already outstanding this version"
                )
            }
            GhostError::WrongLease { id, lease_id } => {
                write!(
                    f,
                    "lease for resource {lease_id} presented for resource {id}"
                )
            }
            GhostError::LockInvariant { msg } => write!(f, "lock invariant misuse: {msg}"),
            GhostError::OpState { jid, msg } => write!(f, "op {jid}: {msg}"),
            GhostError::RetMismatch { jid, spec, actual } => write!(
                f,
                "op {jid}: implementation returned {actual} but spec produced {spec}"
            ),
            GhostError::SpecStep { jid, err } => match jid {
                Some(j) => write!(f, "op {j}: spec step failed: {err}"),
                None => write!(f, "crash step failed: {err}"),
            },
            GhostError::HelpTokenMissing { key } => {
                write!(f, "no helping token stashed under key {key}")
            }
            GhostError::HelpKeyBusy { key } => {
                write!(f, "helping key {key} already holds a token")
            }
            GhostError::CrashToken { msg } => write!(f, "crash token misuse: {msg}"),
            GhostError::SetMembership { id } => {
                write!(f, "durable set {id}: deleting a non-member")
            }
            GhostError::Validation { msg } => write!(f, "validation failed: {msg}"),
            GhostError::Imported { msg } => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for GhostError {}

/// Result alias for ghost operations.
pub type GhostResult<T> = Result<T, GhostError>;

/// Unwind payload used when instrumented code aborts on a ghost violation.
///
/// The checker's harness catches this payload and reports the execution as
/// a verification failure (distinct from an injected crash).
#[derive(Debug, Clone)]
pub struct GhostPanic(pub GhostError);

/// Extension trait: abort the current (virtual) thread on a ghost error.
pub trait GhostUnwrap<T> {
    /// Unwraps, panicking with a [`GhostPanic`] payload on error.
    fn ghost_unwrap(self) -> T;
}

impl<T> GhostUnwrap<T> for GhostResult<T> {
    fn ghost_unwrap(self) -> T {
        match self {
            Ok(v) => v,
            Err(e) => std::panic::panic_any(GhostPanic(e)),
        }
    }
}
