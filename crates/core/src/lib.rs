//! Perennial's reasoning techniques as an executable, runtime-checked
//! capability discipline.
//!
//! The SOSP '19 paper extends the Iris concurrency framework with three
//! techniques for crash-safety reasoning, summarized in its Table 1. This
//! crate is the Rust reproduction of that contribution. Lacking a proof
//! assistant, the capability rules are *enforced at runtime* on every
//! execution the checker explores, instead of being discharged once by
//! `coqc`:
//!
//! | Paper technique | Here |
//! |---|---|
//! | crash invariant (§5.1) | the [`Ghost`] engine itself holds master copies and helping tokens across crashes |
//! | versioned memory (§5.2) | [`resource::PointsTo`] stamped with a version; any use after a crash fails |
//! | recovery leases (§5.3) | [`resource::Lease`]/[`resource::DurId`] — writes need master + current lease; [`Ghost::recover_lease`] synthesizes a fresh lease once per version |
//! | refinement (§4) | [`engine::OpToken`] (`j ⇛ op`), [`Ghost::commit_op`] simulating spec steps against `source(σ)` |
//! | crash refinement (§5.5) | [`engine::CrashToken`] (`⇛Crashing`/`⇛Done`), spent by [`Ghost::recovery_done`] |
//! | recovery helping (§5.4) | [`Ghost::stash_op`]/[`Ghost::help_commit`] moving `j ⇛ op` through the crash invariant |
//!
//! A system "verified" with this crate is one whose implementation is
//! instrumented with these ghost calls (the runtime analog of writing the
//! Perennial proof) and for which the checker (`perennial-checker`)
//! explored schedules and crash points without any ghost rule ever
//! failing. See `DESIGN.md` §1 for the precise claim this substitutes for
//! the paper's Coq theorem.
//!
//! # Examples
//!
//! Verifying one atomic register write across a crash:
//!
//! ```
//! use perennial::{Ghost, GhostUnwrap};
//! use perennial_spec::fixtures::{RegOp, RegSpec};
//!
//! let g = Ghost::new(RegSpec { size: 8 });
//! // Durable resource + lease for address 3.
//! let (cell, mut lease) = g.alloc_durable(0u64);
//!
//! // A write operation: begin, mutate under the lease, commit, finish.
//! let tok = g.begin_op(RegOp::Write(3, 7)).ghost_unwrap();
//! g.write_durable(cell, &mut lease, 7).ghost_unwrap();
//! let ret = g.commit_op(&tok).ghost_unwrap();
//! g.finish_op(tok, &ret).ghost_unwrap();
//!
//! // Crash: the lease dies with the version bump, but the master copy
//! // survives in the crash invariant, and recovery mints a fresh lease.
//! g.crash();
//! assert_eq!(g.read_master(cell).ghost_unwrap(), 7);
//! let lease2 = g.recover_lease(cell).ghost_unwrap();
//! g.recovery_done().ghost_unwrap();
//! assert_eq!(g.read_durable(cell, &lease2).ghost_unwrap(), 7);
//! let report = g.validate().unwrap();
//! assert_eq!(report.finished, 1);
//!
//! // Using the stale pre-crash lease is a discipline violation (and any
//! // recorded violation poisons later validation — errors are sticky).
//! assert!(g.read_durable(cell, &lease).is_err());
//! assert!(g.validate().is_err());
//! ```

pub mod engine;
pub mod error;
pub mod lockinv;
pub mod resource;
pub mod trace;
pub mod validate;

pub use engine::{CrashToken, Ghost, OpToken};
pub use error::{GhostError, GhostPanic, GhostResult, GhostUnwrap};
pub use lockinv::LockInv;
pub use resource::{DurId, Lease, PointsTo, SetId, SetItem, SetLease};
pub use trace::{Trace, TraceEvent};
pub use validate::Report;
