//! Lock invariants: `is_lock(ℓ, I)` as a runtime-checked bundle slot.
//!
//! In Iris, a lock is associated with an invariant `I`; acquiring the lock
//! hands the owner the capabilities in `I`, and releasing requires giving
//! them back (§4). Here the bundle is an ordinary Rust value (typically a
//! struct of [`crate::resource::Lease`]s): taking it *moves* it out, so
//! the borrow checker enforces single ownership, and the slot's state
//! machine catches protocol violations (double take, put without take).
//!
//! A lock invariant differs from a plain Iris invariant in that the owner
//! may hold (and violate) the bundle for many steps — exactly the paper's
//! distinction. On crash, the bundle's leases become stale on their own
//! (version check), so the slot can simply be rebuilt by recovery via
//! [`LockInv::reset`].

use crate::error::{GhostError, GhostResult};
use parking_lot::Mutex;

/// A lock invariant slot holding a capability bundle of type `B`.
#[derive(Debug)]
pub struct LockInv<B> {
    slot: Mutex<SlotState<B>>,
}

#[derive(Debug)]
enum SlotState<B> {
    /// Lock free: bundle stored here.
    Present(B),
    /// Lock held: bundle is with the owner.
    Taken,
}

impl<B: Send> LockInv<B> {
    /// Creates the invariant, storing the initial bundle (the paper: "when
    /// invariants are allocated, the creating thread must provide the
    /// underlying capability").
    pub fn new(bundle: B) -> Self {
        LockInv {
            slot: Mutex::new(SlotState::Present(bundle)),
        }
    }

    /// Takes the bundle on lock acquisition.
    pub fn take(&self) -> GhostResult<B> {
        let mut s = self.slot.lock();
        match std::mem::replace(&mut *s, SlotState::Taken) {
            SlotState::Present(b) => Ok(b),
            SlotState::Taken => Err(GhostError::LockInvariant {
                msg: "bundle taken while already taken (lock not actually exclusive?)",
            }),
        }
    }

    /// Returns the bundle on lock release.
    pub fn put(&self, bundle: B) -> GhostResult<()> {
        let mut s = self.slot.lock();
        match &*s {
            SlotState::Taken => {
                *s = SlotState::Present(bundle);
                Ok(())
            }
            SlotState::Present(_) => Err(GhostError::LockInvariant {
                msg: "bundle returned while not taken",
            }),
        }
    }

    /// Rebuilds the slot after a crash: recovery supplies a fresh bundle
    /// (with new-version leases), discarding whatever state was left.
    pub fn reset(&self, bundle: B) {
        *self.slot.lock() = SlotState::Present(bundle);
    }

    /// Whether the bundle is currently taken.
    pub fn is_taken(&self) -> bool {
        matches!(&*self.slot.lock(), SlotState::Taken)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_cycle() {
        let inv = LockInv::new(41u64);
        let b = inv.take().unwrap();
        assert_eq!(b, 41);
        assert!(inv.is_taken());
        inv.put(b + 1).unwrap();
        assert_eq!(inv.take().unwrap(), 42);
    }

    #[test]
    fn double_take_rejected() {
        let inv = LockInv::new(());
        inv.take().unwrap();
        assert!(matches!(inv.take(), Err(GhostError::LockInvariant { .. })));
    }

    #[test]
    fn put_without_take_rejected() {
        let inv = LockInv::new(0u8);
        assert!(matches!(inv.put(1), Err(GhostError::LockInvariant { .. })));
    }

    #[test]
    fn reset_recovers_from_taken() {
        let inv = LockInv::new(1u64);
        let _ = inv.take().unwrap();
        // Crash: the owner never returns the bundle. Recovery resets.
        inv.reset(2);
        assert_eq!(inv.take().unwrap(), 2);
    }
}
