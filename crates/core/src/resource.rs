//! Ghost resources: versioned volatile cells, durable master/lease cells,
//! and durable sets with lower-bound leases.
//!
//! These are the runtime analogs of the paper's capabilities:
//!
//! - `p ↦ₙ v` — [`PointsTo`], valid only at the version it was minted for
//!   (§5.2, *versioned memory*).
//! - `d[a] ↦ₙ v ∗ leaseₙ(d[a], v)` — an implicit master copy held in the
//!   crash invariant plus a [`Lease`] token (§5.3, *recovery leases*).
//!   Writes require the lease; after a crash the master survives and a
//!   fresh lease can be synthesized exactly once per version.
//! - `lease(dir, ⊇N)` — [`SetLease`], the lower-bound lease Mailboat's
//!   proof uses (§8.3): the holder may delete members, while any thread
//!   may insert new ones.
//!
//! Tokens are deliberately **not** `Clone`: ownership of the Rust value is
//! ownership of the capability, which is how separation logic's
//! "capabilities cannot be duplicated" rule is enforced for free by the
//! borrow checker. The engine additionally checks versions and lease
//! uniqueness dynamically, so even code that cheats with `unsafe` or
//! reconstructs tokens is caught.

use crate::error::{GhostError, GhostResult};
use std::any::Any;
use std::collections::BTreeSet;
use std::fmt;
use std::marker::PhantomData;

/// Capability for a volatile (in-memory) cell: the paper's `p ↦ₙ v`.
///
/// Invalidated wholesale by a crash; any use afterwards is a
/// [`GhostError::StaleVersion`].
pub struct PointsTo<T> {
    pub(crate) id: u64,
    pub(crate) version: u64,
    pub(crate) _marker: PhantomData<fn() -> T>,
}

impl<T> fmt::Debug for PointsTo<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PointsTo(id={}, v={})", self.id, self.version)
    }
}

/// Capability to mutate a durable cell for the current version: the
/// paper's `leaseₙ(d[a], v)`.
pub struct Lease<T> {
    pub(crate) id: u64,
    pub(crate) version: u64,
    pub(crate) _marker: PhantomData<fn() -> T>,
}

impl<T> fmt::Debug for Lease<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Lease(id={}, v={})", self.id, self.version)
    }
}

/// Stable identifier of a durable cell whose master copy lives in the
/// crash invariant. `Copy` on purpose: naming a resource is free; only
/// the lease conveys mutation rights.
pub struct DurId<T> {
    pub(crate) id: u64,
    pub(crate) _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for DurId<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for DurId<T> {}

impl<T> fmt::Debug for DurId<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DurId({})", self.id)
    }
}

impl<T> DurId<T> {
    /// Raw id, for keying helper maps.
    pub fn raw(&self) -> u64 {
        self.id
    }
}

/// Stable identifier of a durable set resource.
pub struct SetId<T> {
    pub(crate) id: u64,
    pub(crate) _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for SetId<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SetId<T> {}

impl<T> fmt::Debug for SetId<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SetId({})", self.id)
    }
}

/// Lower-bound lease over a durable set: the paper's `lease(dir, ⊇N)`.
///
/// The holder may delete members; any thread may insert (modelling
/// concurrent `Deliver` during a locked `Pickup`).
pub struct SetLease<T> {
    pub(crate) id: u64,
    pub(crate) version: u64,
    pub(crate) _marker: PhantomData<fn() -> T>,
}

impl<T> fmt::Debug for SetLease<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SetLease(id={}, v={})", self.id, self.version)
    }
}

/// A single volatile cell in the engine's table.
///
/// No version field: a crash clears the whole table, so existence implies
/// currency; the capability carries the version for staleness checks.
pub(crate) struct VolCell {
    pub(crate) value: Box<dyn Any + Send>,
}

/// A single durable cell in the engine's table.
pub(crate) struct DurCell {
    pub(crate) value: Box<dyn Any + Send>,
    /// Version for which a lease is currently outstanding, if any.
    pub(crate) lease_out_for: Option<u64>,
}

/// A durable set in the engine's table (values kept type-erased).
pub(crate) struct SetCell {
    pub(crate) members: BTreeSet<Vec<u8>>,
    pub(crate) lease_out_for: Option<u64>,
}

/// Values storable in durable set resources: anything with a stable byte
/// encoding usable as a set key.
pub trait SetItem: Clone + Send + Sync + 'static {
    /// Stable byte encoding (must be injective).
    fn encode(&self) -> Vec<u8>;
}

impl SetItem for String {
    fn encode(&self) -> Vec<u8> {
        self.as_bytes().to_vec()
    }
}

impl SetItem for u64 {
    fn encode(&self) -> Vec<u8> {
        self.to_be_bytes().to_vec()
    }
}

impl SetItem for (u64, String) {
    fn encode(&self) -> Vec<u8> {
        let mut v = self.0.to_be_bytes().to_vec();
        v.extend_from_slice(self.1.as_bytes());
        v
    }
}

/// Checks a capability version against the current execution version.
pub(crate) fn check_version(what: &'static str, cap_version: u64, current: u64) -> GhostResult<()> {
    if cap_version == current {
        Ok(())
    } else {
        Err(GhostError::StaleVersion {
            what,
            cap_version,
            current,
        })
    }
}
