//! Refinement traces: the record of spec-level steps an execution
//! simulated, used for reporting and end-of-execution validation.

use perennial_spec::Jid;
use std::fmt::Debug;

/// One spec-level event recorded by the ghost engine.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent<Op, Ret> {
    /// `begin_op`: minted `j ⇛ op`.
    Invoke { jid: Jid, op: Op },
    /// `commit_op`: simulated the spec step for `j`, producing `ret`.
    Commit { jid: Jid, op: Op, ret: Ret },
    /// `finish_op`: the implementation returned `ret` for `j`.
    Return { jid: Jid, ret: Ret },
    /// `stash_op`: `j ⇛ op` moved into the crash invariant under `key`.
    Stash { jid: Jid, key: u64 },
    /// `unstash_op`: `j ⇛ op` taken back out of the crash invariant.
    Unstash { jid: Jid, key: u64 },
    /// Recovery committed `j`'s operation on its behalf (§5.4 helping).
    HelpCommit { jid: Jid, op: Op, ret: Ret },
    /// A crash: version bumped to `new_version`; uncommitted, unstashed
    /// in-flight ops listed in `aborted` are treated as never-executed.
    Crash { new_version: u64, aborted: Vec<Jid> },
    /// Recovery finished: the spec crash transition was simulated and the
    /// crash token moved `⇛Crashing → ⇛Done`.
    RecoveryDone { version: u64 },
}

/// A full refinement trace for one execution.
#[derive(Debug, Clone)]
pub struct Trace<Op, Ret> {
    events: Vec<TraceEvent<Op, Ret>>,
}

impl<Op, Ret> Default for Trace<Op, Ret> {
    fn default() -> Self {
        Trace { events: Vec::new() }
    }
}

impl<Op: Clone + Debug, Ret: Clone + Debug> Trace<Op, Ret> {
    /// Appends an event.
    pub(crate) fn push(&mut self, ev: TraceEvent<Op, Ret>) {
        self.events.push(ev);
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[TraceEvent<Op, Ret>] {
        &self.events
    }

    /// Number of committed spec steps (own commits plus helped commits).
    pub fn commits(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Commit { .. } | TraceEvent::HelpCommit { .. }))
            .count()
    }

    /// Number of crashes.
    pub fn crashes(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Crash { .. }))
            .count()
    }

    /// Renders the trace as one line per event, for failure reports.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, ev) in self.events.iter().enumerate() {
            out.push_str(&format!("  [{i:3}] {ev:?}\n"));
        }
        out
    }
}
