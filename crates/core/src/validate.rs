//! End-of-execution reports: what the ghost engine certified.

use crate::trace::Trace;
use perennial_spec::SpecTS;

/// Summary of one successfully validated execution.
///
/// Produced by [`crate::Ghost::validate`] only when *every* ghost step
/// succeeded and the Theorem 2 obligations hold; the checker aggregates
/// these across explored schedules and crash points.
#[derive(Debug, Clone)]
pub struct Report<S: SpecTS> {
    /// Final execution version (= number of crashes survived).
    pub version: u64,
    /// Final abstract state `σ`.
    pub final_state: S::State,
    /// Operations invoked (`begin_op` calls).
    pub ops_invoked: usize,
    /// Operations that committed and returned with matching values.
    pub finished: usize,
    /// Operations completed by recovery on a crashed thread's behalf.
    pub helped: usize,
    /// In-flight uncommitted operations cut off by a crash (legal: the
    /// caller observed no return).
    pub aborted: usize,
    /// Operations that committed but whose return was cut off by a crash
    /// (legal: the effect is durable, the value was simply never
    /// delivered).
    pub committed_unreturned: usize,
    /// Crash events.
    pub crashes: usize,
    /// Total committed spec steps (own + helped).
    pub commits: usize,
    /// The full refinement trace.
    pub trace: Trace<S::Op, S::Ret>,
}

impl<S: SpecTS> Report<S> {
    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "v{}: {} invoked, {} finished, {} helped, {} aborted, {} committed-unreturned, {} crashes",
            self.version,
            self.ops_invoked,
            self.finished,
            self.helped,
            self.aborted,
            self.committed_unreturned,
            self.crashes
        )
    }
}
