//! Edge-case coverage for the ghost engine beyond the Table 1 laws:
//! set resources, refined commits, trace contents, and report shape.

use perennial::{Ghost, GhostError, TraceEvent};
use perennial_spec::fixtures::{BufOp, BufSpec, RegOp, RegSpec};

fn ghost() -> std::sync::Arc<Ghost<RegSpec>> {
    Ghost::new(RegSpec { size: 4 })
}

// ---------------------------------------------------------------------
// Durable sets and lower-bound leases (§8.3's leasing strategy).
// ---------------------------------------------------------------------

#[test]
fn set_insert_needs_no_lease_delete_does() {
    let g = ghost();
    let (set, mut lease) = g.alloc_set::<String>(["a".to_string()]);
    // Anyone can insert (concurrent Deliver).
    g.set_insert(set, &"b".to_string()).unwrap();
    assert!(g.set_contains(set, &"b".to_string()).unwrap());
    assert_eq!(g.set_len(set).unwrap(), 2);
    // Deleting requires the lease and membership.
    g.set_delete(set, &mut lease, &"a".to_string()).unwrap();
    assert!(!g.set_contains(set, &"a".to_string()).unwrap());
    assert!(matches!(
        g.set_delete(set, &mut lease, &"ghost".to_string()),
        Err(GhostError::SetMembership { .. })
    ));
}

#[test]
fn set_lease_dies_on_crash_and_renews_once() {
    let g = ghost();
    let (set, mut lease) = g.alloc_set::<String>(["x".to_string()]);
    g.crash();
    assert!(matches!(
        g.set_delete(set, &mut lease, &"x".to_string()),
        Err(GhostError::StaleVersion { .. })
    ));
    let mut fresh = g.recover_set_lease(set).unwrap();
    assert!(matches!(
        g.recover_set_lease(set),
        Err(GhostError::LeaseAlreadyOut { .. })
    ));
    // The set contents survived the crash.
    g.set_delete(set, &mut fresh, &"x".to_string()).unwrap();
    assert_eq!(g.set_len(set).unwrap(), 0);
}

#[test]
fn set_lease_for_wrong_set_rejected() {
    let g = ghost();
    let (set_a, mut lease_a) = g.alloc_set::<u64>([1u64]);
    let (set_b, _lease_b) = g.alloc_set::<u64>([1u64]);
    let _ = set_a;
    assert!(matches!(
        g.set_delete(set_b, &mut lease_a, &1u64),
        Err(GhostError::WrongLease { .. })
    ));
}

// ---------------------------------------------------------------------
// Refined commits (commit_op_as).
// ---------------------------------------------------------------------

#[test]
fn refined_commit_must_refine_the_invocation() {
    let g = ghost();
    // RegSpec's op_refines is equality: committing a different op fails.
    let tok = g.begin_op(RegOp::Write(0, 1)).unwrap();
    assert!(matches!(
        g.commit_op_as(&tok, RegOp::Write(0, 2)),
        Err(GhostError::OpState { .. })
    ));
}

#[test]
fn commit_as_same_op_is_commit() {
    let g = ghost();
    let tok = g.begin_op(RegOp::Write(2, 9)).unwrap();
    let ret = g.commit_op_as(&tok, RegOp::Write(2, 9)).unwrap();
    g.finish_op(tok, &ret).unwrap();
    assert_eq!(g.spec_state()[&2], 9);
}

// ---------------------------------------------------------------------
// Helping edge cases.
// ---------------------------------------------------------------------

#[test]
fn stash_key_collision_rejected() {
    let g = ghost();
    let t1 = g.begin_op(RegOp::Write(0, 1)).unwrap();
    let t2 = g.begin_op(RegOp::Write(1, 2)).unwrap();
    g.stash_op(&t1, 5).unwrap();
    assert!(matches!(
        g.stash_op(&t2, 5),
        Err(GhostError::HelpKeyBusy { key: 5 })
    ));
}

#[test]
fn unstash_with_wrong_token_rejected() {
    let g = ghost();
    let t1 = g.begin_op(RegOp::Write(0, 1)).unwrap();
    let t2 = g.begin_op(RegOp::Write(1, 2)).unwrap();
    g.stash_op(&t1, 3).unwrap();
    assert!(matches!(
        g.unstash_op(&t2, 3),
        Err(GhostError::HelpTokenMissing { key: 3 })
    ));
}

#[test]
fn drop_help_outside_recovery_rejected() {
    let g = ghost();
    let tok = g.begin_op(RegOp::Write(0, 1)).unwrap();
    g.stash_op(&tok, 0).unwrap();
    assert!(matches!(g.drop_help(0), Err(GhostError::CrashToken { .. })));
}

#[test]
fn helped_op_cannot_finish() {
    // The thread that stashed died; if a zombie token somehow reached
    // finish_op after recovery helped it, the engine rejects it.
    let g = ghost();
    let tok = g.begin_op(RegOp::Write(0, 7)).unwrap();
    g.stash_op(&tok, 0).unwrap();
    g.crash();
    g.help_commit(0).unwrap();
    g.recovery_done().unwrap();
    assert!(matches!(
        g.finish_op(tok, &None),
        Err(GhostError::OpState { .. })
    ));
}

// ---------------------------------------------------------------------
// Trace contents and report shape.
// ---------------------------------------------------------------------

#[test]
fn trace_records_full_lifecycle() {
    let g = Ghost::new(BufSpec);
    let tok = g.begin_op(BufOp::Append(5)).unwrap();
    let ret = g.commit_op(&tok).unwrap();
    g.finish_op(tok, &ret).unwrap();
    g.crash();
    g.recovery_done().unwrap();

    let trace = g.trace();
    let kinds: Vec<&'static str> = trace
        .events()
        .iter()
        .map(|e| match e {
            TraceEvent::Invoke { .. } => "invoke",
            TraceEvent::Commit { .. } => "commit",
            TraceEvent::Return { .. } => "return",
            TraceEvent::Stash { .. } => "stash",
            TraceEvent::Unstash { .. } => "unstash",
            TraceEvent::HelpCommit { .. } => "help",
            TraceEvent::Crash { .. } => "crash",
            TraceEvent::RecoveryDone { .. } => "recovered",
        })
        .collect();
    assert_eq!(
        kinds,
        vec!["invoke", "commit", "return", "crash", "recovered"]
    );
    assert_eq!(trace.commits(), 1);
    assert_eq!(trace.crashes(), 1);
    // The render is one line per event and mentions the op.
    let rendered = trace.render();
    assert_eq!(rendered.lines().count(), 5);
    assert!(rendered.contains("Append"));
}

#[test]
fn report_summary_is_informative() {
    let g = ghost();
    let tok = g.begin_op(RegOp::Write(0, 1)).unwrap();
    let ret = g.commit_op(&tok).unwrap();
    g.finish_op(tok, &ret).unwrap();
    let report = g.validate().unwrap();
    let s = report.summary();
    assert!(s.contains("1 invoked"), "{s}");
    assert!(s.contains("1 finished"), "{s}");
    assert_eq!(report.commits, 1);
    assert_eq!(report.version, 0);
}

// ---------------------------------------------------------------------
// Volatile cells: type confusion and dangling access.
// ---------------------------------------------------------------------

#[test]
fn volatile_roundtrip_and_dangling() {
    let g = ghost();
    let mut p = g.alloc_vol(String::from("v0"));
    g.write_vol(&mut p, String::from("v1")).unwrap();
    assert_eq!(g.read_vol(&p).unwrap(), "v1");
    g.crash();
    // After a crash the cell is gone; even a fresh-looking version check
    // fails first, so allocate anew.
    g.recovery_done().unwrap();
    let p2 = g.alloc_vol(7u64);
    assert_eq!(g.read_vol(&p2).unwrap(), 7);
}

#[test]
fn internal_step_respects_guards() {
    use perennial_spec::Transition;
    let g = Ghost::new(BufSpec);
    // A guard that requires a non-empty log: blocked initially.
    let guarded = Transition::guard(|s: &perennial_spec::fixtures::BufState| !s.entries.is_empty());
    assert!(matches!(
        g.internal_step(&guarded),
        Err(GhostError::SpecStep { .. })
    ));
}
