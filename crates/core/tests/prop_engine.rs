//! Property-based tests for the ghost engine: random well-formed
//! op/crash sequences always validate, the abstract state tracks a
//! reference model exactly, and random *rule-breaking* sequences always
//! fail.

use perennial::{CrashToken, Ghost, GhostError};
use perennial_spec::fixtures::{RegOp, RegSpec};
use proptest::prelude::*;
use std::collections::BTreeMap;

const NREGS: u64 = 6;

/// One scripted action against the engine.
#[derive(Debug, Clone)]
enum Action {
    /// Complete a write op correctly (begin/commit/finish).
    Write(u64, u64),
    /// Complete a read op correctly.
    Read(u64),
    /// Begin a write, stash it for helping, then crash before commit.
    CrashMidWrite(u64, u64),
    /// Crash with nothing in flight.
    Crash,
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0..NREGS, 0u64..100).prop_map(|(a, v)| Action::Write(a, v)),
        (0..NREGS).prop_map(Action::Read),
        (0..NREGS, 0u64..100).prop_map(|(a, v)| Action::CrashMidWrite(a, v)),
        Just(Action::Crash),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A well-behaved interpreter of random scripts always validates,
    /// and σ equals an independently maintained reference model.
    #[test]
    fn engine_tracks_reference_model(script in proptest::collection::vec(arb_action(), 1..40)) {
        let g = Ghost::new(RegSpec { size: NREGS });
        let mut reference: BTreeMap<u64, u64> = (0..NREGS).map(|a| (a, 0)).collect();

        for action in &script {
            match action {
                Action::Write(a, v) => {
                    let tok = g.begin_op(RegOp::Write(*a, *v)).unwrap();
                    let ret = g.commit_op(&tok).unwrap();
                    g.finish_op(tok, &ret).unwrap();
                    reference.insert(*a, *v);
                }
                Action::Read(a) => {
                    let tok = g.begin_op(RegOp::Read(*a)).unwrap();
                    let ret = g.commit_op(&tok).unwrap();
                    prop_assert_eq!(ret, Some(reference[a]));
                    g.finish_op(tok, &ret).unwrap();
                }
                Action::CrashMidWrite(a, v) => {
                    let tok = g.begin_op(RegOp::Write(*a, *v)).unwrap();
                    g.stash_op(&tok, *a).unwrap();
                    g.crash();
                    // Recovery decides to complete the write (helping).
                    let (_j, _ret) = g.help_commit(*a).unwrap();
                    reference.insert(*a, *v);
                    g.recovery_done().unwrap();
                }
                Action::Crash => {
                    g.crash();
                    g.recovery_done().unwrap();
                }
            }
        }
        let report = g.validate().unwrap();
        let sigma = g.spec_state();
        prop_assert_eq!(sigma, reference);
        prop_assert_eq!(report.crashes,
            script.iter().filter(|a| matches!(a, Action::Crash | Action::CrashMidWrite(..))).count());
    }

    /// After any number of crashes, a lease minted pre-crash is dead and
    /// exactly one fresh lease per resource per version can be minted.
    #[test]
    fn lease_uniqueness_per_version(crashes in 1usize..5) {
        let g = Ghost::new(RegSpec { size: 1 });
        let (cell, mut lease) = g.alloc_durable(0u64);
        for round in 0..crashes {
            g.crash();
            g.recovery_done().unwrap();
            // The old lease is dead.
            let stale = matches!(
                g.write_durable(cell, &mut lease, round as u64),
                Err(GhostError::StaleVersion { .. })
            );
            prop_assert!(stale);
            // Exactly one renewal succeeds.
            let mut fresh = g.recover_lease(cell).unwrap();
            let dup = matches!(
                g.recover_lease(cell),
                Err(GhostError::LeaseAlreadyOut { .. })
            );
            prop_assert!(dup);
            g.write_durable(cell, &mut fresh, round as u64).unwrap();
            prop_assert_eq!(g.read_master(cell).unwrap(), round as u64);
            lease = fresh;
        }
    }

    /// Uncommitted, unstashed ops cut off by a crash never affect σ.
    #[test]
    fn aborted_ops_leave_no_trace(writes in proptest::collection::vec((0..NREGS, 0u64..100), 1..10)) {
        let g = Ghost::new(RegSpec { size: NREGS });
        let mut toks = Vec::new();
        for (a, v) in &writes {
            toks.push(g.begin_op(RegOp::Write(*a, *v)).unwrap());
        }
        g.crash();
        drop(toks);
        g.recovery_done().unwrap();
        let sigma = g.spec_state();
        for a in 0..NREGS {
            prop_assert_eq!(sigma[&a], 0, "aborted write leaked into σ");
        }
        let report = g.validate().unwrap();
        prop_assert_eq!(report.aborted, writes.len());
    }

    /// Helping tokens cannot be redeemed twice, regardless of key.
    #[test]
    fn help_tokens_single_use(key in 0u64..8) {
        // Happy path on a clean engine: one redemption, validates.
        let g = Ghost::new(RegSpec { size: NREGS });
        let tok = g.begin_op(RegOp::Write(key % NREGS, 7)).unwrap();
        g.stash_op(&tok, key).unwrap();
        g.crash();
        g.help_commit(key).unwrap();
        g.recovery_done().unwrap();
        prop_assert!(g.validate().is_ok());

        // Double redemption on a second engine: fails while ⇛Crashing is
        // still armed, and — ghost errors being sticky — poisons
        // validation even after a completed recovery.
        let g = Ghost::new(RegSpec { size: NREGS });
        let tok = g.begin_op(RegOp::Write(key % NREGS, 7)).unwrap();
        g.stash_op(&tok, key).unwrap();
        g.crash();
        g.help_commit(key).unwrap();
        let missing = matches!(
            g.help_commit(key),
            Err(GhostError::HelpTokenMissing { .. })
        );
        prop_assert!(missing);
        g.recovery_done().unwrap();
        prop_assert!(g.validate().is_err());
    }

    /// The crash token is never left armed by a correct interpreter and
    /// validation always rejects an armed one.
    #[test]
    fn armed_crash_token_rejected(n_ops in 0usize..5) {
        let g = Ghost::new(RegSpec { size: NREGS });
        for i in 0..n_ops {
            let tok = g.begin_op(RegOp::Write(i as u64 % NREGS, i as u64)).unwrap();
            let ret = g.commit_op(&tok).unwrap();
            g.finish_op(tok, &ret).unwrap();
        }
        g.crash();
        prop_assert_eq!(g.crash_token(), CrashToken::Crashing);
        let rejected = matches!(g.validate(), Err(GhostError::Validation { .. }));
        prop_assert!(rejected);
        g.recovery_done().unwrap();
        prop_assert!(g.validate().is_ok());
    }
}
