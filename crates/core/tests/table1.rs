//! One test per row of the paper's Table 1 ("Summary of techniques in
//! Perennial"), exercising both the rule and its violation. These tests
//! are the executable form of the table and are referenced from
//! EXPERIMENTS.md.

use perennial::{CrashToken, Ghost, GhostError};
use perennial_spec::fixtures::{BufOp, BufRet, BufSpec, RegOp, RegSpec};

fn ghost() -> std::sync::Arc<Ghost<RegSpec>> {
    Ghost::new(RegSpec { size: 8 })
}

// ---------------------------------------------------------------------
// Row 1: crash invariant — the distinguished invariant C which recovery
// starts with access to.
// ---------------------------------------------------------------------

#[test]
fn table1_crash_invariant_masters_survive_crash() {
    let g = ghost();
    let (cell, mut lease) = g.alloc_durable(10u64);
    g.write_durable(cell, &mut lease, 11).unwrap();
    g.crash();
    // Recovery reads the master copy out of the crash invariant.
    assert_eq!(g.read_master(cell).unwrap(), 11);
}

#[test]
fn table1_crash_invariant_volatile_resources_are_lost() {
    let g = ghost();
    let p = g.alloc_vol(5u64);
    g.crash();
    assert!(matches!(
        g.read_vol(&p),
        Err(GhostError::StaleVersion { .. })
    ));
}

// ---------------------------------------------------------------------
// Row 2: versioned memory — Hoare triples are at a version number and
// only allow capabilities at the current version.
// ---------------------------------------------------------------------

#[test]
fn table1_versioned_memory_current_version_read_write() {
    let g = ghost();
    let mut p = g.alloc_vol(1u64);
    assert_eq!(g.read_vol(&p).unwrap(), 1);
    g.write_vol(&mut p, 2).unwrap();
    assert_eq!(g.read_vol(&p).unwrap(), 2);
}

#[test]
fn table1_versioned_memory_stale_write_rejected() {
    let g = ghost();
    let mut p = g.alloc_vol(1u64);
    g.crash();
    assert!(matches!(
        g.write_vol(&mut p, 3),
        Err(GhostError::StaleVersion { .. })
    ));
    // A fresh allocation at the new version works.
    let p2 = g.alloc_vol(9u64);
    assert_eq!(g.read_vol(&p2).unwrap(), 9);
}

// ---------------------------------------------------------------------
// Row 3: recovery leases — both master and lease required to update;
// a new lease can be synthesized after a crash from the master copy.
// ---------------------------------------------------------------------

#[test]
fn table1_lease_write_requires_current_lease() {
    let g = ghost();
    let (cell, mut lease) = g.alloc_durable(0u64);
    g.write_durable(cell, &mut lease, 1).unwrap();
    assert_eq!(g.read_durable(cell, &lease).unwrap(), 1);
    g.crash();
    // The old lease is dead.
    assert!(matches!(
        g.write_durable(cell, &mut lease, 2),
        Err(GhostError::StaleVersion { .. })
    ));
}

#[test]
fn table1_lease_synthesized_after_crash_exactly_once() {
    let g = ghost();
    let (cell, _lease) = g.alloc_durable(7u64);
    g.crash();
    let mut l2 = g.recover_lease(cell).unwrap();
    g.write_durable(cell, &mut l2, 8).unwrap();
    // A second lease for the same version is a duplication — rejected.
    assert!(matches!(
        g.recover_lease(cell),
        Err(GhostError::LeaseAlreadyOut { id: _ })
    ));
}

#[test]
fn table1_lease_for_wrong_resource_rejected() {
    let g = ghost();
    let (cell_a, mut lease_a) = g.alloc_durable(0u64);
    let (cell_b, _lease_b) = g.alloc_durable(0u64);
    let _ = cell_a;
    assert!(matches!(
        g.write_durable(cell_b, &mut lease_a, 5),
        Err(GhostError::WrongLease { .. })
    ));
}

// ---------------------------------------------------------------------
// Row 4: refinement — source(σ) ∗ j ⇛ op ⟹ source(σ′) ∗ j ⇛ ret v when
// step(op, σ, σ′, v).
// ---------------------------------------------------------------------

#[test]
fn table1_refinement_commit_advances_source() {
    let g = ghost();
    let tok = g.begin_op(RegOp::Write(2, 9)).unwrap();
    let ret = g.commit_op(&tok).unwrap();
    assert_eq!(ret, None);
    g.finish_op(tok, &None).unwrap();
    assert_eq!(g.spec_state().get(&2), Some(&9));

    let tok = g.begin_op(RegOp::Read(2)).unwrap();
    let ret = g.commit_op(&tok).unwrap();
    assert_eq!(ret, Some(9));
    g.finish_op(tok, &Some(9)).unwrap();
}

#[test]
fn table1_refinement_double_commit_rejected() {
    let g = ghost();
    let tok = g.begin_op(RegOp::Write(0, 1)).unwrap();
    g.commit_op(&tok).unwrap();
    assert!(matches!(g.commit_op(&tok), Err(GhostError::OpState { .. })));
}

#[test]
fn table1_refinement_finish_without_commit_rejected() {
    let g = ghost();
    let tok = g.begin_op(RegOp::Read(0)).unwrap();
    assert!(matches!(
        g.finish_op(tok, &Some(0)),
        Err(GhostError::OpState { .. })
    ));
}

#[test]
fn table1_refinement_return_value_mismatch_rejected() {
    let g = ghost();
    let tok = g.begin_op(RegOp::Read(0)).unwrap();
    g.commit_op(&tok).unwrap(); // spec produces Some(0)
    assert!(matches!(
        g.finish_op(tok, &Some(99)),
        Err(GhostError::RetMismatch { .. })
    ));
}

#[test]
fn table1_refinement_spec_undefined_behaviour_rejected() {
    let g = ghost();
    // Address 100 is out of bounds for size 8 — spec-level UB.
    let tok = g.begin_op(RegOp::Read(100)).unwrap();
    assert!(matches!(
        g.commit_op(&tok),
        Err(GhostError::SpecStep { .. })
    ));
}

// ---------------------------------------------------------------------
// Row 5: crash refinement — source(σ) ∗ ⇛Crashing ⟹ source(σ′) ∗ ⇛Done
// when crash(σ, σ′).
// ---------------------------------------------------------------------

#[test]
fn table1_crash_refinement_token_lifecycle() {
    let g = ghost();
    assert_eq!(g.crash_token(), CrashToken::Idle);
    g.crash();
    assert_eq!(g.crash_token(), CrashToken::Crashing);
    g.recovery_done().unwrap();
    assert_eq!(g.crash_token(), CrashToken::Done);
    // Spending ⇛Crashing twice is rejected.
    assert!(matches!(
        g.recovery_done(),
        Err(GhostError::CrashToken { .. })
    ));
}

#[test]
fn table1_crash_refinement_ops_blocked_until_recovery() {
    let g = ghost();
    g.crash();
    assert!(matches!(
        g.begin_op(RegOp::Read(0)),
        Err(GhostError::CrashToken { .. })
    ));
    g.recovery_done().unwrap();
    assert!(g.begin_op(RegOp::Read(0)).is_ok());
}

#[test]
fn table1_crash_refinement_crash_during_recovery_collapses() {
    // "a crash followed by recovery and perhaps some number of crashes
    // during recovery simulates a single atomic crash step" (§3.1).
    let g = ghost();
    g.crash();
    g.crash(); // crash during recovery
    assert_eq!(g.crash_token(), CrashToken::Crashing);
    g.recovery_done().unwrap();
    assert_eq!(g.crash_token(), CrashToken::Done);
    let report = g.validate().unwrap();
    assert_eq!(report.crashes, 2);
}

#[test]
fn table1_crash_refinement_crash_transition_applied() {
    // BufSpec's crash transition actually loses data: check it is the
    // crash *step* (not the crash event) that truncates.
    let g = Ghost::new(BufSpec);
    let tok = g.begin_op(BufOp::Append(1)).unwrap();
    let ret = g.commit_op(&tok).unwrap();
    g.finish_op(tok, &ret).unwrap();
    assert_eq!(g.spec_state().entries, vec![1]);
    g.crash();
    // σ still has the buffered entry until recovery simulates the step.
    assert_eq!(g.spec_state().entries, vec![1]);
    g.recovery_done().unwrap();
    assert_eq!(g.spec_state().entries, Vec::<u64>::new());
    let tok = g.begin_op(BufOp::ReadAll).unwrap();
    assert_eq!(g.commit_op(&tok).unwrap(), BufRet::Entries(vec![]));
    g.finish_op(tok, &BufRet::Entries(vec![])).unwrap();
}

// ---------------------------------------------------------------------
// Row 6: recovery helping — operation stores j ⇛ op in the crash
// invariant; recovery simulates it.
// ---------------------------------------------------------------------

#[test]
fn table1_helping_recovery_completes_crashed_op() {
    let g = ghost();
    let tok = g.begin_op(RegOp::Write(4, 44)).unwrap();
    g.stash_op(&tok, 4).unwrap();
    // Crash before the thread commits. The stashed token survives.
    g.crash();
    assert!(g.has_help(4));
    let (jid, ret) = g.help_commit(4).unwrap();
    assert_eq!(jid, tok.jid());
    assert_eq!(ret, None);
    g.recovery_done().unwrap();
    // The helped write is visible in σ.
    assert_eq!(g.spec_state().get(&4), Some(&44));
    let report = g.validate().unwrap();
    assert_eq!(report.helped, 1);
}

#[test]
fn table1_helping_no_crash_path_unstashes() {
    let g = ghost();
    let tok = g.begin_op(RegOp::Write(1, 2)).unwrap();
    g.stash_op(&tok, 1).unwrap();
    // No crash: the thread takes its token back and commits itself.
    g.unstash_op(&tok, 1).unwrap();
    let ret = g.commit_op(&tok).unwrap();
    g.finish_op(tok, &ret).unwrap();
    let report = g.validate().unwrap();
    assert_eq!(report.finished, 1);
    assert_eq!(report.helped, 0);
}

#[test]
fn table1_helping_outside_recovery_rejected() {
    let g = ghost();
    let tok = g.begin_op(RegOp::Write(1, 2)).unwrap();
    g.stash_op(&tok, 1).unwrap();
    // ⇛Crashing is not armed: recovery helping is not available.
    assert!(matches!(
        g.help_commit(1),
        Err(GhostError::CrashToken { .. })
    ));
}

#[test]
fn table1_helping_missing_token_rejected() {
    let g = ghost();
    g.crash();
    assert!(matches!(
        g.help_commit(77),
        Err(GhostError::HelpTokenMissing { key: 77 })
    ));
}

#[test]
fn table1_helping_stashed_op_cannot_self_commit() {
    let g = ghost();
    let tok = g.begin_op(RegOp::Write(1, 2)).unwrap();
    g.stash_op(&tok, 1).unwrap();
    // While stashed, the token's commit right lives in the crash
    // invariant — the thread must unstash first.
    assert!(matches!(g.commit_op(&tok), Err(GhostError::OpState { .. })));
}

// ---------------------------------------------------------------------
// Validation: Theorem 2 end-of-execution obligations.
// ---------------------------------------------------------------------

#[test]
fn validate_rejects_unfinished_recovery() {
    let g = ghost();
    g.crash();
    assert!(matches!(g.validate(), Err(GhostError::Validation { .. })));
}

#[test]
fn validate_reports_aborted_inflight_ops() {
    let g = ghost();
    let _tok = g.begin_op(RegOp::Write(0, 1)).unwrap();
    // Crash with the op still pending and unstashed: it never happened.
    g.crash();
    g.recovery_done().unwrap();
    let report = g.validate().unwrap();
    assert_eq!(report.aborted, 1);
    assert_eq!(report.finished, 0);
    // And σ reflects that: the write is absent.
    assert_eq!(g.spec_state().get(&0), Some(&0));
}

#[test]
fn validate_is_sticky_on_first_error() {
    let g = ghost();
    let tok = g.begin_op(RegOp::Read(100)).unwrap(); // UB commit below
    let _ = g.commit_op(&tok);
    assert!(g.validate().is_err());
}

#[test]
fn validate_counts_committed_unreturned() {
    let g = ghost();
    let tok = g.begin_op(RegOp::Write(0, 5)).unwrap();
    g.commit_op(&tok).unwrap();
    let _abandoned = tok; // thread crashed after commit, before return
    g.crash();
    g.recovery_done().unwrap();
    let report = g.validate().unwrap();
    assert_eq!(report.committed_unreturned, 1);
    // The committed effect is durable in σ.
    assert_eq!(g.spec_state().get(&0), Some(&5));
}
