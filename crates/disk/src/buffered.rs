//! Buffered single disk: a volatile write buffer with an explicit flush
//! barrier, so the checker's torn-write fault plans have something to
//! tear.
//!
//! A [`BufferedDisk`] wraps a [`ModelDisk`] (the durable image). Writes
//! land in an ordered volatile buffer; reads see the buffered view; a
//! [`BufferedDisk::flush`] applies the whole buffer durably as one
//! barrier step. On a crash the controller calls
//! [`BufferedDisk::crash_torn`], which persists only the subset of
//! unflushed writes chosen by the execution's fault plan
//! ([`ModelRt::torn_keep`]) — with an empty plan it keeps all of them,
//! which is exactly the atomic-write model the crash sweeps always used,
//! so plans opt *in* to torn semantics.
//!
//! [`BufferedDisk::write_through`] models a single write with a
//! write-through/FUA guarantee: it is durable the moment the operation's
//! atomic step executes, with no torn window. Commit records (a WAL
//! header, a shadow install pointer) go through it so that the commit
//! point stays a single atomic durable transition — everything else must
//! be made durable by an explicit flush *before* the commit record, or
//! the torn-write sweep will find the ordering bug.

use crate::single::{oob_ub, ModelDisk, SingleDisk};
use crate::Block;
use goose_rt::fault::{retry_with_backoff, IoError, IoResult, DEFAULT_IO_ATTEMPTS};
use goose_rt::sched::{res, ModelRt};
use parking_lot::Mutex;
use std::sync::Arc;

/// A write-buffered disk over a durable [`ModelDisk`] image.
pub struct BufferedDisk {
    rt: Arc<ModelRt>,
    inner: Arc<ModelDisk>,
    /// Unflushed writes in program order (the same block may appear more
    /// than once; a torn crash keeping a later entry over an earlier one
    /// models write reordering).
    pending: Mutex<Vec<(u64, Block)>>,
    /// Dependency-tracking resource id. The whole device is one
    /// resource: the *order* of entries in the shared write buffer is
    /// observable through torn-crash plans, so buffered writes to
    /// different blocks still do not commute.
    tag: u64,
}

impl BufferedDisk {
    /// Creates a buffered disk over a fresh zeroed durable image.
    pub fn new(rt: Arc<ModelRt>, nblocks: u64, block_size: usize) -> Arc<Self> {
        let inner = ModelDisk::new(Arc::clone(&rt), nblocks, block_size);
        let tag = rt.alloc_resource_tag();
        Arc::new(BufferedDisk {
            rt,
            inner,
            pending: Mutex::new(Vec::new()),
            tag,
        })
    }

    /// The durable image (for controller-side inspection).
    pub fn durable(&self) -> &Arc<ModelDisk> {
        &self.inner
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    /// Flush barrier (one scheduler step): applies every buffered write
    /// to the durable image, in order, as one atomic step. A crash *at*
    /// the barrier step happens before any of it applies.
    pub fn flush(&self) {
        self.rt.yield_point();
        self.rt.note_access(res::instance(self.tag), true);
        let mut pending = self.pending.lock();
        self.rt.note_disk_flush(self.tag, pending.len() as u64);
        for (a, v) in pending.drain(..) {
            self.inner.poke(a, &v);
        }
    }

    /// Durable single write (write-through/FUA): one scheduler step, then
    /// the block is on the platter with no torn window. Buffered writes
    /// to the same block are superseded and dropped. Absorbs transient
    /// faults internally.
    pub fn write_through(&self, a: u64, v: &[u8]) {
        retry_with_backoff(&self.rt, DEFAULT_IO_ATTEMPTS, || {
            self.try_write_through(a, v)
        })
        .unwrap_or_else(|e| {
            panic!("write-through of block {a}: {e} persisted after {DEFAULT_IO_ATTEMPTS} attempts")
        });
    }

    /// Fallible [`BufferedDisk::write_through`].
    pub fn try_write_through(&self, a: u64, v: &[u8]) -> IoResult<()> {
        self.rt.yield_point();
        self.rt.note_access(res::instance(self.tag), true);
        if a >= self.inner.size() {
            oob_ub("write", a, self.inner.size());
        }
        if self.rt.next_disk_op_faulty() {
            return Err(IoError::Transient);
        }
        self.rt.note_disk_write_through(self.tag, a);
        self.pending.lock().retain(|(b, _)| *b != a);
        self.inner.poke(a, v);
        Ok(())
    }

    /// Controller-side crash transition: persists the plan-chosen subset
    /// of unflushed writes (all of them under an empty plan) and empties
    /// the buffer — volatile state does not survive the reboot.
    pub fn crash_torn(&self) {
        let mut pending = self.pending.lock();
        let keep = self.rt.torn_keep(pending.len());
        if self.rt.tracing_enabled() && !pending.is_empty() {
            let (mut kept_blocks, mut dropped_blocks) = (Vec::new(), Vec::new());
            for ((a, _), kept) in pending.iter().zip(&keep) {
                if *kept {
                    kept_blocks.push(*a);
                } else {
                    dropped_blocks.push(*a);
                }
            }
            self.rt.trace_event_for(
                None,
                goose_rt::trace::TraceKind::CrashTorn {
                    tag: self.tag,
                    kept: kept_blocks,
                    dropped: dropped_blocks,
                },
            );
        }
        for ((a, v), kept) in pending.drain(..).zip(keep) {
            if kept {
                self.inner.poke(a, &v);
            }
        }
    }

    /// Unflushed writes currently buffered.
    pub fn pending_len(&self) -> usize {
        self.pending.lock().len()
    }

    /// Controller-side snapshot of the *buffered view* of block `a` (what
    /// a read would return).
    pub fn peek(&self, a: u64) -> Block {
        let pending = self.pending.lock();
        for (b, v) in pending.iter().rev() {
            if *b == a {
                return v.clone();
            }
        }
        self.inner.peek(a)
    }

    /// Controller-side snapshot of the *durable* block `a` (what survives
    /// a keep-none crash).
    pub fn peek_durable(&self, a: u64) -> Block {
        self.inner.peek(a)
    }
}

impl SingleDisk for BufferedDisk {
    fn read(&self, a: u64) -> Block {
        retry_with_backoff(&self.rt, DEFAULT_IO_ATTEMPTS, || self.try_read(a)).unwrap_or_else(|e| {
            panic!("disk read of block {a}: {e} persisted after {DEFAULT_IO_ATTEMPTS} attempts")
        })
    }

    fn write(&self, a: u64, v: &[u8]) {
        retry_with_backoff(&self.rt, DEFAULT_IO_ATTEMPTS, || self.try_write(a, v)).unwrap_or_else(
            |e| {
                panic!(
                    "disk write of block {a}: {e} persisted after {DEFAULT_IO_ATTEMPTS} attempts"
                )
            },
        )
    }

    fn try_read(&self, a: u64) -> IoResult<Block> {
        self.rt.yield_point();
        self.rt.note_access(res::instance(self.tag), false);
        self.rt.note_disk_read(self.tag, a);
        if a >= self.inner.size() {
            oob_ub("read", a, self.inner.size());
        }
        if self.rt.next_disk_op_faulty() {
            return Err(IoError::Transient);
        }
        let pending = self.pending.lock();
        for (b, v) in pending.iter().rev() {
            if *b == a {
                return Ok(v.clone());
            }
        }
        Ok(self.inner.peek(a))
    }

    fn try_write(&self, a: u64, v: &[u8]) -> IoResult<()> {
        assert_eq!(v.len(), self.block_size(), "partial block write");
        self.rt.yield_point();
        self.rt.note_access(res::instance(self.tag), true);
        self.rt.note_disk_write(self.tag, a);
        if a >= self.inner.size() {
            oob_ub("write", a, self.inner.size());
        }
        if self.rt.next_disk_op_faulty() {
            return Err(IoError::Transient);
        }
        self.pending.lock().push((a, v.to_vec()));
        Ok(())
    }

    fn size(&self) -> u64 {
        self.inner.size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goose_rt::fault::{FaultPlan, TornMode};

    fn disk_with(plan: FaultPlan) -> Arc<BufferedDisk> {
        BufferedDisk::new(ModelRt::with_faults(7, 10_000, plan), 4, 8)
    }

    #[test]
    fn reads_see_the_buffered_view_before_flush() {
        let d = disk_with(FaultPlan::default());
        d.write(1, &[5; 8]);
        assert_eq!(d.read(1), vec![5; 8], "read-your-writes");
        assert_eq!(d.peek_durable(1), vec![0; 8], "not durable yet");
        d.flush();
        assert_eq!(d.peek_durable(1), vec![5; 8]);
        assert_eq!(d.pending_len(), 0);
    }

    #[test]
    fn empty_plan_crash_keeps_all_buffered_writes() {
        let d = disk_with(FaultPlan::default());
        d.write(0, &[1; 8]);
        d.write(1, &[2; 8]);
        d.crash_torn();
        assert_eq!(d.peek_durable(0), vec![1; 8]);
        assert_eq!(d.peek_durable(1), vec![2; 8]);
    }

    #[test]
    fn keep_none_crash_drops_unflushed_but_not_flushed_writes() {
        let plan = FaultPlan {
            torn: Some(TornMode::KeepNone),
            ..FaultPlan::default()
        };
        let d = disk_with(plan);
        d.write(0, &[1; 8]);
        d.flush();
        d.write(1, &[2; 8]);
        d.crash_torn();
        assert_eq!(d.peek_durable(0), vec![1; 8], "flushed write survives");
        assert_eq!(d.peek_durable(1), vec![0; 8], "unflushed write torn away");
        assert_eq!(d.pending_len(), 0);
    }

    #[test]
    fn subset_crash_is_deterministic() {
        let survivors = |tag| {
            let plan = FaultPlan {
                torn: Some(TornMode::Subset(tag)),
                ..FaultPlan::default()
            };
            let d = disk_with(plan);
            for a in 0..4u64 {
                d.write(a, &[a as u8 + 1; 8]);
            }
            d.crash_torn();
            (0..4).map(|a| d.peek_durable(a)).collect::<Vec<_>>()
        };
        assert_eq!(survivors(1), survivors(1), "same plan tears identically");
    }

    #[test]
    fn write_through_is_immediately_durable_and_supersedes_buffered() {
        let plan = FaultPlan {
            torn: Some(TornMode::KeepNone),
            ..FaultPlan::default()
        };
        let d = disk_with(plan);
        d.write(2, &[9; 8]); // stale buffered write to the same block
        d.write_through(2, &[4; 8]);
        assert_eq!(d.peek_durable(2), vec![4; 8]);
        d.crash_torn();
        assert_eq!(d.peek_durable(2), vec![4; 8], "no stale reapply on crash");
    }

    #[test]
    fn transient_faults_surface_on_try_ops() {
        let mut plan = FaultPlan::default();
        plan.transient_io.insert(0);
        let d = disk_with(plan);
        assert_eq!(d.try_write(0, &[1; 8]), Err(IoError::Transient));
        // Internal retry in the infallible op absorbs the next fault too.
        d.write(0, &[1; 8]);
        assert_eq!(d.read(0), vec![1; 8]);
    }
}
