//! Disk substrates for the crash-safety patterns (§9.1).
//!
//! The paper's pattern examples are built on "an alternate set of simpler
//! primitives": a single-disk semantics (shadow copy, write-ahead
//! logging, group commit) and a two-disk semantics (the replicated disk).
//! This crate provides both, in model mode (scheduler-integrated, one
//! atomic step per operation, durable across crashes) and native mode
//! (lock-per-block, for benchmarks).
//!
//! The two-disk semantics includes the failure model of §1: a disk may
//! *fail* permanently, after which reads return `None` and writes are
//! silently dropped — this is what makes the replicated disk's failover
//! path reachable.

pub mod buffered;
pub mod single;
pub mod two;

pub use buffered::BufferedDisk;
pub use goose_rt::fault::{IoError, IoResult};
pub use single::{ModelDisk, NativeDisk, SingleDisk};
pub use two::{DiskId, ModelTwoDisks, NativeTwoDisks, TwoDisks};

/// A disk block. The paper uses 4 KiB blocks; model-mode tests use small
/// blocks for readable counterexamples, so the size is per-instance.
pub type Block = Vec<u8>;

/// Builds a block of `size` bytes all equal to `b` (test convenience).
pub fn block_of(size: usize, b: u8) -> Block {
    vec![b; size]
}
