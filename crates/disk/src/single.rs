//! Single-disk semantics: the substrate for shadow copy, write-ahead
//! logging, and group commit (§9.1, Table 3's "Single-disk semantics").

use crate::Block;
use goose_rt::sched::ModelRt;
use parking_lot::Mutex;
use std::sync::Arc;

/// The single-disk interface: addressable blocks, atomic per-block reads
/// and writes, contents durable across crashes.
pub trait SingleDisk: Send + Sync {
    /// Reads block `a`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds addresses: the specs make out-of-bounds
    /// access undefined behaviour, so verified code must never reach it.
    fn read(&self, a: u64) -> Block;

    /// Writes block `a` atomically.
    fn write(&self, a: u64, v: &[u8]);

    /// Number of blocks.
    fn size(&self) -> u64;
}

/// Model single disk: one scheduler step per operation; contents survive
/// crashes (the controller never clears them).
pub struct ModelDisk {
    rt: Arc<ModelRt>,
    blocks: Mutex<Vec<Block>>,
    block_size: usize,
    ops: Mutex<u64>,
}

impl ModelDisk {
    /// Creates a disk of `nblocks` zeroed blocks of `block_size` bytes.
    pub fn new(rt: Arc<ModelRt>, nblocks: u64, block_size: usize) -> Arc<Self> {
        Arc::new(ModelDisk {
            rt,
            blocks: Mutex::new(vec![vec![0; block_size]; nblocks as usize]),
            block_size,
            ops: Mutex::new(0),
        })
    }

    /// Controller-side snapshot of block `a` (no scheduling).
    pub fn peek(&self, a: u64) -> Block {
        self.blocks.lock()[a as usize].clone()
    }

    /// Controller-side full snapshot.
    pub fn snapshot(&self) -> Vec<Block> {
        self.blocks.lock().clone()
    }

    /// Operations performed (checker statistics).
    pub fn op_count(&self) -> u64 {
        *self.ops.lock()
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }
}

impl SingleDisk for ModelDisk {
    fn read(&self, a: u64) -> Block {
        self.rt.yield_point();
        *self.ops.lock() += 1;
        self.blocks.lock()[a as usize].clone()
    }

    fn write(&self, a: u64, v: &[u8]) {
        assert_eq!(v.len(), self.block_size, "partial block write");
        self.rt.yield_point();
        *self.ops.lock() += 1;
        self.blocks.lock()[a as usize] = v.to_vec();
    }

    fn size(&self) -> u64 {
        self.blocks.lock().len() as u64
    }
}

/// Native single disk: lock-per-block, for benchmarks.
pub struct NativeDisk {
    blocks: Vec<Mutex<Block>>,
    block_size: usize,
}

impl NativeDisk {
    /// Creates a disk of `nblocks` zeroed blocks of `block_size` bytes.
    pub fn new(nblocks: u64, block_size: usize) -> Arc<Self> {
        Arc::new(NativeDisk {
            blocks: (0..nblocks)
                .map(|_| Mutex::new(vec![0; block_size]))
                .collect(),
            block_size,
        })
    }
}

impl SingleDisk for NativeDisk {
    fn read(&self, a: u64) -> Block {
        self.blocks[a as usize].lock().clone()
    }

    fn write(&self, a: u64, v: &[u8]) {
        assert_eq!(v.len(), self.block_size, "partial block write");
        *self.blocks[a as usize].lock() = v.to_vec();
    }

    fn size(&self) -> u64 {
        self.blocks.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_disk_roundtrip() {
        let rt = ModelRt::new(0, 10_000);
        let d = ModelDisk::new(rt, 4, 8);
        d.write(2, &[7; 8]);
        assert_eq!(d.read(2), vec![7; 8]);
        assert_eq!(d.read(0), vec![0; 8]);
        assert_eq!(d.size(), 4);
        assert_eq!(d.op_count(), 3);
    }

    #[test]
    #[should_panic(expected = "partial block write")]
    fn model_disk_rejects_partial_write() {
        let rt = ModelRt::new(0, 10_000);
        let d = ModelDisk::new(rt, 4, 8);
        d.write(0, &[1, 2, 3]);
    }

    #[test]
    fn native_disk_roundtrip() {
        let d = NativeDisk::new(8, 16);
        d.write(5, &[9; 16]);
        assert_eq!(d.read(5), vec![9; 16]);
        assert_eq!(d.size(), 8);
    }

    #[test]
    fn native_disk_concurrent_block_writes() {
        let d = NativeDisk::new(4, 8);
        let mut handles = Vec::new();
        for a in 0..4u64 {
            let d = Arc::clone(&d);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u8 {
                    d.write(a, &[i; 8]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for a in 0..4 {
            assert_eq!(d.read(a), vec![99; 8]);
        }
    }
}
