//! Single-disk semantics: the substrate for shadow copy, write-ahead
//! logging, and group commit (§9.1, Table 3's "Single-disk semantics").

use crate::Block;
use goose_rt::fault::{retry_with_backoff, IoError, IoResult, DEFAULT_IO_ATTEMPTS};
use goose_rt::sched::{res, ModelRt, UbSignal};
use parking_lot::Mutex;
use std::sync::Arc;

/// The single-disk interface: addressable blocks, atomic per-block reads
/// and writes, contents durable across crashes.
pub trait SingleDisk: Send + Sync {
    /// Reads block `a`, absorbing transient faults internally.
    ///
    /// # Panics
    ///
    /// Panics with a [`UbSignal`] on out-of-bounds addresses: the specs
    /// make out-of-bounds access undefined behaviour, so verified code
    /// must never reach it — the checker reports it as a counterexample.
    fn read(&self, a: u64) -> Block;

    /// Writes block `a` atomically, absorbing transient faults
    /// internally.
    fn write(&self, a: u64, v: &[u8]);

    /// Fallible read: surfaces a plan-injected [`IoError::Transient`]
    /// instead of retrying. Systems that want to own their retry policy
    /// (or get it wrong, for mutation tests) use this.
    fn try_read(&self, a: u64) -> IoResult<Block> {
        Ok(self.read(a))
    }

    /// Fallible write (see [`SingleDisk::try_read`]).
    fn try_write(&self, a: u64, v: &[u8]) -> IoResult<()> {
        self.write(a, v);
        Ok(())
    }

    /// Number of blocks.
    fn size(&self) -> u64;
}

/// Raises modelled undefined behaviour for an out-of-bounds access: the
/// checker classifies the unwind as [`ExecOutcome::Ub`] and reports a
/// counterexample naming the address and the disk size, instead of a raw
/// index panic crashing the worker.
pub(crate) fn oob_ub(op: &str, a: u64, size: u64) -> ! {
    std::panic::panic_any(UbSignal(format!(
        "disk {op} out of bounds: address {a} on a disk of {size} blocks"
    )))
}

/// Model single disk: one scheduler step per operation; contents survive
/// crashes (the controller never clears them). Operations consult the
/// runtime's fault plan and may fail transiently; the infallible
/// [`SingleDisk::read`]/[`SingleDisk::write`] absorb those faults with
/// [`retry_with_backoff`].
pub struct ModelDisk {
    rt: Arc<ModelRt>,
    blocks: Mutex<Vec<Block>>,
    block_size: usize,
    ops: Mutex<u64>,
    /// Dependency-tracking resource id; accesses are per-block.
    tag: u64,
}

impl ModelDisk {
    /// Creates a disk of `nblocks` zeroed blocks of `block_size` bytes.
    pub fn new(rt: Arc<ModelRt>, nblocks: u64, block_size: usize) -> Arc<Self> {
        let tag = rt.alloc_resource_tag();
        Arc::new(ModelDisk {
            rt,
            blocks: Mutex::new(vec![vec![0; block_size]; nblocks as usize]),
            block_size,
            ops: Mutex::new(0),
            tag,
        })
    }

    /// Controller-side snapshot of block `a` (no scheduling).
    pub fn peek(&self, a: u64) -> Block {
        self.blocks.lock()[a as usize].clone()
    }

    /// Controller-side direct write (no scheduling, no ops accounting,
    /// no fault consult) — the primitive `BufferedDisk` uses to apply
    /// its buffer to the durable image.
    pub fn poke(&self, a: u64, v: &[u8]) {
        assert_eq!(v.len(), self.block_size, "partial block write");
        self.blocks.lock()[a as usize] = v.to_vec();
    }

    /// Controller-side full snapshot.
    pub fn snapshot(&self) -> Vec<Block> {
        self.blocks.lock().clone()
    }

    /// Operations performed (checker statistics).
    pub fn op_count(&self) -> u64 {
        *self.ops.lock()
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// The runtime this disk schedules on.
    pub fn rt(&self) -> &Arc<ModelRt> {
        &self.rt
    }
}

impl SingleDisk for ModelDisk {
    fn read(&self, a: u64) -> Block {
        retry_with_backoff(&self.rt, DEFAULT_IO_ATTEMPTS, || self.try_read(a)).unwrap_or_else(|e| {
            panic!("disk read of block {a}: {e} persisted after {DEFAULT_IO_ATTEMPTS} attempts")
        })
    }

    fn write(&self, a: u64, v: &[u8]) {
        retry_with_backoff(&self.rt, DEFAULT_IO_ATTEMPTS, || self.try_write(a, v)).unwrap_or_else(
            |e| {
                panic!(
                    "disk write of block {a}: {e} persisted after {DEFAULT_IO_ATTEMPTS} attempts"
                )
            },
        )
    }

    fn try_read(&self, a: u64) -> IoResult<Block> {
        self.rt.yield_point();
        self.rt.note_access(res::disk_block(self.tag, a), false);
        self.rt.note_disk_read(self.tag, a);
        *self.ops.lock() += 1;
        let blocks = self.blocks.lock();
        if a as usize >= blocks.len() {
            oob_ub("read", a, blocks.len() as u64);
        }
        if self.rt.next_disk_op_faulty() {
            return Err(IoError::Transient);
        }
        Ok(blocks[a as usize].clone())
    }

    fn try_write(&self, a: u64, v: &[u8]) -> IoResult<()> {
        assert_eq!(v.len(), self.block_size, "partial block write");
        self.rt.yield_point();
        self.rt.note_access(res::disk_block(self.tag, a), true);
        self.rt.note_disk_write(self.tag, a);
        *self.ops.lock() += 1;
        let mut blocks = self.blocks.lock();
        if a as usize >= blocks.len() {
            oob_ub("write", a, blocks.len() as u64);
        }
        if self.rt.next_disk_op_faulty() {
            return Err(IoError::Transient);
        }
        blocks[a as usize] = v.to_vec();
        Ok(())
    }

    fn size(&self) -> u64 {
        self.blocks.lock().len() as u64
    }
}

/// Native single disk: lock-per-block, for benchmarks.
pub struct NativeDisk {
    blocks: Vec<Mutex<Block>>,
    block_size: usize,
}

impl NativeDisk {
    /// Creates a disk of `nblocks` zeroed blocks of `block_size` bytes.
    pub fn new(nblocks: u64, block_size: usize) -> Arc<Self> {
        Arc::new(NativeDisk {
            blocks: (0..nblocks)
                .map(|_| Mutex::new(vec![0; block_size]))
                .collect(),
            block_size,
        })
    }
}

impl SingleDisk for NativeDisk {
    fn read(&self, a: u64) -> Block {
        self.blocks[a as usize].lock().clone()
    }

    fn write(&self, a: u64, v: &[u8]) {
        assert_eq!(v.len(), self.block_size, "partial block write");
        *self.blocks[a as usize].lock() = v.to_vec();
    }

    fn size(&self) -> u64 {
        self.blocks.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goose_rt::fault::FaultPlan;

    #[test]
    fn model_disk_roundtrip() {
        let rt = ModelRt::new(0, 10_000);
        let d = ModelDisk::new(rt, 4, 8);
        d.write(2, &[7; 8]);
        assert_eq!(d.read(2), vec![7; 8]);
        assert_eq!(d.read(0), vec![0; 8]);
        assert_eq!(d.size(), 4);
        assert_eq!(d.op_count(), 3);
    }

    #[test]
    #[should_panic(expected = "partial block write")]
    fn model_disk_rejects_partial_write() {
        let rt = ModelRt::new(0, 10_000);
        let d = ModelDisk::new(rt, 4, 8);
        d.write(0, &[1, 2, 3]);
    }

    #[test]
    fn model_disk_oob_is_modelled_ub_naming_address_and_size() {
        let rt = ModelRt::new(0, 10_000);
        let d = ModelDisk::new(rt, 4, 8);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| d.read(9)))
            .expect_err("out-of-bounds read must unwind");
        let ub = err
            .downcast::<UbSignal>()
            .expect("out-of-bounds unwind carries a UbSignal, not a raw index panic");
        assert!(ub.0.contains("address 9"), "{}", ub.0);
        assert!(ub.0.contains("4 blocks"), "{}", ub.0);
    }

    #[test]
    fn transient_fault_surfaces_on_try_read_and_is_absorbed_by_read() {
        let mut plan = FaultPlan::default();
        plan.transient_io.insert(0); // fail the very first disk op
        let rt = ModelRt::with_faults(0, 10_000, plan);
        let d = ModelDisk::new(Arc::clone(&rt), 4, 8);
        // try_read surfaces the fault; the retry in read absorbs it.
        assert_eq!(d.try_read(0), Err(IoError::Transient));
        assert_eq!(d.read(0), vec![0; 8]);
    }

    #[test]
    fn native_disk_roundtrip() {
        let d = NativeDisk::new(8, 16);
        d.write(5, &[9; 16]);
        assert_eq!(d.read(5), vec![9; 16]);
        assert_eq!(d.size(), 8);
    }

    #[test]
    fn native_disk_concurrent_block_writes() {
        let d = NativeDisk::new(4, 8);
        let mut handles = Vec::new();
        for a in 0..4u64 {
            let d = Arc::clone(&d);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u8 {
                    d.write(a, &[i; 8]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for a in 0..4 {
            assert_eq!(d.read(a), vec![99; 8]);
        }
    }
}
