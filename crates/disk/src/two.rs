//! Two-disk semantics with single-disk failure (§1, Figure 1; Table 3's
//! "Two-disk semantics").
//!
//! `disk_read` returns `None` once the disk has failed; `disk_write` to a
//! failed disk is silently dropped. Only disk 1 can fail in the paper's
//! example (reads fall back to disk 2); we allow failing either disk so
//! tests can also check that the *system* only relies on the modelled
//! failover direction.

use crate::single::oob_ub;
use crate::Block;
use goose_rt::fault::{retry_with_backoff, IoError, IoResult, DEFAULT_IO_ATTEMPTS};
use goose_rt::sched::{res, ModelRt};
use parking_lot::Mutex;
use std::sync::Arc;

/// Which physical disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskId {
    /// The primary disk (reads try it first).
    D1,
    /// The backup disk.
    D2,
}

/// The two-disk interface.
pub trait TwoDisks: Send + Sync {
    /// Reads block `a` from `d`; `None` if the disk has failed. Absorbs
    /// transient faults internally.
    fn disk_read(&self, d: DiskId, a: u64) -> Option<Block>;

    /// Writes block `a` on `d`; dropped if the disk has failed. Absorbs
    /// transient faults internally.
    fn disk_write(&self, d: DiskId, a: u64, v: &[u8]);

    /// Fallible read: surfaces a plan-injected [`IoError::Transient`]
    /// instead of retrying, so systems can own (or botch) the retry
    /// policy. A transient error says nothing about disk failure —
    /// `Ok(None)` is the failed-disk answer.
    fn try_disk_read(&self, d: DiskId, a: u64) -> IoResult<Option<Block>> {
        Ok(self.disk_read(d, a))
    }

    /// Fallible write (see [`TwoDisks::try_disk_read`]).
    fn try_disk_write(&self, d: DiskId, a: u64, v: &[u8]) -> IoResult<()> {
        self.disk_write(d, a, v);
        Ok(())
    }

    /// Number of blocks per disk.
    fn size(&self) -> u64;
}

struct TwoState {
    d1: Vec<Block>,
    d2: Vec<Block>,
    failed1: bool,
    failed2: bool,
    ops: u64,
}

/// Model two-disk device: one scheduler step per operation; contents
/// durable across crashes; failure injectable by the controller.
pub struct ModelTwoDisks {
    rt: Arc<ModelRt>,
    state: Mutex<TwoState>,
    block_size: usize,
    /// Dependency-tracking resource id; accesses are per (disk, block).
    tag: u64,
}

impl ModelTwoDisks {
    /// Creates two zeroed disks of `nblocks` blocks of `block_size` bytes.
    pub fn new(rt: Arc<ModelRt>, nblocks: u64, block_size: usize) -> Arc<Self> {
        let tag = rt.alloc_resource_tag();
        Arc::new(ModelTwoDisks {
            rt,
            tag,
            state: Mutex::new(TwoState {
                d1: vec![vec![0; block_size]; nblocks as usize],
                d2: vec![vec![0; block_size]; nblocks as usize],
                failed1: false,
                failed2: false,
                ops: 0,
            }),
            block_size,
        })
    }

    /// Fails a disk permanently (fault injection; also usable from a
    /// scheduled thread body, so it carries a dependency footprint).
    pub fn fail(&self, d: DiskId) {
        self.rt.note_access(res::instance(self.tag), true);
        self.rt
            .trace_event(goose_rt::trace::TraceKind::FaultDiskFail {
                disk: match d {
                    DiskId::D1 => 1,
                    DiskId::D2 => 2,
                },
            });
        let mut s = self.state.lock();
        match d {
            DiskId::D1 => s.failed1 = true,
            DiskId::D2 => s.failed2 = true,
        }
    }

    /// Whether `d` has failed.
    pub fn is_failed(&self, d: DiskId) -> bool {
        self.rt.note_access(res::instance(self.tag), false);
        let s = self.state.lock();
        match d {
            DiskId::D1 => s.failed1,
            DiskId::D2 => s.failed2,
        }
    }

    /// Controller-side snapshot of one block on one disk (even if the
    /// disk has failed — the platters still exist, they just don't serve
    /// requests).
    pub fn peek(&self, d: DiskId, a: u64) -> Block {
        let s = self.state.lock();
        match d {
            DiskId::D1 => s.d1[a as usize].clone(),
            DiskId::D2 => s.d2[a as usize].clone(),
        }
    }

    /// Operations performed (checker statistics).
    pub fn op_count(&self) -> u64 {
        self.state.lock().ops
    }

    /// Whether the two disks currently agree on every *working* block —
    /// the final-state predicate the replicated-disk checker uses. If a
    /// disk failed, agreement is only required of the survivor with
    /// itself, which is vacuous, so we report agreement of the platters
    /// regardless of failure flags and let the checker decide.
    pub fn platters_agree(&self) -> bool {
        let s = self.state.lock();
        s.d1 == s.d2
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Packs (disk, block) into one dependency-resource address.
    fn addr(d: DiskId, a: u64) -> u64 {
        let disk_bit = match d {
            DiskId::D1 => 0u64,
            DiskId::D2 => 1u64,
        };
        (disk_bit << 31) | (a & 0x7fff_ffff)
    }
}

impl TwoDisks for ModelTwoDisks {
    fn disk_read(&self, d: DiskId, a: u64) -> Option<Block> {
        retry_with_backoff(&self.rt, DEFAULT_IO_ATTEMPTS, || self.try_disk_read(d, a))
            .unwrap_or_else(|e| {
                panic!("disk read of block {a}: {e} persisted after {DEFAULT_IO_ATTEMPTS} attempts")
            })
    }

    fn disk_write(&self, d: DiskId, a: u64, v: &[u8]) {
        retry_with_backoff(&self.rt, DEFAULT_IO_ATTEMPTS, || {
            self.try_disk_write(d, a, v)
        })
        .unwrap_or_else(|e| {
            panic!("disk write of block {a}: {e} persisted after {DEFAULT_IO_ATTEMPTS} attempts")
        })
    }

    fn try_disk_read(&self, d: DiskId, a: u64) -> IoResult<Option<Block>> {
        self.rt.yield_point();
        self.rt
            .note_access(res::disk_block(self.tag, Self::addr(d, a)), false);
        self.rt.note_disk_read(self.tag, Self::addr(d, a));
        // Reads consult the failure flags, which `fail` can flip from a
        // scheduled thread.
        self.rt.note_access(res::instance(self.tag), false);
        let mut s = self.state.lock();
        s.ops += 1;
        if a as usize >= s.d1.len() {
            oob_ub("read", a, s.d1.len() as u64);
        }
        if self.rt.next_disk_op_faulty() {
            return Err(IoError::Transient);
        }
        Ok(match d {
            DiskId::D1 if s.failed1 => None,
            DiskId::D2 if s.failed2 => None,
            DiskId::D1 => Some(s.d1[a as usize].clone()),
            DiskId::D2 => Some(s.d2[a as usize].clone()),
        })
    }

    fn try_disk_write(&self, d: DiskId, a: u64, v: &[u8]) -> IoResult<()> {
        assert_eq!(v.len(), self.block_size, "partial block write");
        self.rt.yield_point();
        self.rt
            .note_access(res::disk_block(self.tag, Self::addr(d, a)), true);
        self.rt.note_disk_write(self.tag, Self::addr(d, a));
        self.rt.note_access(res::instance(self.tag), false);
        let mut s = self.state.lock();
        s.ops += 1;
        if a as usize >= s.d1.len() {
            oob_ub("write", a, s.d1.len() as u64);
        }
        if self.rt.next_disk_op_faulty() {
            return Err(IoError::Transient);
        }
        match d {
            DiskId::D1 if s.failed1 => {}
            DiskId::D2 if s.failed2 => {}
            DiskId::D1 => s.d1[a as usize] = v.to_vec(),
            DiskId::D2 => s.d2[a as usize] = v.to_vec(),
        }
        Ok(())
    }

    fn size(&self) -> u64 {
        self.state.lock().d1.len() as u64
    }
}

/// Native two-disk device: lock-per-block per disk, for benchmarks.
pub struct NativeTwoDisks {
    d1: Vec<Mutex<Block>>,
    d2: Vec<Mutex<Block>>,
    failed1: std::sync::atomic::AtomicBool,
    failed2: std::sync::atomic::AtomicBool,
    block_size: usize,
}

impl NativeTwoDisks {
    /// Creates two zeroed disks.
    pub fn new(nblocks: u64, block_size: usize) -> Arc<Self> {
        Arc::new(NativeTwoDisks {
            d1: (0..nblocks)
                .map(|_| Mutex::new(vec![0; block_size]))
                .collect(),
            d2: (0..nblocks)
                .map(|_| Mutex::new(vec![0; block_size]))
                .collect(),
            failed1: std::sync::atomic::AtomicBool::new(false),
            failed2: std::sync::atomic::AtomicBool::new(false),
            block_size,
        })
    }

    /// Fails a disk permanently.
    pub fn fail(&self, d: DiskId) {
        use std::sync::atomic::Ordering;
        match d {
            DiskId::D1 => self.failed1.store(true, Ordering::SeqCst),
            DiskId::D2 => self.failed2.store(true, Ordering::SeqCst),
        }
    }
}

impl TwoDisks for NativeTwoDisks {
    fn disk_read(&self, d: DiskId, a: u64) -> Option<Block> {
        use std::sync::atomic::Ordering;
        match d {
            DiskId::D1 if self.failed1.load(Ordering::SeqCst) => None,
            DiskId::D2 if self.failed2.load(Ordering::SeqCst) => None,
            DiskId::D1 => Some(self.d1[a as usize].lock().clone()),
            DiskId::D2 => Some(self.d2[a as usize].lock().clone()),
        }
    }

    fn disk_write(&self, d: DiskId, a: u64, v: &[u8]) {
        use std::sync::atomic::Ordering;
        assert_eq!(v.len(), self.block_size, "partial block write");
        match d {
            DiskId::D1 if self.failed1.load(Ordering::SeqCst) => {}
            DiskId::D2 if self.failed2.load(Ordering::SeqCst) => {}
            DiskId::D1 => *self.d1[a as usize].lock() = v.to_vec(),
            DiskId::D2 => *self.d2[a as usize].lock() = v.to_vec(),
        }
    }

    fn size(&self) -> u64 {
        self.d1.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> Arc<ModelTwoDisks> {
        let rt = ModelRt::new(0, 10_000);
        ModelTwoDisks::new(rt, 4, 8)
    }

    #[test]
    fn both_disks_independent() {
        let d = fixture();
        d.disk_write(DiskId::D1, 0, &[1; 8]);
        d.disk_write(DiskId::D2, 0, &[2; 8]);
        assert_eq!(d.disk_read(DiskId::D1, 0), Some(vec![1; 8]));
        assert_eq!(d.disk_read(DiskId::D2, 0), Some(vec![2; 8]));
        assert!(!d.platters_agree());
    }

    #[test]
    fn failed_disk_reads_none_and_drops_writes() {
        let d = fixture();
        d.disk_write(DiskId::D1, 1, &[5; 8]);
        d.fail(DiskId::D1);
        assert_eq!(d.disk_read(DiskId::D1, 1), None);
        d.disk_write(DiskId::D1, 1, &[9; 8]);
        // The platter still holds the pre-failure value.
        assert_eq!(d.peek(DiskId::D1, 1), vec![5; 8]);
        // Disk 2 unaffected.
        assert_eq!(d.disk_read(DiskId::D2, 1), Some(vec![0; 8]));
    }

    #[test]
    fn two_disk_oob_is_modelled_ub_naming_address_and_size() {
        use goose_rt::sched::UbSignal;
        let d = fixture();
        let err =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| d.disk_read(DiskId::D2, 7)))
                .expect_err("out-of-bounds read must unwind");
        let ub = err
            .downcast::<UbSignal>()
            .expect("out-of-bounds unwind carries a UbSignal, not a raw index panic");
        assert!(ub.0.contains("address 7"), "{}", ub.0);
        assert!(ub.0.contains("4 blocks"), "{}", ub.0);
    }

    #[test]
    fn transient_fault_surfaces_on_try_ops_and_is_absorbed_by_infallible_ops() {
        use goose_rt::fault::FaultPlan;
        let mut plan = FaultPlan::default();
        plan.transient_io.insert(0);
        plan.transient_io.insert(2);
        let rt = ModelRt::with_faults(0, 10_000, plan);
        let d = ModelTwoDisks::new(rt, 4, 8);
        assert_eq!(d.try_disk_read(DiskId::D1, 0), Err(IoError::Transient));
        // Op 1 succeeds, op 2 faults inside the retry loop and is retried.
        d.disk_write(DiskId::D1, 0, &[6; 8]);
        assert_eq!(d.disk_read(DiskId::D1, 0), Some(vec![6; 8]));
    }

    #[test]
    fn platters_agree_after_mirrored_writes() {
        let d = fixture();
        for a in 0..4 {
            d.disk_write(DiskId::D1, a, &[a as u8; 8]);
            d.disk_write(DiskId::D2, a, &[a as u8; 8]);
        }
        assert!(d.platters_agree());
    }
}

#[cfg(test)]
mod native_tests {
    use super::*;

    #[test]
    fn native_two_disks_roundtrip_and_failure() {
        let d = NativeTwoDisks::new(4, 8);
        d.disk_write(DiskId::D1, 0, &[3; 8]);
        d.disk_write(DiskId::D2, 0, &[3; 8]);
        assert_eq!(d.disk_read(DiskId::D1, 0), Some(vec![3; 8]));
        d.fail(DiskId::D1);
        assert_eq!(d.disk_read(DiskId::D1, 0), None);
        assert_eq!(d.disk_read(DiskId::D2, 0), Some(vec![3; 8]));
    }
}
