//! Fault plans: deterministic storage and network fault injection.
//!
//! The checker sweeps *fault plans* the same way it sweeps crash points:
//! every explored execution carries one [`FaultPlan`], fixed before the
//! run starts and derived purely from the execution's canonical job key
//! (`hash(base_seed, pass_rank, index)`), never from wall-clock state.
//! The model runtime threads the plan through the storage and network
//! models:
//!
//! - **Transient I/O errors** — the plan names disk-operation indices at
//!   which a model-disk `read`/`write` returns
//!   [`IoError::Transient`]. Systems absorb these with the bounded
//!   [`retry_with_backoff`] helper; each retry is a scheduler yield
//!   point, so the interleavings *during* a retry loop are explored like
//!   any other schedule.
//! - **Torn writes** — a `BufferedDisk` holds writes in a volatile
//!   buffer until an explicit `flush` barrier. On a crash, the plan's
//!   [`TornMode`] decides which unflushed writes made it to the platter:
//!   all of them (the pre-fault-model behaviour), none, or a
//!   pseudo-random subset — which models both torn (prefix lost) and
//!   reordered (later write survives an earlier one) writes.
//! - **Disk failure** — fail one disk of a two-disk device at a chosen
//!   grant count, including counts inside recovery.
//! - **Network faults** — drop, duplicate, or delay a message at a
//!   chosen send index on the model network.
//!
//! An empty plan ([`FaultPlan::default`]) injects nothing and leaves
//! every model exactly as kind as it was before this module existed.

use crate::sched::ModelRt;
use std::collections::{BTreeMap, BTreeSet};

/// Error returned by fallible model-disk operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoError {
    /// The operation failed this time but may succeed if retried (a
    /// controller-injected transient fault).
    Transient,
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Transient => write!(f, "transient I/O error"),
        }
    }
}

/// Result of a fallible model-disk operation.
pub type IoResult<T> = Result<T, IoError>;

/// What a crash does to the writes still sitting in a `BufferedDisk`'s
/// volatile buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TornMode {
    /// Every buffered write reaches the platter (equivalent to the
    /// atomic-write model the crash sweeps always used).
    KeepAll,
    /// No buffered write reaches the platter.
    KeepNone,
    /// A pseudo-random subset survives, chosen by bits derived from the
    /// execution seed and this variant tag — deterministic per job key.
    Subset(u64),
}

/// A network fault applied to one message send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// The message is silently lost.
    Drop,
    /// The message is delivered twice.
    Duplicate,
    /// The message is held back and delivered after the next send (or at
    /// the end of the stream).
    Delay,
}

/// One execution's complete fault schedule. Immutable once the runtime
/// is built; the empty plan injects nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Global disk-operation indices (across all model disks of the
    /// execution, in consult order) at which the operation returns
    /// [`IoError::Transient`] once.
    pub transient_io: BTreeSet<u64>,
    /// How a crash treats unflushed buffered writes. `None` behaves like
    /// [`TornMode::KeepAll`].
    pub torn: Option<TornMode>,
    /// Fail disk `d` (1 or 2) of a two-disk device once the controller
    /// reaches this absolute grant count.
    pub disk_fail: Option<(u8, u64)>,
    /// Per-send-index network faults.
    pub net: BTreeMap<u64, NetFault>,
}

impl FaultPlan {
    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.transient_io.is_empty()
            && self.torn.is_none()
            && self.disk_fail.is_none()
            && self.net.is_empty()
    }

    /// Human-readable fault schedule for counterexample reports.
    pub fn describe(&self) -> String {
        if self.is_empty() {
            return "none".to_string();
        }
        let mut parts = Vec::new();
        if !self.transient_io.is_empty() {
            let idxs: Vec<u64> = self.transient_io.iter().copied().collect();
            parts.push(format!("transient I/O error at disk op(s) {idxs:?}"));
        }
        match self.torn {
            None => {}
            Some(TornMode::KeepAll) => parts.push("crash persists all buffered writes".to_string()),
            Some(TornMode::KeepNone) => parts.push("crash drops all unflushed writes".to_string()),
            Some(TornMode::Subset(s)) => parts.push(format!(
                "crash persists a pseudo-random subset of unflushed writes (torn, variant {s:#x})"
            )),
        }
        if let Some((d, g)) = self.disk_fail {
            parts.push(format!("disk D{d} fails at grant count {g}"));
        }
        for (i, f) in &self.net {
            let what = match f {
                NetFault::Drop => "dropped",
                NetFault::Duplicate => "duplicated",
                NetFault::Delay => "delayed",
            };
            parts.push(format!("net message {i} {what}"));
        }
        parts.join("; ")
    }

    /// Compact fault summary for one-line verdicts and JSONL records,
    /// e.g. `io@3`, `d1@5`, `torn-none`, `net-drop@2`; multiple faults
    /// join with `+`. Empty plans render as `-`.
    pub fn compact(&self) -> String {
        if self.is_empty() {
            return "-".to_string();
        }
        let mut parts = Vec::new();
        for i in &self.transient_io {
            parts.push(format!("io@{i}"));
        }
        match self.torn {
            None => {}
            Some(TornMode::KeepAll) => parts.push("torn-all".to_string()),
            Some(TornMode::KeepNone) => parts.push("torn-none".to_string()),
            Some(TornMode::Subset(s)) => parts.push(format!("torn-sub{s}")),
        }
        if let Some((d, g)) = self.disk_fail {
            parts.push(format!("d{d}@{g}"));
        }
        for (i, f) in &self.net {
            let what = match f {
                NetFault::Drop => "drop",
                NetFault::Duplicate => "dup",
                NetFault::Delay => "delay",
            };
            parts.push(format!("net-{what}@{i}"));
        }
        parts.join("+")
    }
}

/// Which fault families a scenario's substrate can absorb. The explorer
/// only schedules a fault pass when the harness claims the matching
/// surface — injecting torn writes under a system that never buffers, or
/// two-disk failures under a single-disk system, would be noise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSurface {
    /// Model-disk reads/writes may return transient errors (the
    /// substrate retries via [`retry_with_backoff`]).
    pub transient_disk_io: bool,
    /// Storage goes through a `BufferedDisk` with flush barriers, so
    /// torn-write crash plans are meaningful.
    pub torn_writes: bool,
    /// The system runs on a two-disk device whose halves can fail.
    pub two_disk: bool,
    /// The workload exchanges messages over the model network.
    pub net: bool,
}

impl FaultSurface {
    /// A surface exposing no fault families (the default).
    pub fn none() -> Self {
        FaultSurface::default()
    }
}

/// Default retry budget for [`retry_with_backoff`] — enough to outlast
/// any single plan-injected transient fault with room to spare.
pub const DEFAULT_IO_ATTEMPTS: u32 = 4;

/// Retries a fallible operation up to `attempts` times, yielding to the
/// scheduler between attempts (the model analog of sleeping through a
/// backoff): every retry boundary is a schedule point, so the checker
/// explores interleavings *during* the retry loop. Returns the first
/// success, or the last error once the budget is exhausted.
pub fn retry_with_backoff<T>(
    rt: &ModelRt,
    attempts: u32,
    mut op: impl FnMut() -> IoResult<T>,
) -> IoResult<T> {
    assert!(
        attempts > 0,
        "retry_with_backoff needs at least one attempt"
    );
    let mut last = IoError::Transient;
    for i in 0..attempts {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) => {
                last = e;
                if i + 1 < attempts {
                    // Backoff: give every other thread a chance to run
                    // before the next attempt.
                    rt.yield_point();
                }
            }
        }
    }
    Err(last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::Arc;

    #[test]
    fn empty_plan_describes_as_none() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert_eq!(plan.describe(), "none");
    }

    #[test]
    fn plan_description_names_every_fault() {
        let mut plan = FaultPlan::default();
        plan.transient_io.insert(3);
        plan.torn = Some(TornMode::KeepNone);
        plan.disk_fail = Some((1, 7));
        plan.net.insert(2, NetFault::Duplicate);
        let d = plan.describe();
        assert!(d.contains("disk op(s) [3]"), "{d}");
        assert!(d.contains("drops all unflushed"), "{d}");
        assert!(d.contains("D1 fails at grant count 7"), "{d}");
        assert!(d.contains("net message 2 duplicated"), "{d}");
    }

    #[test]
    fn compact_summary_is_terse_and_complete() {
        assert_eq!(FaultPlan::default().compact(), "-");
        let mut plan = FaultPlan {
            disk_fail: Some((1, 5)),
            ..FaultPlan::default()
        };
        assert_eq!(plan.compact(), "d1@5");
        plan.transient_io.insert(3);
        plan.torn = Some(TornMode::KeepNone);
        plan.net.insert(2, NetFault::Drop);
        assert_eq!(plan.compact(), "io@3+torn-none+d1@5+net-drop@2");
    }

    #[test]
    fn retry_succeeds_after_transient_errors() {
        let rt = ModelRt::new(0, 10_000);
        let mut failures_left = 2;
        let r = retry_with_backoff(&rt, DEFAULT_IO_ATTEMPTS, || {
            if failures_left > 0 {
                failures_left -= 1;
                Err(IoError::Transient)
            } else {
                Ok(42)
            }
        });
        assert_eq!(r, Ok(42));
    }

    #[test]
    fn retry_is_bounded() {
        let rt = ModelRt::new(0, 10_000);
        let attempts = Arc::new(Mutex::new(0u32));
        let a2 = Arc::clone(&attempts);
        let r: IoResult<()> = retry_with_backoff(&rt, 3, move || {
            *a2.lock() += 1;
            Err(IoError::Transient)
        });
        assert_eq!(r, Err(IoError::Transient));
        assert_eq!(*attempts.lock(), 3, "exactly `attempts` tries, no more");
    }

    #[test]
    fn retry_yields_between_attempts_on_a_virtual_thread() {
        // Two attempts = one backoff yield between them; counting grants
        // pins the deterministic yield-point interaction.
        let rt = ModelRt::new(0, 10_000);
        let rt2 = Arc::clone(&rt);
        rt.spawn("retrier", move || {
            let mut first = true;
            let r = retry_with_backoff(&rt2, 2, || {
                if std::mem::take(&mut first) {
                    Err(IoError::Transient)
                } else {
                    Ok(())
                }
            });
            assert_eq!(r, Ok(()));
        });
        let mut grants = 0;
        loop {
            let runnable = rt.runnable();
            if runnable.is_empty() {
                break;
            }
            let _ = rt.grant(runnable[0]);
            grants += 1;
        }
        rt.join_all();
        // Grant 1 starts the body, grant 2 releases the backoff yield
        // point, after which the second attempt succeeds and the thread
        // finishes.
        assert_eq!(grants, 2);
    }
}
