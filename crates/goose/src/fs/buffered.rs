//! Deferred durability: the paper's §6.2 future work, implemented.
//!
//! The Goose prototype models *process* crashes, where the kernel has
//! already accepted all file-system mutations and nothing buffered is
//! lost ("It would be possible to reason about buffered data in the file
//! system to model whole machine crashes, but our prototype does not do
//! so"). [`BufferedFs`] is that extension: a *whole-machine* crash model
//! with a buffer cache.
//!
//! Two images are maintained — the volatile view (what running code
//! observes) and the durable view (what a crash reverts to):
//!
//! - every mutation applies to the volatile image immediately;
//! - [`BufferedFs::fsync`] flushes one file's *contents* to the durable
//!   image (like `fsync(fd)` — it does **not** persist the directory
//!   entry that names the file);
//! - [`BufferedFs::dir_sync`] flushes one directory's entry table (like
//!   `fsync` on the directory fd); an entry flushed before its inode's
//!   data reads back with whatever contents were last fsynced —
//!   possibly empty — exactly the classic crash-consistency gotcha;
//! - [`FileSys::crash`] discards the volatile image, reverting to the
//!   durable one, and drops all descriptors.

use super::traits::{DirH, Fd, FileSys, FsError, FsResult, Mode};
use crate::sched::{res, ModelRt};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

type InodeId = u64;

#[derive(Clone, Default)]
struct Image {
    /// dir handle → (name → inode).
    dirs: Vec<BTreeMap<String, InodeId>>,
    /// inode → contents. Link counts are derived from `dirs` on demand
    /// (simpler than maintaining them in two images).
    inodes: HashMap<InodeId, Vec<u8>>,
}

impl Image {
    /// Drops inodes not named by any directory entry and not in
    /// `extra_live` (open descriptors keep volatile inodes alive, POSIX
    /// style; the durable image passes an empty set).
    fn gc(&mut self, extra_live: &std::collections::HashSet<InodeId>) {
        let mut live: std::collections::HashSet<InodeId> =
            self.dirs.iter().flat_map(|d| d.values().copied()).collect();
        live.extend(extra_live.iter().copied());
        self.inodes.retain(|ino, _| live.contains(ino));
    }
}

fn fd_inodes(fds: &HashMap<Fd, FdEntry>) -> std::collections::HashSet<InodeId> {
    fds.values().map(|e| e.inode).collect()
}

struct FdEntry {
    inode: InodeId,
    mode: Mode,
}

struct BufState {
    vol: Image,
    dur: Image,
    dir_names: HashMap<String, DirH>,
    fds: HashMap<Fd, FdEntry>,
    next_inode: InodeId,
    next_fd: Fd,
    ops: u64,
}

/// A model file system with a buffer cache and whole-machine crash
/// semantics.
pub struct BufferedFs {
    rt: Arc<ModelRt>,
    state: Mutex<BufState>,
    /// Dependency-tracking resource id: the whole file system is one
    /// resource (fd/inode allocation couples every mutating op).
    tag: u64,
}

impl BufferedFs {
    /// Creates the file system with a fixed directory layout; the empty
    /// layout itself is durable.
    pub fn new(rt: Arc<ModelRt>, dirs: &[&str]) -> Arc<Self> {
        let mut dir_names = HashMap::new();
        let mut tables = Vec::new();
        for (i, d) in dirs.iter().enumerate() {
            dir_names.insert((*d).to_string(), i);
            tables.push(BTreeMap::new());
        }
        let image = Image {
            dirs: tables,
            inodes: HashMap::new(),
        };
        let tag = rt.alloc_resource_tag();
        Arc::new(BufferedFs {
            rt,
            tag,
            state: Mutex::new(BufState {
                vol: image.clone(),
                dur: image,
                dir_names,
                fds: HashMap::new(),
                next_inode: 1,
                next_fd: 1,
                ops: 0,
            }),
        })
    }

    fn step(&self, write: bool, op: &'static str) -> parking_lot::MutexGuard<'_, BufState> {
        self.rt.yield_point();
        self.rt.note_access(res::instance(self.tag), write);
        self.rt.note_fs_op(self.tag, op, write);
        let mut s = self.state.lock();
        s.ops += 1;
        s
    }

    /// Flushes one file's contents to the durable image (POSIX
    /// `fsync(fd)`: data only, not the directory entry naming it).
    pub fn fsync(&self, fd: Fd) -> FsResult<()> {
        let mut s = self.step(true, "fsync");
        let ino = s.fds.get(&fd).ok_or(FsError::BadFd)?.inode;
        let data = s.vol.inodes.get(&ino).cloned().ok_or(FsError::BadFd)?;
        s.dur.inodes.insert(ino, data);
        Ok(())
    }

    /// Flushes one directory's entry table to the durable image. Entries
    /// pointing at never-fsynced inodes persist with empty contents
    /// (metadata before data — the realistic hazard).
    pub fn dir_sync(&self, dir: DirH) -> FsResult<()> {
        let mut s = self.step(true, "dir_sync");
        let table = s.vol.dirs.get(dir).cloned().ok_or(FsError::NotFound)?;
        for ino in table.values() {
            s.dur.inodes.entry(*ino).or_default();
        }
        if dir < s.dur.dirs.len() {
            s.dur.dirs[dir] = table;
        }
        s.dur.gc(&std::collections::HashSet::new());
        Ok(())
    }

    /// Flushes everything (like `sync(2)`).
    pub fn sync_all(&self) -> FsResult<()> {
        let mut s = self.step(true, "sync_all");
        s.dur = s.vol.clone();
        Ok(())
    }

    /// Controller-side inspection of the *durable* image (what would
    /// survive a crash right now).
    pub fn peek_durable_file(&self, dir: &str, name: &str) -> Option<Vec<u8>> {
        let s = self.state.lock();
        let d = *s.dir_names.get(dir)?;
        let ino = *s.dur.dirs.get(d)?.get(name)?;
        s.dur.inodes.get(&ino).cloned()
    }

    /// Controller-side listing of the durable image.
    pub fn peek_durable_list(&self, dir: &str) -> Option<Vec<String>> {
        let s = self.state.lock();
        let d = *s.dir_names.get(dir)?;
        Some(s.dur.dirs.get(d)?.keys().cloned().collect())
    }

    /// Controller-side inspection of the volatile image.
    pub fn peek_file(&self, dir: &str, name: &str) -> Option<Vec<u8>> {
        let s = self.state.lock();
        let d = *s.dir_names.get(dir)?;
        let ino = *s.vol.dirs.get(d)?.get(name)?;
        s.vol.inodes.get(&ino).cloned()
    }

    /// Total operations performed.
    pub fn op_count(&self) -> u64 {
        self.state.lock().ops
    }
}

impl FileSys for BufferedFs {
    fn resolve(&self, dir: &str) -> FsResult<DirH> {
        let s = self.step(false, "resolve");
        s.dir_names.get(dir).copied().ok_or(FsError::NotFound)
    }

    fn create(&self, dir: DirH, name: &str) -> FsResult<Option<Fd>> {
        let mut s = self.step(true, "create");
        if dir >= s.vol.dirs.len() {
            return Err(FsError::NotFound);
        }
        if s.vol.dirs[dir].contains_key(name) {
            return Ok(None);
        }
        let ino = s.next_inode;
        s.next_inode += 1;
        s.vol.inodes.insert(ino, Vec::new());
        s.vol.dirs[dir].insert(name.to_string(), ino);
        let fd = s.next_fd;
        s.next_fd += 1;
        s.fds.insert(
            fd,
            FdEntry {
                inode: ino,
                mode: Mode::Append,
            },
        );
        Ok(Some(fd))
    }

    fn open(&self, dir: DirH, name: &str) -> FsResult<Fd> {
        let mut s = self.step(true, "open");
        if dir >= s.vol.dirs.len() {
            return Err(FsError::NotFound);
        }
        let ino = *s.vol.dirs[dir].get(name).ok_or(FsError::NotFound)?;
        let fd = s.next_fd;
        s.next_fd += 1;
        s.fds.insert(
            fd,
            FdEntry {
                inode: ino,
                mode: Mode::Read,
            },
        );
        Ok(fd)
    }

    fn append(&self, fd: Fd, data: &[u8]) -> FsResult<()> {
        let mut s = self.step(true, "append");
        let entry = s.fds.get(&fd).ok_or(FsError::BadFd)?;
        if entry.mode != Mode::Append {
            return Err(FsError::BadMode);
        }
        let ino = entry.inode;
        s.vol
            .inodes
            .get_mut(&ino)
            .ok_or(FsError::BadFd)?
            .extend_from_slice(data);
        Ok(())
    }

    fn read_at(&self, fd: Fd, off: u64, len: u64) -> FsResult<Vec<u8>> {
        let s = self.step(false, "read_at");
        let entry = s.fds.get(&fd).ok_or(FsError::BadFd)?;
        if entry.mode != Mode::Read {
            return Err(FsError::BadMode);
        }
        let data = s.vol.inodes.get(&entry.inode).ok_or(FsError::BadFd)?;
        let start = (off as usize).min(data.len());
        let end = ((off + len) as usize).min(data.len());
        Ok(data[start..end].to_vec())
    }

    fn size(&self, fd: Fd) -> FsResult<u64> {
        let s = self.step(false, "size");
        let entry = s.fds.get(&fd).ok_or(FsError::BadFd)?;
        Ok(s.vol.inodes.get(&entry.inode).ok_or(FsError::BadFd)?.len() as u64)
    }

    fn close(&self, fd: Fd) -> FsResult<()> {
        let mut s = self.step(true, "close");
        s.fds.remove(&fd).ok_or(FsError::BadFd)?;
        let live = fd_inodes(&s.fds);
        s.vol.gc(&live);
        Ok(())
    }

    fn delete(&self, dir: DirH, name: &str) -> FsResult<()> {
        let mut s = self.step(true, "delete");
        if dir >= s.vol.dirs.len() {
            return Err(FsError::NotFound);
        }
        s.vol.dirs[dir].remove(name).ok_or(FsError::NotFound)?;
        let live = fd_inodes(&s.fds);
        s.vol.gc(&live);
        Ok(())
    }

    fn link(&self, src: DirH, src_name: &str, dst: DirH, dst_name: &str) -> FsResult<bool> {
        let mut s = self.step(true, "link");
        if src >= s.vol.dirs.len() || dst >= s.vol.dirs.len() {
            return Err(FsError::NotFound);
        }
        let ino = *s.vol.dirs[src].get(src_name).ok_or(FsError::NotFound)?;
        if s.vol.dirs[dst].contains_key(dst_name) {
            return Ok(false);
        }
        s.vol.dirs[dst].insert(dst_name.to_string(), ino);
        Ok(true)
    }

    fn list(&self, dir: DirH) -> FsResult<Vec<String>> {
        let s = self.step(false, "list");
        if dir >= s.vol.dirs.len() {
            return Err(FsError::NotFound);
        }
        Ok(s.vol.dirs[dir].keys().cloned().collect())
    }

    /// A whole-machine crash: the volatile image (buffer cache) is lost;
    /// the durable image becomes the new truth; all descriptors die.
    fn crash(&self) {
        let mut s = self.state.lock();
        s.vol = s.dur.clone();
        s.fds.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (Arc<ModelRt>, Arc<BufferedFs>) {
        let rt = ModelRt::new(0, 1_000_000);
        let fs = BufferedFs::new(Arc::clone(&rt), &["d", "spool"]);
        (rt, fs)
    }

    #[test]
    fn unsynced_data_lost_on_crash() {
        let (_rt, fs) = fixture();
        let d = fs.resolve("d").unwrap();
        let fd = fs.create(d, "f").unwrap().unwrap();
        fs.append(fd, b"hello").unwrap();
        // No fsync, no dir_sync: a machine crash loses everything.
        fs.crash();
        assert!(fs.open(d, "f").is_err(), "unsynced file survived crash");
    }

    #[test]
    fn fsync_without_dir_sync_is_an_orphan() {
        let (_rt, fs) = fixture();
        let d = fs.resolve("d").unwrap();
        let fd = fs.create(d, "f").unwrap().unwrap();
        fs.append(fd, b"data").unwrap();
        fs.fsync(fd).unwrap();
        // Data is durable, but the entry naming it is not.
        fs.crash();
        assert!(fs.open(d, "f").is_err(), "entry survived without dir_sync");
    }

    #[test]
    fn dir_sync_before_fsync_gives_empty_file() {
        // The classic metadata-before-data hazard, faithfully modelled.
        let (_rt, fs) = fixture();
        let d = fs.resolve("d").unwrap();
        let fd = fs.create(d, "f").unwrap().unwrap();
        fs.dir_sync(d).unwrap();
        fs.append(fd, b"too late").unwrap();
        fs.crash();
        assert_eq!(fs.read_file(d, "f", 64).unwrap(), b"");
    }

    #[test]
    fn fsync_then_dir_sync_is_durable() {
        let (_rt, fs) = fixture();
        let d = fs.resolve("d").unwrap();
        let fd = fs.create(d, "f").unwrap().unwrap();
        fs.append(fd, b"kept").unwrap();
        fs.fsync(fd).unwrap();
        fs.dir_sync(d).unwrap();
        fs.crash();
        assert_eq!(fs.read_file(d, "f", 64).unwrap(), b"kept");
    }

    #[test]
    fn appends_after_fsync_lost() {
        let (_rt, fs) = fixture();
        let d = fs.resolve("d").unwrap();
        let fd = fs.create(d, "f").unwrap().unwrap();
        fs.append(fd, b"pre").unwrap();
        fs.fsync(fd).unwrap();
        fs.dir_sync(d).unwrap();
        fs.append(fd, b"-post").unwrap();
        fs.crash();
        assert_eq!(fs.read_file(d, "f", 64).unwrap(), b"pre");
    }

    #[test]
    fn sync_all_flushes_everything() {
        let (_rt, fs) = fixture();
        let d = fs.resolve("d").unwrap();
        let spool = fs.resolve("spool").unwrap();
        let f1 = fs.create(d, "a").unwrap().unwrap();
        fs.append(f1, b"A").unwrap();
        let f2 = fs.create(spool, "b").unwrap().unwrap();
        fs.append(f2, b"B").unwrap();
        fs.sync_all().unwrap();
        fs.crash();
        assert_eq!(fs.read_file(d, "a", 8).unwrap(), b"A");
        assert_eq!(fs.read_file(spool, "b", 8).unwrap(), b"B");
    }

    #[test]
    fn durable_delete_needs_dir_sync() {
        let (_rt, fs) = fixture();
        let d = fs.resolve("d").unwrap();
        let fd = fs.create(d, "f").unwrap().unwrap();
        fs.fsync(fd).unwrap();
        fs.dir_sync(d).unwrap();
        // Delete without syncing the directory: the crash resurrects it.
        fs.delete(d, "f").unwrap();
        fs.crash();
        assert!(fs.open(d, "f").is_ok(), "unsynced delete was durable");
        // Now delete and sync: gone for good.
        fs.delete(d, "f").unwrap();
        fs.dir_sync(d).unwrap();
        fs.crash();
        assert!(fs.open(d, "f").is_err());
    }

    #[test]
    fn volatile_view_is_posix_within_a_run() {
        // Before any crash, the buffered FS behaves like the plain one.
        let (_rt, fs) = fixture();
        let d = fs.resolve("d").unwrap();
        let spool = fs.resolve("spool").unwrap();
        let fd = fs.create(spool, "t").unwrap().unwrap();
        fs.append(fd, b"mail").unwrap();
        fs.close(fd).unwrap();
        assert!(fs.link(spool, "t", d, "m").unwrap());
        fs.delete(spool, "t").unwrap();
        assert_eq!(fs.read_file(d, "m", 64).unwrap(), b"mail");
        assert_eq!(fs.list(d).unwrap(), vec!["m"]);
    }
}
