//! The Goose file-system model (§6.2): trait plus model and native
//! implementations.

pub mod buffered;
pub mod model;
pub mod native;
pub mod traits;

pub use buffered::BufferedFs;
pub use model::ModelFs;
pub use native::NativeFs;
pub use traits::{DirH, Fd, FileSys, FsError, FsResult, Mode};
