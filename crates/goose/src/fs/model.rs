//! The model file system: scheduler-integrated and crashable.
//!
//! Every operation is one atomic scheduler step (the paper models every
//! file-system operation as atomic with respect to other threads, §6.2).
//! On crash, file descriptors are lost while directories, entries, and
//! inode contents persist — the process-crash model the paper uses.

use super::traits::{DirH, Fd, FileSys, FsError, FsResult, Mode};
use crate::sched::{res, ModelRt};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

type InodeId = u64;

struct Inode {
    data: Vec<u8>,
    nlink: u32,
}

struct FdEntry {
    inode: InodeId,
    mode: Mode,
}

struct FsState {
    /// Directory handle → (name → inode).
    dirs: Vec<BTreeMap<String, InodeId>>,
    dir_names: HashMap<String, DirH>,
    inodes: HashMap<InodeId, Inode>,
    fds: HashMap<Fd, FdEntry>,
    next_inode: InodeId,
    next_fd: Fd,
    /// Operation counter (checker statistics).
    ops: u64,
}

/// The crashable model file system.
pub struct ModelFs {
    rt: Arc<ModelRt>,
    state: Mutex<FsState>,
    /// Dependency-tracking resource id: the whole file system is one
    /// resource (fd/inode allocation couples every mutating op).
    tag: u64,
}

impl ModelFs {
    /// Creates the file system with a fixed directory layout (directories
    /// cannot be created or renamed afterwards, per the paper).
    pub fn new(rt: Arc<ModelRt>, dirs: &[&str]) -> Arc<Self> {
        let mut dir_names = HashMap::new();
        let mut dir_tables = Vec::new();
        for (i, d) in dirs.iter().enumerate() {
            dir_names.insert((*d).to_string(), i);
            dir_tables.push(BTreeMap::new());
        }
        let tag = rt.alloc_resource_tag();
        Arc::new(ModelFs {
            rt,
            tag,
            state: Mutex::new(FsState {
                dirs: dir_tables,
                dir_names,
                inodes: HashMap::new(),
                fds: HashMap::new(),
                next_inode: 1,
                next_fd: 1,
                ops: 0,
            }),
        })
    }

    /// Total operations performed (checker statistics).
    pub fn op_count(&self) -> u64 {
        self.state.lock().ops
    }

    /// Direct snapshot of a file's bytes (controller-side inspection for
    /// final-state checks; not schedulable API).
    pub fn peek_file(&self, dir: &str, name: &str) -> Option<Vec<u8>> {
        let s = self.state.lock();
        let d = *s.dir_names.get(dir)?;
        let ino = *s.dirs[d].get(name)?;
        Some(s.inodes[&ino].data.clone())
    }

    /// Controller-side listing (no scheduling).
    pub fn peek_list(&self, dir: &str) -> Option<Vec<String>> {
        let s = self.state.lock();
        let d = *s.dir_names.get(dir)?;
        Some(s.dirs[d].keys().cloned().collect())
    }

    fn step(&self, write: bool, op: &'static str) -> parking_lot::MutexGuard<'_, FsState> {
        self.rt.yield_point();
        self.rt.note_access(res::instance(self.tag), write);
        self.rt.note_fs_op(self.tag, op, write);
        let mut s = self.state.lock();
        s.ops += 1;
        s
    }

    /// Frees an inode once it has no directory entries *and* no open
    /// descriptors — POSIX semantics: an unlinked file stays readable
    /// and appendable through descriptors that were open at unlink time.
    fn free_if_unlinked(s: &mut FsState, ino: InodeId) {
        let fd_ref = s.fds.values().any(|e| e.inode == ino);
        if let Some(inode) = s.inodes.get(&ino) {
            if inode.nlink == 0 && !fd_ref {
                s.inodes.remove(&ino);
            }
        }
    }
}

impl FileSys for ModelFs {
    fn resolve(&self, dir: &str) -> FsResult<DirH> {
        let s = self.step(false, "resolve");
        s.dir_names.get(dir).copied().ok_or(FsError::NotFound)
    }

    fn create(&self, dir: DirH, name: &str) -> FsResult<Option<Fd>> {
        let mut s = self.step(true, "create");
        if dir >= s.dirs.len() {
            return Err(FsError::NotFound);
        }
        if s.dirs[dir].contains_key(name) {
            return Ok(None);
        }
        let ino = s.next_inode;
        s.next_inode += 1;
        s.inodes.insert(
            ino,
            Inode {
                data: Vec::new(),
                nlink: 1,
            },
        );
        s.dirs[dir].insert(name.to_string(), ino);
        let fd = s.next_fd;
        s.next_fd += 1;
        s.fds.insert(
            fd,
            FdEntry {
                inode: ino,
                mode: Mode::Append,
            },
        );
        Ok(Some(fd))
    }

    fn open(&self, dir: DirH, name: &str) -> FsResult<Fd> {
        let mut s = self.step(true, "open");
        if dir >= s.dirs.len() {
            return Err(FsError::NotFound);
        }
        let ino = *s.dirs[dir].get(name).ok_or(FsError::NotFound)?;
        let fd = s.next_fd;
        s.next_fd += 1;
        s.fds.insert(
            fd,
            FdEntry {
                inode: ino,
                mode: Mode::Read,
            },
        );
        Ok(fd)
    }

    fn append(&self, fd: Fd, data: &[u8]) -> FsResult<()> {
        let mut s = self.step(true, "append");
        let entry = s.fds.get(&fd).ok_or(FsError::BadFd)?;
        if entry.mode != Mode::Append {
            return Err(FsError::BadMode);
        }
        let ino = entry.inode;
        s.inodes
            .get_mut(&ino)
            .ok_or(FsError::BadFd)?
            .data
            .extend_from_slice(data);
        Ok(())
    }

    fn read_at(&self, fd: Fd, off: u64, len: u64) -> FsResult<Vec<u8>> {
        let s = self.step(false, "read_at");
        let entry = s.fds.get(&fd).ok_or(FsError::BadFd)?;
        if entry.mode != Mode::Read {
            return Err(FsError::BadMode);
        }
        let data = &s.inodes.get(&entry.inode).ok_or(FsError::BadFd)?.data;
        let start = (off as usize).min(data.len());
        let end = ((off + len) as usize).min(data.len());
        Ok(data[start..end].to_vec())
    }

    fn size(&self, fd: Fd) -> FsResult<u64> {
        let s = self.step(false, "size");
        let entry = s.fds.get(&fd).ok_or(FsError::BadFd)?;
        Ok(s.inodes.get(&entry.inode).ok_or(FsError::BadFd)?.data.len() as u64)
    }

    fn close(&self, fd: Fd) -> FsResult<()> {
        let mut s = self.step(true, "close");
        let entry = s.fds.remove(&fd).ok_or(FsError::BadFd)?;
        ModelFs::free_if_unlinked(&mut s, entry.inode);
        Ok(())
    }

    fn delete(&self, dir: DirH, name: &str) -> FsResult<()> {
        let mut s = self.step(true, "delete");
        if dir >= s.dirs.len() {
            return Err(FsError::NotFound);
        }
        let ino = s.dirs[dir].remove(name).ok_or(FsError::NotFound)?;
        if let Some(inode) = s.inodes.get_mut(&ino) {
            inode.nlink -= 1;
        }
        ModelFs::free_if_unlinked(&mut s, ino);
        Ok(())
    }

    fn link(&self, src: DirH, src_name: &str, dst: DirH, dst_name: &str) -> FsResult<bool> {
        let mut s = self.step(true, "link");
        if src >= s.dirs.len() || dst >= s.dirs.len() {
            return Err(FsError::NotFound);
        }
        let ino = *s.dirs[src].get(src_name).ok_or(FsError::NotFound)?;
        if s.dirs[dst].contains_key(dst_name) {
            return Ok(false);
        }
        s.dirs[dst].insert(dst_name.to_string(), ino);
        if let Some(inode) = s.inodes.get_mut(&ino) {
            inode.nlink += 1;
        }
        Ok(true)
    }

    fn list(&self, dir: DirH) -> FsResult<Vec<String>> {
        let s = self.step(false, "list");
        if dir >= s.dirs.len() {
            return Err(FsError::NotFound);
        }
        Ok(s.dirs[dir].keys().cloned().collect())
    }

    fn crash(&self) {
        // Not a scheduled step: the controller invokes this while no
        // virtual thread is running.
        let mut s = self.state.lock();
        s.fds.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (Arc<ModelRt>, Arc<ModelFs>) {
        let rt = ModelRt::new(0, 1_000_000);
        let fs = ModelFs::new(Arc::clone(&rt), &["spool", "user0", "user1"]);
        (rt, fs)
    }

    #[test]
    fn create_append_read_roundtrip() {
        let (_rt, fs) = fixture();
        let d = fs.resolve("spool").unwrap();
        let fd = fs.create(d, "msg").unwrap().unwrap();
        fs.append(fd, b"hello ").unwrap();
        fs.append(fd, b"world").unwrap();
        fs.close(fd).unwrap();
        let data = fs.read_file(d, "msg", 4).unwrap();
        assert_eq!(data, b"hello world");
    }

    #[test]
    fn create_is_exclusive() {
        let (_rt, fs) = fixture();
        let d = fs.resolve("spool").unwrap();
        assert!(fs.create(d, "x").unwrap().is_some());
        assert!(fs.create(d, "x").unwrap().is_none());
    }

    #[test]
    fn link_is_atomic_install() {
        let (_rt, fs) = fixture();
        let spool = fs.resolve("spool").unwrap();
        let user = fs.resolve("user0").unwrap();
        let fd = fs.create(spool, "tmp1").unwrap().unwrap();
        fs.append(fd, b"mail").unwrap();
        fs.close(fd).unwrap();
        assert!(fs.link(spool, "tmp1", user, "m1").unwrap());
        // Second link to the same destination name fails.
        assert!(!fs.link(spool, "tmp1", user, "m1").unwrap());
        fs.delete(spool, "tmp1").unwrap();
        // The user's hard link keeps the inode alive.
        assert_eq!(fs.read_file(user, "m1", 512).unwrap(), b"mail");
    }

    #[test]
    fn delete_frees_inode_at_last_link() {
        let (_rt, fs) = fixture();
        let spool = fs.resolve("spool").unwrap();
        let user = fs.resolve("user0").unwrap();
        let fd = fs.create(spool, "t").unwrap().unwrap();
        fs.close(fd).unwrap();
        fs.link(spool, "t", user, "m").unwrap();
        fs.delete(spool, "t").unwrap();
        fs.delete(user, "m").unwrap();
        assert_eq!(fs.list(user).unwrap(), Vec::<String>::new());
        assert!(fs.open(user, "m").is_err());
    }

    #[test]
    fn crash_loses_fds_keeps_data() {
        let (_rt, fs) = fixture();
        let d = fs.resolve("user0").unwrap();
        let fd = fs.create(d, "m").unwrap().unwrap();
        fs.append(fd, b"data").unwrap();
        fs.crash();
        // The fd is dead…
        assert_eq!(fs.append(fd, b"more"), Err(FsError::BadFd));
        // …but the file contents survive.
        assert_eq!(fs.read_file(d, "m", 512).unwrap(), b"data");
    }

    #[test]
    fn mode_enforcement() {
        let (_rt, fs) = fixture();
        let d = fs.resolve("user0").unwrap();
        let wfd = fs.create(d, "m").unwrap().unwrap();
        assert_eq!(fs.read_at(wfd, 0, 10), Err(FsError::BadMode));
        fs.close(wfd).unwrap();
        let rfd = fs.open(d, "m").unwrap();
        assert_eq!(fs.append(rfd, b"x"), Err(FsError::BadMode));
    }

    #[test]
    fn list_is_sorted_and_complete() {
        let (_rt, fs) = fixture();
        let d = fs.resolve("user1").unwrap();
        for name in ["c", "a", "b"] {
            let fd = fs.create(d, name).unwrap().unwrap();
            fs.close(fd).unwrap();
        }
        assert_eq!(fs.list(d).unwrap(), vec!["a", "b", "c"]);
    }

    #[test]
    fn resolve_unknown_dir_fails() {
        let (_rt, fs) = fixture();
        assert_eq!(fs.resolve("nope"), Err(FsError::NotFound));
    }

    #[test]
    fn read_file_chunking_terminates() {
        // Regression shape for the paper's §9.5 bug: messages larger than
        // the chunk size must not loop forever.
        let (_rt, fs) = fixture();
        let d = fs.resolve("user0").unwrap();
        let fd = fs.create(d, "big").unwrap().unwrap();
        let payload = vec![7u8; 2048];
        fs.append(fd, &payload).unwrap();
        fs.close(fd).unwrap();
        assert_eq!(fs.read_file(d, "big", 512).unwrap(), payload);
    }
}
