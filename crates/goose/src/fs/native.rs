//! The native file system: a concurrent in-memory tmpfs analog used for
//! benchmarking (§9.3 runs on Linux tmpfs "to keep disk performance from
//! being the limiting factor"; we go one step further and keep the whole
//! tree in memory).
//!
//! Concurrency structure mirrors what makes tmpfs scale: a read-mostly
//! namespace (directory table) under an `RwLock`, a per-directory lock so
//! operations on different users' mailboxes proceed in parallel, and a
//! sharded descriptor table.

use super::traits::{DirH, Fd, FileSys, FsError, FsResult, Mode};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const FD_SHARDS: usize = 16;

struct Inode {
    data: RwLock<Vec<u8>>,
}

struct FdEntry {
    inode: Arc<Inode>,
    mode: Mode,
}

/// The concurrent in-memory file system.
pub struct NativeFs {
    /// Path → handle; read-mostly after init.
    namespace: RwLock<HashMap<String, DirH>>,
    /// Per-directory tables; the `Vec` is fixed after init.
    dirs: Vec<RwLock<BTreeMap<String, Arc<Inode>>>>,
    fd_shards: Vec<Mutex<HashMap<Fd, FdEntry>>>,
    next_fd: AtomicU64,
    ops: AtomicU64,
}

impl NativeFs {
    /// Creates the file system with a fixed directory layout.
    pub fn new(dirs: &[&str]) -> Arc<Self> {
        let mut namespace = HashMap::new();
        let mut tables = Vec::new();
        for (i, d) in dirs.iter().enumerate() {
            namespace.insert((*d).to_string(), i);
            tables.push(RwLock::new(BTreeMap::new()));
        }
        Arc::new(NativeFs {
            namespace: RwLock::new(namespace),
            dirs: tables,
            fd_shards: (0..FD_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            next_fd: AtomicU64::new(1),
            ops: AtomicU64::new(0),
        })
    }

    /// Total operations performed.
    pub fn op_count(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    fn shard(&self, fd: Fd) -> &Mutex<HashMap<Fd, FdEntry>> {
        &self.fd_shards[(fd as usize) % FD_SHARDS]
    }

    fn new_fd(&self, inode: Arc<Inode>, mode: Mode) -> Fd {
        let fd = self.next_fd.fetch_add(1, Ordering::Relaxed);
        self.shard(fd).lock().insert(fd, FdEntry { inode, mode });
        fd
    }

    fn fd_inode(&self, fd: Fd, mode: Mode) -> FsResult<Arc<Inode>> {
        let shard = self.shard(fd).lock();
        let entry = shard.get(&fd).ok_or(FsError::BadFd)?;
        if entry.mode != mode {
            return Err(FsError::BadMode);
        }
        Ok(Arc::clone(&entry.inode))
    }
}

impl FileSys for NativeFs {
    fn resolve(&self, dir: &str) -> FsResult<DirH> {
        self.ops.fetch_add(1, Ordering::Relaxed);
        // A full path resolution walks components (here: validates the
        // path shape) then consults the namespace under a read lock —
        // the per-call cost the paper's baselines pay on every operation.
        let normalized: String = dir
            .split('/')
            .filter(|c| !c.is_empty())
            .collect::<Vec<_>>()
            .join("/");
        let ns = self.namespace.read();
        ns.get(normalized.as_str())
            .copied()
            .ok_or(FsError::NotFound)
    }

    fn create(&self, dir: DirH, name: &str) -> FsResult<Option<Fd>> {
        self.ops.fetch_add(1, Ordering::Relaxed);
        let table = self.dirs.get(dir).ok_or(FsError::NotFound)?;
        let mut t = table.write();
        if t.contains_key(name) {
            return Ok(None);
        }
        let inode = Arc::new(Inode {
            data: RwLock::new(Vec::new()),
        });
        t.insert(name.to_string(), Arc::clone(&inode));
        drop(t);
        Ok(Some(self.new_fd(inode, Mode::Append)))
    }

    fn open(&self, dir: DirH, name: &str) -> FsResult<Fd> {
        self.ops.fetch_add(1, Ordering::Relaxed);
        let table = self.dirs.get(dir).ok_or(FsError::NotFound)?;
        let inode = {
            let t = table.read();
            Arc::clone(t.get(name).ok_or(FsError::NotFound)?)
        };
        Ok(self.new_fd(inode, Mode::Read))
    }

    fn append(&self, fd: Fd, data: &[u8]) -> FsResult<()> {
        self.ops.fetch_add(1, Ordering::Relaxed);
        let inode = self.fd_inode(fd, Mode::Append)?;
        inode.data.write().extend_from_slice(data);
        Ok(())
    }

    fn read_at(&self, fd: Fd, off: u64, len: u64) -> FsResult<Vec<u8>> {
        self.ops.fetch_add(1, Ordering::Relaxed);
        let inode = self.fd_inode(fd, Mode::Read)?;
        let data = inode.data.read();
        let start = (off as usize).min(data.len());
        let end = ((off + len) as usize).min(data.len());
        Ok(data[start..end].to_vec())
    }

    fn size(&self, fd: Fd) -> FsResult<u64> {
        self.ops.fetch_add(1, Ordering::Relaxed);
        let inode = self.fd_inode(fd, Mode::Read)?;
        let len = inode.data.read().len() as u64;
        Ok(len)
    }

    fn close(&self, fd: Fd) -> FsResult<()> {
        self.ops.fetch_add(1, Ordering::Relaxed);
        self.shard(fd).lock().remove(&fd).ok_or(FsError::BadFd)?;
        Ok(())
    }

    fn delete(&self, dir: DirH, name: &str) -> FsResult<()> {
        self.ops.fetch_add(1, Ordering::Relaxed);
        let table = self.dirs.get(dir).ok_or(FsError::NotFound)?;
        table.write().remove(name).ok_or(FsError::NotFound)?;
        Ok(())
    }

    fn link(&self, src: DirH, src_name: &str, dst: DirH, dst_name: &str) -> FsResult<bool> {
        self.ops.fetch_add(1, Ordering::Relaxed);
        let src_table = self.dirs.get(src).ok_or(FsError::NotFound)?;
        let inode = {
            let t = src_table.read();
            Arc::clone(t.get(src_name).ok_or(FsError::NotFound)?)
        };
        let dst_table = self.dirs.get(dst).ok_or(FsError::NotFound)?;
        let mut t = dst_table.write();
        if t.contains_key(dst_name) {
            return Ok(false);
        }
        t.insert(dst_name.to_string(), inode);
        Ok(true)
    }

    fn list(&self, dir: DirH) -> FsResult<Vec<String>> {
        self.ops.fetch_add(1, Ordering::Relaxed);
        let table = self.dirs.get(dir).ok_or(FsError::NotFound)?;
        Ok(table.read().keys().cloned().collect())
    }

    fn crash(&self) {
        for shard in &self.fd_shards {
            shard.lock().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_exclusivity() {
        let fs = NativeFs::new(&["spool", "u0"]);
        let spool = fs.resolve("spool").unwrap();
        let u0 = fs.resolve("u0").unwrap();
        let fd = fs.create(spool, "t").unwrap().unwrap();
        fs.append(fd, b"abc").unwrap();
        fs.close(fd).unwrap();
        assert!(fs.create(spool, "t").unwrap().is_none());
        assert!(fs.link(spool, "t", u0, "m").unwrap());
        fs.delete(spool, "t").unwrap();
        assert_eq!(fs.read_file(u0, "m", 2).unwrap(), b"abc");
    }

    #[test]
    fn resolve_normalizes_paths() {
        let fs = NativeFs::new(&["a/b"]);
        assert_eq!(fs.resolve("a/b").unwrap(), fs.resolve("/a/b/").unwrap());
        assert!(fs.resolve("a").is_err());
    }

    #[test]
    fn concurrent_exclusive_create_one_winner() {
        let fs = NativeFs::new(&["d"]);
        let d = fs.resolve("d").unwrap();
        let wins = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let fs = Arc::clone(&fs);
            let wins = Arc::clone(&wins);
            handles.push(std::thread::spawn(move || {
                if fs.create(d, "contested").unwrap().is_some() {
                    wins.fetch_add(1, Ordering::SeqCst);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(wins.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn crash_invalidates_fds_only() {
        let fs = NativeFs::new(&["d"]);
        let d = fs.resolve("d").unwrap();
        let fd = fs.create(d, "f").unwrap().unwrap();
        fs.append(fd, b"x").unwrap();
        fs.crash();
        assert_eq!(fs.append(fd, b"y"), Err(FsError::BadFd));
        assert_eq!(fs.read_file(d, "f", 512).unwrap(), b"x");
    }

    #[test]
    fn parallel_appends_to_different_dirs() {
        let fs = NativeFs::new(&["u0", "u1", "u2", "u3"]);
        let mut handles = Vec::new();
        for u in 0..4 {
            let fs = Arc::clone(&fs);
            handles.push(std::thread::spawn(move || {
                let d = fs.resolve(&format!("u{u}")).unwrap();
                for i in 0..100 {
                    let fd = fs.create(d, &format!("m{i}")).unwrap().unwrap();
                    fs.append(fd, b"payload").unwrap();
                    fs.close(fd).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for u in 0..4 {
            let d = fs.resolve(&format!("u{u}")).unwrap();
            assert_eq!(fs.list(d).unwrap().len(), 100);
        }
    }
}
