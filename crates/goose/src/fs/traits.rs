//! The Goose file-system interface (§6.2): a thin wrapper around a
//! selection of POSIX calls, with a fixed directory layout.
//!
//! The API deliberately mirrors the paper's capabilities: directories
//! (listable, fixed set), directory entries (hard links), inodes (byte
//! contents), and file descriptors (lost on crash). Operations are atomic
//! with respect to other threads.
//!
//! Two implementations exist: [`crate::fs::ModelFs`] (scheduler-
//! integrated, crashable, used for checking) and [`crate::fs::NativeFs`]
//! (concurrent in-memory tmpfs analog, used for benchmarking).

use std::fmt;

/// A file descriptor. Lost on crash (tied to the memory version, §6.2).
pub type Fd = u64;

/// A resolved directory handle. Caching one and doing lookups relative to
/// it is the optimization §9.3 credits for part of Mailboat's speedup.
pub type DirH = usize;

/// File-system errors (the modelled subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsError {
    /// Path or name does not exist.
    NotFound,
    /// Exclusive create target already exists.
    Exists,
    /// Unknown or closed file descriptor (e.g. used across a crash).
    BadFd,
    /// Operation not permitted by the descriptor's mode.
    BadMode,
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound => write!(f, "no such file or directory"),
            FsError::Exists => write!(f, "file exists"),
            FsError::BadFd => write!(f, "bad file descriptor"),
            FsError::BadMode => write!(f, "operation not permitted by fd mode"),
        }
    }
}

impl std::error::Error for FsError {}

/// Result alias for file-system operations.
pub type FsResult<T> = Result<T, FsError>;

/// Descriptor mode (the paper supports read and append).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Opened for reading.
    Read,
    /// Created for appending.
    Append,
}

/// The Goose file-system API.
pub trait FileSys: Send + Sync {
    /// Resolves a directory path to a handle (one full lookup). Baselines
    /// call this per operation; Mailboat caches handles at `Init`.
    fn resolve(&self, dir: &str) -> FsResult<DirH>;

    /// Exclusively creates `name` in `dir` for appending. Returns
    /// `Ok(None)` if the name already exists (the paper's `create` "can
    /// either fail and do nothing ... or succeed").
    fn create(&self, dir: DirH, name: &str) -> FsResult<Option<Fd>>;

    /// Opens `name` in `dir` for reading.
    fn open(&self, dir: DirH, name: &str) -> FsResult<Fd>;

    /// Appends bytes through an append-mode descriptor.
    fn append(&self, fd: Fd, data: &[u8]) -> FsResult<()>;

    /// Reads up to `len` bytes at `off` through a read-mode descriptor.
    /// Returns a short (possibly empty) vector at end of file.
    fn read_at(&self, fd: Fd, off: u64, len: u64) -> FsResult<Vec<u8>>;

    /// File size through a read-mode descriptor.
    fn size(&self, fd: Fd) -> FsResult<u64>;

    /// Closes a descriptor.
    fn close(&self, fd: Fd) -> FsResult<()>;

    /// Unlinks `name` from `dir` (frees the inode when its last link
    /// goes).
    fn delete(&self, dir: DirH, name: &str) -> FsResult<()>;

    /// Creates a hard link `dst/dst_name` to `src/src_name`. Returns
    /// `false` if the destination name already exists (the atomic-install
    /// primitive Mailboat's delivery relies on).
    fn link(&self, src: DirH, src_name: &str, dst: DirH, dst_name: &str) -> FsResult<bool>;

    /// Lists the file names in `dir`.
    fn list(&self, dir: DirH) -> FsResult<Vec<String>>;

    /// Crash: all descriptors are lost; directories, entries, and inode
    /// contents are durable (§6.2 crash model).
    fn crash(&self);

    // -- Path-based conveniences (what the file-lock baselines use; one
    //    extra full resolve per call). ---------------------------------

    /// `create` with a per-call path resolution.
    fn create_path(&self, dir: &str, name: &str) -> FsResult<Option<Fd>> {
        let d = self.resolve(dir)?;
        self.create(d, name)
    }

    /// `open` with a per-call path resolution.
    fn open_path(&self, dir: &str, name: &str) -> FsResult<Fd> {
        let d = self.resolve(dir)?;
        self.open(d, name)
    }

    /// `delete` with a per-call path resolution.
    fn delete_path(&self, dir: &str, name: &str) -> FsResult<()> {
        let d = self.resolve(dir)?;
        self.delete(d, name)
    }

    /// `link` with per-call path resolutions.
    fn link_path(&self, src: &str, src_name: &str, dst: &str, dst_name: &str) -> FsResult<bool> {
        let s = self.resolve(src)?;
        let d = self.resolve(dst)?;
        self.link(s, src_name, d, dst_name)
    }

    /// `list` with a per-call path resolution.
    fn list_path(&self, dir: &str) -> FsResult<Vec<String>> {
        let d = self.resolve(dir)?;
        self.list(d)
    }

    /// Reads a whole file via open/read_at/close, in `chunk`-sized reads
    /// (the paper's Pickup reads 512-byte chunks; its §9.5 bug was an
    /// infinite loop here).
    fn read_file(&self, dir: DirH, name: &str, chunk: u64) -> FsResult<Vec<u8>> {
        let fd = self.open(dir, name)?;
        let mut out = Vec::new();
        let mut off = 0u64;
        loop {
            let part = self.read_at(fd, off, chunk)?;
            if part.is_empty() {
                break;
            }
            off += part.len() as u64;
            out.extend_from_slice(&part);
        }
        self.close(fd)?;
        Ok(out)
    }
}
