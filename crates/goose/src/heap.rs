//! The Go heap model: pointers, slices, and maps with
//! racy-access-is-undefined-behaviour detection (§6.1).
//!
//! The Go memory model requires serialized access to shared data; Goose
//! makes a racy access *undefined behaviour* so that verified code must
//! prove race freedom. The paper models a store as **two** atomic
//! operations — a start and an end — and declares overlap with any other
//! access to the same object UB. This module implements exactly that: in
//! model mode a [`Heap::store`]/[`Heap::slice_write`] performs a
//! `write_start` step, yields to the scheduler, then a `write_end` step;
//! any read or write of the same object scheduled in between aborts the
//! execution with a [`UbSignal`].
//!
//! Map iteration uses a variant of the same idea: mutating a map while an
//! iteration is in progress is UB (iterator invalidation).
//!
//! Objects are tracked at object granularity (one busy flag per heap
//! object), which is conservative but matches the paper's "unordered
//! accesses to the same object".

use crate::sched::{res, ModelRt, Tid, UbSignal};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A heap value: the subset of Go values our systems need.
#[derive(Debug, Clone, PartialEq)]
pub enum HVal {
    /// `uint64`
    U64(u64),
    /// `bool`
    Bool(bool),
    /// `string`
    Str(String),
    /// `[]byte` backing array
    Bytes(Vec<u8>),
    /// array of values (slice backing store)
    Arr(Vec<HVal>),
    /// `map[string]HVal`
    Map(BTreeMap<String, HVal>),
}

impl HVal {
    /// Unwraps a `U64`, panicking on type confusion (a test-code bug, not
    /// a modelled fault).
    pub fn as_u64(&self) -> u64 {
        match self {
            HVal::U64(v) => *v,
            other => panic!("heap type confusion: expected U64, got {other:?}"),
        }
    }

    /// Unwraps `Bytes`.
    pub fn as_bytes(&self) -> &[u8] {
        match self {
            HVal::Bytes(b) => b,
            other => panic!("heap type confusion: expected Bytes, got {other:?}"),
        }
    }

    /// Unwraps `Str`.
    pub fn as_str(&self) -> &str {
        match self {
            HVal::Str(s) => s,
            other => panic!("heap type confusion: expected Str, got {other:?}"),
        }
    }
}

/// A pointer into the model heap. `Copy`: pointers are values; the
/// *permission* story is the ghost layer's job, while the heap's job is
/// race detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ptr(u64);

/// A Go slice: pointer to a backing array plus offset and length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slice {
    /// Backing array object.
    pub ptr: Ptr,
    /// Start offset into the backing array.
    pub off: u64,
    /// Length.
    pub len: u64,
}

struct HeapObj {
    val: HVal,
    /// Some(tid) while a two-phase write is in flight.
    busy_writer: Option<Tid>,
    /// Number of in-progress map iterations.
    active_iters: u64,
}

struct HeapState {
    objs: BTreeMap<u64, HeapObj>,
    next: u64,
}

/// The model heap. Cleared wholesale by a crash (all in-memory state is
/// lost, §6.2's crash model).
pub struct Heap {
    rt: Arc<ModelRt>,
    state: Mutex<HeapState>,
}

fn ub(msg: String) -> ! {
    std::panic::panic_any(UbSignal(msg))
}

impl Heap {
    /// Creates a heap bound to a model runtime (for step points).
    pub fn new(rt: Arc<ModelRt>) -> Arc<Self> {
        Arc::new(Heap {
            rt,
            state: Mutex::new(HeapState {
                objs: BTreeMap::new(),
                next: 1,
            }),
        })
    }

    fn cur_tid() -> Tid {
        ModelRt::current_tid().unwrap_or(usize::MAX)
    }

    /// Allocates a new object; one atomic step.
    pub fn alloc(&self, val: HVal) -> Ptr {
        self.rt.yield_point();
        // Allocation order determines the pointer id, so concurrent
        // allocations never commute.
        self.rt.note_access(res::ALLOC, true);
        let mut s = self.state.lock();
        let id = s.next;
        s.next += 1;
        s.objs.insert(
            id,
            HeapObj {
                val,
                busy_writer: None,
                active_iters: 0,
            },
        );
        Ptr(id)
    }

    fn with_obj<R>(&self, p: Ptr, access: &str, f: impl FnOnce(&mut HeapObj) -> R) -> R {
        self.rt.note_access(res::heap_obj(p.0), false);
        let mut s = self.state.lock();
        let tid = Self::cur_tid();
        match s.objs.get_mut(&p.0) {
            Some(obj) => {
                if let Some(w) = obj.busy_writer {
                    if w != tid {
                        ub(format!(
                            "racy {access} of object {} overlapping a write by thread {w}",
                            p.0
                        ));
                    }
                }
                f(obj)
            }
            None => ub(format!("{access} of dangling pointer {}", p.0)),
        }
    }

    /// Atomic load; one step. UB if it overlaps an in-flight write.
    pub fn load(&self, p: Ptr) -> HVal {
        self.rt.yield_point();
        self.with_obj(p, "read", |o| o.val.clone())
    }

    /// A store, modelled as two atomic operations (write start / write
    /// end) with a schedule point in between — the paper's representation
    /// that makes racy access detectable.
    pub fn store(&self, p: Ptr, val: HVal) {
        self.write_start(p);
        self.rt.yield_point();
        self.write_end(p, val);
    }

    fn write_start(&self, p: Ptr) {
        self.rt.yield_point();
        self.rt.note_access(res::heap_obj(p.0), true);
        let mut s = self.state.lock();
        let tid = Self::cur_tid();
        match s.objs.get_mut(&p.0) {
            Some(obj) => {
                if obj.busy_writer.is_some() {
                    ub(format!("racy write-write overlap on object {}", p.0));
                }
                if obj.active_iters > 0 {
                    ub(format!("write to object {} during active iteration", p.0));
                }
                obj.busy_writer = Some(tid);
            }
            None => ub(format!("write to dangling pointer {}", p.0)),
        }
    }

    fn write_end(&self, p: Ptr, val: HVal) {
        self.rt.note_access(res::heap_obj(p.0), true);
        let mut s = self.state.lock();
        let tid = Self::cur_tid();
        match s.objs.get_mut(&p.0) {
            Some(obj) => {
                assert_eq!(
                    obj.busy_writer,
                    Some(tid),
                    "write_end without matching write_start"
                );
                obj.val = val;
                obj.busy_writer = None;
            }
            None => ub(format!("write_end on dangling pointer {}", p.0)),
        }
    }

    // ------------------------------------------------------------------
    // Slices.
    // ------------------------------------------------------------------

    /// Allocates a byte slice with the given contents.
    pub fn new_byte_slice(&self, data: &[u8]) -> Slice {
        let ptr = self.alloc(HVal::Bytes(data.to_vec()));
        Slice {
            ptr,
            off: 0,
            len: data.len() as u64,
        }
    }

    /// Reads `len` bytes of a byte slice starting at `off` (relative to
    /// the slice); one atomic step. UB on racy overlap.
    pub fn slice_read(&self, s: Slice, off: u64, len: u64) -> Vec<u8> {
        self.rt.yield_point();
        self.with_obj(s.ptr, "read", |o| match &o.val {
            HVal::Bytes(b) => {
                let start = (s.off + off) as usize;
                let end = (s.off + off + len).min(s.off + s.len) as usize;
                if start > b.len() || end > b.len() {
                    ub(format!(
                        "slice read out of bounds: [{start}, {end}) of {}",
                        b.len()
                    ));
                }
                b[start..end.max(start)].to_vec()
            }
            other => panic!("heap type confusion: slice over {other:?}"),
        })
    }

    /// Overwrites slice contents (two-phase write; UB on racy overlap).
    pub fn slice_write(&self, s: Slice, off: u64, data: &[u8]) {
        self.write_start(s.ptr);
        self.rt.yield_point();
        self.rt.note_access(res::heap_obj(s.ptr.0), true);
        let mut st = self.state.lock();
        let tid = Self::cur_tid();
        let obj = st.objs.get_mut(&s.ptr.0).expect("slice backing vanished");
        assert_eq!(obj.busy_writer, Some(tid));
        match &mut obj.val {
            HVal::Bytes(b) => {
                let start = (s.off + off) as usize;
                let end = start + data.len();
                if end > b.len() || end > (s.off + s.len) as usize {
                    obj.busy_writer = None;
                    ub(format!("slice write out of bounds: [{start}, {end})"));
                }
                b[start..end].copy_from_slice(data);
            }
            other => panic!("heap type confusion: slice over {other:?}"),
        }
        obj.busy_writer = None;
    }

    /// Slice length (no step: lengths are immutable in our model).
    pub fn slice_len(&self, s: Slice) -> u64 {
        s.len
    }

    /// Sub-slice (`s[from:to]`), sharing the backing array like Go.
    pub fn sub_slice(&self, s: Slice, from: u64, to: u64) -> Slice {
        assert!(from <= to && to <= s.len, "sub_slice bounds");
        Slice {
            ptr: s.ptr,
            off: s.off + from,
            len: to - from,
        }
    }

    /// Go's `append(s, data...)`: extends the slice, reallocating a new
    /// backing array when the view does not end at the array's end —
    /// exactly Go's aliasing semantics, where appending to a sub-slice
    /// that reaches the backing array's end mutates in place while any
    /// other append copies. Two-phase write on the array it mutates.
    pub fn slice_append(&self, s: Slice, data: &[u8]) -> Slice {
        // Inspect the backing array length (one atomic read step).
        let backing_len = {
            self.rt.yield_point();
            self.with_obj(s.ptr, "read", |o| match &o.val {
                HVal::Bytes(b) => b.len() as u64,
                other => panic!("heap type confusion: slice over {other:?}"),
            })
        };
        if s.off + s.len == backing_len {
            // In place: extend the existing array under a write window.
            self.write_start(s.ptr);
            self.rt.yield_point();
            self.rt.note_access(res::heap_obj(s.ptr.0), true);
            let mut st = self.state.lock();
            let tid = Self::cur_tid();
            let obj = st.objs.get_mut(&s.ptr.0).expect("slice backing vanished");
            assert_eq!(obj.busy_writer, Some(tid));
            match &mut obj.val {
                HVal::Bytes(b) => b.extend_from_slice(data),
                other => panic!("heap type confusion: slice over {other:?}"),
            }
            obj.busy_writer = None;
            Slice {
                ptr: s.ptr,
                off: s.off,
                len: s.len + data.len() as u64,
            }
        } else {
            // Reallocate: copy the view plus the new bytes into a fresh
            // array (the old backing is untouched — Go's copy-on-append).
            let mut bytes = self.slice_read(s, 0, s.len);
            bytes.extend_from_slice(data);
            self.new_byte_slice(&bytes)
        }
    }

    // ------------------------------------------------------------------
    // Maps (with iterator-invalidation UB).
    // ------------------------------------------------------------------

    /// Allocates an empty `map[string]HVal`.
    pub fn new_map(&self) -> Ptr {
        self.alloc(HVal::Map(BTreeMap::new()))
    }

    /// Inserts into a map; UB during active iteration or racy overlap.
    pub fn map_insert(&self, p: Ptr, key: &str, val: HVal) {
        self.write_start(p);
        self.rt.yield_point();
        self.rt.note_access(res::heap_obj(p.0), true);
        let mut s = self.state.lock();
        let obj = s.objs.get_mut(&p.0).expect("map vanished");
        match &mut obj.val {
            HVal::Map(m) => {
                m.insert(key.to_string(), val);
            }
            other => panic!("heap type confusion: map over {other:?}"),
        }
        obj.busy_writer = None;
    }

    /// Looks up a map key; one step.
    pub fn map_get(&self, p: Ptr, key: &str) -> Option<HVal> {
        self.rt.yield_point();
        self.with_obj(p, "read", |o| match &o.val {
            HVal::Map(m) => m.get(key).cloned(),
            other => panic!("heap type confusion: map over {other:?}"),
        })
    }

    /// Deletes a map key; UB during active iteration or racy overlap.
    pub fn map_delete(&self, p: Ptr, key: &str) {
        self.write_start(p);
        self.rt.yield_point();
        self.rt.note_access(res::heap_obj(p.0), true);
        let mut s = self.state.lock();
        let obj = s.objs.get_mut(&p.0).expect("map vanished");
        match &mut obj.val {
            HVal::Map(m) => {
                m.remove(key);
            }
            other => panic!("heap type confusion: map over {other:?}"),
        }
        obj.busy_writer = None;
    }

    /// Iterates a map: `begin_iter` marks iteration active (writes become
    /// UB), yielding between entries; `end_iter` releases. The callback
    /// sees each key in order, with a schedule point before each.
    pub fn map_iter(&self, p: Ptr, mut f: impl FnMut(&str, &HVal)) {
        self.rt.yield_point();
        self.rt.note_access(res::heap_obj(p.0), false);
        let keys: Vec<String> = {
            let mut s = self.state.lock();
            let obj = s.objs.get_mut(&p.0).expect("map vanished");
            if obj.busy_writer.is_some() {
                ub(format!(
                    "map iteration overlapping a write on object {}",
                    p.0
                ));
            }
            obj.active_iters += 1;
            match &obj.val {
                HVal::Map(m) => m.keys().cloned().collect(),
                other => panic!("heap type confusion: map over {other:?}"),
            }
        };
        for k in keys {
            self.rt.yield_point();
            self.rt.note_access(res::heap_obj(p.0), false);
            let s = self.state.lock();
            let obj = s.objs.get(&p.0).expect("map vanished");
            if let HVal::Map(m) = &obj.val {
                if let Some(v) = m.get(&k) {
                    f(&k, v);
                }
            }
        }
        let mut s = self.state.lock();
        let obj = s.objs.get_mut(&p.0).expect("map vanished");
        obj.active_iters -= 1;
    }

    /// Crash: all heap contents are lost (§6.2 crash model).
    pub fn crash(&self) {
        let mut s = self.state.lock();
        s.objs.clear();
    }

    /// Number of live objects (tests and leak checks).
    pub fn live_objects(&self) -> usize {
        self.state.lock().objs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{PanicKind, StepResult};

    fn rr_until_done(rt: &Arc<ModelRt>) -> Vec<(String, PanicKind)> {
        loop {
            let runnable = rt.runnable();
            if runnable.is_empty() {
                break;
            }
            for tid in runnable {
                let _ = rt.grant(tid);
            }
        }
        rt.join_all();
        rt.failures()
    }

    #[test]
    fn load_store_roundtrip() {
        let rt = ModelRt::new(0, 100_000);
        let heap = Heap::new(Arc::clone(&rt));
        let h2 = Arc::clone(&heap);
        rt.spawn("t", move || {
            let p = h2.alloc(HVal::U64(1));
            h2.store(p, HVal::U64(2));
            assert_eq!(h2.load(p).as_u64(), 2);
        });
        assert!(rr_until_done(&rt).is_empty());
    }

    #[test]
    fn racy_write_write_is_ub() {
        // Interleave two stores to the same object so one lands between
        // the other's write_start and write_end.
        let rt = ModelRt::new(0, 100_000);
        let heap = Heap::new(Arc::clone(&rt));
        let p = {
            // Allocate from controller context (no scheduling).
            heap.alloc(HVal::U64(0))
        };
        for name in ["w1", "w2"] {
            let h = Arc::clone(&heap);
            rt.spawn(name, move || {
                h.store(p, HVal::U64(9));
            });
        }
        // Drive w1 into its write window: store = write_start step,
        // yield, write_end. Grant w1 twice: first grant runs up to the
        // yield_point at write_start; second grant performs write_start
        // and parks at the mid-write yield.
        assert_eq!(rt.grant(0), StepResult::Yielded);
        assert_eq!(rt.grant(0), StepResult::Yielded);
        // Now w2 attempts its write_start against a busy object.
        assert_eq!(rt.grant(1), StepResult::Yielded);
        match rt.grant(1) {
            StepResult::Panicked(PanicKind::Ub(msg)) => {
                assert!(msg.contains("racy"), "got: {msg}");
            }
            other => panic!("expected UB, got {other:?}"),
        }
        rt.crash_all();
    }

    #[test]
    fn racy_read_during_write_is_ub() {
        let rt = ModelRt::new(0, 100_000);
        let heap = Heap::new(Arc::clone(&rt));
        let p = heap.alloc(HVal::U64(0));
        let hw = Arc::clone(&heap);
        rt.spawn("writer", move || hw.store(p, HVal::U64(1)));
        let hr = Arc::clone(&heap);
        rt.spawn("reader", move || {
            let _ = hr.load(p);
        });
        assert_eq!(rt.grant(0), StepResult::Yielded); // up to write_start
        assert_eq!(rt.grant(0), StepResult::Yielded); // mid-write window
        assert_eq!(rt.grant(1), StepResult::Yielded); // reader reaches its load step
        match rt.grant(1) {
            StepResult::Panicked(PanicKind::Ub(msg)) => {
                assert!(msg.contains("read"), "got: {msg}");
            }
            other => panic!("expected UB, got {other:?}"),
        }
        rt.crash_all();
    }

    #[test]
    fn serialized_access_is_not_ub() {
        let rt = ModelRt::new(0, 100_000);
        let heap = Heap::new(Arc::clone(&rt));
        let lock = rt.new_lock();
        let p = heap.alloc(HVal::U64(0));
        for name in ["a", "b"] {
            let h = Arc::clone(&heap);
            let rt2 = Arc::clone(&rt);
            rt.spawn(name, move || {
                rt2.lock_acquire(lock);
                let v = h.load(p).as_u64();
                h.store(p, HVal::U64(v + 1));
                rt2.lock_release(lock);
            });
        }
        assert!(rr_until_done(&rt).is_empty());
        assert_eq!(heap.load(p).as_u64(), 2);
    }

    #[test]
    fn slice_read_write() {
        let rt = ModelRt::new(0, 100_000);
        let heap = Heap::new(Arc::clone(&rt));
        let h = Arc::clone(&heap);
        rt.spawn("t", move || {
            let s = h.new_byte_slice(b"hello world");
            assert_eq!(h.slice_read(s, 0, 5), b"hello");
            let sub = h.sub_slice(s, 6, 11);
            assert_eq!(h.slice_read(sub, 0, 5), b"world");
            h.slice_write(sub, 0, b"WORLD");
            assert_eq!(h.slice_read(s, 0, 11), b"hello WORLD");
        });
        assert!(rr_until_done(&rt).is_empty());
    }

    #[test]
    fn map_insert_during_iteration_is_ub() {
        let rt = ModelRt::new(0, 100_000);
        let heap = Heap::new(Arc::clone(&rt));
        let m = heap.new_map();
        heap.map_insert(m, "k1", HVal::U64(1));
        heap.map_insert(m, "k2", HVal::U64(2));
        let hi = Arc::clone(&heap);
        rt.spawn("iter", move || {
            hi.map_iter(m, |_, _| {});
        });
        let hw = Arc::clone(&heap);
        rt.spawn("mutator", move || {
            hw.map_insert(m, "k3", HVal::U64(3));
        });
        // Start the iteration (registers active_iters).
        assert_eq!(rt.grant(0), StepResult::Yielded);
        assert_eq!(rt.grant(0), StepResult::Yielded);
        // Mutator now attempts an insert mid-iteration.
        assert_eq!(rt.grant(1), StepResult::Yielded);
        match rt.grant(1) {
            StepResult::Panicked(PanicKind::Ub(msg)) => {
                assert!(msg.contains("iteration"), "got: {msg}");
            }
            other => panic!("expected UB, got {other:?}"),
        }
        rt.crash_all();
    }

    #[test]
    fn crash_clears_heap() {
        let rt = ModelRt::new(0, 100_000);
        let heap = Heap::new(Arc::clone(&rt));
        let _ = heap.alloc(HVal::U64(1));
        let _ = heap.alloc(HVal::Str("x".into()));
        assert_eq!(heap.live_objects(), 2);
        heap.crash();
        assert_eq!(heap.live_objects(), 0);
    }
}

#[cfg(test)]
mod append_tests {
    use super::*;

    #[test]
    fn append_at_array_end_extends_in_place() {
        let rt = ModelRt::new(0, 100_000);
        let heap = Heap::new(rt);
        let s = heap.new_byte_slice(b"abc");
        let s2 = heap.slice_append(s, b"de");
        // Same backing array, longer view; the original view still sees
        // its own prefix.
        assert_eq!(s2.ptr, s.ptr);
        assert_eq!(heap.slice_read(s2, 0, 5), b"abcde");
        assert_eq!(heap.slice_read(s, 0, 3), b"abc");
    }

    #[test]
    fn append_to_prefix_view_reallocates() {
        let rt = ModelRt::new(0, 100_000);
        let heap = Heap::new(rt);
        let s = heap.new_byte_slice(b"abcdef");
        let prefix = heap.sub_slice(s, 0, 3);
        let grown = heap.slice_append(prefix, b"XY");
        // Fresh backing: the original array is untouched (Go would have
        // clobbered in place only if the view reached the array's end).
        assert_ne!(grown.ptr, s.ptr);
        assert_eq!(heap.slice_read(grown, 0, 5), b"abcXY");
        assert_eq!(heap.slice_read(s, 0, 6), b"abcdef");
    }

    #[test]
    fn append_chain_accumulates() {
        let rt = ModelRt::new(0, 100_000);
        let heap = Heap::new(rt);
        let mut s = heap.new_byte_slice(b"");
        for chunk in [&b"one-"[..], b"two-", b"three"] {
            s = heap.slice_append(s, chunk);
        }
        assert_eq!(heap.slice_read(s, 0, s.len), b"one-two-three");
    }
}
