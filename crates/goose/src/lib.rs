//! Goose: the simulated Go-like runtime the paper's systems run on (§6).
//!
//! The original Goose is a translator from a subset of Go to a Coq model.
//! Without a proof assistant, this crate implements the *model itself* as
//! an executable substrate with two personalities:
//!
//! - **model mode** — [`sched::ModelRt`] schedules virtual threads one
//!   atomic primitive at a time, so the checker controls interleavings
//!   and can crash the "process" at any step boundary. The heap
//!   ([`heap::Heap`]) implements the paper's racy-access-is-UB semantics
//!   via two-phase writes, and the file system ([`fs::ModelFs`])
//!   implements the §6.2 crash model (descriptors and memory lost, file
//!   data durable).
//! - **native mode** — [`runtime::NativeRt`] + [`fs::NativeFs`] run the
//!   same system code on real threads and a concurrent in-memory tmpfs
//!   analog for the throughput experiments (§9.3).
//!
//! System code is written against [`runtime::Runtime`] +
//! [`fs::FileSys`] so one implementation serves both modes — the
//! reproduction's analog of "the same Go source is both translated to Coq
//! and compiled by the Go toolchain".

pub mod fault;
pub mod fs;
pub mod heap;
pub mod net;
pub mod runtime;
pub mod sched;
pub mod trace;

pub use fault::{
    retry_with_backoff, FaultPlan, FaultSurface, IoError, IoResult, NetFault, TornMode,
    DEFAULT_IO_ATTEMPTS,
};
pub use fs::{BufferedFs, DirH, Fd, FileSys, FsError, FsResult, ModelFs, NativeFs};
pub use heap::{HVal, Heap, Ptr, Slice};
pub use net::ModelNet;
pub use runtime::{GLock, ModelRtExt, ModelRuntime, NativeRt, Runtime};
pub use sched::{
    quiet_worker_panics, res, CrashSignal, LockId, ModelRt, PanicKind, SchedStats, StepAccess,
    StepBudgetSignal, StepResult, Tid, UbSignal,
};
pub use trace::{ExecTrace, TraceEvent, TraceKind};
