//! Model network: an in-memory message channel scheduled by the model
//! runtime, with plan-driven unreliability.
//!
//! The channel is asynchronous and unordered-under-faults: a send
//! normally appends to the in-flight queue, but the execution's
//! [`FaultPlan`](crate::fault::FaultPlan) may **drop** the message,
//! **duplicate** it, or **delay** it past the next send. Receivers poll
//! non-blockingly (`recv`) so workloads stay finite under every schedule
//! the checker enumerates — a blocked receiver is modelled as a bounded
//! poll loop with yield points, not a busy-wait.
//!
//! Crash semantics: in-flight messages are volatile, like process memory
//! — [`ModelNet::crash`] clears the queue.

use crate::fault::NetFault;
use crate::sched::{res, ModelRt};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

struct NetState {
    queue: VecDeque<Vec<u8>>,
    /// A message held back by a [`NetFault::Delay`]; it re-enters the
    /// queue after the next send (or is drained once the queue empties).
    delayed: Option<Vec<u8>>,
    closed: bool,
}

/// One unreliable model channel.
pub struct ModelNet {
    rt: Arc<ModelRt>,
    state: Mutex<NetState>,
    /// Dependency-tracking resource id: the whole channel is one
    /// resource (queue order makes all sends/recvs conflict anyway).
    tag: u64,
}

impl ModelNet {
    /// Creates an open channel on the given runtime.
    pub fn new(rt: Arc<ModelRt>) -> Arc<Self> {
        let tag = rt.alloc_resource_tag();
        Arc::new(ModelNet {
            rt,
            state: Mutex::new(NetState {
                queue: VecDeque::new(),
                delayed: None,
                closed: false,
            }),
            tag,
        })
    }

    /// Sends a message (one scheduler step). The fault plan decides
    /// whether it arrives once, twice, later, or never.
    pub fn send(&self, msg: &[u8]) {
        self.rt.yield_point();
        self.rt.note_access(res::instance(self.tag), true);
        self.rt.note_net_send(self.tag, msg.len() as u64);
        let fault = self.rt.next_net_fault();
        let mut s = self.state.lock();
        match fault {
            Some(NetFault::Drop) => {}
            Some(NetFault::Duplicate) => {
                s.queue.push_back(msg.to_vec());
                s.queue.push_back(msg.to_vec());
            }
            Some(NetFault::Delay) => {
                // Hold this message back; flush any previously delayed
                // one first so at most one message is ever in the slot.
                if let Some(prev) = s.delayed.take() {
                    s.queue.push_back(prev);
                }
                s.delayed = Some(msg.to_vec());
            }
            None => {
                s.queue.push_back(msg.to_vec());
                if let Some(prev) = s.delayed.take() {
                    s.queue.push_back(prev);
                }
            }
        }
    }

    /// Non-blocking receive (one scheduler step): the next in-flight
    /// message, if any. A delayed message is only released once the main
    /// queue has drained past it.
    pub fn recv(&self) -> Option<Vec<u8>> {
        self.rt.yield_point();
        self.rt.note_access(res::instance(self.tag), true);
        let msg = {
            let mut s = self.state.lock();
            match s.queue.pop_front() {
                Some(m) => Some(m),
                None => s.delayed.take(),
            }
        };
        if let Some(m) = &msg {
            self.rt.note_net_recv(self.tag, m.len() as u64);
        }
        msg
    }

    /// Marks the sender side finished; receivers can stop polling once
    /// the channel is closed and drained.
    pub fn close(&self) {
        self.rt.yield_point();
        self.rt.note_access(res::instance(self.tag), true);
        self.state.lock().closed = true;
    }

    /// Whether the channel is closed *and* fully drained.
    pub fn finished(&self) -> bool {
        // No yield point of its own, but it reads shared state within
        // the caller's current grant window.
        self.rt.note_access(res::instance(self.tag), false);
        let s = self.state.lock();
        s.closed && s.queue.is_empty() && s.delayed.is_none()
    }

    /// Crash: in-flight messages are volatile and lost.
    pub fn crash(&self) {
        let mut s = self.state.lock();
        s.queue.clear();
        s.delayed = None;
        s.closed = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;

    fn net_with(plan: FaultPlan) -> Arc<ModelNet> {
        // Controller-context sends/recvs (no virtual thread) skip the
        // yield, which keeps these unit tests schedule-free.
        ModelNet::new(ModelRt::with_faults(0, 10_000, plan))
    }

    #[test]
    fn fifo_without_faults() {
        let net = net_with(FaultPlan::default());
        net.send(b"a");
        net.send(b"b");
        assert_eq!(net.recv(), Some(b"a".to_vec()));
        assert_eq!(net.recv(), Some(b"b".to_vec()));
        assert_eq!(net.recv(), None);
        net.close();
        assert!(net.finished());
    }

    #[test]
    fn drop_loses_exactly_the_planned_message() {
        let mut plan = FaultPlan::default();
        plan.net.insert(0, NetFault::Drop);
        let net = net_with(plan);
        net.send(b"lost");
        net.send(b"kept");
        assert_eq!(net.recv(), Some(b"kept".to_vec()));
        assert_eq!(net.recv(), None);
    }

    #[test]
    fn duplicate_delivers_twice() {
        let mut plan = FaultPlan::default();
        plan.net.insert(1, NetFault::Duplicate);
        let net = net_with(plan);
        net.send(b"a");
        net.send(b"b");
        assert_eq!(net.recv(), Some(b"a".to_vec()));
        assert_eq!(net.recv(), Some(b"b".to_vec()));
        assert_eq!(net.recv(), Some(b"b".to_vec()));
        assert_eq!(net.recv(), None);
    }

    #[test]
    fn delay_reorders_past_the_next_send() {
        let mut plan = FaultPlan::default();
        plan.net.insert(0, NetFault::Delay);
        let net = net_with(plan);
        net.send(b"late");
        net.send(b"early");
        assert_eq!(net.recv(), Some(b"early".to_vec()));
        assert_eq!(net.recv(), Some(b"late".to_vec()));
        assert_eq!(net.recv(), None);
    }

    #[test]
    fn crash_clears_in_flight_messages() {
        let net = net_with(FaultPlan::default());
        net.send(b"a");
        net.crash();
        assert_eq!(net.recv(), None);
    }
}
