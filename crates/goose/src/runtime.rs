//! The runtime facade system code is written against.
//!
//! Verified systems (Mailboat, the replicated disk, the patterns) are
//! written once against [`Runtime`] + [`crate::fs::FileSys`] and run in
//! two modes:
//!
//! - **model mode** ([`crate::sched::ModelRt`]): every primitive is an
//!   atomic scheduler step; the checker controls interleavings and
//!   injects crashes;
//! - **native mode** ([`NativeRt`]): real OS threads and `parking_lot`
//!   primitives for benchmarking (§9.3's throughput experiment).

use crate::sched::ModelRt;
use parking_lot::{Condvar, Mutex};
use rand::RngCore;
use std::sync::Arc;

/// A Go-style non-RAII lock (`sync.Mutex`): explicit acquire/release.
pub trait GLock: Send + Sync {
    /// Acquires the lock, blocking until available.
    fn acquire(&self);
    /// Releases the lock.
    ///
    /// # Panics
    ///
    /// Implementations may panic if the lock is not held.
    fn release(&self);
}

/// What system code needs from its execution environment.
pub trait Runtime: Send + Sync + 'static {
    /// Marks an atomic step boundary (no-op in native mode).
    fn yield_point(&self);
    /// Allocates a lock.
    fn new_lock(&self) -> Arc<dyn GLock>;
    /// Draws a random value (deterministic in model mode).
    fn rand_u64(&self) -> u64;
}

// ---------------------------------------------------------------------
// Model mode.
// ---------------------------------------------------------------------

struct ModelLock {
    rt: Arc<ModelRt>,
    id: crate::sched::LockId,
}

impl GLock for ModelLock {
    fn acquire(&self) {
        self.rt.lock_acquire(self.id);
    }

    fn release(&self) {
        self.rt.lock_release(self.id);
    }
}

/// Arc-aware helpers for [`ModelRt`] (locks need a runtime handle, so
/// [`Runtime`] is implemented on the [`ModelRuntime`] wrapper rather than
/// on `ModelRt` itself).
pub trait ModelRtExt {
    /// Allocates a model lock as a [`GLock`].
    fn new_glock(&self) -> Arc<dyn GLock>;
    /// This runtime as a `dyn Runtime` handle.
    fn as_runtime(&self) -> Arc<dyn Runtime>;
}

impl ModelRtExt for Arc<ModelRt> {
    fn new_glock(&self) -> Arc<dyn GLock> {
        Arc::new(ModelLock {
            rt: Arc::clone(self),
            id: self.new_lock(),
        })
    }

    fn as_runtime(&self) -> Arc<dyn Runtime> {
        Arc::new(ModelRuntime {
            rt: Arc::clone(self),
        })
    }
}

/// A `dyn Runtime` wrapper over an `Arc<ModelRt>` so locks can capture
/// the runtime handle they need.
pub struct ModelRuntime {
    rt: Arc<ModelRt>,
}

impl Runtime for ModelRuntime {
    fn yield_point(&self) {
        self.rt.yield_point();
    }

    fn new_lock(&self) -> Arc<dyn GLock> {
        self.rt.new_glock()
    }

    fn rand_u64(&self) -> u64 {
        ModelRt::rand_u64(&self.rt)
    }
}

// ---------------------------------------------------------------------
// Native mode.
// ---------------------------------------------------------------------

/// Native runtime: real threads, real locks, thread-local randomness.
#[derive(Debug, Default)]
pub struct NativeRt;

impl NativeRt {
    /// Creates a native runtime handle.
    pub fn new() -> Arc<Self> {
        Arc::new(NativeRt)
    }
}

/// A boolean lock built on `Mutex<bool>` + condvar so acquire/release
/// need not be lexically scoped (Go style).
#[derive(Default)]
struct NativeLock {
    held: Mutex<bool>,
    cv: Condvar,
}

impl GLock for NativeLock {
    fn acquire(&self) {
        let mut held = self.held.lock();
        while *held {
            self.cv.wait(&mut held);
        }
        *held = true;
    }

    fn release(&self) {
        let mut held = self.held.lock();
        assert!(*held, "releasing a lock that is not held");
        *held = false;
        self.cv.notify_one();
    }
}

impl Runtime for NativeRt {
    fn yield_point(&self) {}

    fn new_lock(&self) -> Arc<dyn GLock> {
        Arc::new(NativeLock::default())
    }

    fn rand_u64(&self) -> u64 {
        rand::thread_rng().next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn native_lock_mutual_exclusion() {
        let rt = NativeRt::new();
        let lock = rt.new_lock();
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let lock = Arc::clone(&lock);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    lock.acquire();
                    // Non-atomic read-modify-write protected by the lock.
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    lock.release();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 4000);
    }

    #[test]
    fn native_rand_varies() {
        let rt = NativeRt::new();
        let a = rt.rand_u64();
        let b = rt.rand_u64();
        // Not a strong test, but 2^-64 flake odds are acceptable.
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "not held")]
    fn native_release_unheld_panics() {
        let rt = NativeRt::new();
        let lock = rt.new_lock();
        lock.release();
    }
}
