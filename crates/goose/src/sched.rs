//! The model scheduler: virtual threads with explicit atomic step points.
//!
//! Goose models Go code as a sequence of atomic primitive operations
//! (§6.1): heap accesses, file-system calls, lock operations. In model
//! mode every primitive calls [`ModelRt::yield_point`], which parks the
//! calling OS thread until the *controller* (the checker's explorer)
//! grants it the next step. The controller therefore fully determines the
//! interleaving, and can inject a crash at any step boundary by poisoning
//! the runtime: all parked threads unwind with a [`CrashSignal`] payload,
//! exactly modelling "the process died here".
//!
//! The design is stateless-model-checking style: each explored execution
//! spawns fresh OS threads and replays a recorded schedule prefix. Threads
//! are cheap enough (~10µs spawn) for the bounded configurations the
//! checker explores.

use crate::fault::{FaultPlan, NetFault, TornMode};
use crate::trace::{ExecTrace, TraceBuf, TraceKind};
use parking_lot::{Condvar, Mutex};
use perennial::GhostPanic;
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Virtual thread id (index into the runtime's thread table).
pub type Tid = usize;

/// Sentinel owner for locks taken from controller context (setup code
/// running outside any virtual thread).
const CONTROLLER_TID: Tid = usize::MAX;

/// Lock id (index into the runtime's lock table).
pub type LockId = usize;

/// Unwind payload for a simulated crash: the thread's execution is cut
/// off mid-operation.
#[derive(Debug, Clone, Copy)]
pub struct CrashSignal;

/// Unwind payload for modelled undefined behaviour (§6.1: racy access to
/// shared data).
#[derive(Debug, Clone)]
pub struct UbSignal(pub String);

/// Unwind payload raised when an execution exhausts its per-execution
/// step budget (`max_steps`): the model is wedged in a livelock or a
/// runaway loop. The checker maps this to a wedged-execution outcome
/// instead of hanging the campaign. Carries the exhausted budget.
#[derive(Debug, Clone, Copy)]
pub struct StepBudgetSignal(pub u64);

/// How a granted step ended.
#[derive(Debug, Clone, PartialEq)]
pub enum StepResult {
    /// The thread reached its next yield point.
    Yielded,
    /// The thread blocked on a lock; it is not runnable until release.
    Blocked,
    /// The thread's body returned.
    Finished,
    /// The thread panicked; the payload classifies the failure.
    Panicked(PanicKind),
}

/// Classified panic payloads surfacing from virtual threads.
#[derive(Debug, Clone, PartialEq)]
pub enum PanicKind {
    /// A ghost capability rule was violated — a verification failure.
    Ghost(perennial::GhostError),
    /// Modelled undefined behaviour (racy heap access, invalidated
    /// iterator) — the caller broke the spec's precondition.
    Ub(String),
    /// Any other panic — a plain bug in the code under test.
    Other(String),
    /// The thread was unwound by an injected crash (not a failure).
    CrashUnwind,
    /// The execution exceeded its step budget (livelock backstop); the
    /// payload is the exhausted budget.
    StepBudget(u64),
}

#[derive(Debug, Clone, PartialEq)]
enum TState {
    /// Spawned; waiting for its first grant.
    Registered,
    /// Holds the grant; currently running user code.
    Granted,
    /// Parked at a yield point; runnable.
    Paused,
    /// Waiting for a lock; not runnable.
    Blocked(LockId),
    Done,
    Panicked(PanicKind),
}

struct ThreadMeta {
    state: TState,
    name: String,
}

struct LockSlot {
    held_by: Option<Tid>,
    /// Times a thread parked on this lock while held (the per-resource
    /// share of `RtState::lock_blocks`, for contention attribution).
    blocks: u64,
}

struct RtState {
    threads: Vec<ThreadMeta>,
    locks: Vec<LockSlot>,
    poisoned: bool,
    steps: u64,
    rand_ctr: u64,
    /// Disk operations consulted against the fault plan so far.
    disk_ops: u64,
    /// Network sends consulted against the fault plan so far.
    net_msgs: u64,
    /// Model-lock acquisitions that succeeded.
    lock_acquires: u64,
    /// Times a thread found its lock held and parked (contention).
    lock_blocks: u64,
    /// Disk block reads (all disk models).
    disk_reads: u64,
    /// Disk block writes, buffered or direct (all disk models).
    disk_writes: u64,
    /// Disk flush barriers (including write-throughs).
    disk_flushes: u64,
    /// Network sends that reached a channel.
    net_sends: u64,
    /// Network receives that dequeued a message.
    net_recvs: u64,
}

/// Snapshot of the runtime's step counters, the scheduler-level raw
/// material for the checker's telemetry (`exec_done` events and the
/// per-execution histograms). Every field is a deterministic function of
/// the schedule and fault plan, never of wall-clock time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Yield points passed (scheduled atomic steps).
    pub steps: u64,
    /// Virtual threads spawned over the execution's lifetime.
    pub threads: u64,
    /// Disk operations consulted against the fault plan.
    pub disk_ops: u64,
    /// Network sends consulted against the fault plan.
    pub net_msgs: u64,
    /// Successful model-lock acquisitions.
    pub lock_acquires: u64,
    /// Acquisitions that parked on a held lock first (contention).
    pub lock_blocks: u64,
    /// Deterministic random draws consumed.
    pub rand_draws: u64,
    /// Disk block reads (all disk models).
    pub disk_reads: u64,
    /// Disk block writes, buffered or direct (all disk models).
    pub disk_writes: u64,
    /// Disk flush barriers, including write-throughs.
    pub disk_flushes: u64,
    /// Network sends that reached a channel.
    pub net_sends: u64,
    /// Network receives that dequeued a message.
    pub net_recvs: u64,
}

thread_local! {
    static CURRENT_TID: Cell<Option<Tid>> = const { Cell::new(None) };
}

/// One shared-state access performed during a granted step, as recorded
/// by the dependency hooks (see [`ModelRt::note_access`]). The checker's
/// partial-order reduction treats two steps as *independent* — freely
/// commutable — exactly when no resource appears in both footprints with
/// a write on either side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepAccess {
    /// Opaque resource id; see [`res`] for the naming scheme.
    pub resource: u64,
    /// Whether the access mutates the resource.
    pub write: bool,
}

impl StepAccess {
    /// A read access.
    pub fn read(resource: u64) -> Self {
        StepAccess {
            resource,
            write: false,
        }
    }

    /// A write access.
    pub fn write(resource: u64) -> Self {
        StepAccess {
            resource,
            write: true,
        }
    }
}

/// Resource-id naming scheme for [`StepAccess`] footprints. Ids are
/// opaque to the checker — all it needs is that two accesses to the same
/// shared state produce the same id, and accesses to disjoint state
/// produce different ids. The high byte tags the resource class; model
/// instances (disks, channels, file systems) disambiguate themselves with
/// a runtime-allocated tag ([`ModelRt::alloc_resource_tag`]).
pub mod res {
    /// A model lock (low bits: the [`LockId`](super::LockId)).
    pub const LOCK: u64 = 0x01 << 56;
    /// A heap object (low bits: the pointer id).
    pub const HEAP: u64 = 0x02 << 56;
    /// The shared deterministic-randomness counter (every draw advances
    /// it, so draws never commute — reordering them changes the values).
    pub const RAND: u64 = 0x03 << 56;
    /// Shared allocators (heap ids, lock ids, thread ids): allocation
    /// order determines the allocated id, so allocations never commute.
    pub const ALLOC: u64 = 0x04 << 56;
    /// One block of a model disk (bits 32..56: instance tag; low bits:
    /// block address, with bit 31 carrying the disk number on two-disk
    /// substrates).
    pub const DISK: u64 = 0x05 << 56;
    /// A whole model instance treated as one resource (network channels,
    /// file systems, write buffers).
    pub const INSTANCE: u64 = 0x06 << 56;
    /// A thread's ghost-engine activity (low bits: the thread id). Spec
    /// events are ordered per thread; cross-thread spec coupling must be
    /// mediated by a physical primitive whose own resource tag appears
    /// in the footprint (DESIGN.md §12).
    pub const GHOST: u64 = 0x07 << 56;
    /// The disk-op fault counter — only shared when the execution's plan
    /// schedules transient I/O faults (the index stream then decides
    /// *which* op fails).
    pub const DISK_FAULT_CTR: u64 = 0x08 << 56;
    /// The net-send fault counter (see [`DISK_FAULT_CTR`]).
    pub const NET_FAULT_CTR: u64 = 0x09 << 56;

    /// Resource id for a model lock.
    pub fn lock(id: super::LockId) -> u64 {
        LOCK | id as u64
    }

    /// Resource id for a heap object.
    pub fn heap_obj(id: u64) -> u64 {
        HEAP | (id & 0x00ff_ffff_ffff_ffff)
    }

    /// Resource id for one block of a tagged disk instance.
    pub fn disk_block(tag: u64, block: u64) -> u64 {
        DISK | ((tag & 0x00ff_ffff) << 32) | (block & 0xffff_ffff)
    }

    /// Resource id for a whole tagged model instance.
    pub fn instance(tag: u64) -> u64 {
        INSTANCE | (tag & 0x00ff_ffff_ffff_ffff)
    }
}

/// The model runtime: scheduler state plus the primitives virtual threads
/// call.
pub struct ModelRt {
    state: Mutex<RtState>,
    cv: Condvar,
    handles: Mutex<Vec<Option<JoinHandle<()>>>>,
    seed: u64,
    max_steps: u64,
    /// This execution's fault schedule (empty = inject nothing). Fixed
    /// at construction, like the seed, so fault injection is a pure
    /// function of the canonical job key.
    faults: FaultPlan,
    /// Whether the dependency hooks record accesses (off by default; the
    /// checker enables it for executions feeding partial-order
    /// reduction). Checked lock-free so disabled runs pay one relaxed
    /// load per primitive.
    track_deps: AtomicBool,
    /// Accesses of the currently granted step; the controller drains
    /// them after each grant via [`ModelRt::take_step_accesses`].
    cur_accesses: Mutex<Vec<StepAccess>>,
    /// Next instance tag for [`ModelRt::alloc_resource_tag`].
    next_tag: AtomicU64,
    /// Whether the causal trace recorder is on (off by default; the
    /// checker enables it when re-running a counterexample for explain
    /// output). Checked lock-free so untraced runs pay one relaxed load
    /// per event site.
    tracing: AtomicBool,
    /// The trace recording buffer (drained via [`ModelRt::take_trace`]).
    trace_buf: Mutex<TraceBuf>,
}

/// Installs a process-wide panic hook (once) that silences the expected
/// control-flow unwinds — crash signals, ghost violations, modelled UB —
/// while delegating genuine panics to the previous hook.
fn install_quiet_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let p = info.payload();
            if p.is::<CrashSignal>()
                || p.is::<GhostPanic>()
                || p.is::<UbSignal>()
                || p.is::<StepBudgetSignal>()
                || QUIET_PANICS.with(|q| q.get())
            {
                return;
            }
            prev(info);
        }));
    });
}

thread_local! {
    /// Set while a checker worker runs a harness under `catch_unwind`:
    /// any panic on this thread is an *isolated* execution outcome, not
    /// a process failure, so the default backtrace spew is suppressed.
    static QUIET_PANICS: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Runs `f` with panics on the *current* thread silenced in the quiet
/// hook. The checker wraps each isolated execution in this so that a
/// panicking harness is recorded as an outcome without flooding stderr;
/// panics on other (virtual) threads are unaffected.
pub fn quiet_worker_panics<R>(f: impl FnOnce() -> R) -> R {
    QUIET_PANICS.with(|q| q.set(true));
    let out = f();
    QUIET_PANICS.with(|q| q.set(false));
    out
}

impl ModelRt {
    /// Creates a runtime with no fault plan. `seed` drives deterministic
    /// randomness; `max_steps` bounds runaway executions (a livelock
    /// backstop).
    pub fn new(seed: u64, max_steps: u64) -> Arc<Self> {
        Self::with_faults(seed, max_steps, FaultPlan::default())
    }

    /// Creates a runtime carrying a fault schedule the storage and
    /// network models consult during the execution.
    pub fn with_faults(seed: u64, max_steps: u64, faults: FaultPlan) -> Arc<Self> {
        install_quiet_hook();
        Arc::new(ModelRt {
            state: Mutex::new(RtState {
                threads: Vec::new(),
                locks: Vec::new(),
                poisoned: false,
                steps: 0,
                rand_ctr: 0,
                disk_ops: 0,
                net_msgs: 0,
                lock_acquires: 0,
                lock_blocks: 0,
                disk_reads: 0,
                disk_writes: 0,
                disk_flushes: 0,
                net_sends: 0,
                net_recvs: 0,
            }),
            cv: Condvar::new(),
            handles: Mutex::new(Vec::new()),
            seed,
            max_steps,
            faults,
            track_deps: AtomicBool::new(false),
            cur_accesses: Mutex::new(Vec::new()),
            next_tag: AtomicU64::new(0),
            tracing: AtomicBool::new(false),
            trace_buf: Mutex::new(TraceBuf::default()),
        })
    }

    // ------------------------------------------------------------------
    // Causal trace recording (explain / trace-export support).
    // ------------------------------------------------------------------

    /// Enables (or disables) the causal trace recorder. A pure side
    /// channel: no counter, schedule, or fault index observes it.
    pub fn set_tracing(&self, on: bool) {
        self.tracing.store(on, Ordering::Relaxed);
    }

    /// Whether the trace recorder is currently on.
    pub fn tracing_enabled(&self) -> bool {
        self.tracing.load(Ordering::Relaxed)
    }

    /// Records one trace event attributed to the calling virtual thread
    /// (or the controller, outside any). No-op when tracing is off.
    pub fn trace_event(&self, kind: TraceKind) {
        self.trace_event_for(Self::current_tid(), kind);
    }

    /// Records one trace event attributed to an explicit thread — the
    /// controller uses this to attribute grants and spec events to the
    /// thread it just granted. No-op when tracing is off.
    pub fn trace_event_for(&self, tid: Option<Tid>, kind: TraceKind) {
        if !self.tracing.load(Ordering::Relaxed) {
            return;
        }
        self.trace_buf.lock().push(tid, kind);
    }

    /// Drains the recorded trace (with the thread-name table) and resets
    /// the recorder.
    pub fn take_trace(&self) -> ExecTrace {
        let threads = {
            let s = self.state.lock();
            s.threads.iter().map(|m| m.name.clone()).collect()
        };
        self.trace_buf.lock().take(threads)
    }

    // ------------------------------------------------------------------
    // Dependency hooks (partial-order reduction support).
    // ------------------------------------------------------------------

    /// Enables (or disables) access recording for this execution. The
    /// checker turns it on for executions whose footprints feed
    /// partial-order reduction.
    pub fn set_track_deps(&self, on: bool) {
        self.track_deps.store(on, Ordering::Relaxed);
    }

    /// Records one shared-state access of the currently granted step.
    /// No-op unless tracking is enabled and a virtual thread is running
    /// (controller-context setup code is not part of any step).
    pub fn note_access(&self, resource: u64, write: bool) {
        if !self.track_deps.load(Ordering::Relaxed) || Self::current_tid().is_none() {
            return;
        }
        self.cur_accesses
            .lock()
            .push(StepAccess { resource, write });
    }

    /// Drains the accesses recorded since the last drain — the footprint
    /// of the step the controller just granted. Reads subsumed by a
    /// write to the same resource are deduplicated.
    pub fn take_step_accesses(&self) -> Vec<StepAccess> {
        let mut raw = std::mem::take(&mut *self.cur_accesses.lock());
        raw.sort_by_key(|a| (a.resource, !a.write));
        raw.dedup_by_key(|a| a.resource);
        raw
    }

    /// Allocates a fresh instance tag for a model (disk, channel, file
    /// system) so its accesses are distinguishable in footprints.
    /// Deterministic: models are constructed in a deterministic order
    /// per schedule.
    pub fn alloc_resource_tag(&self) -> u64 {
        self.next_tag.fetch_add(1, Ordering::Relaxed)
    }

    /// The fault schedule this runtime was built with.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Consumes the next disk-operation index and reports whether the
    /// plan injects a transient fault there. Every fault-aware model-disk
    /// operation calls this exactly once per attempt, so the index stream
    /// is deterministic per schedule.
    pub fn next_disk_op_faulty(&self) -> bool {
        // With transient faults planned, the shared op-index stream
        // decides *which* op fails, so consuming an index is a
        // dependency-relevant write.
        if !self.faults.transient_io.is_empty() {
            self.note_access(res::DISK_FAULT_CTR, true);
        }
        let faulty = {
            let mut s = self.state.lock();
            let i = s.disk_ops;
            s.disk_ops += 1;
            self.faults.transient_io.contains(&i).then_some(i)
        };
        if let Some(op) = faulty {
            self.trace_event(TraceKind::FaultDiskTransient { op });
            return true;
        }
        false
    }

    /// Disk operations consulted so far (fault-sweep probes use this to
    /// size the transient-error enumeration).
    pub fn disk_ops(&self) -> u64 {
        self.state.lock().disk_ops
    }

    /// Consumes the next network-send index and returns the fault the
    /// plan injects there, if any.
    pub fn next_net_fault(&self) -> Option<NetFault> {
        if !self.faults.net.is_empty() {
            self.note_access(res::NET_FAULT_CTR, true);
        }
        let (i, fault) = {
            let mut s = self.state.lock();
            let i = s.net_msgs;
            s.net_msgs += 1;
            (i, self.faults.net.get(&i).copied())
        };
        if let Some(f) = fault {
            self.trace_event(TraceKind::FaultNet { msg: i, fault: f });
        }
        fault
    }

    // ------------------------------------------------------------------
    // Model-operation accounting (disk / fs / net hooks).
    //
    // The storage and network models call these once per operation; each
    // bumps the matching `SchedStats` counter and, when tracing is on,
    // records the structured trace event. Counters are unconditional —
    // they are deterministic schedule functions the checker reports —
    // while trace events are the opt-in side channel.
    // ------------------------------------------------------------------

    /// Accounts one disk block read.
    pub fn note_disk_read(&self, tag: u64, block: u64) {
        self.state.lock().disk_reads += 1;
        self.trace_event(TraceKind::DiskRead { tag, block });
    }

    /// Accounts one buffered or direct disk block write.
    pub fn note_disk_write(&self, tag: u64, block: u64) {
        self.state.lock().disk_writes += 1;
        self.trace_event(TraceKind::DiskWrite { tag, block });
    }

    /// Accounts one write-through (a write plus an immediate barrier).
    pub fn note_disk_write_through(&self, tag: u64, block: u64) {
        {
            let mut s = self.state.lock();
            s.disk_writes += 1;
            s.disk_flushes += 1;
        }
        self.trace_event(TraceKind::DiskWriteThrough { tag, block });
    }

    /// Accounts one flush barrier that applied `applied` buffered writes.
    pub fn note_disk_flush(&self, tag: u64, applied: u64) {
        self.state.lock().disk_flushes += 1;
        self.trace_event(TraceKind::DiskFlush { tag, applied });
    }

    /// Accounts one file-system operation (traced, not counted: fs ops
    /// are not disk ops — `BufferedFs` durability is modelled at the
    /// image level, not per block).
    pub fn note_fs_op(&self, tag: u64, op: &'static str, write: bool) {
        self.trace_event(TraceKind::FsOp { tag, op, write });
    }

    /// Accounts one network send.
    pub fn note_net_send(&self, tag: u64, bytes: u64) {
        self.state.lock().net_sends += 1;
        self.trace_event(TraceKind::NetSend { tag, bytes });
    }

    /// Accounts one network receive that dequeued a message.
    pub fn note_net_recv(&self, tag: u64, bytes: u64) {
        self.state.lock().net_recvs += 1;
        self.trace_event(TraceKind::NetRecv { tag, bytes });
    }

    /// Network sends consulted so far (net-fault-sweep probes use this
    /// to size the enumeration).
    pub fn net_msgs(&self) -> u64 {
        self.state.lock().net_msgs
    }

    /// Which of `n` buffered writes survive a crash, per the plan's
    /// [`TornMode`]. Pure function of the runtime seed and the mode, so
    /// replays tear identically.
    pub fn torn_keep(&self, n: usize) -> Vec<bool> {
        match self.faults.torn {
            None | Some(TornMode::KeepAll) => vec![true; n],
            Some(TornMode::KeepNone) => vec![false; n],
            Some(TornMode::Subset(tag)) => (0..n)
                .map(|i| {
                    let bits = splitmix64(
                        self.seed ^ tag ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                    );
                    bits & 1 == 1
                })
                .collect(),
        }
    }

    /// Spawns a virtual thread. It does not run until granted.
    pub fn spawn(
        self: &Arc<Self>,
        name: impl Into<String>,
        f: impl FnOnce() + Send + 'static,
    ) -> Tid {
        let name = name.into();
        // Spawn order determines thread ids (and hence the schedule's
        // choice indices), so spawns from within a step never commute.
        self.note_access(res::ALLOC, true);
        let tid = {
            let mut s = self.state.lock();
            s.threads.push(ThreadMeta {
                state: TState::Registered,
                name: name.clone(),
            });
            s.threads.len() - 1
        };
        self.trace_event_for(Some(tid), TraceKind::Spawn { name: name.clone() });
        let rt = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(name)
            .spawn(move || {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    CURRENT_TID.with(|c| c.set(Some(tid)));
                    rt.wait_for_grant(tid);
                    f();
                }));
                rt.thread_done(tid, result);
            })
            .expect("spawning a virtual thread");
        let mut handles = self.handles.lock();
        debug_assert_eq!(handles.len(), tid);
        handles.push(Some(handle));
        tid
    }

    /// The virtual thread id of the calling OS thread, if it is one.
    pub fn current_tid() -> Option<Tid> {
        CURRENT_TID.with(|c| c.get())
    }

    fn wait_for_grant(&self, tid: Tid) {
        let mut s = self.state.lock();
        loop {
            if s.poisoned {
                drop(s);
                std::panic::panic_any(CrashSignal);
            }
            if s.threads[tid].state == TState::Granted {
                return;
            }
            self.cv.wait(&mut s);
        }
    }

    fn thread_done(&self, tid: Tid, result: Result<(), Box<dyn std::any::Any + Send>>) {
        let kind = match result {
            Ok(()) => None,
            Err(payload) => Some(classify_panic(payload)),
        };
        let mut s = self.state.lock();
        s.threads[tid].state = match kind {
            None => TState::Done,
            Some(k) => TState::Panicked(k),
        };
        self.cv.notify_all();
    }

    /// One atomic step boundary: park until the controller grants the
    /// next step (or unwinds us with a crash).
    pub fn yield_point(&self) {
        let tid = match Self::current_tid() {
            Some(t) => t,
            // Controller-context calls (e.g. setup code running outside
            // any virtual thread) are not scheduled.
            None => return,
        };
        let mut s = self.state.lock();
        s.steps += 1;
        if s.steps > self.max_steps {
            drop(s);
            // Typed payload so the checker can classify the stall as a
            // wedged execution rather than a generic bug.
            std::panic::panic_any(StepBudgetSignal(self.max_steps));
        }
        s.threads[tid].state = TState::Paused;
        self.cv.notify_all();
        loop {
            if s.poisoned {
                drop(s);
                std::panic::panic_any(CrashSignal);
            }
            if s.threads[tid].state == TState::Granted {
                return;
            }
            self.cv.wait(&mut s);
        }
    }

    /// Deterministic randomness: depends only on the seed and how many
    /// random draws have happened, so replaying a schedule prefix replays
    /// the same values.
    pub fn rand_u64(&self) -> u64 {
        self.yield_point();
        self.note_access(res::RAND, true);
        let mut s = self.state.lock();
        s.rand_ctr += 1;
        splitmix64(self.seed ^ s.rand_ctr.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    // ------------------------------------------------------------------
    // Locks.
    // ------------------------------------------------------------------

    /// Allocates a model lock.
    pub fn new_lock(&self) -> LockId {
        // Allocation order determines the lock id.
        self.note_access(res::ALLOC, true);
        let mut s = self.state.lock();
        s.locks.push(LockSlot {
            held_by: None,
            blocks: 0,
        });
        s.locks.len() - 1
    }

    /// Acquires a model lock; one schedule point, then blocks (scheduler-
    /// visibly) until the lock is free.
    ///
    /// Callable from controller context (no virtual thread): the lock is
    /// taken immediately and must be free — with no concurrent virtual
    /// threads running, a held lock would be a self-deadlock.
    pub fn lock_acquire(&self, lock: LockId) {
        let tid = match Self::current_tid() {
            Some(t) => t,
            None => {
                let mut s = self.state.lock();
                assert!(
                    s.locks[lock].held_by.is_none(),
                    "controller-context acquire of a held lock (self-deadlock)"
                );
                s.locks[lock].held_by = Some(CONTROLLER_TID);
                s.lock_acquires += 1;
                return;
            }
        };
        self.yield_point();
        loop {
            // Noted per attempt so a blocked-then-woken retry carries
            // the lock in its own step footprint too.
            self.note_access(res::lock(lock), true);
            let mut s = self.state.lock();
            if s.locks[lock].held_by.is_none() {
                s.locks[lock].held_by = Some(tid);
                s.lock_acquires += 1;
                drop(s);
                self.trace_event(TraceKind::LockAcquire { lock });
                return;
            }
            assert_ne!(
                s.locks[lock].held_by,
                Some(tid),
                "model lock is not reentrant"
            );
            s.threads[tid].state = TState::Blocked(lock);
            s.lock_blocks += 1;
            s.locks[lock].blocks += 1;
            self.trace_event_for(Some(tid), TraceKind::LockBlock { lock });
            self.cv.notify_all();
            loop {
                if s.poisoned {
                    drop(s);
                    std::panic::panic_any(CrashSignal);
                }
                if s.threads[tid].state == TState::Granted {
                    break;
                }
                self.cv.wait(&mut s);
            }
            // Granted after a release: retry the acquire.
        }
    }

    /// Releases a model lock; one schedule point, then wakes waiters.
    pub fn lock_release(&self, lock: LockId) {
        let tid = match Self::current_tid() {
            Some(t) => t,
            None => {
                let mut s = self.state.lock();
                assert_eq!(
                    s.locks[lock].held_by,
                    Some(CONTROLLER_TID),
                    "controller-context release of a lock it does not hold"
                );
                s.locks[lock].held_by = None;
                return;
            }
        };
        self.yield_point();
        self.note_access(res::lock(lock), true);
        let mut s = self.state.lock();
        assert_eq!(
            s.locks[lock].held_by,
            Some(tid),
            "releasing a lock the thread does not hold"
        );
        s.locks[lock].held_by = None;
        for meta in s.threads.iter_mut() {
            if meta.state == TState::Blocked(lock) {
                meta.state = TState::Paused;
            }
        }
        self.trace_event_for(Some(tid), TraceKind::LockRelease { lock });
        self.cv.notify_all();
    }

    /// Whether `lock` is currently held (controller-side inspection).
    pub fn lock_held(&self, lock: LockId) -> bool {
        self.state.lock().locks[lock].held_by.is_some()
    }

    // ------------------------------------------------------------------
    // Controller interface.
    // ------------------------------------------------------------------

    /// Runnable thread ids: registered or paused (not blocked/done).
    pub fn runnable(&self) -> Vec<Tid> {
        let s = self.state.lock();
        s.threads
            .iter()
            .enumerate()
            .filter(|(_, m)| matches!(m.state, TState::Registered | TState::Paused))
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether every virtual thread has terminated (done or panicked).
    pub fn all_done(&self) -> bool {
        let s = self.state.lock();
        s.threads
            .iter()
            .all(|m| matches!(m.state, TState::Done | TState::Panicked(_)))
    }

    /// Whether some thread is blocked (used for deadlock detection:
    /// runnable empty + not all done = deadlock).
    pub fn any_blocked(&self) -> bool {
        let s = self.state.lock();
        s.threads
            .iter()
            .any(|m| matches!(m.state, TState::Blocked(_)))
    }

    /// Grants one step to `tid` and waits until the thread parks again,
    /// blocks, finishes, or panics.
    pub fn grant(&self, tid: Tid) -> StepResult {
        let mut s = self.state.lock();
        match s.threads[tid].state {
            TState::Registered | TState::Paused => {}
            ref other => panic!(
                "grant to non-runnable thread {tid} ({}) in state {:?}",
                s.threads[tid].name, other
            ),
        }
        self.trace_event_for(Some(tid), TraceKind::Grant { step: s.steps });
        s.threads[tid].state = TState::Granted;
        self.cv.notify_all();
        loop {
            match &s.threads[tid].state {
                TState::Granted => {
                    self.cv.wait(&mut s);
                }
                TState::Paused => return StepResult::Yielded,
                TState::Blocked(_) => return StepResult::Blocked,
                TState::Done => return StepResult::Finished,
                TState::Panicked(k) => return StepResult::Panicked(k.clone()),
                TState::Registered => unreachable!("granted thread regressed to Registered"),
            }
        }
    }

    /// Injects a crash: every live virtual thread unwinds with a
    /// [`CrashSignal`], lock state is wiped (in-memory locks do not
    /// survive a reboot), and the runtime is ready to schedule recovery
    /// threads.
    ///
    /// Must only be called from the controller between grants (no thread
    /// is running user code at that point).
    pub fn crash_all(&self) {
        {
            let mut s = self.state.lock();
            let step = s.steps;
            s.poisoned = true;
            self.trace_event_for(None, TraceKind::Crash { step });
            self.cv.notify_all();
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut h = self.handles.lock();
            h.iter_mut().filter_map(|slot| slot.take()).collect()
        };
        for h in handles {
            let _ = h.join();
        }
        let mut s = self.state.lock();
        s.poisoned = false;
        for slot in s.locks.iter_mut() {
            slot.held_by = None;
        }
        for meta in s.threads.iter_mut() {
            if !matches!(meta.state, TState::Done | TState::Panicked(_)) {
                meta.state = TState::Panicked(PanicKind::CrashUnwind);
            }
        }
    }

    /// Joins all finished threads (end of a crash-free execution).
    pub fn join_all(&self) {
        let handles: Vec<JoinHandle<()>> = {
            let mut h = self.handles.lock();
            h.iter_mut().filter_map(|slot| slot.take()).collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }

    /// Total steps scheduled so far.
    pub fn steps(&self) -> u64 {
        self.state.lock().steps
    }

    /// Snapshot of every scheduler-level counter (telemetry feed).
    pub fn sched_stats(&self) -> SchedStats {
        let s = self.state.lock();
        SchedStats {
            steps: s.steps,
            threads: s.threads.len() as u64,
            disk_ops: s.disk_ops,
            net_msgs: s.net_msgs,
            lock_acquires: s.lock_acquires,
            lock_blocks: s.lock_blocks,
            rand_draws: s.rand_ctr,
            disk_reads: s.disk_reads,
            disk_writes: s.disk_writes,
            disk_flushes: s.disk_flushes,
            net_sends: s.net_sends,
            net_recvs: s.net_recvs,
        }
    }

    /// Per-lock contention profile: `(res::lock(id), blocks)` for every
    /// model lock that ever parked a thread, in lock-id order. The
    /// entries sum to [`SchedStats::lock_blocks`] and obey the same
    /// determinism contract: a pure function of the schedule and fault
    /// plan, never of wall-clock time.
    pub fn lock_block_profile(&self) -> Vec<(u64, u64)> {
        let s = self.state.lock();
        s.locks
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.blocks > 0)
            .map(|(id, slot)| (res::lock(id), slot.blocks))
            .collect()
    }

    /// Panic kinds of all panicked threads (excluding crash unwinds).
    pub fn failures(&self) -> Vec<(String, PanicKind)> {
        let s = self.state.lock();
        s.threads
            .iter()
            .filter_map(|m| match &m.state {
                TState::Panicked(k) if *k != PanicKind::CrashUnwind => {
                    Some((m.name.clone(), k.clone()))
                }
                _ => None,
            })
            .collect()
    }
}

/// Classifies an unwind payload into a [`PanicKind`].
fn classify_panic(payload: Box<dyn std::any::Any + Send>) -> PanicKind {
    if payload.is::<CrashSignal>() {
        return PanicKind::CrashUnwind;
    }
    if let Some(sb) = payload.downcast_ref::<StepBudgetSignal>() {
        return PanicKind::StepBudget(sb.0);
    }
    match payload.downcast::<GhostPanic>() {
        Ok(gp) => PanicKind::Ghost(gp.0),
        Err(payload) => match payload.downcast::<UbSignal>() {
            Ok(ub) => PanicKind::Ub(ub.0),
            Err(payload) => {
                let msg = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                PanicKind::Other(msg)
            }
        },
    }
}

/// SplitMix64, the standard seed-expansion mix.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Runs all runnable threads round-robin to completion.
    fn run_round_robin(rt: &Arc<ModelRt>) {
        loop {
            let runnable = rt.runnable();
            if runnable.is_empty() {
                assert!(rt.all_done(), "deadlock in test scheduler");
                break;
            }
            for tid in runnable {
                let _ = rt.grant(tid);
            }
        }
        rt.join_all();
    }

    #[test]
    fn threads_interleave_at_yield_points() {
        let rt = ModelRt::new(0, 10_000);
        let log = Arc::new(Mutex::new(Vec::new()));
        for label in ["a", "b"] {
            let rt2 = Arc::clone(&rt);
            let log2 = Arc::clone(&log);
            rt.spawn(label, move || {
                for i in 0..3 {
                    rt2.yield_point();
                    log2.lock().push(format!("{label}{i}"));
                }
            });
        }
        run_round_robin(&rt);
        let log = log.lock();
        assert_eq!(log.len(), 6);
        // Round-robin grants strictly alternate the two threads.
        assert_eq!(*log, vec!["a0", "b0", "a1", "b1", "a2", "b2"]);
    }

    #[test]
    fn controller_chooses_the_interleaving() {
        // Granting only thread 1 until it finishes serializes it first.
        let rt = ModelRt::new(0, 10_000);
        let ctr = Arc::new(AtomicU64::new(0));
        let mut finish_order = Vec::new();
        for t in 0..2u64 {
            let rt2 = Arc::clone(&rt);
            let ctr2 = Arc::clone(&ctr);
            rt.spawn(format!("t{t}"), move || {
                rt2.yield_point();
                ctr2.fetch_add(t + 1, Ordering::SeqCst);
            });
        }
        // Drive tid 1 to completion first, then tid 0.
        for tid in [1usize, 0] {
            loop {
                match rt.grant(tid) {
                    StepResult::Finished => break,
                    StepResult::Yielded => continue,
                    other => panic!("unexpected {other:?}"),
                }
            }
            finish_order.push(tid);
        }
        rt.join_all();
        assert_eq!(finish_order, vec![1, 0]);
        assert_eq!(ctr.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn locks_block_and_wake() {
        let rt = ModelRt::new(0, 10_000);
        let lock = rt.new_lock();
        let order = Arc::new(Mutex::new(Vec::new()));
        for label in ["first", "second"] {
            let rt2 = Arc::clone(&rt);
            let order2 = Arc::clone(&order);
            rt.spawn(label, move || {
                rt2.lock_acquire(lock);
                order2.lock().push(format!("{label}-in"));
                rt2.yield_point();
                order2.lock().push(format!("{label}-out"));
                rt2.lock_release(lock);
            });
        }
        run_round_robin(&rt);
        let order = order.lock();
        // Critical sections never interleave.
        assert_eq!(order.len(), 4);
        let first_in = order[0].trim_end_matches("-in").to_string();
        assert_eq!(order[1], format!("{first_in}-out"));
    }

    #[test]
    fn blocked_thread_reported_not_runnable() {
        let rt = ModelRt::new(0, 10_000);
        let lock = rt.new_lock();
        let rt_a = Arc::clone(&rt);
        rt.spawn("holder", move || {
            rt_a.lock_acquire(lock);
            rt_a.yield_point(); // hold across a step
            rt_a.lock_release(lock);
        });
        let rt_b = Arc::clone(&rt);
        rt.spawn("waiter", move || {
            rt_b.lock_acquire(lock);
            rt_b.lock_release(lock);
        });
        // Let holder take the lock.
        assert_eq!(rt.grant(0), StepResult::Yielded); // acquire point
        assert_eq!(rt.grant(0), StepResult::Yielded); // inner yield: now holds
                                                      // Waiter reaches its acquire point, then blocks.
        assert_eq!(rt.grant(1), StepResult::Yielded);
        assert_eq!(rt.grant(1), StepResult::Blocked);
        assert!(!rt.runnable().contains(&1));
        // Holder releases; waiter becomes runnable and finishes.
        loop {
            if rt.grant(0) == StepResult::Finished {
                break;
            }
        }
        assert!(rt.runnable().contains(&1));
        loop {
            if rt.grant(1) == StepResult::Finished {
                break;
            }
        }
        rt.join_all();
    }

    #[test]
    fn crash_unwinds_all_threads() {
        let rt = ModelRt::new(0, 10_000);
        let progressed = Arc::new(AtomicU64::new(0));
        for t in 0..3 {
            let rt2 = Arc::clone(&rt);
            let p2 = Arc::clone(&progressed);
            rt.spawn(format!("t{t}"), move || {
                rt2.yield_point();
                p2.fetch_add(1, Ordering::SeqCst);
                rt2.yield_point();
                p2.fetch_add(100, Ordering::SeqCst);
            });
        }
        // One step each, then crash.
        for tid in 0..3 {
            assert_eq!(rt.grant(tid), StepResult::Yielded);
        }
        // Each thread is parked at its first yield_point, before any add.
        assert_eq!(progressed.load(Ordering::SeqCst), 0);
        rt.crash_all();
        // No thread performed its second increment.
        assert_eq!(progressed.load(Ordering::SeqCst), 0);
        assert!(rt.all_done());
        // Crash unwinds are not failures.
        assert!(rt.failures().is_empty());
    }

    #[test]
    fn crash_releases_locks() {
        let rt = ModelRt::new(0, 10_000);
        let lock = rt.new_lock();
        let rt2 = Arc::clone(&rt);
        rt.spawn("holder", move || {
            rt2.lock_acquire(lock);
            rt2.yield_point();
            rt2.lock_release(lock);
        });
        assert_eq!(rt.grant(0), StepResult::Yielded);
        assert_eq!(rt.grant(0), StepResult::Yielded);
        assert!(rt.lock_held(lock));
        rt.crash_all();
        assert!(!rt.lock_held(lock));
    }

    #[test]
    fn user_panic_classified_as_other() {
        let rt = ModelRt::new(0, 10_000);
        let rt2 = Arc::clone(&rt);
        rt.spawn("bug", move || {
            rt2.yield_point();
            panic!("boom");
        });
        assert_eq!(rt.grant(0), StepResult::Yielded);
        match rt.grant(0) {
            StepResult::Panicked(PanicKind::Other(msg)) => assert!(msg.contains("boom")),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(rt.failures().len(), 1);
        rt.join_all();
    }

    #[test]
    fn step_budget_exhaustion_is_classified_as_wedged() {
        let rt = ModelRt::new(0, 16);
        let rt2 = Arc::clone(&rt);
        rt.spawn("spin", move || loop {
            rt2.yield_point();
        });
        let mut wedged = false;
        for _ in 0..64 {
            match rt.grant(0) {
                StepResult::Yielded => {}
                StepResult::Panicked(PanicKind::StepBudget(budget)) => {
                    assert_eq!(budget, 16);
                    wedged = true;
                    break;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(wedged, "spinner never hit the step budget");
        rt.join_all();
    }

    #[test]
    fn sched_stats_count_every_primitive() {
        let rt = ModelRt::new(0, 10_000);
        let lock = rt.new_lock();
        for label in ["a", "b"] {
            let rt2 = Arc::clone(&rt);
            rt.spawn(label, move || {
                rt2.lock_acquire(lock);
                rt2.yield_point(); // hold across a step to force contention
                rt2.lock_release(lock);
                let _ = rt2.rand_u64();
            });
        }
        run_round_robin(&rt);
        let stats = rt.sched_stats();
        assert_eq!(stats.threads, 2);
        assert_eq!(stats.lock_acquires, 2);
        assert!(
            stats.lock_blocks >= 1,
            "round-robin over a held lock must park at least once: {stats:?}"
        );
        assert_eq!(stats.rand_draws, 2);
        assert_eq!(stats.steps, rt.steps());
        assert!(stats.steps > 0);
        assert_eq!(stats.disk_ops, 0);
        assert_eq!(stats.net_msgs, 0);
        assert_eq!(stats.disk_reads, 0);
        assert_eq!(stats.disk_writes, 0);
        assert_eq!(stats.disk_flushes, 0);
        assert_eq!(stats.net_sends, 0);
        assert_eq!(stats.net_recvs, 0);
    }

    #[test]
    fn lock_block_profile_attributes_contention_per_lock() {
        let rt = ModelRt::new(0, 10_000);
        let hot = rt.new_lock();
        let cold = rt.new_lock();
        for label in ["a", "b"] {
            let rt2 = Arc::clone(&rt);
            rt.spawn(label, move || {
                rt2.lock_acquire(hot);
                rt2.yield_point(); // hold across a step to force contention
                rt2.lock_release(hot);
            });
        }
        run_round_robin(&rt);
        let stats = rt.sched_stats();
        let profile = rt.lock_block_profile();
        assert!(stats.lock_blocks >= 1);
        assert_eq!(
            profile.iter().map(|(_, n)| n).sum::<u64>(),
            stats.lock_blocks,
            "per-lock counts must sum to the total: {profile:?}"
        );
        assert!(
            profile.iter().all(|(r, _)| *r != res::lock(cold)),
            "an uncontended lock must not appear: {profile:?}"
        );
        assert_eq!(profile[0].0, res::lock(hot));
    }

    #[test]
    fn model_op_hooks_feed_the_new_counters() {
        let rt = ModelRt::new(0, 10_000);
        rt.note_disk_read(0, 3);
        rt.note_disk_write(0, 3);
        rt.note_disk_write_through(0, 4);
        rt.note_disk_flush(0, 2);
        rt.note_net_send(1, 16);
        rt.note_net_send(1, 16);
        rt.note_net_recv(1, 16);
        let stats = rt.sched_stats();
        assert_eq!(stats.disk_reads, 1);
        assert_eq!(stats.disk_writes, 2, "write-through counts as a write");
        assert_eq!(stats.disk_flushes, 2, "write-through counts as a flush");
        assert_eq!(stats.net_sends, 2);
        assert_eq!(stats.net_recvs, 1);
    }

    #[test]
    fn tracing_is_a_pure_side_channel() {
        let run = |traced: bool| {
            let rt = ModelRt::new(5, 10_000);
            rt.set_tracing(traced);
            let lock = rt.new_lock();
            for label in ["a", "b"] {
                let rt2 = Arc::clone(&rt);
                rt.spawn(label, move || {
                    rt2.lock_acquire(lock);
                    rt2.yield_point();
                    rt2.lock_release(lock);
                });
            }
            run_round_robin(&rt);
            (rt.sched_stats(), rt.take_trace())
        };
        let (stats_off, trace_off) = run(false);
        let (stats_on, trace_on) = run(true);
        assert_eq!(stats_off, stats_on, "tracing must not perturb counters");
        assert!(trace_off.events.is_empty());
        assert!(!trace_on.events.is_empty());
        assert_eq!(trace_on.threads, vec!["a".to_string(), "b".to_string()]);
        // The hand-off: some acquire carries a causal edge to a release.
        let handoff = trace_on
            .events
            .iter()
            .any(|e| matches!(e.kind, TraceKind::LockAcquire { .. }) && e.happens_after.is_some());
        assert!(handoff, "no lock hand-off edge in {:#?}", trace_on.events);
    }

    #[test]
    fn crash_is_traced_with_its_step() {
        let rt = ModelRt::new(0, 10_000);
        rt.set_tracing(true);
        let rt2 = Arc::clone(&rt);
        rt.spawn("w", move || {
            rt2.yield_point();
            rt2.yield_point();
        });
        assert_eq!(rt.grant(0), StepResult::Yielded);
        rt.crash_all();
        let trace = rt.take_trace();
        let crash = trace
            .events
            .iter()
            .find(|e| matches!(e.kind, TraceKind::Crash { .. }))
            .expect("crash event recorded");
        assert_eq!(crash.tid, None, "crashes are controller events");
    }

    #[test]
    fn sched_stats_are_deterministic_per_schedule() {
        let run = || {
            let rt = ModelRt::new(3, 10_000);
            let lock = rt.new_lock();
            for t in 0..3 {
                let rt2 = Arc::clone(&rt);
                rt.spawn(format!("t{t}"), move || {
                    rt2.lock_acquire(lock);
                    rt2.yield_point();
                    rt2.lock_release(lock);
                });
            }
            run_round_robin(&rt);
            rt.sched_stats()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn rand_is_deterministic_per_schedule() {
        let draws = |seed: u64| -> Vec<u64> {
            let rt = ModelRt::new(seed, 10_000);
            let out = Arc::new(Mutex::new(Vec::new()));
            let rt2 = Arc::clone(&rt);
            let out2 = Arc::clone(&out);
            rt.spawn("r", move || {
                for _ in 0..4 {
                    out2.lock().push(rt2.rand_u64());
                }
            });
            run_round_robin(&rt);
            let v = out.lock().clone();
            v
        };
        assert_eq!(draws(7), draws(7));
        assert_ne!(draws(7), draws(8));
    }
}
