//! Per-execution causal trace recording.
//!
//! When tracing is enabled on a [`ModelRt`](crate::sched::ModelRt), every
//! scheduler-visible event — grants, lock transitions, disk and network
//! operations, fault injections, crash points, spec-visible ghost events —
//! is appended to a side buffer as a [`TraceEvent`]. The stream is a pure
//! observer: recording changes no counters, no schedules, no fault
//! indices, so a traced re-run of an execution is step-for-step identical
//! to the untraced original.
//!
//! Causality is lamport-style: events on one thread are ordered by their
//! global sequence number (the virtual clock), and cross-thread edges are
//! attached where the model runtime knows two steps synchronise —
//! a lock hand-off (release → next acquire by another thread) and a
//! network message (send → the receive that dequeues it). The checker's
//! explain renderer and the Chrome-trace exporter both consume this
//! structure.

use crate::fault::NetFault;
use crate::sched::Tid;
use std::collections::{BTreeMap, VecDeque};

/// Position in the global trace order (the virtual clock).
pub type Seq = u64;

/// Hard cap on recorded events per execution, a memory backstop for
/// wedged or runaway executions (`max_steps` already bounds the schedule,
/// but one step can emit several events).
pub const MAX_TRACE_EVENTS: usize = 1 << 20;

/// What happened at one traced instant.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceKind {
    /// A virtual thread was registered (its id is the event's `tid`).
    Spawn {
        /// Human name given at spawn.
        name: String,
    },
    /// The controller granted this thread its `step`-th scheduler step.
    Grant {
        /// Global step count at grant time.
        step: u64,
    },
    /// A model lock was acquired.
    LockAcquire {
        /// Lock id.
        lock: usize,
    },
    /// The thread found the lock held and parked.
    LockBlock {
        /// Lock id.
        lock: usize,
    },
    /// A model lock was released (waiters wake).
    LockRelease {
        /// Lock id.
        lock: usize,
    },
    /// A disk block read.
    DiskRead {
        /// Instance tag of the disk model.
        tag: u64,
        /// Block address (two-disk models fold the disk bit in).
        block: u64,
    },
    /// A buffered or direct disk block write.
    DiskWrite {
        /// Instance tag of the disk model.
        tag: u64,
        /// Block address.
        block: u64,
    },
    /// A write-through (write + immediate durability, a barrier).
    DiskWriteThrough {
        /// Instance tag of the disk model.
        tag: u64,
        /// Block address.
        block: u64,
    },
    /// A flush barrier: buffered writes became durable.
    DiskFlush {
        /// Instance tag of the disk model.
        tag: u64,
        /// Number of buffered writes applied by the barrier.
        applied: u64,
    },
    /// Crash with a torn write buffer: which buffered block writes
    /// survived and which were dropped (the unflushed-at-crash set).
    CrashTorn {
        /// Instance tag of the disk model.
        tag: u64,
        /// Block addresses whose buffered writes survived the tear.
        kept: Vec<u64>,
        /// Block addresses whose buffered writes were lost.
        dropped: Vec<u64>,
    },
    /// A file-system operation (model fs and buffered fs).
    FsOp {
        /// Instance tag of the file-system model.
        tag: u64,
        /// Operation name (`create`, `append`, `fsync`, …).
        op: &'static str,
        /// Whether the operation mutates the file system.
        write: bool,
    },
    /// A network send.
    NetSend {
        /// Instance tag of the channel.
        tag: u64,
        /// Payload size.
        bytes: u64,
    },
    /// A network receive that dequeued a message.
    NetRecv {
        /// Instance tag of the channel.
        tag: u64,
        /// Payload size.
        bytes: u64,
    },
    /// The fault plan injected a transient I/O error on this disk op.
    FaultDiskTransient {
        /// Global disk-op index that faulted.
        op: u64,
    },
    /// The fault plan injected a network fault on this send.
    FaultNet {
        /// Global send index that faulted.
        msg: u64,
        /// The injected fault.
        fault: NetFault,
    },
    /// A whole disk was failed permanently (two-disk model).
    FaultDiskFail {
        /// Which disk (1 or 2).
        disk: u8,
    },
    /// The controller injected a crash: all threads unwound here.
    Crash {
        /// Global step count at the crash point.
        step: u64,
    },
    /// A spec-visible ghost event (the checker records these per grant).
    Spec {
        /// Rendered ghost event.
        event: String,
    },
}

impl TraceKind {
    /// Coarse category tag (the Chrome-trace `cat` field).
    pub fn category(&self) -> &'static str {
        match self {
            TraceKind::Spawn { .. } | TraceKind::Grant { .. } => "sched",
            TraceKind::LockAcquire { .. }
            | TraceKind::LockBlock { .. }
            | TraceKind::LockRelease { .. } => "lock",
            TraceKind::DiskRead { .. }
            | TraceKind::DiskWrite { .. }
            | TraceKind::DiskWriteThrough { .. }
            | TraceKind::DiskFlush { .. } => "disk",
            TraceKind::FsOp { .. } => "fs",
            TraceKind::NetSend { .. } | TraceKind::NetRecv { .. } => "net",
            TraceKind::FaultDiskTransient { .. }
            | TraceKind::FaultNet { .. }
            | TraceKind::FaultDiskFail { .. } => "fault",
            TraceKind::Crash { .. } | TraceKind::CrashTorn { .. } => "crash",
            TraceKind::Spec { .. } => "spec",
        }
    }

    /// Short human-readable label (explain timelines, Chrome `name`).
    pub fn label(&self) -> String {
        match self {
            TraceKind::Spawn { name } => format!("spawn {name}"),
            TraceKind::Grant { step } => format!("step {step}"),
            TraceKind::LockAcquire { lock } => format!("lock {lock} acquired"),
            TraceKind::LockBlock { lock } => format!("lock {lock} busy, parked"),
            TraceKind::LockRelease { lock } => format!("lock {lock} released"),
            TraceKind::DiskRead { block, .. } => format!("disk read b{block}"),
            TraceKind::DiskWrite { block, .. } => format!("disk write b{block}"),
            TraceKind::DiskWriteThrough { block, .. } => {
                format!("disk write-through b{block}")
            }
            TraceKind::DiskFlush { applied, .. } => format!("disk flush ({applied} applied)"),
            TraceKind::CrashTorn { kept, dropped, .. } => {
                format!("torn buffer: kept b{kept:?}, lost b{dropped:?}")
            }
            TraceKind::FsOp { op, .. } => format!("fs {op}"),
            TraceKind::NetSend { bytes, .. } => format!("net send {bytes}B"),
            TraceKind::NetRecv { bytes, .. } => format!("net recv {bytes}B"),
            TraceKind::FaultDiskTransient { op } => {
                format!("FAULT: transient I/O error (disk op {op})")
            }
            TraceKind::FaultNet { msg, fault } => {
                format!("FAULT: {fault:?} (net send {msg})")
            }
            TraceKind::FaultDiskFail { disk } => format!("FAULT: disk {disk} failed"),
            TraceKind::Crash { step } => format!("CRASH at step {step}"),
            TraceKind::Spec { event } => format!("spec {event}"),
        }
    }
}

/// One traced instant: global position, acting thread, payload, and an
/// optional cross-thread causal edge (the `seq` of the event this one
/// synchronises with — a lock release or a matching network send).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Global trace order (the virtual clock; dense from 0).
    pub seq: Seq,
    /// Acting virtual thread; `None` for controller actions (crashes).
    pub tid: Option<Tid>,
    /// What happened.
    pub kind: TraceKind,
    /// Cross-thread causal predecessor, when the runtime knows one.
    pub happens_after: Option<Seq>,
}

/// A complete per-execution trace: the event stream plus the thread-name
/// table events index into.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExecTrace {
    /// Events in global (virtual-clock) order.
    pub events: Vec<TraceEvent>,
    /// Thread names by tid (spawn order).
    pub threads: Vec<String>,
    /// Whether the recorder hit [`MAX_TRACE_EVENTS`] and dropped the tail.
    pub truncated: bool,
}

/// The recording buffer behind [`ModelRt`](crate::sched::ModelRt):
/// assigns sequence numbers and computes cross-thread causal edges as
/// events arrive.
#[derive(Default)]
pub struct TraceBuf {
    events: Vec<TraceEvent>,
    /// Last release per lock: (releasing tid, seq).
    last_release: BTreeMap<usize, (Option<Tid>, Seq)>,
    /// FIFO of unmatched send seqs per channel tag.
    sends: BTreeMap<u64, VecDeque<Seq>>,
    truncated: bool,
}

impl TraceBuf {
    /// Appends one event, assigning its seq and causal edge.
    pub fn push(&mut self, tid: Option<Tid>, kind: TraceKind) {
        if self.events.len() >= MAX_TRACE_EVENTS {
            self.truncated = true;
            return;
        }
        let seq = self.events.len() as Seq;
        let happens_after = match &kind {
            // A lock hand-off: the acquire follows the latest release by
            // another thread (same-thread release→acquire is program
            // order already).
            TraceKind::LockAcquire { lock } => self
                .last_release
                .get(lock)
                .filter(|(rel_tid, _)| *rel_tid != tid)
                .map(|(_, s)| *s),
            // A message arrival follows the send that enqueued it
            // (FIFO-matched; fault-reordered deliveries are approximate).
            TraceKind::NetRecv { tag, .. } => self.sends.get_mut(tag).and_then(|q| q.pop_front()),
            _ => None,
        };
        match &kind {
            TraceKind::LockRelease { lock } => {
                self.last_release.insert(*lock, (tid, seq));
            }
            TraceKind::NetSend { tag, .. } => {
                self.sends.entry(*tag).or_default().push_back(seq);
            }
            _ => {}
        }
        self.events.push(TraceEvent {
            seq,
            tid,
            kind,
            happens_after,
        });
    }

    /// Whether any event has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drains the buffer into an [`ExecTrace`] with the given thread
    /// names, resetting all matching state.
    pub fn take(&mut self, threads: Vec<String>) -> ExecTrace {
        let events = std::mem::take(&mut self.events);
        let truncated = std::mem::replace(&mut self.truncated, false);
        self.last_release.clear();
        self.sends.clear();
        ExecTrace {
            events,
            threads,
            truncated,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_handoff_edge_links_release_to_next_acquire() {
        let mut buf = TraceBuf::default();
        buf.push(Some(0), TraceKind::LockAcquire { lock: 3 });
        buf.push(Some(0), TraceKind::LockRelease { lock: 3 });
        buf.push(Some(1), TraceKind::LockAcquire { lock: 3 });
        let t = buf.take(vec!["a".into(), "b".into()]);
        assert_eq!(t.events[0].happens_after, None, "no prior release");
        assert_eq!(
            t.events[2].happens_after,
            Some(1),
            "acquire by t1 follows release at seq 1"
        );
    }

    #[test]
    fn same_thread_reacquire_carries_no_edge() {
        let mut buf = TraceBuf::default();
        buf.push(Some(0), TraceKind::LockRelease { lock: 0 });
        buf.push(Some(0), TraceKind::LockAcquire { lock: 0 });
        let t = buf.take(vec!["a".into()]);
        assert_eq!(t.events[1].happens_after, None);
    }

    #[test]
    fn net_edges_match_sends_to_recvs_fifo() {
        let mut buf = TraceBuf::default();
        buf.push(Some(0), TraceKind::NetSend { tag: 9, bytes: 4 });
        buf.push(Some(0), TraceKind::NetSend { tag: 9, bytes: 5 });
        buf.push(Some(1), TraceKind::NetRecv { tag: 9, bytes: 4 });
        buf.push(Some(1), TraceKind::NetRecv { tag: 9, bytes: 5 });
        buf.push(Some(1), TraceKind::NetRecv { tag: 9, bytes: 0 });
        let t = buf.take(vec!["s".into(), "r".into()]);
        assert_eq!(t.events[2].happens_after, Some(0));
        assert_eq!(t.events[3].happens_after, Some(1));
        assert_eq!(t.events[4].happens_after, None, "no unmatched send left");
    }

    #[test]
    fn take_resets_state_and_reports_truncation_flag() {
        let mut buf = TraceBuf::default();
        buf.push(None, TraceKind::Crash { step: 7 });
        let t = buf.take(vec![]);
        assert_eq!(t.events.len(), 1);
        assert!(!t.truncated);
        assert!(buf.is_empty());
        let t2 = buf.take(vec![]);
        assert!(t2.events.is_empty());
    }

    #[test]
    fn labels_and_categories_cover_every_kind() {
        let kinds = [
            TraceKind::Spawn { name: "w".into() },
            TraceKind::Grant { step: 1 },
            TraceKind::LockAcquire { lock: 0 },
            TraceKind::LockBlock { lock: 0 },
            TraceKind::LockRelease { lock: 0 },
            TraceKind::DiskRead { tag: 0, block: 1 },
            TraceKind::DiskWrite { tag: 0, block: 1 },
            TraceKind::DiskWriteThrough { tag: 0, block: 1 },
            TraceKind::DiskFlush { tag: 0, applied: 2 },
            TraceKind::CrashTorn {
                tag: 0,
                kept: vec![1],
                dropped: vec![2],
            },
            TraceKind::FsOp {
                tag: 0,
                op: "append",
                write: true,
            },
            TraceKind::NetSend { tag: 0, bytes: 3 },
            TraceKind::NetRecv { tag: 0, bytes: 3 },
            TraceKind::FaultDiskTransient { op: 5 },
            TraceKind::FaultNet {
                msg: 2,
                fault: NetFault::Drop,
            },
            TraceKind::FaultDiskFail { disk: 1 },
            TraceKind::Crash { step: 9 },
            TraceKind::Spec {
                event: "Invoke".into(),
            },
        ];
        for k in kinds {
            assert!(!k.label().is_empty());
            assert!(!k.category().is_empty());
        }
    }
}
