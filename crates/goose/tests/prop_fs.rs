//! Differential property tests for the file systems: random operation
//! sequences applied to [`ModelFs`], [`NativeFs`], and a tiny reference
//! implementation must agree on every result; [`BufferedFs`] must agree
//! with a two-image reference including fsync/dir_sync/crash.

use goose_rt::fs::{BufferedFs, FileSys, FsError, ModelFs, NativeFs};
use goose_rt::sched::ModelRt;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

const DIRS: [&str; 3] = ["a", "b", "c"];
const NAMES: [&str; 4] = ["w", "x", "y", "z"];

/// A random FS operation over small name/dir spaces.
#[derive(Debug, Clone)]
enum FsAction {
    Create(usize, usize),
    AppendLast(Vec<u8>),
    Delete(usize, usize),
    Link(usize, usize, usize, usize),
    List(usize),
    ReadWhole(usize, usize),
    CloseLast,
    Crash,
}

fn arb_fs_action() -> impl Strategy<Value = FsAction> {
    prop_oneof![
        (0..3usize, 0..4usize).prop_map(|(d, n)| FsAction::Create(d, n)),
        proptest::collection::vec(any::<u8>(), 0..6).prop_map(FsAction::AppendLast),
        (0..3usize, 0..4usize).prop_map(|(d, n)| FsAction::Delete(d, n)),
        (0..3usize, 0..4usize, 0..3usize, 0..4usize)
            .prop_map(|(a, b, c, d)| FsAction::Link(a, b, c, d)),
        (0..3usize).prop_map(FsAction::List),
        (0..3usize, 0..4usize).prop_map(|(d, n)| FsAction::ReadWhole(d, n)),
        Just(FsAction::CloseLast),
        Just(FsAction::Crash),
    ]
}

/// A minimal reference FS (no fds: appends are tracked against the last
/// created file's identity).
#[derive(Default, Clone)]
struct RefFs {
    /// dir → name → inode id.
    dirs: BTreeMap<usize, BTreeMap<String, u64>>,
    inodes: BTreeMap<u64, Vec<u8>>,
    next: u64,
    /// The "open" append target, if any (inode id).
    open: Option<u64>,
}

impl RefFs {
    fn create(&mut self, d: usize, n: &str) -> bool {
        let dir = self.dirs.entry(d).or_default();
        if dir.contains_key(n) {
            return false;
        }
        let ino = self.next;
        self.next += 1;
        dir.insert(n.to_string(), ino);
        self.inodes.insert(ino, Vec::new());
        self.open = Some(ino);
        true
    }

    fn append(&mut self, data: &[u8]) -> bool {
        match self.open {
            Some(ino) => {
                // POSIX: the open descriptor keeps the inode alive even
                // after its last link is unlinked.
                self.inodes
                    .get_mut(&ino)
                    .expect("open fd keeps inode alive")
                    .extend_from_slice(data);
                true
            }
            None => false,
        }
    }

    fn delete(&mut self, d: usize, n: &str) -> bool {
        let Some(dir) = self.dirs.get_mut(&d) else {
            return false;
        };
        let Some(ino) = dir.remove(n) else {
            return false;
        };
        let linked = self.dirs.values().any(|t| t.values().any(|i| *i == ino));
        if !linked && self.open != Some(ino) {
            self.inodes.remove(&ino);
        }
        true
    }

    fn link(&mut self, sd: usize, sn: &str, dd: usize, dn: &str) -> Option<bool> {
        let ino = *self.dirs.get(&sd)?.get(sn)?;
        let dir = self.dirs.entry(dd).or_default();
        if dir.contains_key(dn) {
            return Some(false);
        }
        dir.insert(dn.to_string(), ino);
        Some(true)
    }

    fn list(&self, d: usize) -> Vec<String> {
        self.dirs
            .get(&d)
            .map(|t| t.keys().cloned().collect())
            .unwrap_or_default()
    }

    fn read(&self, d: usize, n: &str) -> Option<Vec<u8>> {
        let ino = self.dirs.get(&d)?.get(n)?;
        self.inodes.get(ino).cloned()
    }

    fn crash(&mut self) {
        self.open = None;
    }
}

/// Applies the script to a real FS and the reference, asserting
/// agreement at every step. `pre_crash` runs before each crash action
/// (the buffered FS syncs there so its semantics collapse to the plain
/// ones). Returns Ok(()) or the first divergence.
fn run_differential(
    fs: &dyn FileSys,
    script: &[FsAction],
    pre_crash: impl Fn(),
) -> Result<(), TestCaseError> {
    let mut reference = RefFs::default();
    let handles: Vec<_> = DIRS.iter().map(|d| fs.resolve(d).unwrap()).collect();
    let mut open_fd: Option<goose_rt::fs::Fd> = None;

    for action in script {
        match action {
            FsAction::Create(d, n) => {
                let got = fs.create(handles[*d], NAMES[*n]).unwrap();
                let expect = reference.create(*d, NAMES[*n]);
                prop_assert_eq!(got.is_some(), expect, "create {:?}", action);
                if let Some(fd) = got {
                    if let Some(old) = open_fd.take() {
                        let _ = fs.close(old);
                    }
                    open_fd = Some(fd);
                }
            }
            FsAction::AppendLast(data) => {
                let expect = reference.append(data);
                match open_fd {
                    Some(fd) => {
                        prop_assert!(expect, "reference lost track of the open fd");
                        fs.append(fd, data).unwrap();
                    }
                    None => prop_assert!(!expect),
                }
            }
            FsAction::Delete(d, n) => {
                let got = fs.delete(handles[*d], NAMES[*n]).is_ok();
                let expect = reference.delete(*d, NAMES[*n]);
                prop_assert_eq!(got, expect, "delete {:?}", action);
            }
            FsAction::Link(sd, sn, dd, dn) => {
                let got = fs.link(handles[*sd], NAMES[*sn], handles[*dd], NAMES[*dn]);
                let expect = reference.link(*sd, NAMES[*sn], *dd, NAMES[*dn]);
                match expect {
                    Some(b) => prop_assert_eq!(got.unwrap(), b, "link {:?}", action),
                    None => prop_assert_eq!(got, Err(FsError::NotFound)),
                }
            }
            FsAction::List(d) => {
                prop_assert_eq!(fs.list(handles[*d]).unwrap(), reference.list(*d));
            }
            FsAction::ReadWhole(d, n) => {
                let got = fs.read_file(handles[*d], NAMES[*n], 3).ok();
                prop_assert_eq!(got, reference.read(*d, NAMES[*n]), "read {:?}", action);
            }
            FsAction::CloseLast => {
                if let Some(fd) = open_fd.take() {
                    fs.close(fd).unwrap();
                }
                if let Some(ino) = reference.open.take() {
                    let linked = reference
                        .dirs
                        .values()
                        .any(|t| t.values().any(|i| *i == ino));
                    if !linked {
                        reference.inodes.remove(&ino);
                    }
                }
            }
            FsAction::Crash => {
                pre_crash();
                fs.crash();
                reference.crash();
                open_fd = None;
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn model_fs_matches_reference(script in proptest::collection::vec(arb_fs_action(), 0..40)) {
        let rt = ModelRt::new(0, 10_000_000);
        let fs = ModelFs::new(rt, &DIRS);
        run_differential(&*fs, &script, || {})?;
    }

    #[test]
    fn native_fs_matches_reference(script in proptest::collection::vec(arb_fs_action(), 0..40)) {
        let fs = NativeFs::new(&DIRS);
        run_differential(&*fs, &script, || {})?;
    }

    /// With `sync_all` before every crash, the buffered FS's semantics
    /// collapse to the plain model's — it must match the same reference.
    #[test]
    fn buffered_fs_with_sync_all_matches_reference(
        script in proptest::collection::vec(arb_fs_action(), 0..30)
    ) {
        let rt = ModelRt::new(0, 10_000_000);
        let fs = BufferedFs::new(rt, &DIRS);
        let fs2 = Arc::clone(&fs);
        run_differential(&*fs, &script, move || fs2.sync_all().unwrap())?;
    }

    /// Without any sync at all, a buffered-FS crash erases everything
    /// back to the initial (empty, durable) layout.
    #[test]
    fn buffered_fs_unsynced_crash_erases_everything(
        script in proptest::collection::vec(arb_fs_action(), 0..20)
    ) {
        let rt = ModelRt::new(0, 10_000_000);
        let fs = BufferedFs::new(rt, &DIRS);
        let handles: Vec<_> = DIRS.iter().map(|d| fs.resolve(d).unwrap()).collect();
        // Apply the script ignoring results and never syncing (skip the
        // script's own crashes to keep "everything" unsynced).
        let mut fd = None;
        for action in &script {
            match action {
                FsAction::Create(d, n) => {
                    if let Ok(Some(f)) = fs.create(handles[*d], NAMES[*n]) {
                        fd = Some(f);
                    }
                }
                FsAction::AppendLast(data) => {
                    if let Some(f) = fd {
                        let _ = fs.append(f, data);
                    }
                }
                FsAction::Delete(d, n) => {
                    let _ = fs.delete(handles[*d], NAMES[*n]);
                }
                FsAction::Link(sd, sn, dd, dn) => {
                    let _ = fs.link(handles[*sd], NAMES[*sn], handles[*dd], NAMES[*dn]);
                }
                _ => {}
            }
        }
        fs.crash();
        for (i, h) in handles.iter().enumerate() {
            prop_assert!(
                fs.list(*h).unwrap().is_empty(),
                "dir {} survived an unsynced crash",
                DIRS[i]
            );
        }
    }
}
