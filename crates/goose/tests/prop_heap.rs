//! Property tests for the Go heap model: race-free (serialized) random
//! scripts never trigger UB and track a reference; slices view their
//! backing arrays consistently.

use goose_rt::heap::{HVal, Heap};
use goose_rt::sched::ModelRt;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum HeapAction {
    Alloc(u64),
    Store(usize, u64),
    Load(usize),
    MapInsert(String, u64),
    MapGet(String),
    MapDelete(String),
    MapIterCount,
}

fn arb_action() -> impl Strategy<Value = HeapAction> {
    prop_oneof![
        (0u64..100).prop_map(HeapAction::Alloc),
        (0usize..8, 0u64..100).prop_map(|(i, v)| HeapAction::Store(i, v)),
        (0usize..8).prop_map(HeapAction::Load),
        ("[a-c]{1}", 0u64..100).prop_map(|(k, v)| HeapAction::MapInsert(k, v)),
        "[a-c]{1}".prop_map(HeapAction::MapGet),
        "[a-c]{1}".prop_map(HeapAction::MapDelete),
        Just(HeapAction::MapIterCount),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Serialized scripts run in controller context (no concurrency) can
    /// never be racy, so every action succeeds and values track a
    /// reference model.
    #[test]
    fn serialized_scripts_track_reference(script in proptest::collection::vec(arb_action(), 0..40)) {
        let rt = ModelRt::new(0, 10_000_000);
        let heap = Heap::new(Arc::clone(&rt));
        let map = heap.new_map();

        let mut cells = Vec::new();
        let mut ref_cells: Vec<u64> = Vec::new();
        let mut ref_map: BTreeMap<String, u64> = BTreeMap::new();

        for action in &script {
            match action {
                HeapAction::Alloc(v) => {
                    cells.push(heap.alloc(HVal::U64(*v)));
                    ref_cells.push(*v);
                }
                HeapAction::Store(i, v) => {
                    if !cells.is_empty() {
                        let idx = i % cells.len();
                        heap.store(cells[idx], HVal::U64(*v));
                        ref_cells[idx] = *v;
                    }
                }
                HeapAction::Load(i) => {
                    if !cells.is_empty() {
                        let idx = i % cells.len();
                        prop_assert_eq!(heap.load(cells[idx]).as_u64(), ref_cells[idx]);
                    }
                }
                HeapAction::MapInsert(k, v) => {
                    heap.map_insert(map, k, HVal::U64(*v));
                    ref_map.insert(k.clone(), *v);
                }
                HeapAction::MapGet(k) => {
                    let got = heap.map_get(map, k).map(|v| v.as_u64());
                    prop_assert_eq!(got, ref_map.get(k).copied());
                }
                HeapAction::MapDelete(k) => {
                    heap.map_delete(map, k);
                    ref_map.remove(k);
                }
                HeapAction::MapIterCount => {
                    let mut n = 0;
                    heap.map_iter(map, |_, _| n += 1);
                    prop_assert_eq!(n, ref_map.len());
                }
            }
        }
    }

    /// Sub-slices share their backing array: writes through one view are
    /// visible through overlapping views at the right offsets.
    #[test]
    fn sub_slices_share_backing(len in 4usize..32, cut in 1usize..4, byte in any::<u8>()) {
        let rt = ModelRt::new(0, 10_000_000);
        let heap = Heap::new(rt);
        let data: Vec<u8> = (0..len as u8).collect();
        let s = heap.new_byte_slice(&data);
        let cut = cut.min(len - 1);
        let tail = heap.sub_slice(s, cut as u64, len as u64);
        // Write through the tail view.
        heap.slice_write(tail, 0, &[byte]);
        // Visible through the root view at offset `cut`.
        let seen = heap.slice_read(s, cut as u64, 1);
        prop_assert_eq!(seen, vec![byte]);
        // Bytes before the cut are untouched.
        if cut > 0 {
            let before = heap.slice_read(s, 0, cut as u64);
            prop_assert_eq!(before, data[..cut].to_vec());
        }
    }

    /// Lengths and bounds: reads clamp to the slice, never beyond.
    #[test]
    fn slice_reads_clamp(len in 1usize..32, off in 0u64..40, n in 0u64..40) {
        let rt = ModelRt::new(0, 10_000_000);
        let heap = Heap::new(rt);
        let data = vec![7u8; len];
        let s = heap.new_byte_slice(&data);
        prop_assume!(off <= len as u64); // beyond-length offsets are UB by design
        let got = heap.slice_read(s, off, n);
        let expect = ((len as u64).saturating_sub(off)).min(n) as usize;
        prop_assert_eq!(got.len(), expect);
    }
}
