//! Checker harness for the node KV store.

use crate::spec::{bucket_of, KvSpec};
use crate::store::{KvMutant, NodeKv};
use goose_rt::fault::FaultSurface;
use perennial_checker::{Execution, Harness, ScenarioSet, ThreadBody, World};
use perennial_disk::buffered::BufferedDisk;
use std::sync::Arc;

/// Workload shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvWorkload {
    /// One putter (smallest crash-sweep scenario).
    SinglePut,
    /// Two putters on different buckets plus a reader (parallel paths).
    CrossBucket,
    /// Two putters racing on the *same* bucket plus a reader of a
    /// co-bucketed key (bucket-lock contention).
    SameBucket,
    /// Put, delete, and get interleaving on one key.
    PutDeleteGet,
}

/// KV harness.
pub struct KvHarness {
    /// Which mutant.
    pub mutant: KvMutant,
    /// Which workload.
    pub workload: KvWorkload,
    /// Run a post-recovery verification round.
    pub after_round: bool,
}

impl Default for KvHarness {
    fn default() -> Self {
        KvHarness {
            mutant: KvMutant::None,
            workload: KvWorkload::CrossBucket,
            after_round: true,
        }
    }
}

/// The crate's expected-pass scenarios (correct system, every workload),
/// under the registry names `"kv/..."`.
pub fn scenarios() -> ScenarioSet {
    let mut set = ScenarioSet::new();
    for (name, desc, workload) in [
        (
            "kv/single-put",
            "one putter (smallest crash sweep)",
            KvWorkload::SinglePut,
        ),
        (
            "kv/cross-bucket",
            "putters on two buckets plus a reader",
            KvWorkload::CrossBucket,
        ),
        (
            "kv/same-bucket",
            "putters racing on one bucket lock",
            KvWorkload::SameBucket,
        ),
        (
            "kv/put-delete-get",
            "put/delete/get interleaving on one key",
            KvWorkload::PutDeleteGet,
        ),
    ] {
        set.add(
            name,
            desc,
            KvHarness {
                workload,
                ..KvHarness::default()
            },
        );
    }
    set
}

/// The crate's expected-fail scenarios (mutants the checker must catch),
/// under the registry names `"kv/mutant/..."`.
pub fn mutant_scenarios() -> ScenarioSet {
    let mut set = ScenarioSet::new();
    for (name, desc, mutant, workload) in [
        (
            "kv/mutant/in-place",
            "in-place bucket update",
            KvMutant::InPlace,
            KvWorkload::SinglePut,
        ),
        (
            "kv/mutant/flip-first",
            "flip pointer before data write",
            KvMutant::FlipFirst,
            KvWorkload::SinglePut,
        ),
        (
            "kv/mutant/no-lock",
            "no bucket lock",
            KvMutant::NoLock,
            KvWorkload::SameBucket,
        ),
    ] {
        set.add(
            name,
            desc,
            KvHarness {
                mutant,
                workload,
                ..KvHarness::default()
            },
        );
    }
    set
}

struct KvExec {
    sys: Arc<NodeKv>,
    workload: KvWorkload,
    after_round: bool,
}

/// Two keys guaranteed to share a bucket, and one in a different bucket.
fn sample_keys() -> (u64, u64, u64) {
    let k0 = 0u64;
    let b0 = bucket_of(k0);
    let same = (1..10_000)
        .find(|k| bucket_of(*k) == b0)
        .expect("co-bucket key");
    let other = (1..10_000)
        .find(|k| bucket_of(*k) != b0)
        .expect("cross-bucket key");
    (k0, same, other)
}

impl Execution<KvSpec> for KvExec {
    fn boot(&mut self, w: &World<KvSpec>) {
        self.sys.boot(w);
    }

    fn threads(&mut self, w: &World<KvSpec>) -> Vec<(String, ThreadBody)> {
        let (k0, same, other) = sample_keys();
        let mut out: Vec<(String, ThreadBody)> = Vec::new();
        match self.workload {
            KvWorkload::SinglePut => {
                let sys = Arc::clone(&self.sys);
                let w2 = w.clone();
                out.push(("put".into(), Box::new(move || sys.put(&w2, k0, 100))));
            }
            KvWorkload::CrossBucket => {
                let sys = Arc::clone(&self.sys);
                let w2 = w.clone();
                out.push(("put-a".into(), Box::new(move || sys.put(&w2, k0, 1))));
                let sys = Arc::clone(&self.sys);
                let w2 = w.clone();
                out.push(("put-b".into(), Box::new(move || sys.put(&w2, other, 2))));
                let sys = Arc::clone(&self.sys);
                let w2 = w.clone();
                out.push((
                    "get".into(),
                    Box::new(move || {
                        let v = sys.get(&w2, k0);
                        assert!(v.is_none() || v == Some(1));
                    }),
                ));
            }
            KvWorkload::SameBucket => {
                let sys = Arc::clone(&self.sys);
                let w2 = w.clone();
                out.push(("put-x".into(), Box::new(move || sys.put(&w2, k0, 1))));
                let sys = Arc::clone(&self.sys);
                let w2 = w.clone();
                out.push(("put-y".into(), Box::new(move || sys.put(&w2, same, 2))));
                let sys = Arc::clone(&self.sys);
                let w2 = w.clone();
                out.push((
                    "get".into(),
                    Box::new(move || {
                        let v = sys.get(&w2, same);
                        assert!(v.is_none() || v == Some(2));
                    }),
                ));
            }
            KvWorkload::PutDeleteGet => {
                let sys = Arc::clone(&self.sys);
                let w2 = w.clone();
                out.push(("put".into(), Box::new(move || sys.put(&w2, k0, 9))));
                let sys = Arc::clone(&self.sys);
                let w2 = w.clone();
                out.push((
                    "delete".into(),
                    Box::new(move || {
                        let old = sys.delete(&w2, k0);
                        assert!(old.is_none() || old == Some(9));
                    }),
                ));
                let sys = Arc::clone(&self.sys);
                let w2 = w.clone();
                out.push((
                    "get".into(),
                    Box::new(move || {
                        let v = sys.get(&w2, k0);
                        assert!(v.is_none() || v == Some(9));
                    }),
                ));
            }
        }
        out
    }

    fn crash_reset(&mut self, _w: &World<KvSpec>) {
        self.sys.crash();
    }

    fn recovery(&mut self, w: &World<KvSpec>) -> ThreadBody {
        let sys = Arc::clone(&self.sys);
        let w2 = w.clone();
        Box::new(move || sys.recover(&w2))
    }

    fn after_recovery(&mut self, w: &World<KvSpec>) -> Vec<(String, ThreadBody)> {
        if !self.after_round {
            return Vec::new();
        }
        let (k0, _same, other) = sample_keys();
        let sys = Arc::clone(&self.sys);
        let w2 = w.clone();
        vec![(
            "post-crash".into(),
            Box::new(move || {
                // Reads first: whatever committed must be visible (their
                // finish_op checks values against σ).
                let _ = sys.get(&w2, k0);
                let _ = sys.get(&w2, other);
                sys.put(&w2, other, 77);
                assert_eq!(sys.get(&w2, other), Some(77));
                assert_eq!(sys.delete(&w2, other), Some(77));
            }),
        )]
    }

    fn final_check(&self, w: &World<KvSpec>) -> Result<(), String> {
        self.sys.abs_check(w)
    }
}

impl Harness<KvSpec> for KvHarness {
    fn spec(&self) -> KvSpec {
        KvSpec
    }

    fn make(&self, w: &World<KvSpec>) -> Box<dyn Execution<KvSpec>> {
        let disk = BufferedDisk::new(Arc::clone(&w.rt), NodeKv::NBLOCKS, NodeKv::BLOCK_SIZE);
        let sys = NodeKv::new(w, disk, self.mutant);
        Box::new(KvExec {
            sys: Arc::new(sys),
            workload: self.workload,
            after_round: self.after_round,
        })
    }

    fn name(&self) -> &str {
        "node KV store"
    }

    fn fault_surface(&self) -> FaultSurface {
        FaultSurface {
            transient_disk_io: true,
            torn_writes: true,
            ..FaultSurface::none()
        }
    }
}
