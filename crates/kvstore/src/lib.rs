//! A crash-safe, concurrent node key-value store, verified with the
//! Perennial reproduction's checker.
//!
//! The paper's related-work section (§2) observes that of the verified
//! distributed systems, only Verdi handles node crashes — and that
//! "Perennial can be used to verify the kind of crash-safe, concurrent
//! node-storage system that Verdi assumes". This crate is that system:
//! a hash-bucketed KV store on a single disk where
//!
//! - each bucket is updated atomically with the **shadow-copy** pattern
//!   (write the inactive slot, flip an install pointer);
//! - per-bucket locks allow genuinely parallel operations on different
//!   buckets (the checker exercises both same- and cross-bucket races);
//! - acknowledged updates survive crashes without any repair work in
//!   recovery (an uninstalled shadow is invisible);
//! - the spec is the obvious one: a linearizable map with a lossless
//!   crash transition.
//!
//! Module map: [`spec`] (the map specification), [`store`] (the
//! instrumented implementation and its mutants), [`harness`] (checker
//! plumbing and workloads).

pub mod harness;
pub mod spec;
pub mod store;

pub use harness::{mutant_scenarios, scenarios, KvHarness, KvWorkload};
pub use spec::{bucket_of, KvOp, KvRet, KvSpec, BUCKETS, BUCKET_CAP};
pub use store::{KvMutant, NodeKv};
