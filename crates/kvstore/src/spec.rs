//! The node key-value store specification: a map from keys to values
//! with linearizable `Put`/`Get`/`Delete` and a crash transition that
//! loses nothing (every acknowledged update is durable).
//!
//! This is the storage interface the paper's related work points at
//! (§2: "Perennial can be used to verify the kind of crash-safe,
//! concurrent node-storage system that Verdi assumes").

use perennial_spec::{SpecTS, Transition};
use std::collections::BTreeMap;

/// Keys and values are `u64` (a serialization detail — the bucket layer
/// stores fixed-width pairs).
pub type Key = u64;
/// Value type.
pub type Val = u64;

/// Abstract state: the key-value map.
pub type KvState = BTreeMap<Key, Val>;

/// Capacity of one bucket (pairs); exceeding it is caller UB, like an
/// out-of-bounds disk address.
pub const BUCKET_CAP: usize = 3;

/// Number of buckets (fixed at format time).
pub const BUCKETS: u64 = 4;

/// Operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvOp {
    /// Insert or overwrite a key.
    Put(Key, Val),
    /// Look a key up.
    Get(Key),
    /// Remove a key (removing an absent key is a no-op returning None).
    Delete(Key),
}

/// Return values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvRet {
    /// `Put` acknowledgement.
    Done,
    /// `Get`/`Delete` result: the value present (before deletion).
    Val(Option<Val>),
}

/// Which bucket a key lives in.
pub fn bucket_of(k: Key) -> u64 {
    // SplitMix-style scramble so adjacent keys spread out.
    let mut x = k.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x % BUCKETS
}

/// The KV specification.
#[derive(Debug, Clone, Default)]
pub struct KvSpec;

impl SpecTS for KvSpec {
    type State = KvState;
    type Op = KvOp;
    type Ret = KvRet;

    fn init(&self) -> KvState {
        KvState::new()
    }

    fn op_transition(&self, op: &KvOp) -> Transition<KvState, KvRet> {
        match op.clone() {
            KvOp::Put(k, v) => {
                Transition::gets(move |s: &KvState| {
                    // Bucket overflow is caller UB: count co-bucketed
                    // keys if `k` is new.
                    let in_bucket = s
                        .keys()
                        .filter(|k2| bucket_of(**k2) == bucket_of(k))
                        .count();
                    s.contains_key(&k) || in_bucket < BUCKET_CAP
                })
                .and_then(move |fits| {
                    if fits {
                        Transition::modify(move |s: &KvState| {
                            let mut s = s.clone();
                            s.insert(k, v);
                            s
                        })
                        .map(|()| KvRet::Done)
                    } else {
                        Transition::undefined()
                    }
                })
            }
            KvOp::Get(k) => Transition::gets(move |s: &KvState| KvRet::Val(s.get(&k).copied())),
            KvOp::Delete(k) => {
                Transition::gets(move |s: &KvState| s.get(&k).copied()).and_then(move |old| {
                    Transition::modify(move |s: &KvState| {
                        let mut s = s.clone();
                        s.remove(&k);
                        s
                    })
                    .map(move |()| KvRet::Val(old))
                })
            }
        }
    }

    /// Acknowledged updates are durable: crash loses nothing.
    fn crash_transition(&self) -> Transition<KvState, ()> {
        Transition::skip()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use perennial_spec::system::SeqReplay;

    #[test]
    fn put_get_delete_cycle() {
        let mut r = SeqReplay::new(KvSpec);
        assert_eq!(r.step_op(&KvOp::Get(1)).unwrap(), KvRet::Val(None));
        r.step_op(&KvOp::Put(1, 10)).unwrap();
        assert_eq!(r.step_op(&KvOp::Get(1)).unwrap(), KvRet::Val(Some(10)));
        r.step_op(&KvOp::Put(1, 11)).unwrap();
        assert_eq!(r.step_op(&KvOp::Delete(1)).unwrap(), KvRet::Val(Some(11)));
        assert_eq!(r.step_op(&KvOp::Delete(1)).unwrap(), KvRet::Val(None));
    }

    #[test]
    fn crash_preserves_everything() {
        let mut r = SeqReplay::new(KvSpec);
        r.step_op(&KvOp::Put(7, 70)).unwrap();
        r.step_crash().unwrap();
        assert_eq!(r.step_op(&KvOp::Get(7)).unwrap(), KvRet::Val(Some(70)));
    }

    #[test]
    fn bucket_overflow_is_undefined() {
        let mut r = SeqReplay::new(KvSpec);
        // Find BUCKET_CAP + 1 keys in the same bucket.
        let target = bucket_of(0);
        let keys: Vec<Key> = (0..10_000)
            .filter(|k| bucket_of(*k) == target)
            .take(BUCKET_CAP + 1)
            .collect();
        assert_eq!(keys.len(), BUCKET_CAP + 1);
        for k in &keys[..BUCKET_CAP] {
            r.step_op(&KvOp::Put(*k, 1)).unwrap();
        }
        assert!(r.step_op(&KvOp::Put(keys[BUCKET_CAP], 1)).is_err());
    }

    #[test]
    fn bucket_function_spreads() {
        let mut seen = std::collections::BTreeSet::new();
        for k in 0..100 {
            seen.insert(bucket_of(k));
        }
        assert_eq!(seen.len() as u64, BUCKETS, "all buckets reachable");
    }
}
