//! The instrumented node KV store: hash buckets on a single disk, each
//! bucket updated atomically with the shadow-copy pattern, per-bucket
//! locks for concurrency.
//!
//! Disk layout (block size [`NodeKv::BLOCK_SIZE`]): bucket `b` owns three
//! consecutive blocks —
//!
//! ```text
//! block 3b:   install pointer (0 → slot A live, 1 → slot B live)
//! block 3b+1: slot A (count, then up to BUCKET_CAP (key, value) pairs)
//! block 3b+2: slot B
//! ```
//!
//! A mutation decodes the live slot, writes the modified copy to the
//! *inactive* slot, then flips the pointer — a single atomic block
//! write, the linearization point. A crash before the flip leaves the
//! half-written shadow invisible; recovery only re-establishes leases.
//! Operations on different buckets proceed fully in parallel.

use crate::spec::{bucket_of, KvOp, KvRet, KvSpec, Val, BUCKETS, BUCKET_CAP};
use goose_rt::runtime::{GLock, ModelRtExt};
use parking_lot::RwLock;
use perennial::{DurId, GhostUnwrap, Lease, LockInv};
use perennial_checker::World;
use perennial_disk::buffered::BufferedDisk;
use perennial_disk::single::SingleDisk;
use std::sync::Arc;

/// Deliberate bugs for mutation tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvMutant {
    /// The correct system.
    None,
    /// Mutate the live slot in place (a crash mid-rewrite tears the
    /// bucket).
    InPlace,
    /// Flip the pointer before writing the shadow slot.
    FlipFirst,
    /// Share one lock across all buckets but *claim* per-bucket locking
    /// by committing per-bucket — wait, that would be correct; instead:
    /// skip the bucket lock entirely.
    NoLock,
}

/// One bucket's ghost bundle: leases for pointer, slot A, slot B.
pub struct BucketBundle {
    leases: [Lease<Vec<u8>>; 3],
}

/// Decoded bucket contents.
type Pairs = Vec<(u64, u64)>;

/// The instrumented KV store.
pub struct NodeKv {
    mutant: KvMutant,
    disk: Arc<BufferedDisk>,
    cells: Vec<DurId<Vec<u8>>>,
    lockinvs: Vec<Arc<LockInv<BucketBundle>>>,
    locks: RwLock<Vec<Arc<dyn GLock>>>,
}

impl NodeKv {
    /// Bytes per block: count word plus `BUCKET_CAP` pairs.
    pub const BLOCK_SIZE: usize = 8 * (1 + 2 * BUCKET_CAP);
    /// Total blocks.
    pub const NBLOCKS: u64 = 3 * BUCKETS;

    /// Sets up ghost resources over a fresh disk.
    pub fn new(w: &World<KvSpec>, disk: Arc<BufferedDisk>, mutant: KvMutant) -> Self {
        let mut cells = Vec::new();
        let mut all_leases = Vec::new();
        for _ in 0..Self::NBLOCKS {
            let (c, l) = w.ghost.alloc_durable(vec![0u8; Self::BLOCK_SIZE]);
            cells.push(c);
            all_leases.push(Some(l));
        }
        let mut lockinvs = Vec::new();
        for b in 0..BUCKETS as usize {
            let leases = [
                all_leases[3 * b].take().expect("lease"),
                all_leases[3 * b + 1].take().expect("lease"),
                all_leases[3 * b + 2].take().expect("lease"),
            ];
            lockinvs.push(Arc::new(LockInv::new(BucketBundle { leases })));
        }
        NodeKv {
            mutant,
            disk,
            cells,
            lockinvs,
            locks: RwLock::new(Vec::new()),
        }
    }

    /// Rebuilds the per-bucket in-memory locks at boot.
    pub fn boot(&self, w: &World<KvSpec>) {
        *self.locks.write() = (0..BUCKETS).map(|_| w.rt.new_glock()).collect();
    }

    fn lock(&self, b: u64) -> Arc<dyn GLock> {
        Arc::clone(&self.locks.read()[b as usize])
    }

    fn decode(block: &[u8]) -> Pairs {
        let n = u64::from_le_bytes(block[..8].try_into().expect("short block")) as usize;
        let mut out = Vec::with_capacity(n);
        for i in 0..n.min(BUCKET_CAP) {
            let off = 8 + 16 * i;
            let k = u64::from_le_bytes(block[off..off + 8].try_into().unwrap());
            let v = u64::from_le_bytes(block[off + 8..off + 16].try_into().unwrap());
            out.push((k, v));
        }
        out
    }

    fn encode(pairs: &Pairs) -> Vec<u8> {
        assert!(pairs.len() <= BUCKET_CAP, "bucket overflow");
        let mut out = vec![0u8; Self::BLOCK_SIZE];
        out[..8].copy_from_slice(&(pairs.len() as u64).to_le_bytes());
        for (i, (k, v)) in pairs.iter().enumerate() {
            let off = 8 + 16 * i;
            out[off..off + 8].copy_from_slice(&k.to_le_bytes());
            out[off + 8..off + 16].copy_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Buffered block write: volatile until the next flush barrier. The
    /// ghost master is advanced here (nothing compares master against the
    /// platter, and recovery never depends on an unflushed shadow slot).
    fn wblk(
        &self,
        w: &World<KvSpec>,
        bundle: &mut BucketBundle,
        b: u64,
        which: usize,
        data: Vec<u8>,
    ) {
        let block = 3 * b + which as u64;
        self.disk.write(block, &data);
        w.ghost
            .write_durable(self.cells[block as usize], &mut bundle.leases[which], data)
            .ghost_unwrap();
    }

    /// Write-through block write: a single atomic durable write (FUA),
    /// used for the install-pointer flip.
    fn wblk_through(
        &self,
        w: &World<KvSpec>,
        bundle: &mut BucketBundle,
        b: u64,
        which: usize,
        data: Vec<u8>,
    ) {
        let block = 3 * b + which as u64;
        self.disk.write_through(block, &data);
        w.ghost
            .write_durable(self.cells[block as usize], &mut bundle.leases[which], data)
            .ghost_unwrap();
    }

    /// Reads the live pairs of bucket `b` (under its lock).
    fn read_bucket(&self, b: u64) -> (u64, Pairs) {
        let ptr = self.disk.read(3 * b);
        let live = u64::from_le_bytes(ptr[..8].try_into().unwrap()) % 2;
        let slot = self.disk.read(3 * b + 1 + live);
        (live, Self::decode(&slot))
    }

    /// Rewrites bucket `b` with `pairs` using the shadow-copy protocol;
    /// the returned closure-free sequence commits `tok` adjacent to the
    /// pointer flip.
    fn rewrite_bucket(
        &self,
        w: &World<KvSpec>,
        bundle: &mut BucketBundle,
        b: u64,
        live: u64,
        pairs: &Pairs,
        tok: &perennial::OpToken,
    ) -> KvRet {
        let encoded = Self::encode(pairs);
        match self.mutant {
            KvMutant::InPlace => {
                // Mutant: commit, then overwrite the live slot in place
                // (no shadow). A crash between the commit and the write
                // loses an acknowledged-as-linearized update.
                let ret = w.ghost.commit_op(tok).ghost_unwrap();
                self.wblk(w, bundle, b, (1 + live) as usize, encoded);
                ret
            }
            KvMutant::FlipFirst => {
                let flip = 1 - live;
                let mut ptr = vec![0u8; Self::BLOCK_SIZE];
                ptr[..8].copy_from_slice(&flip.to_le_bytes());
                self.wblk_through(w, bundle, b, 0, ptr);
                let ret = w.ghost.commit_op(tok).ghost_unwrap();
                self.wblk(w, bundle, b, (1 + flip) as usize, encoded);
                self.disk.flush();
                ret
            }
            _ => {
                // Correct: buffered shadow write, flush barrier, then the
                // pointer flip as a single write-through + commit
                // (adjacent). A torn crash before the flush leaves the
                // half-written shadow both volatile *and* invisible.
                let flip = 1 - live;
                self.wblk(w, bundle, b, (1 + flip) as usize, encoded);
                self.disk.flush();
                let mut ptr = vec![0u8; Self::BLOCK_SIZE];
                ptr[..8].copy_from_slice(&flip.to_le_bytes());
                self.wblk_through(w, bundle, b, 0, ptr);
                w.ghost.commit_op(tok).ghost_unwrap()
            }
        }
    }

    /// Linearizable `Put`.
    pub fn put(&self, w: &World<KvSpec>, k: u64, v: Val) {
        let tok = w.ghost.begin_op(KvOp::Put(k, v)).ghost_unwrap();
        let b = bucket_of(k);
        let lock = self.lock(b);
        if self.mutant != KvMutant::NoLock {
            lock.acquire();
        }
        let mut bundle = self.lockinvs[b as usize].take().ghost_unwrap();
        let (live, mut pairs) = self.read_bucket(b);
        match pairs.iter_mut().find(|(k2, _)| *k2 == k) {
            Some(entry) => entry.1 = v,
            None => pairs.push((k, v)),
        }
        let ret = self.rewrite_bucket(w, &mut bundle, b, live, &pairs, &tok);
        self.lockinvs[b as usize].put(bundle).ghost_unwrap();
        if self.mutant != KvMutant::NoLock {
            lock.release();
        }
        w.ghost.finish_op(tok, &ret).ghost_unwrap();
    }

    /// Linearizable `Get`.
    pub fn get(&self, w: &World<KvSpec>, k: u64) -> Option<Val> {
        let tok = w.ghost.begin_op(KvOp::Get(k)).ghost_unwrap();
        let b = bucket_of(k);
        let lock = self.lock(b);
        if self.mutant != KvMutant::NoLock {
            lock.acquire();
        }
        let bundle = self.lockinvs[b as usize].take().ghost_unwrap();
        // The live-slot read is the linearization point.
        let (_live, pairs) = self.read_bucket(b);
        let ret = w.ghost.commit_op(&tok).ghost_unwrap();
        self.lockinvs[b as usize].put(bundle).ghost_unwrap();
        if self.mutant != KvMutant::NoLock {
            lock.release();
        }
        let got = pairs.iter().find(|(k2, _)| *k2 == k).map(|(_, v)| *v);
        w.ghost.finish_op(tok, &KvRet::Val(got)).ghost_unwrap();
        match ret {
            KvRet::Val(_) => got,
            KvRet::Done => unreachable!("get committed a put transition"),
        }
    }

    /// Linearizable `Delete`, returning the previous value.
    pub fn delete(&self, w: &World<KvSpec>, k: u64) -> Option<Val> {
        let tok = w.ghost.begin_op(KvOp::Delete(k)).ghost_unwrap();
        let b = bucket_of(k);
        let lock = self.lock(b);
        if self.mutant != KvMutant::NoLock {
            lock.acquire();
        }
        let mut bundle = self.lockinvs[b as usize].take().ghost_unwrap();
        let (live, mut pairs) = self.read_bucket(b);
        let old = pairs.iter().find(|(k2, _)| *k2 == k).map(|(_, v)| *v);
        let ret = if old.is_some() {
            pairs.retain(|(k2, _)| *k2 != k);
            self.rewrite_bucket(w, &mut bundle, b, live, &pairs, &tok)
        } else {
            // Nothing to remove: linearize at the read.
            w.ghost.commit_op(&tok).ghost_unwrap()
        };
        self.lockinvs[b as usize].put(bundle).ghost_unwrap();
        if self.mutant != KvMutant::NoLock {
            lock.release();
        }
        w.ghost.finish_op(tok, &KvRet::Val(old)).ghost_unwrap();
        match ret {
            KvRet::Val(spec_old) => {
                debug_assert_eq!(spec_old, old);
                old
            }
            KvRet::Done => unreachable!("delete committed a put transition"),
        }
    }

    /// Crash transition for the disk: drop (or tear) the volatile write
    /// buffer per the execution's fault plan.
    pub fn crash(&self) {
        self.disk.crash_torn();
    }

    /// Recovery: an uninstalled shadow slot is invisible — re-establish
    /// the leases and spend the crash token.
    pub fn recover(&self, w: &World<KvSpec>) {
        for b in 0..BUCKETS as usize {
            let leases = [
                w.ghost.recover_lease(self.cells[3 * b]).ghost_unwrap(),
                w.ghost.recover_lease(self.cells[3 * b + 1]).ghost_unwrap(),
                w.ghost.recover_lease(self.cells[3 * b + 2]).ghost_unwrap(),
            ];
            self.lockinvs[b].reset(BucketBundle { leases });
        }
        w.ghost.recovery_done().ghost_unwrap();
    }

    /// AbsR at quiescence: the union of all live bucket slots equals σ.
    pub fn abs_check(&self, w: &World<KvSpec>) -> Result<(), String> {
        let sigma = w.ghost.spec_state();
        let mut physical = std::collections::BTreeMap::new();
        for b in 0..BUCKETS {
            let ptr = self.disk.peek(3 * b);
            let live = u64::from_le_bytes(ptr[..8].try_into().unwrap()) % 2;
            let slot = self.disk.peek(3 * b + 1 + live);
            for (k, v) in Self::decode(&slot) {
                if bucket_of(k) != b {
                    return Err(format!("key {k} stored in wrong bucket {b}"));
                }
                physical.insert(k, v);
            }
        }
        if physical != sigma {
            return Err(format!(
                "AbsR violated: disk has {physical:?}, spec has {sigma:?}"
            ));
        }
        Ok(())
    }
}
