//! Model-checking the node KV store: all workloads, crash sweeps, and
//! mutants.

use perennial_checker::{check, CheckConfig, ExecOutcome, Pass};
use perennial_kv::{KvHarness, KvMutant, KvWorkload};

fn cfg() -> CheckConfig {
    CheckConfig::builder()
        .dfs_max_executions(300)
        .random_samples(10)
        .random_crash_samples(20)
        .without_passes([Pass::NestedCrash])
        .max_steps(200_000)
        .build()
}

#[test]
fn cross_bucket_parallel_ops_pass() {
    let report = check(&KvHarness::default(), &cfg());
    assert!(
        report.passed(),
        "counterexample: {:?}",
        report.counterexample
    );
    assert!(report.executions > 100);
}

#[test]
fn same_bucket_contention_passes() {
    let h = KvHarness {
        workload: KvWorkload::SameBucket,
        ..KvHarness::default()
    };
    let report = check(&h, &cfg());
    assert!(
        report.passed(),
        "counterexample: {:?}",
        report.counterexample
    );
}

#[test]
fn put_delete_get_interleavings_pass() {
    let h = KvHarness {
        workload: KvWorkload::PutDeleteGet,
        ..KvHarness::default()
    };
    let report = check(&h, &cfg());
    assert!(
        report.passed(),
        "counterexample: {:?}",
        report.counterexample
    );
}

#[test]
fn crash_during_recovery_is_idempotent() {
    let h = KvHarness {
        workload: KvWorkload::SinglePut,
        after_round: false,
        ..KvHarness::default()
    };
    let report = check(
        &h,
        &CheckConfig::builder()
            .dfs_max_executions(0)
            .random_samples(0)
            .random_crash_samples(0)
            .max_steps(200_000)
            .build(),
    );
    assert!(
        report.passed(),
        "counterexample: {:?}",
        report.counterexample
    );
}

#[test]
fn mutant_in_place_caught() {
    let h = KvHarness {
        workload: KvWorkload::SinglePut,
        mutant: KvMutant::InPlace,
        ..KvHarness::default()
    };
    let report = check(&h, &cfg());
    let cx = report.counterexample.expect("in-place must be caught");
    assert!(!cx.crash_points.is_empty(), "only reachable via a crash");
}

#[test]
fn mutant_flip_first_caught() {
    let h = KvHarness {
        workload: KvWorkload::SinglePut,
        mutant: KvMutant::FlipFirst,
        ..KvHarness::default()
    };
    let report = check(&h, &cfg());
    let cx = report.counterexample.expect("flip-first must be caught");
    assert!(!cx.crash_points.is_empty(), "only reachable via a crash");
}

#[test]
fn mutant_no_lock_caught() {
    let h = KvHarness {
        workload: KvWorkload::SameBucket,
        mutant: KvMutant::NoLock,
        ..KvHarness::default()
    };
    let report = check(&h, &cfg());
    let cx = report.counterexample.expect("no-lock must be caught");
    assert!(
        matches!(cx.outcome, ExecOutcome::Violation(_) | ExecOutcome::Bug(_)),
        "unexpected outcome {:?}",
        cx.outcome
    );
}

#[test]
fn kv_passes_fault_sweeps() {
    // Buffered shadow slots + flush barrier + write-through pointer
    // flip: torn crashes and transient I/O errors change nothing
    // observable.
    let cfg = CheckConfig::builder()
        .dfs_max_executions(0)
        .random_samples(0)
        .random_crash_samples(0)
        .without_passes([Pass::NestedCrash])
        .max_steps(200_000)
        .with_passes([Pass::DiskFault, Pass::TornWrite, Pass::NetFault])
        .build();
    let h = KvHarness {
        workload: KvWorkload::SinglePut,
        ..KvHarness::default()
    };
    let report = check(&h, &cfg);
    assert!(
        report.passed(),
        "counterexample: {:?}",
        report.counterexample
    );
    assert!(report.fault_plans > 0, "fault passes actually ran");
}
