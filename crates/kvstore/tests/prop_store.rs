//! Property test: the KV store tracks a reference map under long random
//! sequential scripts (run in controller context — the checker's model
//! tests cover concurrency; this covers bucket encode/decode, overwrite,
//! and delete logic at depth).

use goose_rt::sched::ModelRt;
use perennial::Ghost;
use perennial_checker::World;
use perennial_disk::buffered::BufferedDisk;
use perennial_kv::spec::{bucket_of, KvSpec, BUCKET_CAP};
use perennial_kv::store::{KvMutant, NodeKv};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Step {
    Put(u64, u64),
    Get(u64),
    Delete(u64),
    CrashRecover,
}

/// A small key universe so collisions and overwrites are common; keys
/// are drawn to respect the per-bucket capacity.
fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u64..12, 0u64..1000).prop_map(|(k, v)| Step::Put(k, v)),
        (0u64..12).prop_map(Step::Get),
        (0u64..12).prop_map(Step::Delete),
        Just(Step::CrashRecover),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn store_tracks_reference_map(script in proptest::collection::vec(arb_step(), 0..60)) {
        let rt = ModelRt::new(0, 10_000_000);
        let ghost = Ghost::new(KvSpec);
        let w = World { rt: Arc::clone(&rt), ghost };
        let disk = BufferedDisk::new(Arc::clone(&rt), NodeKv::NBLOCKS, NodeKv::BLOCK_SIZE);
        let kv = NodeKv::new(&w, disk, KvMutant::None);
        kv.boot(&w);

        let mut reference: BTreeMap<u64, u64> = BTreeMap::new();
        for step in &script {
            match step {
                Step::Put(k, v) => {
                    // Respect the bucket-capacity precondition (the spec
                    // makes overflow UB, so the driver must not do it).
                    let new = !reference.contains_key(k);
                    let in_bucket = reference
                        .keys()
                        .filter(|k2| bucket_of(**k2) == bucket_of(*k))
                        .count();
                    if new && in_bucket >= BUCKET_CAP {
                        continue;
                    }
                    kv.put(&w, *k, *v);
                    reference.insert(*k, *v);
                }
                Step::Get(k) => {
                    prop_assert_eq!(kv.get(&w, *k), reference.get(k).copied());
                }
                Step::Delete(k) => {
                    prop_assert_eq!(kv.delete(&w, *k), reference.remove(k));
                }
                Step::CrashRecover => {
                    w.ghost.crash();
                    kv.boot(&w);
                    kv.recover(&w);
                    // Everything acknowledged survives.
                    for (k, v) in &reference {
                        prop_assert_eq!(kv.get(&w, *k), Some(*v));
                    }
                }
            }
        }
        // End-of-run obligations: ghost validates and AbsR holds.
        prop_assert!(w.ghost.validate().is_ok());
        prop_assert!(kv.abs_check(&w).is_ok());
        let sigma = w.ghost.spec_state();
        prop_assert_eq!(sigma, reference);
    }
}
