//! GoMail: the unverified baseline from the CMAIL/CSPEC paper, as
//! described in §9.3 — "a mailserver written in Go in a similar style to
//! CMAIL using file locks".
//!
//! Two deliberate differences from Mailboat, matching the paper's
//! analysis of why Mailboat is ~81% faster on one core:
//!
//! 1. **File locks**: pickup/delete mutual exclusion uses exclusive-
//!    create lock files instead of in-memory locks — several extra
//!    file-system calls per request (create, close, unlink).
//! 2. **Per-path lookups**: every operation resolves its directory path
//!    from scratch instead of using handles cached at init.
//!
//! Native-mode only (the file-lock spin loop uses OS thread yielding; in
//! model mode Mailboat's verified variant is the system under test).

use crate::server::{MailServer, Message, READ_CHUNK, WRITE_CHUNK};
use goose_rt::fs::{FileSys, FsResult};
use goose_rt::runtime::Runtime;
use std::sync::Arc;

/// The GoMail baseline server.
pub struct GoMail {
    fs: Arc<dyn FileSys>,
    rt: Arc<dyn Runtime>,
    users: u64,
}

impl GoMail {
    /// Creates the server over a file system laid out by
    /// [`crate::server::mail_dirs`] (the `locks/` directory holds the lock files).
    pub fn init(fs: Arc<dyn FileSys>, rt: Arc<dyn Runtime>, users: u64) -> FsResult<Self> {
        // Validate the layout once (but do not cache handles — per-path
        // lookups are the point of this baseline).
        fs.resolve("spool")?;
        fs.resolve("locks")?;
        for u in 0..users {
            fs.resolve(&format!("user{u}"))?;
        }
        Ok(GoMail { fs, rt, users })
    }

    /// Number of users.
    pub fn user_count(&self) -> u64 {
        self.users
    }

    fn lock_file(user: u64) -> String {
        format!("user{user}.lock")
    }

    fn lock_user(&self, user: u64) {
        let name = Self::lock_file(user);
        loop {
            match self
                .fs
                .create_path("locks", &name)
                .expect("lock-file create")
            {
                Some(fd) => {
                    self.fs.close(fd).expect("lock-file close");
                    return;
                }
                None => std::thread::yield_now(),
            }
        }
    }

    fn unlock_user(&self, user: u64) {
        self.fs
            .delete_path("locks", &Self::lock_file(user))
            .expect("lock-file unlink");
    }

    fn fresh_name(&self, prefix: &str) -> String {
        format!("{prefix}{:016x}", self.rt.rand_u64())
    }
}

impl MailServer for GoMail {
    fn deliver(&self, user: u64, msg: &[u8]) {
        let udir = format!("user{user}");
        let (tmp, fd) = loop {
            let tmp = self.fresh_name("t");
            match self.fs.create_path("spool", &tmp).expect("spool create") {
                Some(fd) => break (tmp, fd),
                None => continue,
            }
        };
        for chunk in msg.chunks(WRITE_CHUNK) {
            self.fs.append(fd, chunk).expect("spool append");
        }
        self.fs.close(fd).expect("spool close");
        loop {
            let id = self.fresh_name("m");
            if self
                .fs
                .link_path("spool", &tmp, &udir, &id)
                .expect("mailbox link")
            {
                break;
            }
        }
        self.fs.delete_path("spool", &tmp).expect("spool unlink");
    }

    fn pickup(&self, user: u64) -> Vec<Message> {
        self.lock_user(user);
        let udir = format!("user{user}");
        let names = self.fs.list_path(&udir).expect("mailbox list");
        let mut out = Vec::with_capacity(names.len());
        for id in names {
            // Per-path resolution for every message read.
            let d = self.fs.resolve(&udir).expect("resolve");
            let contents = self.fs.read_file(d, &id, READ_CHUNK).expect("read msg");
            out.push(Message { id, contents });
        }
        out
    }

    fn delete(&self, user: u64, id: &str) {
        self.fs
            .delete_path(&format!("user{user}"), id)
            .expect("mailbox delete");
    }

    fn unlock(&self, user: u64) {
        self.unlock_user(user);
    }

    fn recover(&self) {
        for name in self.fs.list_path("spool").expect("spool list") {
            self.fs.delete_path("spool", &name).expect("spool cleanup");
        }
        // File locks leak across crashes; recovery clears them too.
        for name in self.fs.list_path("locks").expect("locks list") {
            self.fs.delete_path("locks", &name).expect("lock cleanup");
        }
    }
}

/// CMAIL as simulated for Figure 11 (see DESIGN.md §1): the same
/// file-lock, per-path-lookup algorithm as GoMail plus a calibrated
/// per-operation overhead standing in for the extracted-Haskell runtime
/// cost the paper attributes CMAIL's remaining deficit to.
pub struct CMailSim {
    inner: GoMail,
    /// Iterations of the overhead loop per mail-server operation.
    pub overhead_iters: u64,
}

/// Default overhead calibrated so single-core GoMail ≈ 1.34× CMailSim,
/// the ratio reported in §9.3.
pub const CMAIL_DEFAULT_OVERHEAD: u64 = 2600;

impl CMailSim {
    /// Creates the simulated-CMAIL server.
    pub fn init(fs: Arc<dyn FileSys>, rt: Arc<dyn Runtime>, users: u64) -> FsResult<Self> {
        Ok(CMailSim {
            inner: GoMail::init(fs, rt, users)?,
            overhead_iters: CMAIL_DEFAULT_OVERHEAD,
        })
    }

    fn burn(&self) {
        // A data-dependent arithmetic loop the optimizer cannot remove.
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for i in 0..self.overhead_iters {
            x = x.wrapping_mul(0x2545_f491_4f6c_dd1d) ^ (x >> 27) ^ i;
        }
        std::hint::black_box(x);
    }
}

impl MailServer for CMailSim {
    fn deliver(&self, user: u64, msg: &[u8]) {
        self.burn();
        self.inner.deliver(user, msg);
    }

    fn pickup(&self, user: u64) -> Vec<Message> {
        self.burn();
        self.inner.pickup(user)
    }

    fn delete(&self, user: u64, id: &str) {
        self.burn();
        self.inner.delete(user, id);
    }

    fn unlock(&self, user: u64) {
        self.burn();
        self.inner.unlock(user);
    }

    fn recover(&self) {
        self.inner.recover();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::mail_dirs;
    use goose_rt::fs::NativeFs;
    use goose_rt::runtime::NativeRt;

    fn fs(users: u64) -> Arc<NativeFs> {
        let dirs = mail_dirs(users);
        let dir_refs: Vec<&str> = dirs.iter().map(String::as_str).collect();
        NativeFs::new(&dir_refs)
    }

    #[test]
    fn gomail_roundtrip() {
        let g = GoMail::init(fs(2), NativeRt::new(), 2).unwrap();
        g.deliver(0, b"hello");
        g.deliver(1, b"there");
        let msgs = g.pickup(0);
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].contents, b"hello");
        g.delete(0, &msgs[0].id);
        g.unlock(0);
        assert!(g.pickup(0).is_empty());
        g.unlock(0);
    }

    #[test]
    fn gomail_file_lock_excludes() {
        let f = fs(1);
        let g = Arc::new(GoMail::init(f.clone() as Arc<dyn FileSys>, NativeRt::new(), 1).unwrap());
        let _ = g.pickup(0);
        // While locked, the lock file exists.
        assert_eq!(f.list_path("locks").unwrap().len(), 1);
        let g2 = Arc::clone(&g);
        let contender = std::thread::spawn(move || {
            let t0 = std::time::Instant::now();
            let _ = g2.pickup(0);
            g2.unlock(0);
            t0.elapsed()
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        g.unlock(0);
        // The contender had to wait for the unlock.
        assert!(contender.join().unwrap() >= std::time::Duration::from_millis(10));
        assert!(f.list_path("locks").unwrap().is_empty());
    }

    #[test]
    fn gomail_recover_clears_spool_and_locks() {
        let f = fs(1);
        let g = GoMail::init(f.clone() as Arc<dyn FileSys>, NativeRt::new(), 1).unwrap();
        let spool = f.resolve("spool").unwrap();
        let fd = f.create(spool, "t-orphan").unwrap().unwrap();
        f.append(fd, b"junk").unwrap();
        let _ = g.pickup(0); // leaves a lock file, as after a crash
        f.crash();
        g.recover();
        assert!(f.list_path("spool").unwrap().is_empty());
        assert!(f.list_path("locks").unwrap().is_empty());
    }

    #[test]
    fn cmail_sim_behaves_identically_but_slower() {
        let c = CMailSim::init(fs(1), NativeRt::new(), 1).unwrap();
        c.deliver(0, b"slow mail");
        let msgs = c.pickup(0);
        assert_eq!(msgs[0].contents, b"slow mail");
        c.unlock(0);
    }
}
