//! Checker harnesses for Mailboat: concurrent deliver/pickup/delete
//! workloads, crash sweeps, the §8.3 slice-race scenario, and mutants.

use crate::proof::{MbMutant, VerifiedMailboat};
use crate::server::mail_dirs;
use crate::spec::MailSpec;
use goose_rt::fault::FaultSurface;
use goose_rt::fs::ModelFs;
use goose_rt::heap::Heap;
use goose_rt::net::ModelNet;
use perennial_checker::{Execution, Harness, ScenarioSet, ThreadBody, World};
use std::sync::Arc;

/// Scenario shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MbWorkload {
    /// One delivery (smallest crash-sweep scenario).
    SingleDeliver,
    /// A delivery racing a pickup(+delete+unlock) on the same user.
    DeliverVsPickup,
    /// Two deliveries racing on the same user.
    TwoDelivers,
    /// Deliveries to two users racing a pickup.
    TwoUsers,
    /// §8.3: a delivery reading from a heap slice while another thread
    /// mutates that slice — must be flagged as undefined behaviour.
    SliceRace,
    /// A client submits deliveries over the unreliable model channel and
    /// a courier performs them, deduplicating by request id (the
    /// net-fault sweep drops/duplicates/delays each message).
    NetDeliver,
}

/// Mailboat harness.
pub struct MbHarness {
    /// Number of users.
    pub users: u64,
    /// Which mutant ([`MbMutant::None`] = correct system).
    pub mutant: MbMutant,
    /// Which workload.
    pub workload: MbWorkload,
    /// Run a post-recovery verification round.
    pub after_round: bool,
}

impl Default for MbHarness {
    fn default() -> Self {
        MbHarness {
            users: 2,
            mutant: MbMutant::None,
            workload: MbWorkload::DeliverVsPickup,
            after_round: true,
        }
    }
}

/// The crate's expected-pass scenarios (correct system, every workload
/// except the §8.3 slice race, which is expected to fail), under the
/// registry names `"mailboat/..."`.
pub fn scenarios() -> ScenarioSet {
    let mut set = ScenarioSet::new();
    for (name, desc, workload) in [
        (
            "mailboat/single-deliver",
            "one delivery (smallest crash sweep)",
            MbWorkload::SingleDeliver,
        ),
        (
            "mailboat/deliver-vs-pickup",
            "delivery racing a pickup+delete",
            MbWorkload::DeliverVsPickup,
        ),
        (
            "mailboat/two-delivers",
            "two deliveries racing on one user",
            MbWorkload::TwoDelivers,
        ),
        (
            "mailboat/two-users",
            "deliveries to two users racing a pickup",
            MbWorkload::TwoUsers,
        ),
        (
            "mailboat/net-deliver",
            "courier delivering requests from an unreliable channel",
            MbWorkload::NetDeliver,
        ),
    ] {
        set.add(
            name,
            desc,
            MbHarness {
                workload,
                ..MbHarness::default()
            },
        );
    }
    set
}

/// The crate's expected-fail scenarios: mutants the checker must catch,
/// plus the §8.3 slice race (a correct-system workload whose data race
/// must be flagged as UB). Registry names `"mailboat/mutant/..."`.
pub fn mutant_scenarios() -> ScenarioSet {
    let mut set = ScenarioSet::new();
    for (name, desc, mutant, workload) in [
        (
            "mailboat/mutant/no-spool",
            "deliver without spool",
            MbMutant::NoSpool,
            MbWorkload::DeliverVsPickup,
        ),
        (
            "mailboat/mutant/commit-at-spool",
            "commit at spool write",
            MbMutant::CommitAtSpool,
            MbWorkload::SingleDeliver,
        ),
        (
            "mailboat/mutant/skip-recovery-cleanup",
            "recovery skips spool cleanup",
            MbMutant::SkipRecoveryCleanup,
            MbWorkload::SingleDeliver,
        ),
        (
            "mailboat/mutant/delete-without-lock",
            "delete without pickup lock",
            MbMutant::DeleteWithoutLock,
            MbWorkload::DeliverVsPickup,
        ),
        (
            "mailboat/mutant/slice-race",
            "§8.3 heap slice race (must be flagged as UB)",
            MbMutant::None,
            MbWorkload::SliceRace,
        ),
        (
            "mailboat/mutant/net-no-dedup",
            "courier without request dedup (duplicate delivery)",
            MbMutant::NetNoDedup,
            MbWorkload::NetDeliver,
        ),
    ] {
        set.add(
            name,
            desc,
            MbHarness {
                mutant,
                workload,
                ..MbHarness::default()
            },
        );
    }
    set
}

struct MbExec {
    sys: Arc<VerifiedMailboat>,
    heap: Arc<Heap>,
    net: Arc<ModelNet>,
    mutant: MbMutant,
    workload: MbWorkload,
    after_round: bool,
}

impl Execution<MailSpec> for MbExec {
    fn boot(&mut self, w: &World<MailSpec>) {
        self.sys.boot(w);
    }

    fn threads(&mut self, w: &World<MailSpec>) -> Vec<(String, ThreadBody)> {
        let mut out: Vec<(String, ThreadBody)> = Vec::new();
        match self.workload {
            MbWorkload::SingleDeliver => {
                let sys = Arc::clone(&self.sys);
                let w2 = w.clone();
                out.push((
                    "deliver".into(),
                    Box::new(move || sys.deliver(&w2, 0, "alpha-msg")),
                ));
            }
            MbWorkload::DeliverVsPickup => {
                let sys = Arc::clone(&self.sys);
                let w2 = w.clone();
                out.push((
                    "deliver".into(),
                    Box::new(move || sys.deliver(&w2, 0, "alpha")),
                ));
                let sys = Arc::clone(&self.sys);
                let w2 = w.clone();
                out.push((
                    "pickup".into(),
                    Box::new(move || {
                        let msgs = sys.pickup(&w2, 0);
                        for (id, contents) in &msgs {
                            // Only complete messages are ever observable.
                            assert_eq!(contents, "alpha", "partial message read");
                            sys.delete(&w2, 0, id);
                        }
                        sys.unlock(&w2, 0);
                    }),
                ));
            }
            MbWorkload::TwoDelivers => {
                for (name, msg) in [("deliver-a", "alpha"), ("deliver-b", "bravo")] {
                    let sys = Arc::clone(&self.sys);
                    let w2 = w.clone();
                    out.push((name.into(), Box::new(move || sys.deliver(&w2, 0, msg))));
                }
            }
            MbWorkload::TwoUsers => {
                let sys = Arc::clone(&self.sys);
                let w2 = w.clone();
                out.push((
                    "deliver-u0".into(),
                    Box::new(move || sys.deliver(&w2, 0, "for-zero")),
                ));
                let sys = Arc::clone(&self.sys);
                let w2 = w.clone();
                out.push((
                    "deliver-u1".into(),
                    Box::new(move || sys.deliver(&w2, 1, "for-one")),
                ));
                let sys = Arc::clone(&self.sys);
                let w2 = w.clone();
                out.push((
                    "pickup-u0".into(),
                    Box::new(move || {
                        let _ = sys.pickup(&w2, 0);
                        sys.unlock(&w2, 0);
                    }),
                ));
            }
            MbWorkload::NetDeliver => {
                let net = Arc::clone(&self.net);
                out.push((
                    "net-client".into(),
                    Box::new(move || {
                        net.send(b"0:net-alpha");
                        net.send(b"1:net-bravo");
                        net.close();
                    }),
                ));
                let sys = Arc::clone(&self.sys);
                let w2 = w.clone();
                let net = Arc::clone(&self.net);
                let dedup = self.mutant != MbMutant::NetNoDedup;
                out.push((
                    "courier".into(),
                    Box::new(move || {
                        let mut seen = std::collections::BTreeSet::new();
                        // Bounded poll loop: finite under every schedule
                        // (a starved courier gives up, losing coverage
                        // but never correctness).
                        for _ in 0..64 {
                            match net.recv() {
                                Some(raw) => {
                                    let text = String::from_utf8(raw).expect("utf8 request");
                                    let (id, msg) = text.split_once(':').expect("framed request");
                                    if !dedup || seen.insert(id.to_string()) {
                                        sys.deliver(&w2, 0, msg);
                                    }
                                }
                                None => {
                                    if net.finished() {
                                        break;
                                    }
                                }
                            }
                        }
                        // At-most-once: whatever the channel did, no
                        // request may have been delivered twice.
                        let msgs = sys.pickup(&w2, 0);
                        let mut contents: Vec<_> = msgs.iter().map(|(_, c)| c.clone()).collect();
                        contents.sort();
                        contents.dedup();
                        assert_eq!(contents.len(), msgs.len(), "duplicate delivery: {msgs:?}");
                        sys.unlock(&w2, 0);
                    }),
                ));
            }
            MbWorkload::SliceRace => {
                let msg = "abcdefgh";
                let slice = self.heap.new_byte_slice(msg.as_bytes());
                let sys = Arc::clone(&self.sys);
                let w2 = w.clone();
                let heap = Arc::clone(&self.heap);
                out.push((
                    "deliver-slice".into(),
                    Box::new(move || sys.deliver_slice(&w2, 0, &heap, slice, msg)),
                ));
                let heap = Arc::clone(&self.heap);
                out.push((
                    "slice-mutator".into(),
                    Box::new(move || {
                        heap.slice_write(slice, 0, b"ZZ");
                    }),
                ));
            }
        }
        out
    }

    fn crash_reset(&mut self, _w: &World<MailSpec>) {
        self.sys_fs_crash();
        self.heap.crash();
        self.net.crash();
    }

    fn recovery(&mut self, w: &World<MailSpec>) -> ThreadBody {
        let sys = Arc::clone(&self.sys);
        let w2 = w.clone();
        Box::new(move || sys.recover(&w2))
    }

    fn after_recovery(&mut self, w: &World<MailSpec>) -> Vec<(String, ThreadBody)> {
        if !self.after_round {
            return Vec::new();
        }
        let sys = Arc::clone(&self.sys);
        let w2 = w.clone();
        vec![(
            "post-crash".into(),
            Box::new(move || {
                // Everything delivered before the crash must be readable
                // (the pickup's ghost machinery checks the values).
                let msgs = sys.pickup(&w2, 0);
                for (id, _) in &msgs {
                    sys.delete(&w2, 0, id);
                }
                sys.unlock(&w2, 0);
                // And the system still works.
                sys.deliver(&w2, 0, "post-crash-msg");
                let msgs = sys.pickup(&w2, 0);
                assert!(msgs.iter().any(|(_, c)| c == "post-crash-msg"));
                sys.unlock(&w2, 0);
            }),
        )]
    }

    fn final_check(&self, w: &World<MailSpec>) -> Result<(), String> {
        self.sys.abs_check(w, true)
    }
}

impl MbExec {
    fn sys_fs_crash(&self) {
        use goose_rt::fs::FileSys;
        // Drop all open descriptors; file data is durable.
        self.sys_fs().crash();
    }

    fn sys_fs(&self) -> &ModelFs {
        self.sys.fs()
    }
}

impl Harness<MailSpec> for MbHarness {
    fn spec(&self) -> MailSpec {
        MailSpec { users: self.users }
    }

    fn make(&self, w: &World<MailSpec>) -> Box<dyn Execution<MailSpec>> {
        let dirs = mail_dirs(self.users);
        let dir_refs: Vec<&str> = dirs.iter().map(String::as_str).collect();
        let fs = ModelFs::new(Arc::clone(&w.rt), &dir_refs);
        let heap = Heap::new(Arc::clone(&w.rt));
        let sys = VerifiedMailboat::new(w, fs, self.users, self.mutant);
        Box::new(MbExec {
            sys: Arc::new(sys),
            heap,
            net: ModelNet::new(Arc::clone(&w.rt)),
            mutant: self.mutant,
            workload: self.workload,
            after_round: self.after_round,
        })
    }

    fn name(&self) -> &str {
        "mailboat"
    }

    fn fault_surface(&self) -> FaultSurface {
        FaultSurface {
            net: self.workload == MbWorkload::NetDeliver,
            ..FaultSurface::none()
        }
    }
}
