//! Mailboat: the paper's flagship application (§8) — a crash-safe,
//! concurrent mail server storing messages Maildir-style in the file
//! system — plus the baselines of its evaluation (§9.3).
//!
//! Module map:
//!
//! - [`spec`] — the abstract mailbox specification (§8.1);
//! - [`server`] — the [`server::MailServer`] trait and the plain
//!   Mailboat implementation (§8.2), used in native mode by benches and
//!   examples;
//! - [`proof`] — the ghost-instrumented variant (the §8.3 proof as
//!   executable discipline), with [`harness`] plugging it into the
//!   checker;
//! - [`gomail`] — the GoMail and simulated-CMAIL baselines of Figure 11;
//! - [`workload`] — the §9.3 closed-loop workload generator;
//! - [`smtp`] — unverified SMTP/POP3 session state machines;
//! - [`net`] — TCP listeners serving those sessions over real sockets.

pub mod gomail;
pub mod harness;
pub mod net;
pub mod proof;
pub mod server;
pub mod smtp;
pub mod spec;
pub mod workload;

pub use gomail::{CMailSim, GoMail};
pub use harness::{mutant_scenarios, scenarios, MbHarness, MbWorkload};
pub use net::{LineClient, MailListener, Protocol};
pub use proof::{MbMutant, VerifiedMailboat};
pub use server::{mail_dirs, MailServer, Mailboat, Message};
pub use spec::{MailOp, MailRet, MailSpec};
pub use workload::{run_workload, WorkloadConfig, WorkloadResult};
