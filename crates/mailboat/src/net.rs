//! TCP frontends: serve the SMTP and POP3 session state machines over
//! real sockets (`std::net`), as the paper's mail server does ("Mailboat
//! supports SMTP and POP3 over the network", §9.3).
//!
//! Like the paper's protocol layer this is unverified plumbing: one
//! thread per connection, line-delimited framing, sessions from
//! [`crate::smtp`]. The server binds an ephemeral port and reports it,
//! so tests and examples can connect as real clients.

use crate::server::MailServer;
use crate::smtp::{Pop3Session, SmtpSession};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Which protocol a listener speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Delivery (SMTP-style).
    Smtp,
    /// Retrieval (POP3-style).
    Pop3,
}

/// A running mail listener; dropped or [`MailListener::shutdown`] stops
/// accepting (existing connections finish their session).
pub struct MailListener {
    /// The bound address (ephemeral port).
    pub addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl MailListener {
    /// Starts serving `protocol` for `server` on a fresh localhost port.
    pub fn start<S: MailServer + 'static>(
        server: Arc<S>,
        protocol: Protocol,
    ) -> std::io::Result<MailListener> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        // Nonblocking accept loop so shutdown is prompt.
        listener.set_nonblocking(true)?;
        let accept_thread = std::thread::spawn(move || loop {
            if stop2.load(Ordering::SeqCst) {
                break;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let server = Arc::clone(&server);
                    std::thread::spawn(move || {
                        let _ = handle_connection(server, stream, protocol);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                Err(_) => break,
            }
        });
        Ok(MailListener {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// Stops accepting new connections.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MailListener {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection<S: MailServer>(
    server: Arc<S>,
    stream: TcpStream,
    protocol: Protocol,
) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    match protocol {
        Protocol::Smtp => {
            let (mut session, greeting) = SmtpSession::new(server);
            writeln!(writer, "{greeting}")?;
            for line in reader.lines() {
                let line = line?;
                let quit = line.trim().eq_ignore_ascii_case("QUIT");
                let reply = session.handle_line(line.trim_end_matches('\r'));
                if !reply.is_empty() {
                    writeln!(writer, "{reply}")?;
                }
                if quit {
                    break;
                }
            }
        }
        Protocol::Pop3 => {
            let (mut session, greeting) = Pop3Session::new(server);
            writeln!(writer, "{greeting}")?;
            for line in reader.lines() {
                let line = line?;
                let quit = line.trim().eq_ignore_ascii_case("QUIT");
                let reply = session.handle_line(line.trim_end_matches('\r'));
                writeln!(writer, "{reply}")?;
                if quit {
                    break;
                }
            }
        }
    }
    Ok(())
}

/// A minimal line-oriented client for tests and examples (the `postal`
/// stand-in).
pub struct LineClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl LineClient {
    /// Connects and reads the greeting.
    pub fn connect(addr: std::net::SocketAddr) -> std::io::Result<(LineClient, String)> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        let mut client = LineClient {
            reader: BufReader::new(stream),
            writer,
        };
        let greeting = client.read_line()?;
        Ok((client, greeting))
    }

    /// Sends one line.
    pub fn send(&mut self, line: &str) -> std::io::Result<()> {
        writeln!(self.writer, "{line}")
    }

    /// Reads one reply line.
    pub fn read_line(&mut self) -> std::io::Result<String> {
        let mut buf = String::new();
        self.reader.read_line(&mut buf)?;
        Ok(buf.trim_end().to_string())
    }

    /// Sends a line and reads one reply.
    pub fn roundtrip(&mut self, line: &str) -> std::io::Result<String> {
        self.send(line)?;
        self.read_line()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{mail_dirs, Mailboat};
    use goose_rt::fs::NativeFs;
    use goose_rt::runtime::NativeRt;

    fn server() -> Arc<Mailboat> {
        let dirs = mail_dirs(8);
        let dir_refs: Vec<&str> = dirs.iter().map(String::as_str).collect();
        Arc::new(Mailboat::init(NativeFs::new(&dir_refs), NativeRt::new(), 8).unwrap())
    }

    #[test]
    fn smtp_delivery_over_real_sockets() {
        let s = server();
        let mut listener = MailListener::start(Arc::clone(&s), Protocol::Smtp).unwrap();
        let (mut c, greeting) = LineClient::connect(listener.addr).unwrap();
        assert!(greeting.starts_with("220"), "{greeting}");
        assert!(c.roundtrip("HELO test").unwrap().starts_with("250"));
        assert!(c.roundtrip("MAIL FROM:<a@b>").unwrap().starts_with("250"));
        assert!(c
            .roundtrip("RCPT TO:<user3@example.com>")
            .unwrap()
            .starts_with("250"));
        assert!(c.roundtrip("DATA").unwrap().starts_with("354"));
        c.send("over tcp").unwrap();
        assert!(c.roundtrip(".").unwrap().starts_with("250"));
        assert!(c.roundtrip("QUIT").unwrap().starts_with("221"));
        listener.shutdown();

        let msgs = s.pickup(3);
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].contents, b"over tcp\n");
        s.unlock(3);
    }

    #[test]
    fn pop3_retrieval_over_real_sockets() {
        let s = server();
        s.deliver(5, b"net msg");
        let mut listener = MailListener::start(Arc::clone(&s), Protocol::Pop3).unwrap();
        let (mut c, greeting) = LineClient::connect(listener.addr).unwrap();
        assert!(greeting.starts_with("+OK"), "{greeting}");
        assert!(c.roundtrip("USER user5").unwrap().starts_with("+OK"));
        let list = c.roundtrip("LIST").unwrap();
        assert!(list.contains("1 messages"), "{list}");
        // LIST's body lines follow.
        let _size_line = c.read_line().unwrap();
        let retr = c.roundtrip("RETR 1").unwrap();
        assert!(retr.starts_with("+OK"), "{retr}");
        let body = c.read_line().unwrap();
        assert_eq!(body, "net msg");
        let _dot = c.read_line().unwrap();
        assert!(c.roundtrip("DELE 1").unwrap().starts_with("+OK"));
        assert!(c.roundtrip("QUIT").unwrap().starts_with("+OK"));
        listener.shutdown();
        assert!(s.pickup(5).is_empty());
        s.unlock(5);
    }

    #[test]
    fn concurrent_smtp_clients() {
        let s = server();
        let mut listener = MailListener::start(Arc::clone(&s), Protocol::Smtp).unwrap();
        let addr = listener.addr;
        let mut handles = Vec::new();
        for t in 0..4u64 {
            handles.push(std::thread::spawn(move || {
                let (mut c, _) = LineClient::connect(addr).unwrap();
                c.roundtrip("HELO x").unwrap();
                c.roundtrip("MAIL FROM:<a@b>").unwrap();
                c.roundtrip(&format!("RCPT TO:<user{}@x>", t % 2)).unwrap();
                c.roundtrip("DATA").unwrap();
                c.send(&format!("msg from {t}")).unwrap();
                c.roundtrip(".").unwrap();
                c.roundtrip("QUIT").unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        listener.shutdown();
        let total = s.pickup(0).len() + {
            s.unlock(0);
            let n = s.pickup(1).len();
            s.unlock(1);
            n
        };
        assert_eq!(total, 4);
    }
}
