//! The ghost-instrumented Mailboat — the runtime analog of the paper's
//! Mailboat proof (§8.3).
//!
//! Proof structure, matching the paper:
//!
//! - **MsgsInv**: per-user durable *sets* of message IDs mirror the
//!   mailbox directories; the spec state σ carries the authoritative
//!   contents. Deliveries linearize at the atomic `link` into the
//!   mailbox; pickups at the directory listing; deletes at the unlink.
//! - **Lower-bound leases** (`lease(dir, ⊇N)`): the mailbox lock
//!   protects only *deletion* rights — a [`perennial::SetLease`] held
//!   across Pickup…Unlock — while concurrent deliveries insert freely,
//!   exactly §8.3's leasing strategy.
//! - **TmpInv**: spool temporaries belong to recovery after a crash;
//!   `Recover` deletes them all. Their contents never matter (§8.3: the
//!   inode content permission stays out of the invariant).
//! - **HeapInv**: in model mode a delivery can read its message from a
//!   Goose heap slice; a caller mutating that slice concurrently is
//!   undefined behaviour caught by the two-phase-write race detector —
//!   the §8.3 "exploiting undefined behaviour" argument, executable.

use crate::spec::{MailOp, MailRet, MailSpec, MailState};
use goose_rt::fs::{DirH, FileSys, ModelFs};
use goose_rt::heap::{Heap, Slice};
use goose_rt::runtime::{GLock, ModelRtExt};
use parking_lot::{Mutex, RwLock};
use perennial::{GhostUnwrap, LockInv, SetId, SetLease};
use perennial_checker::World;
use std::sync::Arc;

/// Deliberate bugs for mutation tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MbMutant {
    /// The correct system.
    None,
    /// Write messages directly into the mailbox, no spool (a concurrent
    /// or post-crash pickup can observe a partial message).
    NoSpool,
    /// Commit the delivery when the spool file is written, before the
    /// link (a crash in between loses a committed message).
    CommitAtSpool,
    /// Recovery forgets to clean the spool.
    SkipRecoveryCleanup,
    /// Delete without holding the pickup lock.
    DeleteWithoutLock,
    /// The network courier delivers every received request without
    /// deduplicating by request id: a plan-duplicated message lands
    /// twice. Invisible to crash sweeps — only the net-fault sweep's
    /// `Duplicate` plans expose it.
    NetNoDedup,
}

/// Model-mode chunk sizes (small, to exercise the chunk loops without
/// exploding the schedule space).
const MODEL_WRITE_CHUNK: usize = 4;
const MODEL_READ_CHUNK: u64 = 3;

/// The instrumented Mailboat.
pub struct VerifiedMailboat {
    mutant: MbMutant,
    fs: Arc<ModelFs>,
    spool: DirH,
    users: Vec<DirH>,
    sets: Vec<SetId<String>>,
    lockinvs: Vec<Arc<LockInv<SetLease<String>>>>,
    locks: RwLock<Vec<Arc<dyn GLock>>>,
    /// While a user is locked (Pickup…Unlock), their deletion lease
    /// lives here.
    sessions: Vec<Mutex<Option<SetLease<String>>>>,
}

impl VerifiedMailboat {
    /// Sets up ghost resources over a fresh model file system whose
    /// directory layout is `spool` plus `user0..userN`.
    pub fn new(w: &World<MailSpec>, fs: Arc<ModelFs>, users: u64, mutant: MbMutant) -> Self {
        let spool = fs.resolve("spool").expect("spool dir");
        let mut user_dirs = Vec::new();
        let mut sets = Vec::new();
        let mut lockinvs = Vec::new();
        let mut sessions = Vec::new();
        for u in 0..users {
            user_dirs.push(fs.resolve(&format!("user{u}")).expect("user dir"));
            let (set, lease) = w.ghost.alloc_set::<String>(Vec::<String>::new());
            sets.push(set);
            lockinvs.push(Arc::new(LockInv::new(lease)));
            sessions.push(Mutex::new(None));
        }
        VerifiedMailboat {
            mutant,
            fs,
            spool,
            users: user_dirs,
            sets,
            lockinvs,
            locks: RwLock::new(Vec::new()),
            sessions,
        }
    }

    /// The underlying model file system (harness inspection and crash
    /// resets).
    pub fn fs(&self) -> &ModelFs {
        &self.fs
    }

    /// Rebuilds volatile state at boot: fresh locks, empty sessions.
    pub fn boot(&self, w: &World<MailSpec>) {
        *self.locks.write() = (0..self.users.len()).map(|_| w.rt.new_glock()).collect();
        for s in &self.sessions {
            *s.lock() = None;
        }
    }

    fn lock(&self, user: u64) -> Arc<dyn GLock> {
        Arc::clone(&self.locks.read()[user as usize])
    }

    fn fresh_name(&self, w: &World<MailSpec>, prefix: &str) -> String {
        format!("{prefix}{:016x}", w.rt.rand_u64())
    }

    /// `Deliver` with the message available as plain bytes.
    pub fn deliver(&self, w: &World<MailSpec>, user: u64, msg: &str) {
        let tok = w
            .ghost
            .begin_op(MailOp::Deliver(user, msg.to_string()))
            .ghost_unwrap();
        self.deliver_body(w, user, msg, None, &tok);
        w.ghost.finish_op(tok, &MailRet::Unit).ghost_unwrap();
    }

    /// `Deliver` reading the message out of a Goose heap slice chunk by
    /// chunk — the §8.3 configuration where a caller racing on the slice
    /// is undefined behaviour.
    pub fn deliver_slice(
        &self,
        w: &World<MailSpec>,
        user: u64,
        heap: &Heap,
        slice: Slice,
        expected: &str,
    ) {
        let tok = w
            .ghost
            .begin_op(MailOp::Deliver(user, expected.to_string()))
            .ghost_unwrap();
        self.deliver_body(w, user, expected, Some((heap, slice)), &tok);
        w.ghost.finish_op(tok, &MailRet::Unit).ghost_unwrap();
    }

    fn deliver_body(
        &self,
        w: &World<MailSpec>,
        user: u64,
        msg: &str,
        heap_src: Option<(&Heap, Slice)>,
        tok: &perennial::OpToken,
    ) {
        let udir = self.users[user as usize];

        if self.mutant == MbMutant::NoSpool {
            // Mutant: write straight into the mailbox. Commit at the
            // create (when the name appears in the directory).
            let (id, fd) = loop {
                let id = self.fresh_name(w, "m");
                if let Some(fd) = self.fs.create(udir, &id).expect("create") {
                    break (id, fd);
                }
            };
            w.ghost
                .set_insert(self.sets[user as usize], &id)
                .ghost_unwrap();
            w.ghost
                .commit_op_as(tok, MailOp::DeliverAs(user, msg.to_string(), id.clone()))
                .ghost_unwrap();
            self.write_chunks(w, fd, msg, heap_src);
            self.fs.close(fd).expect("close");
            return;
        }

        // Spool phase (§8.2): fresh temporary name by random retry.
        let (tmp, fd) = loop {
            let tmp = self.fresh_name(w, "t");
            if let Some(fd) = self.fs.create(self.spool, &tmp).expect("spool create") {
                break (tmp, fd);
            }
        };
        self.write_chunks(w, fd, msg, heap_src);
        self.fs.close(fd).expect("spool close");

        if self.mutant == MbMutant::CommitAtSpool {
            // Mutant: premature linearization — the message is only in
            // the spool, not yet in any mailbox.
            let id = self.fresh_name(w, "m");
            w.ghost
                .commit_op_as(tok, MailOp::DeliverAs(user, msg.to_string(), id.clone()))
                .ghost_unwrap();
            if self
                .fs
                .link(self.spool, &tmp, udir, &id)
                .expect("mailbox link")
            {
                w.ghost
                    .set_insert(self.sets[user as usize], &id)
                    .ghost_unwrap();
            }
            self.fs.delete(self.spool, &tmp).expect("spool unlink");
            return;
        }

        // Install phase: the successful link is the linearization point;
        // the ghost set insert and the commit are adjacent to it.
        loop {
            let id = self.fresh_name(w, "m");
            if self
                .fs
                .link(self.spool, &tmp, udir, &id)
                .expect("mailbox link")
            {
                w.ghost
                    .set_insert(self.sets[user as usize], &id)
                    .ghost_unwrap();
                w.ghost
                    .commit_op_as(tok, MailOp::DeliverAs(user, msg.to_string(), id))
                    .ghost_unwrap();
                break;
            }
        }
        self.fs.delete(self.spool, &tmp).expect("spool unlink");
    }

    fn write_chunks(
        &self,
        _w: &World<MailSpec>,
        fd: goose_rt::fs::Fd,
        msg: &str,
        heap_src: Option<(&Heap, Slice)>,
    ) {
        match heap_src {
            None => {
                for chunk in msg.as_bytes().chunks(MODEL_WRITE_CHUNK) {
                    self.fs.append(fd, chunk).expect("append");
                }
            }
            Some((heap, slice)) => {
                // Read the caller's slice chunk by chunk (each read is an
                // atomic heap step; racy mutation by the caller is UB).
                let len = heap.slice_len(slice);
                let mut off = 0u64;
                while off < len {
                    let n = (MODEL_WRITE_CHUNK as u64).min(len - off);
                    let chunk = heap.slice_read(slice, off, n);
                    self.fs.append(fd, &chunk).expect("append");
                    off += n;
                }
            }
        }
    }

    /// `Pickup`: acquires the user lock, takes the deletion lease into
    /// the session, and linearizes at the directory listing.
    pub fn pickup(&self, w: &World<MailSpec>, user: u64) -> Vec<(String, String)> {
        let tok = w.ghost.begin_op(MailOp::Pickup(user)).ghost_unwrap();
        self.lock(user).acquire();
        let lease = self.lockinvs[user as usize].take().ghost_unwrap();

        let udir = self.users[user as usize];
        // The listing is the linearization point: the spec's mailbox
        // snapshot corresponds to exactly the names present now. Files
        // are immutable once linked and deletes are excluded by the
        // lock, so reading the contents afterwards observes the same
        // snapshot (concurrent deliveries linearize after us).
        let names = self.fs.list(udir).expect("mailbox list");
        let ret = w.ghost.commit_op(&tok).ghost_unwrap();

        let mut out = Vec::with_capacity(names.len());
        for id in names {
            let contents = self
                .fs
                .read_file(udir, &id, MODEL_READ_CHUNK)
                .expect("read message");
            out.push((id, String::from_utf8(contents).expect("utf8 message")));
        }
        *self.sessions[user as usize].lock() = Some(lease);
        w.ghost
            .finish_op(tok, &MailRet::Msgs(out.clone()))
            .ghost_unwrap();
        match ret {
            MailRet::Msgs(_) => out,
            MailRet::Unit => unreachable!("pickup committed a unit transition"),
        }
    }

    /// `Delete`: unlink a picked-up message; requires the session lease
    /// (i.e. the pickup lock), whose set-delete checks membership and
    /// version.
    pub fn delete(&self, w: &World<MailSpec>, user: u64, id: &str) {
        let tok = w
            .ghost
            .begin_op(MailOp::Delete(user, id.to_string()))
            .ghost_unwrap();
        let mut lease = if self.mutant == MbMutant::DeleteWithoutLock {
            // Mutant: grab the deletion lease without holding the lock.
            self.lockinvs[user as usize].take().ghost_unwrap()
        } else {
            self.sessions[user as usize]
                .lock()
                .take()
                .expect("delete without a pickup session")
        };
        let udir = self.users[user as usize];
        // The unlink is the linearization point; set-delete and commit
        // are adjacent.
        self.fs.delete(udir, id).expect("mailbox delete");
        w.ghost
            .set_delete(self.sets[user as usize], &mut lease, &id.to_string())
            .ghost_unwrap();
        let ret = w.ghost.commit_op(&tok).ghost_unwrap();
        if self.mutant == MbMutant::DeleteWithoutLock {
            self.lockinvs[user as usize].put(lease).ghost_unwrap();
        } else {
            *self.sessions[user as usize].lock() = Some(lease);
        }
        w.ghost.finish_op(tok, &ret).ghost_unwrap();
    }

    /// `Unlock`: return the deletion lease to the lock invariant and
    /// release the lock.
    pub fn unlock(&self, w: &World<MailSpec>, user: u64) {
        let tok = w.ghost.begin_op(MailOp::Unlock(user)).ghost_unwrap();
        let ret = w.ghost.commit_op(&tok).ghost_unwrap();
        let lease = self.sessions[user as usize]
            .lock()
            .take()
            .expect("unlock without a pickup session");
        self.lockinvs[user as usize].put(lease).ghost_unwrap();
        self.lock(user).release();
        w.ghost.finish_op(tok, &ret).ghost_unwrap();
    }

    /// `Recover` (§8.2/§8.3): delete spool temporaries (TmpInv gives
    /// recovery the right), re-establish the per-user lock invariants
    /// with fresh lower-bound leases, and spend the crash token.
    pub fn recover(&self, w: &World<MailSpec>) {
        if self.mutant != MbMutant::SkipRecoveryCleanup {
            let names = self.fs.list(self.spool).expect("spool list");
            for name in names {
                self.fs.delete(self.spool, &name).expect("spool cleanup");
            }
        }
        for (u, set) in self.sets.iter().enumerate() {
            let lease = w.ghost.recover_set_lease(*set).ghost_unwrap();
            self.lockinvs[u].reset(lease);
        }
        w.ghost.recovery_done().ghost_unwrap();
    }

    /// AbsR at quiescence: every mailbox directory matches σ (names and
    /// contents), and — when at least one crash/recovery happened — the
    /// spool is empty.
    pub fn abs_check(&self, w: &World<MailSpec>, expect_clean_spool: bool) -> Result<(), String> {
        let sigma: MailState = w.ghost.spec_state();
        for (u, _) in self.users.iter().enumerate() {
            let dir = format!("user{u}");
            let names = self.fs.peek_list(&dir).unwrap_or_default();
            let mbox = sigma.get(&(u as u64)).cloned().unwrap_or_default();
            let spec_names: Vec<String> = mbox.keys().cloned().collect();
            if names != spec_names {
                return Err(format!(
                    "AbsR violated: user{u} dir has {names:?}, spec has {spec_names:?}"
                ));
            }
            for (id, contents) in &mbox {
                let data = self
                    .fs
                    .peek_file(&dir, id)
                    .ok_or_else(|| format!("message {id} missing from user{u}"))?;
                if data != contents.as_bytes() {
                    return Err(format!(
                        "AbsR violated: user{u}/{id} has {:?}, spec has {contents:?}",
                        String::from_utf8_lossy(&data)
                    ));
                }
            }
        }
        if expect_clean_spool {
            let spool = self.fs.peek_list("spool").unwrap_or_default();
            if !spool.is_empty() {
                return Err(format!("TmpInv violated: spool not cleaned: {spool:?}"));
            }
        }
        Ok(())
    }
}
