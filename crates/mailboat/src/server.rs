//! The `MailServer` interface and the plain (uninstrumented) Mailboat
//! implementation (§8.2), shared by the benchmarks and examples.
//!
//! The implementation is exactly the paper's: each user's mailbox is a
//! directory with a file per message; deliveries spool the message into a
//! separate directory, then atomically hard-link it into the mailbox and
//! unlink the temporary (the shadow-copy pattern); pickups hold a
//! per-user in-memory lock to exclude concurrent deletes; recovery
//! deletes everything in the spool.

use goose_rt::fs::{DirH, FileSys, FsResult};
use goose_rt::runtime::{GLock, Runtime};
use std::sync::Arc;

/// A message as returned by `Pickup` (Figure 10's `Message`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// The message ID (its file name in the mailbox).
    pub id: String,
    /// The message contents.
    pub contents: Vec<u8>,
}

/// The mail-server operations (Figure 10), implemented by Mailboat and
/// the GoMail/CMAIL baselines.
pub trait MailServer: Send + Sync {
    /// Delivers `msg` to `user`'s mailbox; callable concurrently at any
    /// time, without locks.
    fn deliver(&self, user: u64, msg: &[u8]);

    /// Lists and reads all of `user`'s mail, implicitly acquiring the
    /// per-user lock (released by [`MailServer::unlock`]).
    fn pickup(&self, user: u64) -> Vec<Message>;

    /// Deletes a message previously returned by `pickup` (the lock must
    /// be held).
    fn delete(&self, user: u64, id: &str);

    /// Releases the per-user lock taken by `pickup`.
    fn unlock(&self, user: u64);

    /// Post-crash recovery: cleans up spooled temporaries.
    fn recover(&self);
}

/// Returns the directory layout for `users` mailboxes (plus the spool
/// and the lock directory used by the file-lock baselines).
pub fn mail_dirs(users: u64) -> Vec<String> {
    let mut dirs = vec!["spool".to_string(), "locks".to_string()];
    dirs.extend((0..users).map(|u| format!("user{u}")));
    dirs
}

/// Write chunk size (the paper writes files 4 KiB at a time, §8.3).
pub const WRITE_CHUNK: usize = 4096;

/// Read chunk size (the §9.5 infinite-loop bug was for messages larger
/// than this).
pub const READ_CHUNK: u64 = 512;

/// The plain Mailboat implementation.
pub struct Mailboat {
    fs: Arc<dyn FileSys>,
    rt: Arc<dyn Runtime>,
    spool: DirH,
    users: Vec<DirH>,
    locks: Vec<Arc<dyn GLock>>,
}

impl Mailboat {
    /// `Init` (Figure 10): caches directory handles — the relative-
    /// lookup optimization §9.3 credits for part of Mailboat's speedup —
    /// and creates the in-memory per-user locks.
    pub fn init(fs: Arc<dyn FileSys>, rt: Arc<dyn Runtime>, users: u64) -> FsResult<Self> {
        let spool = fs.resolve("spool")?;
        let mut user_dirs = Vec::new();
        let mut locks = Vec::new();
        for u in 0..users {
            user_dirs.push(fs.resolve(&format!("user{u}"))?);
            locks.push(rt.new_lock());
        }
        Ok(Mailboat {
            fs,
            rt,
            spool,
            users: user_dirs,
            locks,
        })
    }

    /// Number of users.
    pub fn user_count(&self) -> u64 {
        self.users.len() as u64
    }

    fn fresh_name(&self, prefix: &str) -> String {
        format!("{prefix}{:016x}", self.rt.rand_u64())
    }
}

impl MailServer for Mailboat {
    fn deliver(&self, user: u64, msg: &[u8]) {
        let udir = self.users[user as usize];
        // Spool phase: pick a fresh temporary name by retrying random
        // IDs (§8.2 Deliver/Deliver), then write the contents in chunks.
        let (tmp, fd) = loop {
            let tmp = self.fresh_name("t");
            match self.fs.create(self.spool, &tmp).expect("spool create") {
                Some(fd) => break (tmp, fd),
                None => continue,
            }
        };
        for chunk in msg.chunks(WRITE_CHUNK) {
            self.fs.append(fd, chunk).expect("spool append");
        }
        self.fs.close(fd).expect("spool close");
        // Install phase: atomically link into the mailbox under a fresh
        // message ID, then drop the temporary.
        loop {
            let id = self.fresh_name("m");
            match self.fs.link(self.spool, &tmp, udir, &id) {
                Ok(true) => break,
                Ok(false) => continue,
                Err(e) => panic!("mailbox link failed: {e}"),
            }
        }
        self.fs.delete(self.spool, &tmp).expect("spool unlink");
    }

    fn pickup(&self, user: u64) -> Vec<Message> {
        let udir = self.users[user as usize];
        self.locks[user as usize].acquire();
        let names = self.fs.list(udir).expect("mailbox list");
        let mut out = Vec::with_capacity(names.len());
        for id in names {
            let contents = self.fs.read_file(udir, &id, READ_CHUNK).expect("read msg");
            out.push(Message { id, contents });
        }
        out
    }

    fn delete(&self, user: u64, id: &str) {
        let udir = self.users[user as usize];
        self.fs.delete(udir, id).expect("mailbox delete");
    }

    fn unlock(&self, user: u64) {
        self.locks[user as usize].release();
    }

    fn recover(&self) {
        // §8.2 Recovery: the spool may contain temporaries that are no
        // longer needed; delete them all.
        let names = self.fs.list(self.spool).expect("spool list");
        for name in names {
            self.fs.delete(self.spool, &name).expect("spool cleanup");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goose_rt::fs::NativeFs;
    use goose_rt::runtime::NativeRt;

    fn server(users: u64) -> Mailboat {
        let dirs = mail_dirs(users);
        let dir_refs: Vec<&str> = dirs.iter().map(String::as_str).collect();
        let fs = NativeFs::new(&dir_refs);
        Mailboat::init(fs, NativeRt::new(), users).unwrap()
    }

    #[test]
    fn deliver_pickup_roundtrip() {
        let s = server(2);
        s.deliver(0, b"hello mailboat");
        s.deliver(0, b"second message");
        s.deliver(1, b"other user");
        let msgs = s.pickup(0);
        assert_eq!(msgs.len(), 2);
        let bodies: Vec<_> = msgs.iter().map(|m| m.contents.clone()).collect();
        assert!(bodies.contains(&b"hello mailboat".to_vec()));
        assert!(bodies.contains(&b"second message".to_vec()));
        s.unlock(0);
        assert_eq!(s.pickup(1).len(), 1);
        s.unlock(1);
    }

    #[test]
    fn delete_removes_message() {
        let s = server(1);
        s.deliver(0, b"doomed");
        let msgs = s.pickup(0);
        s.delete(0, &msgs[0].id);
        s.unlock(0);
        assert!(s.pickup(0).is_empty());
        s.unlock(0);
    }

    #[test]
    fn bug_large_message_pickup_terminates() {
        // §9.5: messages larger than 512 bytes once made Pickup loop
        // forever. Regression: a 4 KiB + tail message reads back whole.
        let s = server(1);
        let big = vec![0x42u8; 4096 + 37];
        s.deliver(0, &big);
        let msgs = s.pickup(0);
        assert_eq!(msgs[0].contents, big);
        s.unlock(0);
    }

    #[test]
    fn spool_left_dirty_without_recovery_then_cleaned() {
        let dirs = mail_dirs(1);
        let dir_refs: Vec<&str> = dirs.iter().map(String::as_str).collect();
        let fs = NativeFs::new(&dir_refs);
        let s = Mailboat::init(fs.clone() as Arc<dyn FileSys>, NativeRt::new(), 1).unwrap();
        // Simulate a crash mid-deliver by planting a stray spool file.
        let spool = fs.resolve("spool").unwrap();
        let fd = fs.create(spool, "t-orphan").unwrap().unwrap();
        fs.append(fd, b"partial").unwrap();
        fs.crash();
        s.recover();
        assert!(fs.list(spool).unwrap().is_empty());
    }

    #[test]
    fn concurrent_deliveries_all_arrive() {
        let s = Arc::new(server(4));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..25 {
                    let user = (t + i) % 4;
                    s.deliver(user, format!("msg-{t}-{i}").as_bytes());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut total = 0;
        for u in 0..4 {
            total += s.pickup(u).len();
            s.unlock(u);
        }
        assert_eq!(total, 200);
    }
}
